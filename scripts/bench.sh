#!/usr/bin/env bash
# Kernel + end-to-end benchmark driver. Builds the Release tree, runs the
# micro_substrate kernel benchmarks against the retained serial reference
# kernels (same binary) at AUTOMC_THREADS=1 and AUTOMC_THREADS=4, times the
# fig4_search_curves end-to-end search at both thread counts, and writes
# BENCH_kernels.json at the repo root.
#
# Usage:
#   scripts/bench.sh              # full run (includes two ~minutes-long
#                                 # end-to-end search passes)
#   AUTOMC_BENCH_SKIP_E2E=1 scripts/bench.sh   # kernels only
#   AUTOMC_BENCH_SECTIONS=eval scripts/bench.sh   # regenerate one BENCH_*.json
#       (comma-separated subset of: kernels, eval, server, fleet, load)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${AUTOMC_BENCH_BUILD_DIR:-build}"
OUT_JSON="BENCH_kernels.json"
FILTER='BM_MatMul|BM_MatMulRef|BM_GemmConvShape|BM_MatrixMultiply|BM_Conv2dForward|BM_Conv2dForwardRef|BM_Conv2dBackward|BM_Conv2dBackwardRef|BM_ParallelForOverhead|BM_FmoPredict'

SECTIONS="${AUTOMC_BENCH_SECTIONS:-kernels,eval,server,fleet,load}"
want() { [[ ",${SECTIONS}," == *",$1,"* ]]; }

targets=()
want kernels && targets+=(micro_substrate fig4_search_curves)
want eval && targets+=(batch_eval)
want server && targets+=(server_throughput)
want fleet && targets+=(fleet_throughput automc_serve)
want load && targets+=(load_replay automc_serve)
if [[ ${#targets[@]} -eq 0 ]]; then
  echo "AUTOMC_BENCH_SECTIONS=${SECTIONS} selects no section" >&2
  exit 1
fi

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j --target "${targets[@]}" >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

if want kernels; then

echo "== micro kernels, AUTOMC_THREADS=1 =="
AUTOMC_THREADS=1 "${BUILD_DIR}/bench/micro_substrate" \
  --benchmark_filter="${FILTER}" \
  --benchmark_out="${tmpdir}/micro_t1.json" --benchmark_out_format=json \
  --benchmark_min_time=0.2
echo "== micro kernels, AUTOMC_THREADS=4 =="
AUTOMC_THREADS=4 "${BUILD_DIR}/bench/micro_substrate" \
  --benchmark_filter="${FILTER}" \
  --benchmark_out="${tmpdir}/micro_t4.json" --benchmark_out_format=json \
  --benchmark_min_time=0.2

E2E_T1="null"
E2E_T4="null"
if [[ -z "${AUTOMC_BENCH_SKIP_E2E:-}" ]]; then
  elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", b - a }'; }
  echo "== end-to-end fig4_search_curves, AUTOMC_THREADS=1 =="
  start=$(date +%s.%N)
  AUTOMC_THREADS=1 "${BUILD_DIR}/bench/fig4_search_curves" >/dev/null
  E2E_T1=$(elapsed "${start}" "$(date +%s.%N)")
  echo "   ${E2E_T1}s"
  echo "== end-to-end fig4_search_curves, AUTOMC_THREADS=4 =="
  start=$(date +%s.%N)
  AUTOMC_THREADS=4 "${BUILD_DIR}/bench/fig4_search_curves" >/dev/null
  E2E_T4=$(elapsed "${start}" "$(date +%s.%N)")
  echo "   ${E2E_T4}s"
fi

python3 - "${tmpdir}/micro_t1.json" "${tmpdir}/micro_t4.json" \
    "${E2E_T1}" "${E2E_T4}" "${OUT_JSON}" <<'PY'
import json, os, sys

t1_path, t4_path, e2e_t1, e2e_t4, out_path = sys.argv[1:6]

def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = {
            "real_ms": b["real_time"] / 1e6
            if b.get("time_unit") == "ns"
            else b["real_time"],
            "items_per_second": b.get("items_per_second"),
        }
    return out

t1 = load(t1_path)
t4 = load(t4_path)

def entry(new_name, ref_name):
    """Speedup of the production kernel vs the retained serial reference."""
    row = {}
    for label, table in (("t1", t1), ("t4", t4)):
        if new_name in table:
            row[f"{label}_ms"] = table[new_name]["real_ms"]
            ips = table[new_name]["items_per_second"]
            if ips:
                row[f"{label}_gflops"] = ips / 1e9
    if ref_name in t1:
        row["ref_ms"] = t1[ref_name]["real_ms"]
        ips = t1[ref_name]["items_per_second"]
        if ips:
            row["ref_gflops"] = ips / 1e9
        for label in ("t1", "t4"):
            if f"{label}_ms" in row:
                row[f"speedup_{label}"] = row["ref_ms"] / row[f"{label}_ms"]
    return row

report = {
    "machine": {"nproc": os.cpu_count()},
    "note": (
        "ref_* rows are the retained pre-change serial kernels compiled in "
        "the same binary; t1/t4 are the production kernels under "
        "AUTOMC_THREADS=1/4. This machine has nproc cores; thread speedups "
        "only materialize with >1 core."
    ),
    "gemm": {
        f"n{n}": entry(f"BM_MatMul/{n}", f"BM_MatMulRef/{n}")
        for n in (32, 64, 128, 256)
    },
    # Per-sample conv im2col GEMMs from the model zoo: m = out_c,
    # k = in_c * 9, n = out_h * out_w (vgg13 base_width=4 on 8x8 inputs,
    # plus the resnet56 downsample shape).
    "gemm_conv_shapes": {
        f"m{m}_k{k}_n{n}": entry(
            f"BM_GemmConvShape/{m}/{k}/{n}", f"BM_GemmConvShapeRef/{m}/{k}/{n}"
        )
        for (m, k, n) in (
            (4, 27, 64),
            (4, 36, 64),
            (8, 36, 16),
            (8, 72, 16),
            (16, 144, 4),
            (32, 288, 1),
        )
    },
    "matrix_multiply_double": {
        f"n{n}": entry(f"BM_MatrixMultiply/{n}", None) for n in (64, 128)
    },
    "conv_forward": {
        f"c{c}": entry(f"BM_Conv2dForward/{c}", f"BM_Conv2dForwardRef/{c}")
        for c in (8, 16, 32)
    },
    "conv_backward": {
        f"c{c}": entry(f"BM_Conv2dBackward/{c}", f"BM_Conv2dBackwardRef/{c}")
        for c in (8, 16)
    },
    "fmo_predict": {"all": entry("BM_FmoPredict", None)},
    "parallel_for_overhead": {
        f"n{n}": entry(f"BM_ParallelForOverhead/{n}", None)
        for n in (1024, 65536, 1048576)
    },
    "end_to_end_search": {},
}
if e2e_t1 != "null":
    report["end_to_end_search"] = {
        "fig4_search_curves_t1_s": float(e2e_t1),
        "fig4_search_curves_t4_s": float(e2e_t4),
        "speedup_t4_vs_t1": float(e2e_t1) / float(e2e_t4),
    }

# Kernel regression gate: the freshly measured single-thread GEMM
# throughput on the two largest shapes must not fall below 90% of the
# previously recorded baseline. On regression the old baseline is kept
# (the failing numbers are printed, not written) so reruns keep gating
# against the last good recording.
if os.path.exists(out_path):
    with open(out_path) as f:
        old = json.load(f)
    failures = []
    for shape in ("n128", "n256"):
        prev = old.get("gemm", {}).get(shape, {}).get("t1_gflops")
        new = report["gemm"].get(shape, {}).get("t1_gflops")
        if prev and new and new < 0.9 * prev:
            failures.append(
                f"gemm {shape}: t1_gflops {new:.2f} < 0.9 * baseline {prev:.2f}"
            )
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        print(f"{out_path} left at the previous baseline", file=sys.stderr)
        sys.exit(1)

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY

fi  # kernels

if want eval; then

# Batched scheme evaluation: one 16-candidate round, serial Evaluate loop vs
# EvaluateBatch, at both thread counts. The binary exits non-zero unless the
# two runs are bit-identical, so a BENCH_eval.json always describes a
# result-preserving speedup (or, on a single-core machine, the overhead).
echo "== batch_eval, AUTOMC_THREADS=1 =="
AUTOMC_THREADS=1 "${BUILD_DIR}/bench/batch_eval" | tee "${tmpdir}/eval_t1.json"
echo "== batch_eval, AUTOMC_THREADS=4 =="
AUTOMC_THREADS=4 "${BUILD_DIR}/bench/batch_eval" | tee "${tmpdir}/eval_t4.json"

python3 - "${tmpdir}/eval_t1.json" "${tmpdir}/eval_t4.json" BENCH_eval.json <<'PY'
import json, os, sys

t1_path, t4_path, out_path = sys.argv[1:4]
with open(t1_path) as f:
    t1 = json.load(f)
with open(t4_path) as f:
    t4 = json.load(f)

report = {
    "machine": {"nproc": os.cpu_count()},
    "note": (
        "One 16-candidate evaluation round: the serial Evaluate loop vs "
        "EvaluateBatch, which speculates disjoint scheme subtrees on the "
        "thread pool and commits serially for bit-identical results (the "
        "binary verifies identity before reporting). Expected speedup "
        "approaches min(nproc, parallel_subtrees). Model snapshots are "
        "copy-on-write tensor aliases, so the speculative phase's cloning "
        "is O(1) per node; before COW landed, eager deep clones made the "
        "t1 ratio an overhead measurement (0.785 at threads=1, 0.904 at "
        "threads=4 on this machine) rather than a speedup."
    ),
    "batch_vs_serial": {"t1": t1, "t4": t4},
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_eval.json")
PY

fi  # eval

if want server; then

# Search-as-a-service: status-poll throughput against a live automc_serve
# job manager (idle and while a job occupies the only slot), plus the
# wall-clock to drain a 4-job batch with 1 vs 2 job slots. The binary exits
# non-zero unless every served outcome is bit-identical to a direct
# in-process RunSearch of the same spec.
echo "== server_throughput, AUTOMC_THREADS=1 =="
AUTOMC_THREADS=1 "${BUILD_DIR}/bench/server_throughput" | tee "${tmpdir}/server.json"

python3 - "${tmpdir}/server.json" BENCH_server.json <<'PY'
import json, os, sys

in_path, out_path = sys.argv[1:3]
with open(in_path) as f:
    measured = json.load(f)

report = {
    "machine": {"nproc": os.cpu_count()},
    "note": (
        "automc_serve over a unix-domain socket: synchronous JobStatus "
        "round-trips per second from one client connection (idle server vs "
        "one job running -- control traffic must not queue behind job "
        "execution), and the wall-clock to drain the same 4 tiny search "
        "jobs with 1 vs 2 job slots. The harness exits non-zero unless "
        "every served outcome is bit-identical to a direct in-process "
        "RunSearch, so a reported speedup is always result-preserving. On "
        "a single-core machine the 2-slot drain shows contention, not "
        "speedup."
    ),
    "server": measured,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_server.json")
PY

fi  # server

if want fleet; then

# Fleet subsystem: epoll idle-connection poll throughput (1 active
# connection vs the same plus 1000 parked idle ones -- idle sockets raise
# no epoll events, so the gate is within 2x) and the wall-clock to drain a
# 4-job batch through a coordinator with 1 vs 2 forked workers over TCP.
# The harness exits non-zero unless every sharded outcome is bit-identical
# to a direct in-process RunSearch.
echo "== fleet_throughput, AUTOMC_THREADS=1 =="
AUTOMC_THREADS=1 AUTOMC_SERVE_BIN="${BUILD_DIR}/examples/automc_serve" \
  "${BUILD_DIR}/bench/fleet_throughput" | tee "${tmpdir}/fleet.json"

python3 - "${tmpdir}/fleet.json" BENCH_server.json <<'PY'
import json, os, sys

in_path, out_path = sys.argv[1:3]
with open(in_path) as f:
    measured = json.load(f)

slowdown = measured.get("idle_conn_slowdown", 0.0)
if slowdown > 2.0:
    sys.exit(f"fleet gate failed: 1000 idle connections slowed polling "
             f"{slowdown:.2f}x (must stay within 2x)")

try:
    with open(out_path) as f:
        report = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    report = {"machine": {"nproc": os.cpu_count()}}
report["fleet_note"] = (
    "fleet subsystem: JobStatus round-trips per second through the epoll "
    "event loop with one connection vs with 1000 extra idle connections "
    "parked on the listener (idle sockets raise no events; the gate is "
    "within 2x), and the wall-clock to drain the same 4 tiny search jobs "
    "through a coordinator sharding across 1 vs 2 forked worker processes "
    "over the TCP transport. The harness exits non-zero unless every "
    "sharded outcome is bit-identical to a direct in-process RunSearch. "
    "On a single-core machine the 2-worker drain shows contention, not "
    "speedup."
)
report["fleet"] = measured
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("updated BENCH_server.json (fleet section)")
PY

fi  # fleet

if want load; then

# Open-loop load replay: a seeded Poisson schedule of submit/status/list/
# cancel/fetch traffic -- plus chunked fetch_model streams of the
# harness's pre-published 1 MiB multi-chunk artifact, charged at full
# delivery -- fired at the daemon from many non-blocking
# connections, with latency charged from the *scheduled* send time -- no
# coordinated omission, a stalled server racks up timeouts instead of
# thinning the sample stream. Runs once against a single self-hosted
# server and once against a 2-worker fleet over TCP. The SLO gate (per-op
# p99 budget + max error/timeout rate, overridable via
# AUTOMC_LOAD_SLO_P99_MS / AUTOMC_LOAD_SLO_MAX_ERROR_RATE) fails the
# section and keeps the previous BENCH_load.json baseline on violation.
SLO_P99="${AUTOMC_LOAD_SLO_P99_MS:-100}"
SLO_ERR="${AUTOMC_LOAD_SLO_MAX_ERROR_RATE:-0.02}"
# fetch_model weight 3: each fetch streams the pre-published 1 MiB
# artifact with per-chunk CRC+SHA-256 verification (~35 ms of CPU per
# stream on a 1-core box), so overlapping streams dominate every op's
# tail; 3% keeps the gate stable with headroom while still exercising
# the chunked-reply path under load.
LOAD_MIX="status=65,list=10,submit=5,cancel=5,fetch=10,fetch_model=3"
load_rc=0
echo "== load_replay, single server =="
"${BUILD_DIR}/bench/load_replay" \
    --label single --qps 150 --conns 8 --seconds 4 --seed 7 \
    --mix "${LOAD_MIX}" \
    --slo-p99-ms "${SLO_P99}" --slo-max-error-rate "${SLO_ERR}" \
    | tee "${tmpdir}/load_single.json" || load_rc=$?
echo "== load_replay, 2-worker fleet over TCP =="
AUTOMC_SERVE_BIN="${BUILD_DIR}/examples/automc_serve" \
  "${BUILD_DIR}/bench/load_replay" \
    --label fleet2 --fleet 2 --tcp --qps 100 --conns 8 --seconds 4 --seed 7 \
    --mix "${LOAD_MIX}" \
    --slo-p99-ms "${SLO_P99}" --slo-max-error-rate "${SLO_ERR}" \
    | tee "${tmpdir}/load_fleet2.json" || load_rc=$?

python3 - "${tmpdir}/load_single.json" "${tmpdir}/load_fleet2.json" \
    "${load_rc}" BENCH_load.json <<'PY'
import json, os, sys

single_path, fleet_path, rc, out_path = sys.argv[1:5]
rc = int(rc)

def load(path, label):
    try:
        with open(path) as f:
            return json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        print(f"REGRESSION: {label} run produced no parseable report",
              file=sys.stderr)
        return None

single = load(single_path, "single")
fleet2 = load(fleet_path, "fleet2")

# SLO regression gate: load_replay exits 3 when a budget is violated. On
# failure the old BENCH_load.json is kept (failing numbers are printed,
# not written) so reruns keep gating against the last good recording.
failed = rc != 0 or single is None or fleet2 is None
for doc in (single, fleet2):
    if doc is None:
        continue
    for v in doc.get("slo", {}).get("violations", []):
        print(f"REGRESSION: {doc.get('label', '?')}: {v}", file=sys.stderr)
if failed:
    print(f"{out_path} left at the previous baseline", file=sys.stderr)
    sys.exit(1)

report = {
    "machine": {"nproc": os.cpu_count()},
    "note": (
        "Open-loop AMCS load replay against automc_serve: a seeded "
        "Poisson schedule of submit/status/list/cancel/fetch traffic "
        "plus fetch_model chunked streams of a pre-published 1 MiB "
        "artifact (charged at kModelEnd, i.e. full delivery), "
        "over many non-blocking connections, latency charged from the "
        "scheduled send time (timeouts are recorded, late replies are "
        "discarded -- no coordinated omission). 'single' is one "
        "self-hosted server over a unix socket; 'fleet2' is a 2-worker "
        "coordinator over TCP. On a single-core machine the fleet run "
        "shows dispatch overhead, not speedup. Percentiles are "
        "bucket-interpolated from the log-spaced latency histogram."
    ),
    "slo_budget": {
        "p99_ms": single.get("slo", {}).get("p99_ms_budget"),
        "max_error_rate": single.get("slo", {}).get("max_error_rate"),
    },
    "single": single,
    "fleet2": fleet2,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_load.json")
PY

fi  # load
