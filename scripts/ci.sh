#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Usage:
#   scripts/ci.sh                      # plain Release build + ctest, run at
#                                      # AUTOMC_THREADS=1 and AUTOMC_THREADS=4
#   AUTOMC_SANITIZE=address,undefined scripts/ci.sh
#   AUTOMC_SANITIZE=thread scripts/ci.sh
#                                      # additional sanitizer build + ctest
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  # The whole suite runs twice: serial and with a 4-lane pool. Results must
  # be identical (the determinism contract in DESIGN.md); the second pass
  # also shakes out races under sanitizers.
  for threads in 1 4; do
    echo "-- ctest, AUTOMC_THREADS=${threads} --"
    AUTOMC_THREADS="${threads}" \
      ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
  done
}

echo "== tier-1: release build + tests =="
run_suite build

if [[ -n "${AUTOMC_SANITIZE:-}" ]]; then
  echo "== sanitizer pass (${AUTOMC_SANITIZE}) =="
  run_suite "build-san" "-DAUTOMC_SANITIZE=${AUTOMC_SANITIZE}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "CI OK"
