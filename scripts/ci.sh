#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Usage:
#   scripts/ci.sh                      # plain Release build + ctest
#   AUTOMC_SANITIZE=address,undefined scripts/ci.sh
#                                      # additional sanitizer build + ctest
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "== tier-1: release build + tests =="
run_suite build

if [[ -n "${AUTOMC_SANITIZE:-}" ]]; then
  echo "== sanitizer pass (${AUTOMC_SANITIZE}) =="
  run_suite "build-san" "-DAUTOMC_SANITIZE=${AUTOMC_SANITIZE}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "CI OK"
