#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Usage:
#   scripts/ci.sh                      # plain Release build + ctest, run at
#                                      # AUTOMC_THREADS=1 and AUTOMC_THREADS=4
#   AUTOMC_SANITIZE=address,undefined scripts/ci.sh
#   AUTOMC_SANITIZE=thread scripts/ci.sh
#                                      # additional sanitizer build + ctest
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  # The whole suite runs four ways: {SIMD kernels on, forced scalar} x
  # {serial, 4-lane pool}. Results must be identical across all of them
  # (the determinism contract in DESIGN.md plus the microkernel contract in
  # src/tensor/simd.h); the extra passes also shake out races under
  # sanitizers and keep the scalar fallback permanently exercised.
  for simd in 1 0; do
    for threads in 1 4; do
      echo "-- ctest, AUTOMC_SIMD=${simd} AUTOMC_THREADS=${threads} --"
      AUTOMC_SIMD="${simd}" AUTOMC_THREADS="${threads}" \
        ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
    done
  done
}

echo "== doc check =="
# Dead intra-repo markdown links/anchors and undocumented AUTOMC_* knobs
# (docs/configuration.md is the authoritative table) fail the build.
python3 scripts/check_docs.py

echo "== tier-1: release build + tests =="
run_suite build

echo "== crash-resume smoke =="
# Kill a checkpointing search with SIGKILL mid-run, resume it, and require
# the final SearchOutcome to be byte-identical to an uninterrupted reference
# run (the persistence guarantee in DESIGN.md "Persistence & resume").
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
cli=build/examples/automc_cli
smoke_args=(--searcher evolution --budget 16 --pretrain 1 --family vgg
            --depth 13 --seed 7)

"${cli}" "${smoke_args[@]}" --outcome "${smoke_dir}/ref.outcome"

AUTOMC_CHECKPOINT_EVERY=1 "${cli}" "${smoke_args[@]}" \
  --checkpoint "${smoke_dir}" --store "${smoke_dir}/store.bin" \
  --outcome "${smoke_dir}/victim.outcome" &
victim=$!
# Wait for the first checkpoint to land, then kill the search outright.
while kill -0 "${victim}" 2>/dev/null \
    && [[ ! -f "${smoke_dir}/checkpoint.bin" ]]; do
  sleep 0.05
done
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true

if [[ -f "${smoke_dir}/victim.outcome" ]]; then
  # The victim outran the kill: its (uninterrupted) outcome must still match.
  diff "${smoke_dir}/ref.outcome" "${smoke_dir}/victim.outcome"
  echo "crash-resume smoke: victim finished before the kill; outcome matches"
else
  AUTOMC_CHECKPOINT_EVERY=1 "${cli}" "${smoke_args[@]}" \
    --resume "${smoke_dir}" --store "${smoke_dir}/store.bin" \
    --outcome "${smoke_dir}/resumed.outcome"
  diff "${smoke_dir}/ref.outcome" "${smoke_dir}/resumed.outcome"
  echo "crash-resume smoke: resumed outcome is byte-identical"
fi

echo "== server smoke =="
# Boot the automc_serve daemon, run the same search once directly and once
# through the socket, require byte-identical outcomes, then SIGTERM the
# daemon and require a clean drain (exit 0) plus a metrics dump.
serve_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}" "${serve_dir}"' EXIT
AUTOMC_METRICS_OUT="${serve_dir}/metrics.json" \
  build/examples/automc_serve --socket "${serve_dir}/automc.sock" \
  --workdir "${serve_dir}/jobs" >"${serve_dir}/serve.log" 2>&1 &
srv=$!
for _ in $(seq 1 100); do
  [[ -S "${serve_dir}/automc.sock" ]] && break
  sleep 0.05
done
[[ -S "${serve_dir}/automc.sock" ]]

serve_args=(--searcher random --budget 4 --pretrain 1 --family vgg
            --depth 13 --dataset tiny --seed 11)
"${cli}" "${serve_args[@]}" --outcome "${serve_dir}/direct.outcome"

submit_line="$("${cli}" --socket "${serve_dir}/automc.sock" \
  "${serve_args[@]}" --serve-submit)"
echo "${submit_line}"
job_id="${submit_line##* }"
"${cli}" --socket "${serve_dir}/automc.sock" --serve-result "${job_id}" \
  --serve-wait --outcome "${serve_dir}/served.outcome" >/dev/null

diff "${serve_dir}/direct.outcome" "${serve_dir}/served.outcome"
echo "server smoke: served outcome is byte-identical"

kill -TERM "${srv}"
wait "${srv}"
[[ -f "${serve_dir}/metrics.json" ]]
echo "server smoke: daemon drained cleanly and dumped metrics"

echo "== fleet smoke =="
# Boot a 2-worker coordinator fleet over TCP, submit two jobs, SIGKILL the
# worker that owns the long one mid-run, and require every acknowledged
# job to finish with an outcome byte-identical to a direct run — the
# fleet-wide determinism contract (docs/server.md "Coordinator/worker
# sharding").
fleet_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}" "${serve_dir}" "${fleet_dir}"' EXIT
build/examples/automc_serve --socket "${fleet_dir}/fleet.sock" \
  --tcp tcp:127.0.0.1:0 --fleet 2 --workdir "${fleet_dir}/jobs" \
  >"${fleet_dir}/serve.log" 2>&1 &
fsrv=$!
for _ in $(seq 1 200); do
  grep -qo 'tcp:127\.0\.0\.1:[0-9]*' "${fleet_dir}/serve.log" && break
  sleep 0.05
done
tcp_addr="$(grep -o 'tcp:127\.0\.0\.1:[0-9]*' "${fleet_dir}/serve.log" | head -1)"
[[ -n "${tcp_addr}" ]]

fleet_args_a=(--searcher random --budget 200 --pretrain 1 --family vgg
              --depth 13 --dataset tiny --seed 19)
fleet_args_b=(--searcher random --budget 4 --pretrain 1 --family vgg
              --depth 13 --dataset tiny --seed 23)
"${cli}" "${fleet_args_a[@]}" --outcome "${fleet_dir}/direct_a.outcome"
"${cli}" "${fleet_args_b[@]}" --outcome "${fleet_dir}/direct_b.outcome"

job_a="$("${cli}" --socket "${tcp_addr}" "${fleet_args_a[@]}" --serve-submit)"
job_a="${job_a##* }"
job_b="$("${cli}" --socket "${tcp_addr}" "${fleet_args_b[@]}" --serve-submit)"
job_b="${job_b##* }"

# Job ids shard deterministically: (id-1) % 2, so job 1 lives in worker-1.
# Wait until it is RUNNING, then SIGKILL that worker process outright.
for _ in $(seq 1 600); do
  "${cli}" --socket "${tcp_addr}" --serve-status "${job_a}" \
    | grep -q RUNNING && break
  sleep 0.05
done
victim="$(pgrep -f -- "--workdir=${fleet_dir}/jobs/worker-1" | head -1)"
[[ -n "${victim}" ]]
kill -KILL "${victim}"
echo "fleet smoke: SIGKILLed worker-1 (pid ${victim}) mid-job"

"${cli}" --socket "${tcp_addr}" --serve-result "${job_a}" --serve-wait \
  --outcome "${fleet_dir}/served_a.outcome" >/dev/null
"${cli}" --socket "${tcp_addr}" --serve-result "${job_b}" --serve-wait \
  --outcome "${fleet_dir}/served_b.outcome" >/dev/null
diff "${fleet_dir}/direct_a.outcome" "${fleet_dir}/served_a.outcome"
diff "${fleet_dir}/direct_b.outcome" "${fleet_dir}/served_b.outcome"
echo "fleet smoke: both sharded outcomes byte-identical (one across a kill)"

kill -TERM "${fsrv}"
wait "${fsrv}"
echo "fleet smoke: coordinator drained cleanly"

echo "== artifact smoke =="
# The determinism contract extended to model bytes, across process and
# shard boundaries: submit a job to a 2-worker TCP fleet, fetch its
# published model through the coordinator front door, and require the
# bytes to equal a direct `--export-model` of the same spec. Then flip a
# single byte inside the pack file on disk and require the next fetch to
# fail with a typed DataLoss — a corrupt chunk is quarantined, never
# silently served (docs/artifacts.md "Corruption handling").
art_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}" "${serve_dir}" "${fleet_dir}" "${art_dir}"' EXIT
build/examples/automc_serve --socket "${art_dir}/fleet.sock" \
  --tcp tcp:127.0.0.1:0 --fleet 2 --workdir "${art_dir}/jobs" \
  >"${art_dir}/serve.log" 2>&1 &
asrv=$!
for _ in $(seq 1 200); do
  grep -qo 'tcp:127\.0\.0\.1:[0-9]*' "${art_dir}/serve.log" && break
  sleep 0.05
done
art_addr="$(grep -o 'tcp:127\.0\.0\.1:[0-9]*' "${art_dir}/serve.log" | head -1)"
[[ -n "${art_addr}" ]]

art_args=(--searcher random --budget 4 --pretrain 1 --family vgg
          --depth 13 --dataset tiny --seed 29)
"${cli}" "${art_args[@]}" --export-model "${art_dir}/direct.model" >/dev/null

art_job="$("${cli}" --socket "${art_addr}" "${art_args[@]}" --serve-submit)"
art_job="${art_job##* }"
for _ in $(seq 1 600); do
  "${cli}" --socket "${art_addr}" --serve-status "${art_job}" \
    | grep -q DONE && break
  sleep 0.05
done

"${cli}" --socket "${art_addr}" --serve-fetch-model "job-${art_job}" \
  --out "${art_dir}/fetched.model"
cmp "${art_dir}/direct.model" "${art_dir}/fetched.model"
"${cli}" --socket "${art_addr}" --serve-list-artifacts \
  | grep -q "job-${art_job}"
echo "artifact smoke: fleet-fetched model byte-identical to --export-model"

python3 - "${art_dir}/jobs/artifacts" <<'PY'
import glob, sys
packs = sorted(glob.glob(sys.argv[1] + "/packs/pack-*.bin"))
assert packs, "no pack files under " + sys.argv[1]
with open(packs[0], "r+b") as f:
    f.seek(100)  # inside the first chunk's payload
    b = f.read(1)
    f.seek(100)
    f.write(bytes([b[0] ^ 0xFF]))
print("artifact smoke: flipped one byte in", packs[0])
PY
rc=0
"${cli}" --socket "${art_addr}" --serve-fetch-model "job-${art_job}" \
  --out "${art_dir}/corrupt.model" 2>"${art_dir}/fetch_err.log" || rc=$?
[[ "${rc}" -ne 0 ]]
grep -q DataLoss "${art_dir}/fetch_err.log"
[[ ! -f "${art_dir}/corrupt.model" ]]
echo "artifact smoke: corrupted chunk refused with DataLoss (exit ${rc})"

kill -TERM "${asrv}"
wait "${asrv}"
echo "artifact smoke: coordinator drained cleanly"

echo "== load smoke =="
# Short open-loop replay against a self-hosted 2-worker fleet over TCP:
# the SLO gate (generous budget) must pass and the report must be
# well-formed JSON. Then the same replay with AUTOMC_SERVER_FAULT_DELAY_MS
# stalling every dispatch must trip the gate — load_replay signals an SLO
# violation with exit code 3, so the gate is proven able to fail.
load_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}" "${serve_dir}" "${fleet_dir}" "${art_dir}" \
  "${load_dir}"' EXIT
load_replay=build/bench/load_replay
AUTOMC_SERVE_BIN=build/examples/automc_serve "${load_replay}" \
  --fleet 2 --tcp --qps 80 --conns 4 --seconds 2 --seed 5 \
  --slo-p99-ms 500 --slo-max-error-rate 0.05 >"${load_dir}/load.json"
python3 - "${load_dir}/load.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["slo"]["pass"] is True, doc["slo"]
assert doc["report"]["totals"]["sent"] > 0, doc["report"]["totals"]
for op, row in doc["report"]["ops"].items():
    assert row["sent"] >= 0 and row["p99_ms"] >= 0, (op, row)
print("load smoke: SLO gate passed, report well-formed "
      f"({doc['report']['totals']['sent']} ops)")
PY

rc=0
AUTOMC_SERVE_BIN=build/examples/automc_serve \
  AUTOMC_SERVER_FAULT_DELAY_MS=50 "${load_replay}" \
  --fleet 2 --tcp --qps 40 --conns 4 --seconds 2 --seed 5 \
  --slo-p99-ms 10 >"${load_dir}/load_fault.json" || rc=$?
[[ "${rc}" -eq 3 ]]
echo "load smoke: fault-injected run tripped the SLO gate (exit ${rc})"

echo "== COW sanitizer stage =="
# The copy-on-write tensor contract is concurrency-sensitive: distinct
# aliases of one buffer are read while another alias materializes. Prove
# the absence of data races with a ThreadSanitizer build of the COW
# invariant suite plus the batched evaluator (whose speculation phase
# shares model snapshots across the pool) and the shared experience tier
# (readers mmap while a publisher appends + renames), and the artifact
# registry (concurrent publishers fill packs under flock while lock-free
# readers fetch through the mmap'd index), then shake out addressability
# bugs in the buffer-sharing paths with an ASan+UBSan pass. Both run at
# AUTOMC_THREADS=1 and 4 like the main suite.
cmake -B build-tsan -S . -DAUTOMC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j --target cow_tensor_test batch_eval_test \
  experience_index_test artifact_test
for threads in 1 4; do
  echo "-- tsan ctest, AUTOMC_THREADS=${threads} --"
  AUTOMC_THREADS="${threads}" ctest --test-dir build-tsan \
    -R 'cow_tensor_test|batch_eval_test|experience_index_test|artifact_test' \
    --output-on-failure
done

cmake -B build-asan -S . -DAUTOMC_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j --target tensor_test cow_tensor_test nn_model_test
for threads in 1 4; do
  echo "-- asan ctest, AUTOMC_THREADS=${threads} --"
  AUTOMC_THREADS="${threads}" ctest --test-dir build-asan \
    -R 'tensor_test|cow_tensor_test|nn_model_test' --output-on-failure
done

if [[ -n "${AUTOMC_SANITIZE:-}" ]]; then
  echo "== sanitizer pass (${AUTOMC_SANITIZE}) =="
  run_suite "build-san" "-DAUTOMC_SANITIZE=${AUTOMC_SANITIZE}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "CI OK"
