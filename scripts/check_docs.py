#!/usr/bin/env python3
"""Documentation CI checks.

1. Intra-repo markdown links: every relative link (and #anchor) in a
   tracked .md file must resolve to an existing file (and, for anchors, to
   a heading in that file). External schemes (http/https/mailto) are not
   fetched.
2. Knob coverage: every quoted "AUTOMC_*" string appearing in src/,
   examples/, bench/, or scripts/ must be mentioned in
   docs/configuration.md — the authoritative knob table — so a new env
   variable cannot ship undocumented. (Macro identifiers and header-guard
   tokens are not quoted strings and are therefore out of scope.)

Exits non-zero with one line per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
QUOTED_KNOB_RE = re.compile(r'"(AUTOMC_[A-Z][A-Z0-9_]*)"')
SKIP_DIRS = {".git", "build", "build-san", "third_party", ".claude"}


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path, cache={}):
    if md_path not in cache:
        with open(md_path, encoding="utf-8") as f:
            content = f.read()
        cache[md_path] = {github_slug(h) for h in HEADING_RE.findall(content)}
    return cache[md_path]


def check_links():
    errors = []
    for md in markdown_files():
        with open(md, encoding="utf-8") as f:
            content = f.read()
        # Fenced code blocks routinely contain [x](y)-shaped text; skip them.
        prose = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
        rel_md = os.path.relpath(md, REPO)
        for target in LINK_RE.findall(prose):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file #anchor
                dest = md
            else:
                dest = os.path.normpath(os.path.join(os.path.dirname(md),
                                                     path_part))
            if not os.path.exists(dest):
                errors.append(f"{rel_md}: dead link -> {target}")
                continue
            if anchor and dest.endswith(".md"):
                if anchor not in anchors_of(dest):
                    errors.append(f"{rel_md}: dead anchor -> {target}")
    return errors


def check_knobs():
    config_doc = os.path.join(REPO, "docs", "configuration.md")
    if not os.path.exists(config_doc):
        return ["docs/configuration.md is missing"]
    with open(config_doc, encoding="utf-8") as f:
        documented = set(QUOTED_KNOB_RE.findall(f.read()))
        f.seek(0)
        documented |= set(re.findall(r"`(AUTOMC_[A-Z][A-Z0-9_]*)`", f.read()))

    errors = []
    for sub in ("src", "examples", "bench", "scripts"):
        for root, dirs, files in os.walk(os.path.join(REPO, sub)):
            dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
            for name in files:
                if not name.endswith((".cc", ".cpp", ".h", ".sh", ".py")):
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as f:
                    content = f.read()
                hits = set(QUOTED_KNOB_RE.findall(content))
                # Shell scripts reference knobs unquoted: ${AUTOMC_X:-...}.
                if name.endswith(".sh"):
                    hits |= set(
                        re.findall(r"\$\{(AUTOMC_[A-Z][A-Z0-9_]*)", content))
                for knob in sorted(hits - documented):
                    errors.append(
                        f"{os.path.relpath(path, REPO)}: {knob} not in "
                        "docs/configuration.md")
    return errors


def main():
    errors = check_links() + check_knobs()
    for e in errors:
        print(f"doc-check: {e}", file=sys.stderr)
    if errors:
        print(f"doc-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("doc-check: all markdown links and AUTOMC_* knobs check out")
    return 0


if __name__ == "__main__":
    sys.exit(main())
