// Open-loop load-replay harness for automc_serve (docs/operations.md is
// the runbook, docs/benchmarking.md the output-schema reference).
//
// Replays a seeded Poisson schedule of submits / status polls / list-jobs
// / cancels / outcome fetches against either
//   * an already-running endpoint   (--address PATH | tcp:HOST:PORT), or
//   * a self-hosted server          (default; --fleet N forks N workers
//     behind an in-process coordinator, needing $AUTOMC_SERVE_BIN),
// and prints one JSON object with per-op p50/p95/p99/p99.9 latency, the
// error taxonomy, and the SLO verdict. Exit codes: 0 = ran and the SLO
// gate (if any) held; 3 = ran but an SLO budget was violated; 1 = hard
// failure (bad flags, endpoint unreachable).
//
// scripts/bench.sh wraps two runs (single server + 2-worker fleet) into
// BENCH_load.json; scripts/ci.sh runs a short replay as a smoke gate.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "artifact/manifest.h"
#include "fleet/coordinator.h"
#include "server/loadgen.h"
#include "server/server.h"

namespace {

namespace loadgen = automc::server::loadgen;

[[noreturn]] void Die(const std::string& what, const automc::Status& st) {
  std::fprintf(stderr, "load_replay: %s: %s\n", what.c_str(),
               st.ToString().c_str());
  std::exit(1);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "load_replay: bad %s=%s\n", name, v);
    std::exit(1);
  }
  return parsed;
}

double FlagDouble(const char* flag, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "load_replay: bad %s value '%s'\n", flag, value);
    std::exit(1);
  }
  return parsed;
}

automc::core::RunSpec SubmitSpec() {
  automc::core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = 1;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = 4001;
  return spec;
}

// The artifact kFetchModel ops stream in self-host mode: a deterministic
// pseudo-random 1 MiB blob — several chunk frames at the default 256 KiB
// chunk size, an order of magnitude above the real published models
// (~60-100 KB), while one verified fetch stays well under the 100 ms SLO
// budget on a single-core box (per-chunk CRC + SHA-256 on every read puts
// verified streaming around 30 MB/s per core; watermark-crossing streams
// are pinned separately in tests/artifact_stream_test.cc).
std::string SeedArtifactBlob() {
  std::string blob(1u << 20, '\0');
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (char& c : blob) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    c = static_cast<char>(x >> 56);
  }
  return blob;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: load_replay [options]\n"
      "  --address A          replay against a running endpoint (unix path\n"
      "                       or tcp:HOST:PORT) instead of self-hosting\n"
      "  --fleet N            self-host behind a coordinator with N forked\n"
      "                       workers (needs $AUTOMC_SERVE_BIN); default 0 =\n"
      "                       plain single-process server\n"
      "  --tcp                self-host over TCP instead of a unix socket\n"
      "  --qps Q              target arrival rate     [$AUTOMC_LOAD_QPS]\n"
      "  --conns C            client connections      [$AUTOMC_LOAD_CONNS]\n"
      "  --seconds S          schedule horizon        [$AUTOMC_LOAD_SECONDS]\n"
      "  --mix M              op mix, e.g. status=70,list=10,submit=5,\n"
      "                       cancel=5,fetch=10,fetch_model=2\n"
      "                                               [$AUTOMC_LOAD_MIX]\n"
      "  --fetch-artifact N   artifact name for fetch_model ops\n"
      "                       [$AUTOMC_LOAD_ARTIFACT]; self-host mode\n"
      "                       pre-publishes a 1 MiB \"loadgen-seed\" blob\n"
      "                       whenever fetch_model has weight\n"
      "  --seed N             schedule seed (default 1)\n"
      "  --timeout-ms T       per-request timeout (default 1000)\n"
      "  --churn-every K      reconnect a conn after K answered ops\n"
      "  --slo-p99-ms B       per-op p99 budget   [$AUTOMC_LOAD_SLO_P99_MS]\n"
      "  --slo-max-error-rate R   total error+timeout rate budget\n"
      "                       [$AUTOMC_LOAD_SLO_MAX_ERROR_RATE]\n"
      "  --label L            scenario label echoed into the JSON\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;

  std::string address;
  std::string label = "replay";
  int fleet_workers = 0;
  bool self_tcp = false;
  loadgen::ReplayOptions options;
  options.schedule.qps = EnvDouble("AUTOMC_LOAD_QPS", 200.0);
  options.schedule.connections =
      static_cast<int>(EnvDouble("AUTOMC_LOAD_CONNS", 16.0));
  options.schedule.duration_s = EnvDouble("AUTOMC_LOAD_SECONDS", 5.0);
  options.submit_spec = SubmitSpec();
  loadgen::SloBudget slo;
  slo.p99_ms = EnvDouble("AUTOMC_LOAD_SLO_P99_MS", 0.0);
  slo.max_error_rate = EnvDouble("AUTOMC_LOAD_SLO_MAX_ERROR_RATE", -1.0);
  if (const char* mix_env = std::getenv("AUTOMC_LOAD_MIX");
      mix_env != nullptr && *mix_env != '\0') {
    auto mix = loadgen::Mix::Parse(mix_env);
    if (!mix.ok()) Die("$AUTOMC_LOAD_MIX", mix.status());
    options.schedule.mix = *mix;
  }
  if (const char* art_env = std::getenv("AUTOMC_LOAD_ARTIFACT");
      art_env != nullptr && *art_env != '\0') {
    options.artifact_name = art_env;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--address") {
      address = next();
    } else if (flag == "--fleet") {
      fleet_workers = static_cast<int>(FlagDouble("--fleet", next()));
    } else if (flag == "--tcp") {
      self_tcp = true;
    } else if (flag == "--qps") {
      options.schedule.qps = FlagDouble("--qps", next());
    } else if (flag == "--conns") {
      options.schedule.connections =
          static_cast<int>(FlagDouble("--conns", next()));
    } else if (flag == "--seconds") {
      options.schedule.duration_s = FlagDouble("--seconds", next());
    } else if (flag == "--mix") {
      auto mix = loadgen::Mix::Parse(next());
      if (!mix.ok()) Die("--mix", mix.status());
      options.schedule.mix = *mix;
    } else if (flag == "--fetch-artifact") {
      options.artifact_name = next();
    } else if (flag == "--seed") {
      options.schedule.seed =
          static_cast<uint64_t>(FlagDouble("--seed", next()));
    } else if (flag == "--timeout-ms") {
      options.timeout_ms = FlagDouble("--timeout-ms", next());
    } else if (flag == "--churn-every") {
      options.churn_every = static_cast<int>(FlagDouble("--churn-every", next()));
    } else if (flag == "--slo-p99-ms") {
      slo.p99_ms = FlagDouble("--slo-p99-ms", next());
    } else if (flag == "--slo-max-error-rate") {
      slo.max_error_rate = FlagDouble("--slo-max-error-rate", next());
    } else if (flag == "--label") {
      label = next();
    } else {
      Usage();
    }
  }
  if (options.schedule.qps <= 0 || options.schedule.duration_s <= 0 ||
      options.schedule.connections <= 0) {
    Usage();
  }

  // Self-host when no external endpoint was named.
  std::string workdir;
  std::unique_ptr<automc::fleet::Coordinator> coordinator;
  std::unique_ptr<automc::server::Server> server;
  if (address.empty()) {
    char tmpl[] = "/tmp/automc_loadreplay_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "load_replay: mkdtemp failed\n");
      return 1;
    }
    workdir = tmpl;
    // Pre-publish the artifact fetch_model ops will stream, BEFORE the
    // server opens the registry — the blob is deterministic, so every run
    // replays byte-identical streaming traffic.
    const std::string artifact_dir = workdir + "/artifacts";
    if (options.schedule.mix
            .weight[static_cast<int>(loadgen::Op::kFetchModel)] > 0.0) {
      automc::artifact::Registry::Options ropts;
      ropts.dir = artifact_dir;
      auto registry = automc::artifact::Registry::Open(ropts);
      if (!registry.ok()) Die("artifact registry", registry.status());
      automc::artifact::Provenance prov;
      prov.summary = "loadgen synthetic artifact";
      const std::string name =
          options.artifact_name.empty() ? "loadgen-seed"
                                        : options.artifact_name;
      auto published = (*registry)->Publish(name, SeedArtifactBlob(), prov);
      if (!published.ok()) Die("artifact publish", published.status());
    }
    automc::server::Server::Options sopts;
    sopts.socket_path = workdir + "/serve.sock";
    sopts.idle_timeout_s = 0;
    sopts.jobs.artifact_dir = artifact_dir;
    if (self_tcp) sopts.tcp_address = "tcp:127.0.0.1:0";
    if (fleet_workers > 0) {
      const char* serve_bin = std::getenv("AUTOMC_SERVE_BIN");
      if (serve_bin == nullptr || *serve_bin == '\0') {
        std::fprintf(stderr,
                     "load_replay: --fleet needs AUTOMC_SERVE_BIN set to the "
                     "built automc_serve binary\n");
        return 1;
      }
      automc::fleet::Coordinator::Options copts;
      copts.num_workers = fleet_workers;
      copts.workdir = workdir + "/fleet";
      copts.artifact_dir = artifact_dir;
      copts.worker_exe = serve_bin;
      auto coord = automc::fleet::Coordinator::Start(copts);
      if (!coord.ok()) Die("fleet start", coord.status());
      coordinator = std::move(*coord);
      sopts.handler = coordinator.get();
    } else {
      sopts.jobs.workdir = workdir + "/jobs";
    }
    auto srv = automc::server::Server::Start(std::move(sopts));
    if (!srv.ok()) Die("server start", srv.status());
    server = std::move(*srv);
    address = self_tcp ? server->tcp_address() : server->socket_path();
  }
  options.address = address;

  auto report = loadgen::RunReplay(options);
  if (!report.ok()) Die("replay", report.status());
  const std::vector<std::string> violations = loadgen::CheckSlo(*report, slo);

  if (server) server->Stop();
  if (coordinator) coordinator->Shutdown();
  if (!workdir.empty()) {
    std::error_code ec;
    fs::remove_all(workdir, ec);
  }

  std::printf("{\n\"label\": \"%s\",\n\"qps\": %g,\n\"connections\": %d,\n"
              "\"seconds\": %g,\n\"seed\": %llu,\n\"mix\": \"%s\",\n"
              "\"fleet_workers\": %d,\n\"report\": %s,\n",
              label.c_str(), options.schedule.qps,
              options.schedule.connections, options.schedule.duration_s,
              static_cast<unsigned long long>(options.schedule.seed),
              options.schedule.mix.ToString().c_str(), fleet_workers,
              report->ToJson().c_str());
  std::printf("\"slo\": {\"p99_ms_budget\": %g, \"max_error_rate\": %g, "
              "\"violations\": [",
              slo.p99_ms, slo.max_error_rate);
  for (size_t i = 0; i < violations.size(); ++i) {
    std::printf("%s\"%s\"", i ? ", " : "", violations[i].c_str());
  }
  std::printf("], \"pass\": %s}\n}\n", violations.empty() ? "true" : "false");

  if (!violations.empty()) {
    for (const std::string& v : violations) {
      std::fprintf(stderr, "load_replay: SLO violation: %s\n", v.c_str());
    }
    return 3;
  }
  return 0;
}
