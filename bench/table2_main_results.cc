// Reproduces Table 2: compression results of ResNet-56 on CIFAR-10(-like)
// and VGG-16 on CIFAR-100(-like) — six manual methods at PR targets 0.4/0.7
// (hyperparameters grid-searched) against four AutoML searchers (Evolution,
// AutoMC, RL, Random) run once per task with gamma = 0.3, reporting their
// Pareto schemes in the matching PR block. Absolute numbers live on the
// scaled substrate; the comparison shape is what reproduces (see DESIGN.md).
#include <cstdio>
#include <memory>

#include "exp_common.h"
#include "nn/trainer.h"

namespace automc {
namespace bench {
namespace {

struct Row {
  std::string name;
  search::EvalPoint point;
};

void PrintRow(const std::string& name, const search::EvalPoint& p,
              const search::EvalPoint& base) {
  double pr = 100.0 * (1.0 - static_cast<double>(p.params) / base.params);
  double fr = 100.0 * (1.0 - static_cast<double>(p.flops) / base.flops);
  double inc = base.acc > 0 ? 100.0 * (p.acc / base.acc - 1.0) : 0.0;
  std::printf("  %-10s | %s | %s | %s\n", name.c_str(),
              Cell(p.params / 1000.0, pr).c_str(),
              Cell(p.flops / 1.0e6, fr).c_str(),
              Cell(100.0 * p.acc, inc).c_str());
}

// Chooses up to `max_candidates` Pareto schemes for a PR block ([0.25, 0.55)
// for the "~40" block, [0.55, 1) for "~70"), best search accuracy first;
// falls back to the closest schemes when none land in the block.
std::vector<int> PickForBlock(const search::SearchOutcome& outcome,
                              bool high_block, int max_candidates) {
  std::vector<int> in_block;
  for (size_t i = 0; i < outcome.pareto_points.size(); ++i) {
    double pr = outcome.pareto_points[i].pr;
    bool ok = high_block ? pr >= 0.55 : (pr >= 0.25 && pr < 0.55);
    if (ok) in_block.push_back(static_cast<int>(i));
  }
  if (in_block.empty()) {
    for (size_t i = 0; i < outcome.pareto_points.size(); ++i) {
      in_block.push_back(static_cast<int>(i));
    }
  }
  std::sort(in_block.begin(), in_block.end(), [&](int a, int b) {
    const auto& pa = outcome.pareto_points[static_cast<size_t>(a)];
    const auto& pb = outcome.pareto_points[static_cast<size_t>(b)];
    // In-block: prefer accuracy. Fallback order still leans toward the
    // block's intent via PR closeness for the high block.
    if (high_block && pa.acc == pb.acc) return pa.pr > pb.pr;
    return pa.acc > pb.acc;
  });
  if (static_cast<int>(in_block.size()) > max_candidates) {
    in_block.resize(static_cast<size_t>(max_candidates));
  }
  return in_block;
}

Status RunExperiment(const std::string& title, core::CompressionTask task) {
  std::printf("--- %s ---\n", title.c_str());
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> base,
                          core::PretrainModel(task));
  search::EvalPoint base_point;
  base_point.acc = nn::Trainer::Evaluate(base.get(), task.data.test);
  base_point.params = base->ParamCount();
  base_point.flops = base->FlopsPerSample();
  std::printf("  %-10s | %s | %s | %s\n", "baseline",
              Cell(base_point.params / 1000.0, 0).c_str(),
              Cell(base_point.flops / 1.0e6, 0).c_str(),
              Cell(100.0 * base_point.acc, 0).c_str());

  // --- AutoML searchers: one search each with gamma = 0.3. ---
  search::SearchSpace space = search::SearchSpace::FullTable1();
  search::SearchConfig scfg;
  scfg.max_strategy_executions = BenchBudget();
  scfg.max_length = 5;
  scfg.gamma = 0.3;
  scfg.seed = task.seed + 21;

  struct AutoMlRows {
    std::string name;
    search::SearchOutcome outcome;
  };
  std::vector<AutoMlRows> automl;

  {
    search::EvolutionarySearcher evo;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&evo, space, base.get(), task, scfg));
    automl.push_back({"Evolution", std::move(run.outcome)});
  }
  {
    core::AutoMCOptions opts =
        BenchAutoMCOptions(BenchBudget(), scfg.gamma, task.seed + 33);
    core::AutoMC automc(opts);
    AUTOMC_ASSIGN_OR_RETURN(core::AutoMCResult result, automc.Run(task));
    automl.push_back({"AutoMC", std::move(result.outcome)});
  }
  {
    search::RlSearcher rl;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run, RunBaselineSearch(&rl, space, base.get(), task, scfg));
    automl.push_back({"RL", std::move(run.outcome)});
  }
  {
    search::RandomSearcher random;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&random, space, base.get(), task, scfg));
    automl.push_back({"Random", std::move(run.outcome)});
  }

  for (bool high_block : {false, true}) {
    std::printf(" PR target ~%d%%\n", high_block ? 70 : 40);
    std::printf("  %-10s | %-16s | %-16s | %-16s\n", "Algorithm",
                "Params(K)/PR(%)", "FLOPs(M)/FR(%)", "Acc(%)/Inc(%)");
    double target = high_block ? 0.7 : 0.4;
    for (const char* method : {"LMA", "LeGR", "NS", "SFP", "HOS", "LFB"}) {
      auto manual = RunManualMethod(method, target, base.get(), task,
                                    BenchGridSamples(), task.seed + 55);
      if (!manual.ok()) return manual.status();
      PrintRow(method, manual->point, base_point);
    }
    for (const auto& a : automl) {
      // Deploy the block's Pareto candidates on the full training data and
      // report the best (the paper's "select the Pareto optimal compression
      // scheme for evaluation", de-noised across the front).
      search::EvalPoint best_full;
      bool have = false;
      for (int pick : PickForBlock(a.outcome, high_block, 3)) {
        AUTOMC_ASSIGN_OR_RETURN(
            search::EvalPoint full,
            EvaluateSchemeOnFullData(
                space, a.outcome.pareto_schemes[static_cast<size_t>(pick)],
                base.get(), task, task.seed + 66));
        if (!have || full.acc > best_full.acc) {
          best_full = full;
          have = true;
        }
      }
      if (have) PrintRow(a.name, best_full, base_point);
    }
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Table 2: compression results (scaled substrate) ===\n");
  std::printf("budget=%d strategy executions per search, grid=%d configs "
              "per manual method\n\n",
              automc::bench::BenchBudget(), automc::bench::BenchGridSamples());
  automc::Status st = automc::bench::RunExperiment(
      "Exp1: ResNet-56 on cifar10-like", automc::bench::MakeExp1Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp1 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = automc::bench::RunExperiment("Exp2: VGG-16 on cifar100-like",
                                    automc::bench::MakeExp2Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp2 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
