// Fleet-subsystem throughput harness. Prints one JSON object:
//
//   * status-poll requests/s through the epoll event loop with 1 connection
//     vs with 1000 extra idle connections parked on the listener — idle
//     sockets contribute no epoll events, so the two figures must stay
//     close (the acceptance gate is within 2x);
//   * wall-clock to drain the same 4-job batch through a coordinator with
//     1 vs 2 forked workers over the TCP transport, with a bit-identity
//     check of every outcome against a direct in-process RunSearch.
//
// Needs $AUTOMC_SERVE_BIN (the built daemon) for the worker processes;
// scripts/bench.sh exports it and wraps the output into BENCH_server.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/net.h"
#include "core/run_spec.h"
#include "fleet/coordinator.h"
#include "search/report.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

automc::core::RunSpec BenchSpec(uint64_t seed, int budget) {
  automc::core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = budget;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = seed;
  return spec;
}

[[noreturn]] void Die(const std::string& what, const automc::Status& st) {
  std::fprintf(stderr, "fleet_throughput: %s: %s\n", what.c_str(),
               st.ToString().c_str());
  std::exit(1);
}

double PollRate(const std::string& address, uint64_t job_id, double seconds) {
  auto client = automc::server::Client::Connect(address);
  if (!client.ok()) Die("connect", client.status());
  const auto start = Clock::now();
  long requests = 0;
  while (SecondsSince(start) < seconds) {
    // NotFound replies are fine — the wire round-trip is what we measure.
    auto info = client->JobStatus(job_id);
    if (!info.ok() &&
        info.status().code() != automc::StatusCode::kNotFound) {
      Die("poll", info.status());
    }
    ++requests;
  }
  return static_cast<double>(requests) / SecondsSince(start);
}

// Drains `specs` through a fresh coordinator+server over TCP; returns the
// wall-time. Every outcome is checked bit-identical to the direct run.
double FleetDrainSeconds(const std::string& dir, const char* serve_bin,
                         const std::vector<automc::core::RunSpec>& specs,
                         int workers,
                         const std::vector<std::string>& direct_bytes) {
  automc::fleet::Coordinator::Options copts;
  copts.num_workers = workers;
  copts.workdir = dir + "/fleet" + std::to_string(workers);
  copts.worker_exe = serve_bin;
  auto coord = automc::fleet::Coordinator::Start(copts);
  if (!coord.ok()) Die("fleet start", coord.status());

  automc::server::Server::Options opts;
  opts.socket_path = dir + "/fleet" + std::to_string(workers) + ".sock";
  opts.tcp_address = "tcp:127.0.0.1:0";
  opts.handler = coord->get();
  auto srv = automc::server::Server::Start(std::move(opts));
  if (!srv.ok()) Die("server start", srv.status());

  auto client = automc::server::Client::Connect((*srv)->tcp_address());
  if (!client.ok()) Die("connect", client.status());

  const auto start = Clock::now();
  std::vector<uint64_t> ids;
  for (const auto& spec : specs) {
    auto id = client->Submit(spec);
    if (!id.ok()) Die("submit", id.status());
    ids.push_back(*id);
  }
  for (uint64_t id : ids) {
    for (;;) {
      auto info = client->JobStatus(id);
      if (!info.ok()) Die("status", info.status());
      if (automc::server::JobStateIsTerminal(info->state)) {
        if (info->state != automc::server::JobState::kDone) {
          Die("job", automc::Status::Internal("job " + std::to_string(id) +
                                              " ended " + info->error));
        }
        break;
      }
      ::usleep(5000);
    }
  }
  const double elapsed = SecondsSince(start);

  for (size_t i = 0; i < ids.size(); ++i) {
    auto bytes = client->FetchOutcomeBytes(ids[i]);
    if (!bytes.ok()) Die("fetch", bytes.status());
    if (*bytes != direct_bytes[i]) {
      Die("identity",
          automc::Status::Internal("sharded outcome " + std::to_string(i) +
                                   " differs from the direct run"));
    }
  }
  (*srv)->Stop();
  (*coord)->Shutdown();
  return elapsed;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const char* serve_bin = std::getenv("AUTOMC_SERVE_BIN");
  if (serve_bin == nullptr || *serve_bin == '\0') {
    std::fprintf(stderr,
                 "fleet_throughput: set AUTOMC_SERVE_BIN to the built "
                 "automc_serve binary\n");
    return 1;
  }
  char tmpl[] = "/tmp/automc_fleetbench_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "fleet_throughput: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = tmpl;

  // --- idle-connection poll throughput ------------------------------------
  automc::server::Server::Options opts;
  opts.socket_path = dir + "/poll.sock";
  opts.jobs.workdir = dir + "/poll";
  auto srv = automc::server::Server::Start(opts);
  if (!srv.ok()) Die("start", srv.status());

  const double rate_1_conn = PollRate(opts.socket_path, 1, 1.0);

  // Park 1000 idle connections on the event loop; they never send a byte,
  // so they must cost (almost) nothing per poll of the active connection.
  std::vector<int> idle_fds;
  for (int i = 0; i < 1000; ++i) {
    auto fd = automc::net::ConnectAddress(opts.socket_path);
    if (!fd.ok()) Die("idle connect", fd.status());
    idle_fds.push_back(*fd);
  }
  const double rate_1000_idle = PollRate(opts.socket_path, 1, 1.0);
  for (int fd : idle_fds) ::close(fd);
  (*srv)->Stop();

  // --- coordinator shard drain, 1 vs 2 workers ----------------------------
  std::vector<automc::core::RunSpec> specs;
  std::vector<std::string> direct_bytes;
  for (uint64_t seed : {201, 202, 203, 204}) {
    specs.push_back(BenchSpec(seed, /*budget=*/4));
    auto direct = automc::core::RunSearch(specs.back());
    if (!direct.ok()) Die("direct run", direct.status());
    direct_bytes.push_back(automc::search::SaveOutcomeBytes(direct->outcome));
  }
  const double drain_1 =
      FleetDrainSeconds(dir, serve_bin, specs, /*workers=*/1, direct_bytes);
  const double drain_2 =
      FleetDrainSeconds(dir, serve_bin, specs, /*workers=*/2, direct_bytes);

  std::printf(
      "{\n"
      "  \"poll_requests_per_s_1_conn\": %.0f,\n"
      "  \"poll_requests_per_s_1000_idle_conns\": %.0f,\n"
      "  \"idle_conn_slowdown\": %.2f,\n"
      "  \"fleet_drain_4_jobs_1_worker_s\": %.2f,\n"
      "  \"fleet_drain_4_jobs_2_workers_s\": %.2f,\n"
      "  \"outcomes_bit_identical_to_direct\": true\n"
      "}\n",
      rate_1_conn, rate_1000_idle,
      rate_1000_idle > 0 ? rate_1_conn / rate_1000_idle : 0.0, drain_1,
      drain_2);

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
