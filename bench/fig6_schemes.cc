// Reproduces Figure 6: the best compression schemes searched by AutoMC,
// printed as explicit strategy sequences (method + hyperparameter settings)
// for each task.
#include <cstdio>

#include "exp_common.h"

namespace automc {
namespace bench {
namespace {

Status RunExperiment(const std::string& title, core::CompressionTask task) {
  std::printf("--- %s ---\n", title.c_str());
  core::AutoMC automc(BenchAutoMCOptions(BenchBudget(), 0.3, task.seed + 61));
  AUTOMC_ASSIGN_OR_RETURN(core::AutoMCResult result, automc.Run(task));
  std::printf("  base accuracy %.1f%%, Pareto schemes found: %zu\n",
              100.0 * result.base_accuracy,
              result.outcome.pareto_schemes.size());
  for (size_t i = 0; i < result.outcome.pareto_schemes.size(); ++i) {
    const auto& p = result.outcome.pareto_points[i];
    std::printf("  [PR %.1f%%, FR %.1f%%, Acc %.1f%%]\n    %s\n",
                100.0 * p.pr, 100.0 * p.fr, 100.0 * p.acc,
                result.pareto_descriptions[i].c_str());
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Figure 6: schemes searched by AutoMC (scaled) ===\n\n");
  automc::Status st = automc::bench::RunExperiment(
      "Exp1: ResNet-56 on cifar10-like", automc::bench::MakeExp1Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp1 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = automc::bench::RunExperiment("Exp2: VGG-16 on cifar100-like",
                                    automc::bench::MakeExp2Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp2 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
