// Reproduces Figure 5: Pareto-optimal results of the AutoMC ablations on
// Exp1 and Exp2 — AutoMC-KG (no knowledge-graph embeddings), AutoMC-NN_exp
// (no experience-based refinement), AutoMC-MultipleSource (LeGR-only search
// space), AutoMC-ProgressiveSearch (RL controller instead of Algorithm 2) —
// against full AutoMC. Each variant should trail the full system.
#include <algorithm>
#include <cstdio>

#include "exp_common.h"

namespace automc {
namespace bench {
namespace {

struct Variant {
  const char* name;
  bool use_kg, use_exp, multi_source, progressive;
};

Status RunExperiment(const std::string& title, core::CompressionTask task) {
  std::printf("--- %s ---\n", title.c_str());
  // The ablation compares variants against each other; a lighter baseline
  // and budget keep 20 variant runs tractable.
  task.base_train_epochs = std::min(task.base_train_epochs, 24);
  int budget = std::max(10, BenchBudget() * 3 / 5);
  const Variant kVariants[] = {
      {"AutoMC", true, true, true, true},
      {"AutoMC-KG", false, true, true, true},
      {"AutoMC-NNexp", true, false, true, true},
      {"AutoMC-MultipleSource", true, true, false, true},
      {"AutoMC-ProgressiveSearch", true, true, true, false},
  };
  // Two seeds per variant: single runs at this scale are noisy, and the
  // paper's claim is about the mean ordering.
  const uint64_t kSeeds[] = {task.seed + 51, task.seed + 151};
  for (const Variant& v : kVariants) {
    double sum_best = 0.0;
    std::string fronts;
    for (uint64_t seed : kSeeds) {
      core::AutoMCOptions opts = BenchAutoMCOptions(budget, 0.3, seed);
      opts.use_kg = v.use_kg;
      opts.use_exp = v.use_exp;
      opts.multi_source = v.multi_source;
      opts.use_progressive = v.progressive;
      core::AutoMC automc(opts);
      AUTOMC_ASSIGN_OR_RETURN(core::AutoMCResult result, automc.Run(task));

      double best_acc = -1.0;
      for (const auto& p : result.outcome.pareto_points) {
        best_acc = std::max(best_acc, p.acc);
      }
      sum_best += best_acc;
      char buf[64];
      for (const auto& p : result.outcome.pareto_points) {
        std::snprintf(buf, sizeof(buf), "(%.1f -> %.1f) ", 100.0 * p.pr,
                      100.0 * p.acc);
        fronts += buf;
      }
      fronts += "| ";
    }
    std::printf("  %-26s mean best Acc %.1f%% | fronts: %s\n", v.name,
                100.0 * sum_best / 2.0, fronts.c_str());
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Figure 5: ablation study (scaled substrate) ===\n\n");
  automc::Status st = automc::bench::RunExperiment(
      "Exp1: ResNet-56 on cifar10-like", automc::bench::MakeExp1Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp1 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = automc::bench::RunExperiment("Exp2: VGG-16 on cifar100-like",
                                    automc::bench::MakeExp2Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp2 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
