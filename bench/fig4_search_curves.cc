// Reproduces Figure 4: Pareto-optimal results searched by the four AutoML
// algorithms on Exp1 and Exp2. For each algorithm we print (a) the
// best-so-far accuracy curve against the number of strategy executions
// (search progress) and (b) the final Pareto front (accuracy vs parameter
// reduction). The expected shape: RL strong early then plateauing, Evolution
// the best baseline, Random trailing, AutoMC in front.
#include <cstdio>
#include <memory>

#include "exp_common.h"
#include "nn/trainer.h"
#include "search/report.h"

namespace automc {
namespace bench {
namespace {

// Also dumps the series as CSV next to the binary for external plotting.
void WriteCsv(const std::string& exp, const std::string& algo,
              const search::SearchOutcome& outcome,
              const search::SearchSpace& space) {
  std::string base = "fig4_" + exp + "_" + algo;
  Status st = search::WriteHistoryCsvFile(outcome, base + "_history.csv");
  if (st.ok()) st = search::WriteParetoCsvFile(outcome, space, base + "_pareto.csv");
  if (!st.ok()) {
    std::fprintf(stderr, "csv export failed: %s\n", st.ToString().c_str());
  }
}

void PrintOutcome(const std::string& name,
                  const search::SearchOutcome& outcome) {
  std::printf("  [%s] best-so-far accuracy curve (executions: best feasible "
              "/ best any):\n    ",
              name.c_str());
  // Print at most ~12 evenly spaced samples of the curve.
  size_t n = outcome.history.size();
  size_t stride = n > 12 ? n / 12 : 1;
  for (size_t i = 0; i < n; i += stride) {
    const search::HistoryPoint& h = outcome.history[i];
    std::printf("%d:%.1f/%.1f  ", h.executions,
                h.best_acc >= 0 ? 100.0 * h.best_acc : -1.0,
                100.0 * h.best_acc_any);
  }
  if (n > 0 && (n - 1) % stride != 0) {
    const search::HistoryPoint& h = outcome.history.back();
    std::printf("%d:%.1f/%.1f", h.executions,
                h.best_acc >= 0 ? 100.0 * h.best_acc : -1.0,
                100.0 * h.best_acc_any);
  }
  std::printf("\n  [%s] final Pareto front (PR%% -> Acc%%):\n    ",
              name.c_str());
  for (const auto& p : outcome.pareto_points) {
    std::printf("(%.1f -> %.1f)  ", 100.0 * p.pr, 100.0 * p.acc);
  }
  std::printf("\n");
}

Status RunExperiment(const std::string& title, const std::string& tag,
                     core::CompressionTask task) {
  std::printf("--- %s ---\n", title.c_str());
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> base,
                          core::PretrainModel(task));
  std::printf("  baseline accuracy: %.1f%%\n",
              100.0 * nn::Trainer::Evaluate(base.get(), task.data.test));

  search::SearchSpace space = search::SearchSpace::FullTable1();
  search::SearchConfig scfg;
  scfg.max_strategy_executions = BenchBudget();
  scfg.max_length = 5;
  scfg.gamma = 0.3;
  scfg.seed = task.seed + 41;

  {
    search::RandomSearcher random;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&random, space, base.get(), task, scfg));
    PrintOutcome("Random", run.outcome);
    WriteCsv(tag, "random", run.outcome, space);
  }
  {
    search::RlSearcher rl;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run, RunBaselineSearch(&rl, space, base.get(), task, scfg));
    PrintOutcome("RL", run.outcome);
    WriteCsv(tag, "rl", run.outcome, space);
  }
  {
    search::EvolutionarySearcher evo;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&evo, space, base.get(), task, scfg));
    PrintOutcome("Evolution", run.outcome);
    WriteCsv(tag, "evolution", run.outcome, space);
  }
  {
    core::AutoMC automc(
        BenchAutoMCOptions(BenchBudget(), scfg.gamma, task.seed + 43));
    AUTOMC_ASSIGN_OR_RETURN(core::AutoMCResult result, automc.Run(task));
    PrintOutcome("AutoMC", result.outcome);
    WriteCsv(tag, "automc", result.outcome, space);
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Figure 4: Pareto fronts & search curves (scaled) ===\n\n");
  automc::Status st = automc::bench::RunExperiment(
      "Exp1: ResNet-56 on cifar10-like", "exp1",
      automc::bench::MakeExp1Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp1 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = automc::bench::RunExperiment("Exp2: VGG-16 on cifar100-like", "exp2",
                                    automc::bench::MakeExp2Task());
  if (!st.ok()) {
    std::fprintf(stderr, "Exp2 failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
