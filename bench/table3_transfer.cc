// Reproduces Table 3 (transfer study): schemes searched by the AutoML
// algorithms on ResNet-56 / CIFAR-10(-like) and VGG-16 / CIFAR-100(-like)
// are applied verbatim to ResNet-20/56/164 and VGG-13/16/19; the manual
// methods run directly on every model at a 40% parameter target. Cells are
// PR(%) / FR(%) / Acc(%).
#include <cstdio>
#include <map>
#include <memory>

#include "exp_common.h"
#include "nn/trainer.h"

namespace automc {
namespace bench {
namespace {

std::string Cell3(const search::EvalPoint& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.1f / %5.1f / %5.1f", 100.0 * p.pr,
                100.0 * p.fr, 100.0 * p.acc);
  return buf;
}

Status RunFamily(const std::string& family_title,
                 const core::CompressionTask& search_task,
                 const std::vector<int>& depths) {
  std::printf("--- %s (schemes searched on depth %d) ---\n",
              family_title.c_str(), search_task.model_spec.depth);

  // 1. Search once on the family's reference model.
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> ref_base,
                          core::PretrainModel(search_task));
  search::SearchSpace space = search::SearchSpace::FullTable1();
  search::SearchConfig scfg;
  scfg.max_strategy_executions = BenchBudget();
  scfg.max_length = 5;
  scfg.gamma = 0.3;
  scfg.seed = search_task.seed + 7;

  std::map<std::string, std::vector<int>> searched_schemes;
  {
    search::EvolutionarySearcher evo;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&evo, space, ref_base.get(), search_task, scfg));
    searched_schemes["Evolution"] = run.best_scheme;
  }
  {
    search::RandomSearcher random;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&random, space, ref_base.get(), search_task, scfg));
    searched_schemes["Random"] = run.best_scheme;
  }
  {
    search::RlSearcher rl;
    AUTOMC_ASSIGN_OR_RETURN(
        BaselineRun run,
        RunBaselineSearch(&rl, space, ref_base.get(), search_task, scfg));
    searched_schemes["RL"] = run.best_scheme;
  }
  {
    core::AutoMC automc(
        BenchAutoMCOptions(BenchBudget(), scfg.gamma, search_task.seed + 11));
    AUTOMC_ASSIGN_OR_RETURN(core::AutoMCResult result,
                            automc.Run(search_task));
    int best = BestSchemeIndex(result.outcome);
    if (best >= 0) {
      searched_schemes["AutoMC"] =
          result.outcome.pareto_schemes[static_cast<size_t>(best)];
    }
  }

  // 2. Apply everything to every depth in the family.
  std::printf("  %-10s", "Algorithm");
  for (int d : depths) std::printf(" | depth-%-3d %-15s", d, "(PR/FR/Acc)");
  std::printf("\n");

  std::vector<std::pair<std::string, std::unique_ptr<nn::Model>>> models;
  std::vector<core::CompressionTask> tasks;
  for (int d : depths) {
    core::CompressionTask t = search_task;
    t.model_spec.depth = d;
    AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> m,
                            core::PretrainModel(t));
    models.emplace_back("depth-" + std::to_string(d), std::move(m));
    tasks.push_back(std::move(t));
  }

  for (const char* method : {"LMA", "LeGR", "NS", "SFP", "HOS", "LFB"}) {
    std::printf("  %-10s", method);
    for (size_t i = 0; i < models.size(); ++i) {
      auto manual = RunManualMethod(method, 0.4, models[i].second.get(),
                                    tasks[i], 1, tasks[i].seed + 77);
      if (!manual.ok()) return manual.status();
      std::printf(" | %s", Cell3(manual->point).c_str());
    }
    std::printf("\n");
  }
  for (const auto& [name, scheme] : searched_schemes) {
    if (scheme.empty()) continue;
    std::printf("  %-10s", name.c_str());
    for (size_t i = 0; i < models.size(); ++i) {
      AUTOMC_ASSIGN_OR_RETURN(
          search::EvalPoint p,
          EvaluateSchemeOnFullData(space, scheme, models[i].second.get(),
                                   tasks[i], tasks[i].seed + 88));
      std::printf(" | %s", Cell3(p).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Table 3: transfer study (scaled substrate) ===\n\n");
  automc::Status st = automc::bench::RunFamily(
      "ResNets on cifar10-like", automc::bench::MakeExp1Task(),
      {20, 56, 164});
  if (!st.ok()) {
    std::fprintf(stderr, "resnet family failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = automc::bench::RunFamily("VGGs on cifar100-like",
                                automc::bench::MakeExp2Task(), {13, 16, 19});
  if (!st.ok()) {
    std::fprintf(stderr, "vgg family failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
