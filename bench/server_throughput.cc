// automc_serve throughput/latency harness. Prints one JSON object:
//
//   * status-poll requests/s against a live server, measured both while the
//     single job slot is idle and while it is busy running a search (control
//     requests must not queue behind job execution);
//   * wall-clock latency to drain the same 4-job batch with 1 vs 2 job
//     slots, with a bit-identity check of every outcome against a direct
//     in-process RunSearch of the same spec.
//
// scripts/bench.sh wraps the output into BENCH_server.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/run_spec.h"
#include "search/report.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

automc::core::RunSpec BenchSpec(uint64_t seed, int budget) {
  automc::core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = budget;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = seed;
  return spec;
}

[[noreturn]] void Die(const std::string& what, const automc::Status& st) {
  std::fprintf(stderr, "server_throughput: %s: %s\n", what.c_str(),
               st.ToString().c_str());
  std::exit(1);
}

// Synchronous status polls against `socket`, as fast as one connection can
// issue them, for `seconds`. Returns requests/s.
double PollRate(const std::string& socket, uint64_t job_id, double seconds) {
  auto client = automc::server::Client::Connect(socket);
  if (!client.ok()) Die("connect", client.status());
  const auto start = Clock::now();
  long requests = 0;
  while (SecondsSince(start) < seconds) {
    auto info = client->JobStatus(job_id);
    if (!info.ok()) Die("poll", info.status());
    ++requests;
  }
  return static_cast<double>(requests) / SecondsSince(start);
}

// Runs `specs` through a fresh server with `slots` job slots; returns the
// drain wall-time. Outcomes are checked bit-identical to direct runs.
double DrainSeconds(const std::string& dir,
                    const std::vector<automc::core::RunSpec>& specs,
                    int slots,
                    const std::vector<std::string>& direct_bytes) {
  automc::server::Server::Options opts;
  opts.socket_path = dir + "/bench.sock";
  opts.jobs.workdir = dir + "/slots" + std::to_string(slots);
  opts.jobs.max_concurrent = slots;
  auto srv = automc::server::Server::Start(opts);
  if (!srv.ok()) Die("start", srv.status());
  auto client = automc::server::Client::Connect(opts.socket_path);
  if (!client.ok()) Die("connect", client.status());

  const auto start = Clock::now();
  std::vector<uint64_t> ids;
  for (const auto& spec : specs) {
    auto id = client->Submit(spec);
    if (!id.ok()) Die("submit", id.status());
    ids.push_back(*id);
  }
  if (!(*srv)->jobs()->WaitIdle(/*timeout_seconds=*/600.0)) {
    Die("drain", automc::Status::Internal("jobs did not finish in 600s"));
  }
  const double elapsed = SecondsSince(start);

  for (size_t i = 0; i < ids.size(); ++i) {
    auto bytes = client->FetchOutcomeBytes(ids[i]);
    if (!bytes.ok()) Die("fetch", bytes.status());
    if (*bytes != direct_bytes[i]) {
      Die("identity",
          automc::Status::Internal("served outcome " + std::to_string(i) +
                                   " differs from the direct run"));
    }
  }
  (*srv)->Stop();
  return elapsed;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/automc_srvbench_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "server_throughput: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = tmpl;

  // --- poll rates ---------------------------------------------------------
  automc::server::Server::Options opts;
  opts.socket_path = dir + "/poll.sock";
  opts.jobs.workdir = dir + "/poll";
  opts.jobs.max_concurrent = 1;
  auto srv = automc::server::Server::Start(opts);
  if (!srv.ok()) Die("start", srv.status());
  auto client = automc::server::Client::Connect(opts.socket_path);
  if (!client.ok()) Die("connect", client.status());

  // A long-running job keeps the single slot busy for the "busy" phase.
  auto busy_id = client->Submit(BenchSpec(/*seed=*/5, /*budget=*/100000));
  if (!busy_id.ok()) Die("submit", busy_id.status());
  const double busy_rate = PollRate(opts.socket_path, *busy_id, 1.0);
  if (automc::Status st = client->Cancel(*busy_id); !st.ok()) {
    Die("cancel", st);
  }
  if (!(*srv)->jobs()->WaitIdle(/*timeout_seconds=*/600.0)) {
    std::fprintf(stderr, "server_throughput: cancel did not land\n");
    return 1;
  }
  const double idle_rate = PollRate(opts.socket_path, *busy_id, 1.0);
  (*srv)->Stop();

  // --- drain latency, 1 vs 2 slots ----------------------------------------
  std::vector<automc::core::RunSpec> specs;
  std::vector<std::string> direct_bytes;
  for (uint64_t seed : {101, 102, 103, 104}) {
    specs.push_back(BenchSpec(seed, /*budget=*/4));
    auto direct = automc::core::RunSearch(specs.back());
    if (!direct.ok()) Die("direct run", direct.status());
    direct_bytes.push_back(automc::search::SaveOutcomeBytes(direct->outcome));
  }
  const double drain_1 = DrainSeconds(dir, specs, /*slots=*/1, direct_bytes);
  const double drain_2 = DrainSeconds(dir, specs, /*slots=*/2, direct_bytes);

  std::printf(
      "{\n"
      "  \"poll_requests_per_s_idle\": %.0f,\n"
      "  \"poll_requests_per_s_while_job_running\": %.0f,\n"
      "  \"drain_4_jobs_1_slot_s\": %.2f,\n"
      "  \"drain_4_jobs_2_slots_s\": %.2f,\n"
      "  \"speedup_2_slots\": %.2f,\n"
      "  \"outcomes_bit_identical_to_direct\": true\n"
      "}\n",
      idle_rate, busy_rate, drain_1, drain_2, drain_1 / drain_2);

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
