#include "exp_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "nn/trainer.h"
#include "search/grid_search.h"

namespace automc {
namespace bench {

void InstallMetricsDump() {
  static const bool installed = [] {
    std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });
    return true;
  }();
  (void)installed;
}

core::CompressionTask MakeExp1Task(uint64_t seed) {
  InstallMetricsDump();
  core::CompressionTask task;
  task.data = data::MakeCifar10Like(seed);
  task.model_spec.family = "resnet";
  task.model_spec.depth = 56;
  task.model_spec.num_classes = task.data.train.num_classes;
  task.model_spec.base_width = 4;
  task.model_spec.in_channels = 3;
  task.model_spec.image_size = 8;
  task.pretrain_epochs = 6;
  task.base_train_epochs = 16;
  task.batch_size = 32;
  task.lr = 0.04f;
  task.search_data_fraction = 0.25;
  task.seed = seed;
  return task;
}

core::CompressionTask MakeExp2Task(uint64_t seed) {
  InstallMetricsDump();
  core::CompressionTask task;
  task.data = data::MakeCifar100Like(seed);
  task.model_spec.family = "vgg";
  task.model_spec.depth = 16;
  task.model_spec.num_classes = task.data.train.num_classes;
  task.model_spec.base_width = 4;
  task.model_spec.in_channels = 3;
  task.model_spec.image_size = 8;
  task.pretrain_epochs = 6;
  task.base_train_epochs = 60;
  task.batch_size = 32;
  task.lr = 0.02f;
  task.lr_decay = 0.97f;
  task.search_data_fraction = 0.25;
  task.seed = seed + 1;
  return task;
}

namespace {
int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}
}  // namespace

int BenchBudget() { return EnvInt("AUTOMC_BENCH_BUDGET", 16); }
int BenchGridSamples() { return EnvInt("AUTOMC_BENCH_GRID", 3); }

core::AutoMCOptions BenchAutoMCOptions(int budget, double gamma,
                                       uint64_t seed) {
  core::AutoMCOptions opts;
  opts.search.max_strategy_executions = budget;
  opts.search.max_length = 5;
  opts.search.gamma = gamma;
  opts.embedding.train_epochs = 10;
  opts.embedding.transr.entity_dim = 32;
  opts.embedding.transr.relation_dim = 32;
  opts.experience.num_tasks = 2;
  opts.experience.strategies_per_task = 12;
  opts.experience.pretrain_epochs = 1;
  opts.progressive.sample_schemes = 5;
  opts.progressive.candidates_per_scheme = 128;
  opts.progressive.max_evals_per_round = 4;
  opts.seed = seed;
  return opts;
}

Result<search::EvalPoint> EvaluateSchemeOnFullData(
    const search::SearchSpace& space, const std::vector<int>& scheme,
    nn::Model* base, const core::CompressionTask& task, uint64_t seed) {
  std::unique_ptr<nn::Model> model = base->Clone();
  compress::CompressionContext ctx;
  ctx.train = &task.data.train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = task.batch_size;
  ctx.lr = task.FinetuneLr();
  ctx.seed = seed;
  return core::ExecuteScheme(space, scheme, model.get(), ctx);
}

Result<ManualOutcome> RunManualMethod(const std::string& method,
                                      double target_pr, nn::Model* base,
                                      const core::CompressionTask& task,
                                      int grid_samples, uint64_t seed) {
  compress::CompressionContext ctx;
  ctx.train = &task.data.train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = task.batch_size;
  ctx.lr = task.FinetuneLr();

  search::GridSearchOptions options;
  options.max_configs = grid_samples;
  options.target_pr = target_pr;
  options.seed = seed;
  AUTOMC_ASSIGN_OR_RETURN(search::GridSearchResult grid_result,
                          search::GridSearchMethod(method, base, ctx, options));
  ManualOutcome best;
  best.best_spec = grid_result.best_spec;
  best.point = grid_result.point;
  return best;
}

Result<BaselineRun> RunBaselineSearch(search::Searcher* searcher,
                                      const search::SearchSpace& space,
                                      nn::Model* base,
                                      const core::CompressionTask& task,
                                      const search::SearchConfig& config) {
  Rng sub_rng(config.seed + 4);
  data::Dataset search_train =
      task.data.train.Subsample(task.search_data_fraction, &sub_rng);
  compress::CompressionContext ctx;
  ctx.train = &search_train;
  ctx.test = &task.data.test;
  // Search-time fine-tuning runs on the small subsample; scale the epoch
  // base so the number of gradient steps stays comparable to deployment
  // (the paper fine-tunes for epoch *fractions* of a 200-epoch schedule).
  ctx.pretrain_epochs = task.pretrain_epochs * 2;
  ctx.batch_size = task.batch_size;
  ctx.lr = task.FinetuneLr();
  ctx.seed = config.seed + 5;

  search::SchemeEvaluator evaluator(&space, base, ctx, {});
  BaselineRun run;
  AUTOMC_ASSIGN_OR_RETURN(run.outcome,
                          searcher->Search(&evaluator, space, config));
  int best = BestSchemeIndex(run.outcome);
  if (best >= 0) {
    run.best_scheme = run.outcome.pareto_schemes[static_cast<size_t>(best)];
    run.search_point = run.outcome.pareto_points[static_cast<size_t>(best)];
  }
  return run;
}

int BestSchemeIndex(const search::SearchOutcome& outcome) {
  int best = -1;
  for (size_t i = 0; i < outcome.pareto_points.size(); ++i) {
    if (best < 0 ||
        outcome.pareto_points[i].acc >
            outcome.pareto_points[static_cast<size_t>(best)].acc) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::string Cell(double value, double rate_percent) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%7.3f / %6.2f", value, rate_percent);
  return buf;
}

}  // namespace bench
}  // namespace automc
