// Substrate micro-benchmarks (google-benchmark): the kernels whose
// throughput bounds search wall-clock — convolution forward/backward,
// matmul, structured pruning surgery, SVD/HOOI decomposition, TransR
// epochs, and F_mo prediction.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/matrix.h"
#include "common/thread_pool.h"
#include "compress/decompose.h"
#include "compress/surgery.h"
#include "kg/transr.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "search/fmo.h"
#include "search/search_space.h"
#include "tensor/ops.h"

namespace automc {
namespace {

// ---------------------------------------------------------------------------
// Reference kernels: the pre-thread-pool serial implementations, kept here
// verbatim so scripts/bench.sh can compare the production kernels against
// them inside one binary (BENCH_kernels.json records the speedups).

// Serial unblocked ikj GEMM — the original tensor::MatMul inner loop.
void RefGemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Serial per-sample im2col + RefGemm with a fresh column buffer per sample —
// the original Conv2d::Forward structure.
void RefConvForward(const tensor::Tensor& x, const tensor::Tensor& wmat,
                    const tensor::ConvGeometry& g, tensor::Tensor* y) {
  int64_t n = x.size(0), out_c = wmat.size(0), ckk = wmat.size(1);
  int64_t p = g.OutH() * g.OutW();
  for (int64_t i = 0; i < n; ++i) {
    tensor::Tensor cols({ckk, p});
    tensor::Im2Col(x.data() + i * g.in_c * g.in_h * g.in_w, g, &cols);
    RefGemm(wmat.data(), cols.data(), y->MutableData() + i * out_c * p, out_c, ckk,
            p);
  }
}

// Serial naive C += A * B^T and C += A^T * B (one dot / one saxpy per
// element) — the original backward-GEMM loops.
void RefGemmTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(arow[kk]) * brow[kk];
      }
      crow[j] += static_cast<float>(s);
    }
  }
}

void RefGemmTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = a[kk * m + i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    tensor::Tensor c = tensor::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulRef(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    tensor::Tensor c({n, n});
    RefGemm(a.data(), b.data(), c.MutableData(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulRef)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Actual im2col GEMM shapes from the model zoo (vgg13 base_width=4 on the
// 8x8 synthetic task, plus the resnet56 downsample): m = out_channels,
// k = in_channels * 3 * 3, n = out_h * out_w. These are the per-sample
// GEMMs Conv2d::Forward issues, so they measure what the search workload
// actually runs — small m, k a multiple of 9, and n down to a single
// column (where the SIMD path falls back to scalar tails).
void BM_GemmConvShape(benchmark::State& state) {
  int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({m, k}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({k, n}, &rng);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (auto _ : state) {
    tensor::GemmAccumRaw(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_GemmConvShape)
    ->Args({4, 27, 64})
    ->Args({4, 36, 64})
    ->Args({8, 36, 16})
    ->Args({8, 72, 16})
    ->Args({16, 144, 4})
    ->Args({32, 288, 1});

void BM_GemmConvShapeRef(benchmark::State& state) {
  int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({m, k}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({k, n}, &rng);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (auto _ : state) {
    RefGemm(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_GemmConvShapeRef)
    ->Args({4, 27, 64})
    ->Args({4, 36, 64})
    ->Args({8, 36, 16})
    ->Args({8, 72, 16})
    ->Args({16, 144, 4})
    ->Args({32, 288, 1});

void BM_MatrixMultiply(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Matrix a(n, n), b(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      a.at(i, j) = rng.Normal();
      b.at(i, j) = rng.Normal();
    }
  }
  for (auto _ : state) {
    Matrix c = a.Multiply(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(128);

void BM_ParallelForOverhead(benchmark::State& state) {
  int64_t n = state.range(0);
  std::vector<float> out(static_cast<size_t>(n), 0.0f);
  float* od = out.data();
  for (auto _ : state) {
    automc::ParallelFor(n, 1 << 13, [=](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) od[i] += 1.0f;
    });
    benchmark::DoNotOptimize(od);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Conv2dForward(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  for (auto _ : state) {
    tensor::Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dForwardRef(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  tensor::ConvGeometry g{c, 8, 8, 3, 1, 1};
  tensor::Tensor wmat = conv.weight().value.Reshaped({c, c * 9});
  for (auto _ : state) {
    tensor::Tensor y({8, c, g.OutH(), g.OutW()});
    RefConvForward(x, wmat, g, &y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForwardRef)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  tensor::Tensor g = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  for (auto _ : state) {
    conv.Forward(x, true);
    tensor::Tensor dx = conv.Backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_Conv2dBackwardRef(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  tensor::Tensor gout = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  tensor::ConvGeometry g{c, 8, 8, 3, 1, 1};
  tensor::Tensor wmat = conv.weight().value.Reshaped({c, c * 9});
  int64_t ckk = c * 9, p = g.OutH() * g.OutW();
  for (auto _ : state) {
    // Original serial backward: per sample, fresh buffers, naive GEMMs.
    tensor::Tensor dx({8, c, 8, 8});
    tensor::Tensor dw({c, ckk});
    for (int64_t i = 0; i < 8; ++i) {
      tensor::Tensor cols({ckk, p});
      tensor::Im2Col(x.data() + i * c * 64, g, &cols);
      const float* dyi = gout.data() + i * c * p;
      RefGemmTB(dyi, cols.data(), dw.MutableData(), c, p, ckk);
      tensor::Tensor dcols({ckk, p});
      RefGemmTA(wmat.data(), dyi, dcols.MutableData(), ckk, c, p);
      tensor::Col2Im(dcols, g, dx.MutableData() + i * c * 64);
    }
    benchmark::DoNotOptimize(dx.data());
    benchmark::DoNotOptimize(dw.data());
  }
}
BENCHMARK(BM_Conv2dBackwardRef)->Arg(8)->Arg(16);

void BM_ResNet56ForwardBatch(benchmark::State& state) {
  Rng rng(4);
  nn::ModelSpec spec;
  spec.family = "resnet";
  spec.depth = 56;
  spec.base_width = 4;
  auto model = std::move(nn::BuildModel(spec, &rng)).value();
  tensor::Tensor x = tensor::Tensor::Randn({16, 3, 8, 8}, &rng);
  for (auto _ : state) {
    tensor::Tensor y = model->Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ResNet56ForwardBatch);

void BM_TruncatedSvd(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(5);
  Matrix a(n, n * 9);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) a.at(i, j) = rng.Normal();
  }
  for (auto _ : state) {
    SvdResult svd = TruncatedSvd(a, n / 2);
    benchmark::DoNotOptimize(svd.s.data());
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(8)->Arg(16)->Arg(32);

void BM_HooiDecompose(benchmark::State& state) {
  Rng rng(6);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, &rng);
  for (auto _ : state) {
    auto lr = compress::HooiDecomposeConv(conv, 8, 8);
    benchmark::DoNotOptimize(lr.get());
  }
}
BENCHMARK(BM_HooiDecompose);

void BM_GlobalStructuredPrune(benchmark::State& state) {
  Rng rng(7);
  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 16;
  spec.base_width = 4;
  for (auto _ : state) {
    state.PauseTiming();
    Rng build_rng(7);
    auto model = std::move(nn::BuildModel(spec, &build_rng)).value();
    state.ResumeTiming();
    compress::GlobalPruneOptions opts;
    opts.target_param_fraction = 0.3;
    Status st = compress::GlobalStructuredPrune(model.get(), opts,
                                                compress::FilterL2);
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_GlobalStructuredPrune);

void BM_TransREpoch(benchmark::State& state) {
  auto strategies = search::SearchSpace::SingleMethod("HOS").strategies();
  kg::KnowledgeGraph graph = kg::KnowledgeGraph::Build(strategies);
  kg::TransRConfig cfg;
  kg::TransR transr(graph.num_entities(), kg::kNumRelations, cfg);
  Rng rng(8);
  for (auto _ : state) {
    double loss = transr.TrainEpoch(graph.triplets(), graph.num_entities(),
                                    &rng);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.triplets().size()));
}
BENCHMARK(BM_TransREpoch);

void BM_FmoPredict(benchmark::State& state) {
  Rng rng(9);
  search::Fmo fmo(32, 7, 10);
  std::vector<tensor::Tensor> seq;
  for (int i = 0; i < 3; ++i) seq.push_back(tensor::Tensor::Randn({32}, &rng));
  tensor::Tensor cand = tensor::Tensor::Randn({32}, &rng);
  tensor::Tensor task = tensor::Tensor::Randn({7}, &rng);
  for (auto _ : state) {
    auto pred = fmo.Predict(seq, cand, task);
    benchmark::DoNotOptimize(pred.first);
  }
}
BENCHMARK(BM_FmoPredict);

}  // namespace
}  // namespace automc

BENCHMARK_MAIN();
