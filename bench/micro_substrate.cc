// Substrate micro-benchmarks (google-benchmark): the kernels whose
// throughput bounds search wall-clock — convolution forward/backward,
// matmul, structured pruning surgery, SVD/HOOI decomposition, TransR
// epochs, and F_mo prediction.
#include <benchmark/benchmark.h>

#include "common/matrix.h"
#include "compress/decompose.h"
#include "compress/surgery.h"
#include "kg/transr.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "search/fmo.h"
#include "search/search_space.h"
#include "tensor/ops.h"

namespace automc {
namespace {

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    tensor::Tensor c = tensor::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  for (auto _ : state) {
    tensor::Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(c, c, 3, 1, 1, false, &rng);
  tensor::Tensor x = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  tensor::Tensor g = tensor::Tensor::Randn({8, c, 8, 8}, &rng);
  for (auto _ : state) {
    conv.Forward(x, true);
    tensor::Tensor dx = conv.Backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_ResNet56ForwardBatch(benchmark::State& state) {
  Rng rng(4);
  nn::ModelSpec spec;
  spec.family = "resnet";
  spec.depth = 56;
  spec.base_width = 4;
  auto model = std::move(nn::BuildModel(spec, &rng)).value();
  tensor::Tensor x = tensor::Tensor::Randn({16, 3, 8, 8}, &rng);
  for (auto _ : state) {
    tensor::Tensor y = model->Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ResNet56ForwardBatch);

void BM_TruncatedSvd(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(5);
  Matrix a(n, n * 9);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) a.at(i, j) = rng.Normal();
  }
  for (auto _ : state) {
    SvdResult svd = TruncatedSvd(a, n / 2);
    benchmark::DoNotOptimize(svd.s.data());
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(8)->Arg(16)->Arg(32);

void BM_HooiDecompose(benchmark::State& state) {
  Rng rng(6);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, &rng);
  for (auto _ : state) {
    auto lr = compress::HooiDecomposeConv(conv, 8, 8);
    benchmark::DoNotOptimize(lr.get());
  }
}
BENCHMARK(BM_HooiDecompose);

void BM_GlobalStructuredPrune(benchmark::State& state) {
  Rng rng(7);
  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 16;
  spec.base_width = 4;
  for (auto _ : state) {
    state.PauseTiming();
    Rng build_rng(7);
    auto model = std::move(nn::BuildModel(spec, &build_rng)).value();
    state.ResumeTiming();
    compress::GlobalPruneOptions opts;
    opts.target_param_fraction = 0.3;
    Status st = compress::GlobalStructuredPrune(model.get(), opts,
                                                compress::FilterL2);
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_GlobalStructuredPrune);

void BM_TransREpoch(benchmark::State& state) {
  auto strategies = search::SearchSpace::SingleMethod("HOS").strategies();
  kg::KnowledgeGraph graph = kg::KnowledgeGraph::Build(strategies);
  kg::TransRConfig cfg;
  kg::TransR transr(graph.num_entities(), kg::kNumRelations, cfg);
  Rng rng(8);
  for (auto _ : state) {
    double loss = transr.TrainEpoch(graph.triplets(), graph.num_entities(),
                                    &rng);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.triplets().size()));
}
BENCHMARK(BM_TransREpoch);

void BM_FmoPredict(benchmark::State& state) {
  Rng rng(9);
  search::Fmo fmo(32, 7, 10);
  std::vector<tensor::Tensor> seq;
  for (int i = 0; i < 3; ++i) seq.push_back(tensor::Tensor::Randn({32}, &rng));
  tensor::Tensor cand = tensor::Tensor::Randn({32}, &rng);
  tensor::Tensor task = tensor::Tensor::Randn({7}, &rng);
  for (auto _ : state) {
    auto pred = fmo.Predict(seq, cand, task);
    benchmark::DoNotOptimize(pred.first);
  }
}
BENCHMARK(BM_FmoPredict);

}  // namespace
}  // namespace automc

BENCHMARK_MAIN();
