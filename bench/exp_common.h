#ifndef AUTOMC_BENCH_EXP_COMMON_H_
#define AUTOMC_BENCH_EXP_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/automc.h"
#include "search/evolutionary.h"
#include "search/random_search.h"
#include "search/rl.h"

namespace automc {
namespace bench {

// Scaled-substrate versions of the paper's two experiments (Section 4.1):
//   Exp1: D = CIFAR-10(-like),  M = ResNet-56, gamma = 0.3
//   Exp2: D = CIFAR-100(-like), M = VGG-16,   gamma = 0.3
// Model widths, image sizes and epoch budgets are scaled per DESIGN.md.
core::CompressionTask MakeExp1Task(uint64_t seed = 7);
core::CompressionTask MakeExp2Task(uint64_t seed = 7);

// Env-tunable budget so the harness can be scaled up off the default
// smoke-level settings: AUTOMC_BENCH_BUDGET (strategy executions per search,
// default 20), AUTOMC_BENCH_GRID (configs sampled per manual method, 3).
int BenchBudget();
int BenchGridSamples();

// Registers an atexit hook that writes the process metrics snapshot to
// $AUTOMC_METRICS_OUT (if set) when the bench exits. Idempotent; called
// automatically by MakeExp1Task/MakeExp2Task so every harness records a
// BENCH_*.json-style trajectory for free.
void InstallMetricsDump();

// Bench-scale AutoMC options (full Table 1 space, small budgets).
core::AutoMCOptions BenchAutoMCOptions(int budget, double gamma,
                                       uint64_t seed);

// Applies `scheme` to a fresh clone of `base` using the task's FULL training
// data (searches run on the subsample; final evaluation uses everything).
Result<search::EvalPoint> EvaluateSchemeOnFullData(
    const search::SearchSpace& space, const std::vector<int>& scheme,
    nn::Model* base, const core::CompressionTask& task, uint64_t seed);

// Grid-searches a manual method at a fixed parameter-decrease target
// (HP2 := target_pr, other hyperparameters sampled from the Table 1 grid)
// and returns the best-accuracy result on the task's test set.
struct ManualOutcome {
  compress::StrategySpec best_spec;
  search::EvalPoint point;
};
Result<ManualOutcome> RunManualMethod(const std::string& method,
                                      double target_pr,
                                      nn::Model* base,
                                      const core::CompressionTask& task,
                                      int grid_samples, uint64_t seed);

// Runs one baseline searcher on the task's search subsample and returns the
// outcome plus the scheme it would deploy (feasible Pareto scheme with the
// highest accuracy; falls back to best-accuracy overall).
struct BaselineRun {
  search::SearchOutcome outcome;
  std::vector<int> best_scheme;
  search::EvalPoint search_point;  // as measured during search
};
Result<BaselineRun> RunBaselineSearch(search::Searcher* searcher,
                                      const search::SearchSpace& space,
                                      nn::Model* base,
                                      const core::CompressionTask& task,
                                      const search::SearchConfig& config);

// Picks the deployable scheme from an outcome: highest-accuracy Pareto
// scheme (they are already filtered to pr >= gamma when any exists).
int BestSchemeIndex(const search::SearchOutcome& outcome);

// "0.53 / 41.74" style cells used by the paper's tables.
std::string Cell(double value, double rate_percent);

}  // namespace bench
}  // namespace automc

#endif  // AUTOMC_BENCH_EXP_COMMON_H_
