// Benchmarks SchemeEvaluator::EvaluateBatch against the serial Evaluate
// loop on one 16-candidate round of mostly-disjoint schemes, asserting
// bit-identical results before reporting timings. Emits one JSON object on
// stdout; scripts/bench.sh runs it at AUTOMC_THREADS=1 and 4 and merges the
// two into BENCH_eval.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "data/dataset.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/search_space.h"

namespace automc {
namespace {

using search::EvalPoint;
using search::SchemeEvaluator;
using search::SearchSpace;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool SamePoint(const EvalPoint& a, const EvalPoint& b) {
  return a.acc == b.acc && a.params == b.params && a.flops == b.flops &&
         a.ar == b.ar && a.pr == b.pr && a.fr == b.fr;
}

std::string StateBlob(const SchemeEvaluator& ev) {
  ByteWriter w;
  ev.SnapshotState(&w);
  return w.Take();
}

int Run() {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 12;
  cfg.test_per_class = 4;
  cfg.seed = 41;
  data::TaskData task = MakeSyntheticTask(cfg);

  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.num_classes = 3;
  spec.base_width = 4;
  Rng rng(5);
  std::unique_ptr<nn::Model> model = std::move(nn::BuildModel(spec, &rng)).value();
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 12;
  nn::Trainer trainer(tc);
  AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 1;
  ctx.batch_size = 12;
  ctx.seed = 3;

  SearchSpace space = SearchSpace::FullTable1();
  const int strategies = static_cast<int>(space.size());

  // One 16-candidate round. Distinct first steps give the planner disjoint
  // subtrees to fan out; when the space is smaller than the round the tail
  // wraps around into two-step schemes that chain onto the early singles.
  const int kCandidates = 16;
  std::vector<std::vector<int>> round;
  for (int i = 0; i < kCandidates; ++i) {
    if (i < strategies) {
      round.push_back({i});
    } else {
      round.push_back({i % strategies, (i + 1) % strategies});
    }
  }

  // Serial reference: the loop EvaluateBatch replaces.
  SchemeEvaluator serial(&space, model.get(), ctx, {});
  auto start = std::chrono::steady_clock::now();
  std::vector<EvalPoint> serial_points;
  for (const auto& scheme : round) {
    auto p = serial.Evaluate(scheme);
    AUTOMC_CHECK(p.ok());
    serial_points.push_back(*p);
  }
  const double serial_ms = MsSince(start);

  // Batched run on a fresh evaluator (thread count comes from
  // AUTOMC_THREADS, set by the driver).
  SchemeEvaluator batched(&space, model.get(), ctx, {});
  start = std::chrono::steady_clock::now();
  auto batch = batched.EvaluateBatch(round);
  AUTOMC_CHECK(batch.ok());
  const double batch_ms = MsSince(start);

  // Bit-identity gate: a speedup claim over non-identical results would be
  // meaningless, so mismatches make the bench fail loudly.
  bool identical = batch->points.size() == serial_points.size() &&
                   serial.CacheDigest() == batched.CacheDigest() &&
                   serial.charged_executions() == batched.charged_executions() &&
                   serial.strategy_executions() == batched.strategy_executions() &&
                   StateBlob(serial) == StateBlob(batched);
  for (size_t i = 0; identical && i < serial_points.size(); ++i) {
    identical = SamePoint(batch->points[i], serial_points[i]);
  }

  const auto& subtrees =
      metrics::MetricsRegistry::Global().GetHistogram("eval.parallel_subtrees");
  const char* threads_env = std::getenv("AUTOMC_THREADS");

  std::printf(
      "{\n"
      "  \"threads\": %s,\n"
      "  \"candidates\": %d,\n"
      "  \"strategies_in_space\": %d,\n"
      "  \"parallel_subtrees\": %.0f,\n"
      "  \"serial_loop_ms\": %.2f,\n"
      "  \"batch_ms\": %.2f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"identical\": %s\n"
      "}\n",
      threads_env != nullptr ? threads_env : "1", kCandidates, strategies,
      subtrees.max(), serial_ms, batch_ms, serial_ms / batch_ms,
      identical ? "true" : "false");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace automc

int main() { return automc::Run(); }
