// Design-choice ablation (DESIGN.md decision 2): the evaluator's prefix
// cache is the mechanism behind progressive search efficiency. We run the
// same progressive search with the cache enabled vs disabled (cache size 0
// keeps only the root, forcing every evaluation to re-run the whole scheme)
// and report total strategy executions and wall-clock per evaluated scheme.
#include <chrono>
#include <cstdio>

#include "exp_common.h"
#include "kg/embedding.h"
#include "search/progressive.h"

namespace automc {
namespace bench {
namespace {

Status Run() {
  core::CompressionTask task = MakeExp1Task();
  task.model_spec.depth = 20;  // smaller model: the ratio is what matters
  task.base_train_epochs = 8;
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> base,
                          core::PretrainModel(task));

  search::SearchSpace space = search::SearchSpace::FullTable1();

  // Shared random embeddings: this ablation isolates the cache, not the
  // knowledge-learning pipeline.
  Rng rng(31);
  std::vector<tensor::Tensor> embeddings;
  for (size_t i = 0; i < space.size(); ++i) {
    embeddings.push_back(tensor::Tensor::Randn({32}, &rng));
  }
  tensor::Tensor task_features =
      tensor::Tensor::Randn({data::kTaskFeatureDim}, &rng);

  Rng sub_rng(32);
  data::Dataset search_train = task.data.train.Subsample(0.25, &sub_rng);
  compress::CompressionContext ctx;
  ctx.train = &search_train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = task.batch_size;
  ctx.lr = task.lr;
  ctx.seed = 33;

  search::SearchConfig scfg;
  scfg.max_strategy_executions = BenchBudget();
  scfg.max_length = 4;
  scfg.gamma = 0.3;
  scfg.seed = 34;

  std::printf("%-16s | %-9s | %-11s | %-11s | %-9s\n", "evaluator", "schemes",
              "executions", "exec/scheme", "seconds");
  for (bool cached : {true, false}) {
    search::SchemeEvaluator::Options opts;
    opts.max_cached_models = cached ? 128 : 0;
    search::SchemeEvaluator evaluator(&space, base.get(), ctx, opts);
    search::ProgressiveSearcher::Options popts;
    popts.sample_schemes = 4;
    popts.candidates_per_scheme = 64;
    popts.max_evals_per_round = 3;
    search::ProgressiveSearcher searcher(embeddings, task_features, popts);

    auto start = std::chrono::steady_clock::now();
    AUTOMC_ASSIGN_OR_RETURN(search::SearchOutcome outcome,
                            searcher.Search(&evaluator, space, scfg));
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    int schemes = static_cast<int>(outcome.history.size());
    std::printf("%-16s | %9d | %11d | %11.2f | %9.1f\n",
                cached ? "prefix-cached" : "no cache", schemes,
                outcome.executions,
                schemes > 0 ? static_cast<double>(outcome.executions) / schemes
                            : 0.0,
                secs);
  }
  std::printf("\nWith the cache, evaluating a scheme extension costs ~1\n"
              "execution; without it, the whole prefix re-runs each time.\n");
  return Status::OK();
}

}  // namespace
}  // namespace bench
}  // namespace automc

int main() {
  std::printf("=== Ablation: prefix-cached scheme evaluation ===\n\n");
  automc::Status st = automc::bench::Run();
  if (!st.ok()) {
    std::fprintf(stderr, "failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
