file(REMOVE_RECURSE
  "CMakeFiles/automc_compress.dir/compressor.cc.o"
  "CMakeFiles/automc_compress.dir/compressor.cc.o.d"
  "CMakeFiles/automc_compress.dir/decompose.cc.o"
  "CMakeFiles/automc_compress.dir/decompose.cc.o.d"
  "CMakeFiles/automc_compress.dir/factory.cc.o"
  "CMakeFiles/automc_compress.dir/factory.cc.o.d"
  "CMakeFiles/automc_compress.dir/hos.cc.o"
  "CMakeFiles/automc_compress.dir/hos.cc.o.d"
  "CMakeFiles/automc_compress.dir/legr.cc.o"
  "CMakeFiles/automc_compress.dir/legr.cc.o.d"
  "CMakeFiles/automc_compress.dir/lfb.cc.o"
  "CMakeFiles/automc_compress.dir/lfb.cc.o.d"
  "CMakeFiles/automc_compress.dir/lma.cc.o"
  "CMakeFiles/automc_compress.dir/lma.cc.o.d"
  "CMakeFiles/automc_compress.dir/lowrank_apply.cc.o"
  "CMakeFiles/automc_compress.dir/lowrank_apply.cc.o.d"
  "CMakeFiles/automc_compress.dir/ns.cc.o"
  "CMakeFiles/automc_compress.dir/ns.cc.o.d"
  "CMakeFiles/automc_compress.dir/quant.cc.o"
  "CMakeFiles/automc_compress.dir/quant.cc.o.d"
  "CMakeFiles/automc_compress.dir/scheme_parser.cc.o"
  "CMakeFiles/automc_compress.dir/scheme_parser.cc.o.d"
  "CMakeFiles/automc_compress.dir/sfp.cc.o"
  "CMakeFiles/automc_compress.dir/sfp.cc.o.d"
  "CMakeFiles/automc_compress.dir/surgery.cc.o"
  "CMakeFiles/automc_compress.dir/surgery.cc.o.d"
  "CMakeFiles/automc_compress.dir/taylor.cc.o"
  "CMakeFiles/automc_compress.dir/taylor.cc.o.d"
  "libautomc_compress.a"
  "libautomc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
