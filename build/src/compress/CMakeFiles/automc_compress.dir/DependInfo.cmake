
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/automc_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/decompose.cc" "src/compress/CMakeFiles/automc_compress.dir/decompose.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/decompose.cc.o.d"
  "/root/repo/src/compress/factory.cc" "src/compress/CMakeFiles/automc_compress.dir/factory.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/factory.cc.o.d"
  "/root/repo/src/compress/hos.cc" "src/compress/CMakeFiles/automc_compress.dir/hos.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/hos.cc.o.d"
  "/root/repo/src/compress/legr.cc" "src/compress/CMakeFiles/automc_compress.dir/legr.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/legr.cc.o.d"
  "/root/repo/src/compress/lfb.cc" "src/compress/CMakeFiles/automc_compress.dir/lfb.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/lfb.cc.o.d"
  "/root/repo/src/compress/lma.cc" "src/compress/CMakeFiles/automc_compress.dir/lma.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/lma.cc.o.d"
  "/root/repo/src/compress/lowrank_apply.cc" "src/compress/CMakeFiles/automc_compress.dir/lowrank_apply.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/lowrank_apply.cc.o.d"
  "/root/repo/src/compress/ns.cc" "src/compress/CMakeFiles/automc_compress.dir/ns.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/ns.cc.o.d"
  "/root/repo/src/compress/quant.cc" "src/compress/CMakeFiles/automc_compress.dir/quant.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/quant.cc.o.d"
  "/root/repo/src/compress/scheme_parser.cc" "src/compress/CMakeFiles/automc_compress.dir/scheme_parser.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/scheme_parser.cc.o.d"
  "/root/repo/src/compress/sfp.cc" "src/compress/CMakeFiles/automc_compress.dir/sfp.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/sfp.cc.o.d"
  "/root/repo/src/compress/surgery.cc" "src/compress/CMakeFiles/automc_compress.dir/surgery.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/surgery.cc.o.d"
  "/root/repo/src/compress/taylor.cc" "src/compress/CMakeFiles/automc_compress.dir/taylor.cc.o" "gcc" "src/compress/CMakeFiles/automc_compress.dir/taylor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/automc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/automc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/automc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/automc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
