# Empty dependencies file for automc_compress.
# This may be replaced when dependencies are built.
