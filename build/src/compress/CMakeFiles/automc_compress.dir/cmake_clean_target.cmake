file(REMOVE_RECURSE
  "libautomc_compress.a"
)
