file(REMOVE_RECURSE
  "libautomc_common.a"
)
