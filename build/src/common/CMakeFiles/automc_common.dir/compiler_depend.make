# Empty compiler generated dependencies file for automc_common.
# This may be replaced when dependencies are built.
