file(REMOVE_RECURSE
  "CMakeFiles/automc_common.dir/logging.cc.o"
  "CMakeFiles/automc_common.dir/logging.cc.o.d"
  "CMakeFiles/automc_common.dir/matrix.cc.o"
  "CMakeFiles/automc_common.dir/matrix.cc.o.d"
  "CMakeFiles/automc_common.dir/stats.cc.o"
  "CMakeFiles/automc_common.dir/stats.cc.o.d"
  "CMakeFiles/automc_common.dir/status.cc.o"
  "CMakeFiles/automc_common.dir/status.cc.o.d"
  "libautomc_common.a"
  "libautomc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
