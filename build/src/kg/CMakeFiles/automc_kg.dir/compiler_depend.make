# Empty compiler generated dependencies file for automc_kg.
# This may be replaced when dependencies are built.
