file(REMOVE_RECURSE
  "libautomc_kg.a"
)
