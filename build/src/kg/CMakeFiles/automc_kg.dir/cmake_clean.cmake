file(REMOVE_RECURSE
  "CMakeFiles/automc_kg.dir/embedding.cc.o"
  "CMakeFiles/automc_kg.dir/embedding.cc.o.d"
  "CMakeFiles/automc_kg.dir/experience.cc.o"
  "CMakeFiles/automc_kg.dir/experience.cc.o.d"
  "CMakeFiles/automc_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/automc_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/automc_kg.dir/transr.cc.o"
  "CMakeFiles/automc_kg.dir/transr.cc.o.d"
  "libautomc_kg.a"
  "libautomc_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
