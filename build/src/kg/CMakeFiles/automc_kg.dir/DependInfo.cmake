
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/embedding.cc" "src/kg/CMakeFiles/automc_kg.dir/embedding.cc.o" "gcc" "src/kg/CMakeFiles/automc_kg.dir/embedding.cc.o.d"
  "/root/repo/src/kg/experience.cc" "src/kg/CMakeFiles/automc_kg.dir/experience.cc.o" "gcc" "src/kg/CMakeFiles/automc_kg.dir/experience.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/kg/CMakeFiles/automc_kg.dir/knowledge_graph.cc.o" "gcc" "src/kg/CMakeFiles/automc_kg.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/transr.cc" "src/kg/CMakeFiles/automc_kg.dir/transr.cc.o" "gcc" "src/kg/CMakeFiles/automc_kg.dir/transr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/automc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/automc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/automc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/automc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/automc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
