file(REMOVE_RECURSE
  "libautomc_tensor.a"
)
