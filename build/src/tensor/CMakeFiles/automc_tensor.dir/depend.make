# Empty dependencies file for automc_tensor.
# This may be replaced when dependencies are built.
