file(REMOVE_RECURSE
  "CMakeFiles/automc_tensor.dir/ops.cc.o"
  "CMakeFiles/automc_tensor.dir/ops.cc.o.d"
  "CMakeFiles/automc_tensor.dir/tensor.cc.o"
  "CMakeFiles/automc_tensor.dir/tensor.cc.o.d"
  "libautomc_tensor.a"
  "libautomc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
