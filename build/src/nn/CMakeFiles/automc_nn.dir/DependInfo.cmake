
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/automc_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/automc_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lowrank.cc" "src/nn/CMakeFiles/automc_nn.dir/lowrank.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/lowrank.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/automc_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/automc_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/residual.cc" "src/nn/CMakeFiles/automc_nn.dir/residual.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/residual.cc.o.d"
  "/root/repo/src/nn/seqnet.cc" "src/nn/CMakeFiles/automc_nn.dir/seqnet.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/seqnet.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/automc_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/summary.cc" "src/nn/CMakeFiles/automc_nn.dir/summary.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/summary.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/automc_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/trainer.cc.o.d"
  "/root/repo/src/nn/visit.cc" "src/nn/CMakeFiles/automc_nn.dir/visit.cc.o" "gcc" "src/nn/CMakeFiles/automc_nn.dir/visit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/automc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/automc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/automc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
