# Empty compiler generated dependencies file for automc_nn.
# This may be replaced when dependencies are built.
