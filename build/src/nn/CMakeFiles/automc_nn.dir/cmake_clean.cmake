file(REMOVE_RECURSE
  "CMakeFiles/automc_nn.dir/layers.cc.o"
  "CMakeFiles/automc_nn.dir/layers.cc.o.d"
  "CMakeFiles/automc_nn.dir/loss.cc.o"
  "CMakeFiles/automc_nn.dir/loss.cc.o.d"
  "CMakeFiles/automc_nn.dir/lowrank.cc.o"
  "CMakeFiles/automc_nn.dir/lowrank.cc.o.d"
  "CMakeFiles/automc_nn.dir/model.cc.o"
  "CMakeFiles/automc_nn.dir/model.cc.o.d"
  "CMakeFiles/automc_nn.dir/optimizer.cc.o"
  "CMakeFiles/automc_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/automc_nn.dir/residual.cc.o"
  "CMakeFiles/automc_nn.dir/residual.cc.o.d"
  "CMakeFiles/automc_nn.dir/seqnet.cc.o"
  "CMakeFiles/automc_nn.dir/seqnet.cc.o.d"
  "CMakeFiles/automc_nn.dir/serialize.cc.o"
  "CMakeFiles/automc_nn.dir/serialize.cc.o.d"
  "CMakeFiles/automc_nn.dir/summary.cc.o"
  "CMakeFiles/automc_nn.dir/summary.cc.o.d"
  "CMakeFiles/automc_nn.dir/trainer.cc.o"
  "CMakeFiles/automc_nn.dir/trainer.cc.o.d"
  "CMakeFiles/automc_nn.dir/visit.cc.o"
  "CMakeFiles/automc_nn.dir/visit.cc.o.d"
  "libautomc_nn.a"
  "libautomc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
