file(REMOVE_RECURSE
  "libautomc_nn.a"
)
