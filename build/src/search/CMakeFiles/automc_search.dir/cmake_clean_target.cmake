file(REMOVE_RECURSE
  "libautomc_search.a"
)
