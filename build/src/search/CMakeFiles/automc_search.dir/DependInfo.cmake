
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/evaluator.cc" "src/search/CMakeFiles/automc_search.dir/evaluator.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/evaluator.cc.o.d"
  "/root/repo/src/search/evolutionary.cc" "src/search/CMakeFiles/automc_search.dir/evolutionary.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/evolutionary.cc.o.d"
  "/root/repo/src/search/fmo.cc" "src/search/CMakeFiles/automc_search.dir/fmo.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/fmo.cc.o.d"
  "/root/repo/src/search/grid_search.cc" "src/search/CMakeFiles/automc_search.dir/grid_search.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/grid_search.cc.o.d"
  "/root/repo/src/search/pareto.cc" "src/search/CMakeFiles/automc_search.dir/pareto.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/pareto.cc.o.d"
  "/root/repo/src/search/progressive.cc" "src/search/CMakeFiles/automc_search.dir/progressive.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/progressive.cc.o.d"
  "/root/repo/src/search/random_search.cc" "src/search/CMakeFiles/automc_search.dir/random_search.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/random_search.cc.o.d"
  "/root/repo/src/search/report.cc" "src/search/CMakeFiles/automc_search.dir/report.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/report.cc.o.d"
  "/root/repo/src/search/rl.cc" "src/search/CMakeFiles/automc_search.dir/rl.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/rl.cc.o.d"
  "/root/repo/src/search/search_space.cc" "src/search/CMakeFiles/automc_search.dir/search_space.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/search_space.cc.o.d"
  "/root/repo/src/search/searcher.cc" "src/search/CMakeFiles/automc_search.dir/searcher.cc.o" "gcc" "src/search/CMakeFiles/automc_search.dir/searcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/automc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/automc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/automc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/automc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/automc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/automc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
