# Empty dependencies file for automc_search.
# This may be replaced when dependencies are built.
