file(REMOVE_RECURSE
  "CMakeFiles/automc_search.dir/evaluator.cc.o"
  "CMakeFiles/automc_search.dir/evaluator.cc.o.d"
  "CMakeFiles/automc_search.dir/evolutionary.cc.o"
  "CMakeFiles/automc_search.dir/evolutionary.cc.o.d"
  "CMakeFiles/automc_search.dir/fmo.cc.o"
  "CMakeFiles/automc_search.dir/fmo.cc.o.d"
  "CMakeFiles/automc_search.dir/grid_search.cc.o"
  "CMakeFiles/automc_search.dir/grid_search.cc.o.d"
  "CMakeFiles/automc_search.dir/pareto.cc.o"
  "CMakeFiles/automc_search.dir/pareto.cc.o.d"
  "CMakeFiles/automc_search.dir/progressive.cc.o"
  "CMakeFiles/automc_search.dir/progressive.cc.o.d"
  "CMakeFiles/automc_search.dir/random_search.cc.o"
  "CMakeFiles/automc_search.dir/random_search.cc.o.d"
  "CMakeFiles/automc_search.dir/report.cc.o"
  "CMakeFiles/automc_search.dir/report.cc.o.d"
  "CMakeFiles/automc_search.dir/rl.cc.o"
  "CMakeFiles/automc_search.dir/rl.cc.o.d"
  "CMakeFiles/automc_search.dir/search_space.cc.o"
  "CMakeFiles/automc_search.dir/search_space.cc.o.d"
  "CMakeFiles/automc_search.dir/searcher.cc.o"
  "CMakeFiles/automc_search.dir/searcher.cc.o.d"
  "libautomc_search.a"
  "libautomc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
