file(REMOVE_RECURSE
  "libautomc_data.a"
)
