# Empty dependencies file for automc_data.
# This may be replaced when dependencies are built.
