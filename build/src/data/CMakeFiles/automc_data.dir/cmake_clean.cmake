file(REMOVE_RECURSE
  "CMakeFiles/automc_data.dir/augment.cc.o"
  "CMakeFiles/automc_data.dir/augment.cc.o.d"
  "CMakeFiles/automc_data.dir/cifar.cc.o"
  "CMakeFiles/automc_data.dir/cifar.cc.o.d"
  "CMakeFiles/automc_data.dir/dataset.cc.o"
  "CMakeFiles/automc_data.dir/dataset.cc.o.d"
  "libautomc_data.a"
  "libautomc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
