# Empty compiler generated dependencies file for automc_core.
# This may be replaced when dependencies are built.
