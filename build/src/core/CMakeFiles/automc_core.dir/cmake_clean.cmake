file(REMOVE_RECURSE
  "CMakeFiles/automc_core.dir/automc.cc.o"
  "CMakeFiles/automc_core.dir/automc.cc.o.d"
  "libautomc_core.a"
  "libautomc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
