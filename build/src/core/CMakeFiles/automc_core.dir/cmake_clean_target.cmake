file(REMOVE_RECURSE
  "libautomc_core.a"
)
