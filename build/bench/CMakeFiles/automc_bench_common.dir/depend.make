# Empty dependencies file for automc_bench_common.
# This may be replaced when dependencies are built.
