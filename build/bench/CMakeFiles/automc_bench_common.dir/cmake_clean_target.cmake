file(REMOVE_RECURSE
  "libautomc_bench_common.a"
)
