file(REMOVE_RECURSE
  "CMakeFiles/automc_bench_common.dir/exp_common.cc.o"
  "CMakeFiles/automc_bench_common.dir/exp_common.cc.o.d"
  "libautomc_bench_common.a"
  "libautomc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
