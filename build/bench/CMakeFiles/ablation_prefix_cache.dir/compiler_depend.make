# Empty compiler generated dependencies file for ablation_prefix_cache.
# This may be replaced when dependencies are built.
