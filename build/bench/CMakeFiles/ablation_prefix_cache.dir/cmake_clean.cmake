file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefix_cache.dir/ablation_prefix_cache.cc.o"
  "CMakeFiles/ablation_prefix_cache.dir/ablation_prefix_cache.cc.o.d"
  "ablation_prefix_cache"
  "ablation_prefix_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefix_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
