# Empty dependencies file for fig6_schemes.
# This may be replaced when dependencies are built.
