file(REMOVE_RECURSE
  "CMakeFiles/fig6_schemes.dir/fig6_schemes.cc.o"
  "CMakeFiles/fig6_schemes.dir/fig6_schemes.cc.o.d"
  "fig6_schemes"
  "fig6_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
