file(REMOVE_RECURSE
  "CMakeFiles/table3_transfer.dir/table3_transfer.cc.o"
  "CMakeFiles/table3_transfer.dir/table3_transfer.cc.o.d"
  "table3_transfer"
  "table3_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
