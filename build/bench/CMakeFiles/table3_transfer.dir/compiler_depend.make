# Empty compiler generated dependencies file for table3_transfer.
# This may be replaced when dependencies are built.
