file(REMOVE_RECURSE
  "CMakeFiles/fig5_ablation.dir/fig5_ablation.cc.o"
  "CMakeFiles/fig5_ablation.dir/fig5_ablation.cc.o.d"
  "fig5_ablation"
  "fig5_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
