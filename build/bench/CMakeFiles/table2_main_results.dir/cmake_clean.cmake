file(REMOVE_RECURSE
  "CMakeFiles/table2_main_results.dir/table2_main_results.cc.o"
  "CMakeFiles/table2_main_results.dir/table2_main_results.cc.o.d"
  "table2_main_results"
  "table2_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
