file(REMOVE_RECURSE
  "CMakeFiles/fig4_search_curves.dir/fig4_search_curves.cc.o"
  "CMakeFiles/fig4_search_curves.dir/fig4_search_curves.cc.o.d"
  "fig4_search_curves"
  "fig4_search_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_search_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
