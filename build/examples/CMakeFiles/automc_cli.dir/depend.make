# Empty dependencies file for automc_cli.
# This may be replaced when dependencies are built.
