file(REMOVE_RECURSE
  "CMakeFiles/automc_cli.dir/automc_cli.cpp.o"
  "CMakeFiles/automc_cli.dir/automc_cli.cpp.o.d"
  "automc_cli"
  "automc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
