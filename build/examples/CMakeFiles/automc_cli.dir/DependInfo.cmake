
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/automc_cli.cpp" "examples/CMakeFiles/automc_cli.dir/automc_cli.cpp.o" "gcc" "examples/CMakeFiles/automc_cli.dir/automc_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/automc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/automc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/automc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/automc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/automc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/automc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/automc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/automc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
