file(REMOVE_RECURSE
  "CMakeFiles/transfer_scheme.dir/transfer_scheme.cpp.o"
  "CMakeFiles/transfer_scheme.dir/transfer_scheme.cpp.o.d"
  "transfer_scheme"
  "transfer_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
