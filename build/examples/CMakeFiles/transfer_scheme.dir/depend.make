# Empty dependencies file for transfer_scheme.
# This may be replaced when dependencies are built.
