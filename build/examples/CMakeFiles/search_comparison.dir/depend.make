# Empty dependencies file for search_comparison.
# This may be replaced when dependencies are built.
