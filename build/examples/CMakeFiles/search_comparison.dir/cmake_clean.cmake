file(REMOVE_RECURSE
  "CMakeFiles/search_comparison.dir/search_comparison.cpp.o"
  "CMakeFiles/search_comparison.dir/search_comparison.cpp.o.d"
  "search_comparison"
  "search_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
