file(REMOVE_RECURSE
  "CMakeFiles/augment_outcome_test.dir/augment_outcome_test.cc.o"
  "CMakeFiles/augment_outcome_test.dir/augment_outcome_test.cc.o.d"
  "augment_outcome_test"
  "augment_outcome_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augment_outcome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
