# Empty dependencies file for augment_outcome_test.
# This may be replaced when dependencies are built.
