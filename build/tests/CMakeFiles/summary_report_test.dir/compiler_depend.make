# Empty compiler generated dependencies file for summary_report_test.
# This may be replaced when dependencies are built.
