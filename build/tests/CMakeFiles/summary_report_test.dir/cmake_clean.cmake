file(REMOVE_RECURSE
  "CMakeFiles/summary_report_test.dir/summary_report_test.cc.o"
  "CMakeFiles/summary_report_test.dir/summary_report_test.cc.o.d"
  "summary_report_test"
  "summary_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
