file(REMOVE_RECURSE
  "CMakeFiles/nn_extended_test.dir/nn_extended_test.cc.o"
  "CMakeFiles/nn_extended_test.dir/nn_extended_test.cc.o.d"
  "nn_extended_test"
  "nn_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
