# Empty compiler generated dependencies file for numeric_property_test.
# This may be replaced when dependencies are built.
