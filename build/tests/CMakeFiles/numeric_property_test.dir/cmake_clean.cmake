file(REMOVE_RECURSE
  "CMakeFiles/numeric_property_test.dir/numeric_property_test.cc.o"
  "CMakeFiles/numeric_property_test.dir/numeric_property_test.cc.o.d"
  "numeric_property_test"
  "numeric_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
