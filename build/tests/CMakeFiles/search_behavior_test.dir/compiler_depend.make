# Empty compiler generated dependencies file for search_behavior_test.
# This may be replaced when dependencies are built.
