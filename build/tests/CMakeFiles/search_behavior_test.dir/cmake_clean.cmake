file(REMOVE_RECURSE
  "CMakeFiles/search_behavior_test.dir/search_behavior_test.cc.o"
  "CMakeFiles/search_behavior_test.dir/search_behavior_test.cc.o.d"
  "search_behavior_test"
  "search_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
