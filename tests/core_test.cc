#include <memory>

#include "core/automc.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"

namespace automc {
namespace core {
namespace {

CompressionTask TinyTask() {
  CompressionTask task;
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 16;
  cfg.test_per_class = 6;
  cfg.seed = 51;
  task.data = MakeSyntheticTask(cfg);
  task.model_spec.family = "resnet";
  task.model_spec.depth = 20;
  task.model_spec.num_classes = 3;
  task.model_spec.base_width = 4;
  task.pretrain_epochs = 2;
  task.batch_size = 16;
  task.search_data_fraction = 0.5;
  task.seed = 9;
  return task;
}

AutoMCOptions TinyOptions() {
  AutoMCOptions opts;
  opts.search.max_strategy_executions = 6;
  opts.search.max_length = 3;
  opts.search.gamma = 0.2;
  opts.embedding.train_epochs = 3;
  opts.embedding.transr.entity_dim = 16;
  opts.embedding.transr.relation_dim = 16;
  opts.experience.num_tasks = 1;
  opts.experience.strategies_per_task = 3;
  opts.experience.pretrain_epochs = 1;
  opts.progressive.sample_schemes = 2;
  opts.progressive.candidates_per_scheme = 12;
  opts.progressive.max_evals_per_round = 2;
  // Small spaces keep the pipeline test fast; the full Table 1 space is
  // exercised by the benches.
  opts.multi_source = false;
  opts.seed = 3;
  return opts;
}

TEST(PretrainTest, ProducesLearnedModel) {
  CompressionTask task = TinyTask();
  auto model = PretrainModel(task);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  double acc = nn::Trainer::Evaluate(model->get(), task.data.test);
  EXPECT_GT(acc, 1.2 / 3.0);  // clearly above chance
}

TEST(AutoMCTest, FullPipelineRuns) {
  CompressionTask task = TinyTask();
  AutoMC automc(TinyOptions());
  auto result = automc.Run(task);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->base_accuracy, 0.0);
  ASSERT_FALSE(result->outcome.pareto_schemes.empty());
  EXPECT_EQ(result->pareto_descriptions.size(),
            result->outcome.pareto_schemes.size());
  // Descriptions name the method.
  EXPECT_NE(result->pareto_descriptions[0].find("LeGR"), std::string::npos);
  // Every Pareto point actually reduced parameters.
  for (const auto& p : result->outcome.pareto_points) {
    EXPECT_GT(p.pr, 0.0);
  }
}

struct AblationCase {
  const char* name;
  bool use_kg, use_exp, multi_source, progressive;
};

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationTest, VariantRuns) {
  AblationCase c = GetParam();
  CompressionTask task = TinyTask();
  AutoMCOptions opts = TinyOptions();
  opts.use_kg = c.use_kg;
  opts.use_exp = c.use_exp;
  opts.multi_source = c.multi_source;
  opts.use_progressive = c.progressive;
  AutoMC automc(opts);
  auto result = automc.Run(task);
  ASSERT_TRUE(result.ok()) << c.name << ": " << result.status().ToString();
  EXPECT_FALSE(result->outcome.pareto_schemes.empty()) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AblationTest,
    ::testing::Values(AblationCase{"NoKG", false, true, false, true},
                      AblationCase{"NoExp", true, false, false, true},
                      AblationCase{"NonProgressive", true, true, false, false}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.name;
    });

TEST(ExecuteSchemeTest, TransfersSchemeToAnotherModel) {
  CompressionTask task = TinyTask();
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");

  // "Search" result: a fixed scheme found on resnet-20; transfer to vgg-13.
  std::vector<int> scheme = {1, 27};

  CompressionTask vgg_task = task;
  vgg_task.model_spec.family = "vgg";
  vgg_task.model_spec.depth = 13;
  auto model = PretrainModel(vgg_task);
  ASSERT_TRUE(model.ok());

  compress::CompressionContext ctx;
  ctx.train = &task.data.train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = task.batch_size;
  ctx.seed = 77;

  int64_t params_before = (*model)->ParamCount();
  auto point = ExecuteScheme(space, scheme, model->get(), ctx);
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_GT(point->pr, 0.0);
  EXPECT_LT((*model)->ParamCount(), params_before);
}

TEST(ExecuteSchemeTest, RejectsBadScheme) {
  CompressionTask task = TinyTask();
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");
  auto model = PretrainModel(task);
  ASSERT_TRUE(model.ok());
  compress::CompressionContext ctx;
  ctx.train = &task.data.train;
  ctx.test = &task.data.test;
  EXPECT_FALSE(ExecuteScheme(space, {9999}, model->get(), ctx).ok());
  EXPECT_FALSE(ExecuteScheme(space, {0}, nullptr, ctx).ok());
}

}  // namespace
}  // namespace core
}  // namespace automc
