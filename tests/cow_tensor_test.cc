// Invariant suite for the copy-on-write tensor buffer. These tests pin the
// aliasing contract that makes Model::Clone O(1): copies alias, the first
// write through a mutable accessor materializes exactly one private copy,
// and concurrent readers of other aliases never observe the write.

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace automc {
namespace tensor {
namespace {

int64_t Counter(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

// Counter-delta expectations scale by this so the suite also passes when
// metrics are compiled out (-DAUTOMC_DISABLE_METRICS): the aliasing
// behavior is unchanged, only the instrumentation goes quiet.
#ifdef AUTOMC_DISABLE_METRICS
constexpr int64_t kMetricsOn = 0;
#else
constexpr int64_t kMetricsOn = 1;
#endif

Tensor Iota(int64_t n) {
  Tensor t({n});
  float* d = t.MutableData();
  for (int64_t i = 0; i < n; ++i) d[i] = static_cast<float>(i);
  return t;
}

TEST(CowTensorTest, CopyAliasesBufferInO1) {
  Tensor a = Iota(16);
  int64_t copies0 = Counter("tensor.cow_copies");
  int64_t shared0 = Counter("tensor.shared_bytes");
  int64_t mat0 = Counter("tensor.cow_materializations");

  Tensor b = a;
  EXPECT_TRUE(b.SharesBufferWith(a));
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.use_count(), 2);
  EXPECT_EQ(Counter("tensor.cow_copies"), copies0 + kMetricsOn);
  EXPECT_EQ(Counter("tensor.shared_bytes"),
            shared0 + kMetricsOn * 16 * static_cast<int64_t>(sizeof(float)));
  // Aliasing alone never materializes.
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0);
}

TEST(CowTensorTest, FirstWriteMaterializesExactlyOnce) {
  Tensor a = Iota(16);
  Tensor b = a;
  int64_t mat0 = Counter("tensor.cow_materializations");
  int64_t bytes0 = Counter("tensor.cow_materialized_bytes");

  float* bd = b.MutableData();
  EXPECT_FALSE(b.SharesBufferWith(a));
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0 + kMetricsOn);
  EXPECT_EQ(Counter("tensor.cow_materialized_bytes"),
            bytes0 + kMetricsOn * 16 * static_cast<int64_t>(sizeof(float)));
  // The materialized copy preserves the pre-write bytes.
  for (int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(bd[i], static_cast<float>(i));

  // Subsequent writes are in place: no further materializations.
  bd[3] = -1.0f;
  b.MutableData();
  b[5] = -2.0f;
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0 + kMetricsOn);
}

TEST(CowTensorTest, ReaderSeesPreWriteBytes) {
  Tensor a = Iota(8);
  Tensor b = a;
  b[0] = 100.0f;
  b[7] = 200.0f;
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], static_cast<float>(i));
  }
  EXPECT_FLOAT_EQ(b.data()[0], 100.0f);
  EXPECT_FLOAT_EQ(b.data()[7], 200.0f);
}

TEST(CowTensorTest, ChainedAliasWriteDetachesOnlyTheWriter) {
  Tensor a = Iota(8);
  Tensor b = a;
  Tensor c = b;
  EXPECT_EQ(a.use_count(), 3);

  b[2] = 50.0f;  // detach B; A and C keep sharing the original buffer
  EXPECT_FALSE(b.SharesBufferWith(a));
  EXPECT_FALSE(b.SharesBufferWith(c));
  EXPECT_TRUE(a.SharesBufferWith(c));
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.use_count(), 1);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], static_cast<float>(i));
    EXPECT_FLOAT_EQ(c.data()[i], static_cast<float>(i));
  }
  EXPECT_FLOAT_EQ(b.data()[2], 50.0f);
}

TEST(CowTensorTest, RefcountReturnsToOneWhenAliasesDie) {
  Tensor a = Iota(8);
  {
    Tensor b = a;
    Tensor c = a;
    EXPECT_EQ(a.use_count(), 3);
  }
  EXPECT_EQ(a.use_count(), 1);

  // Sole owner again: writes are in place, no materialization.
  int64_t mat0 = Counter("tensor.cow_materializations");
  a.MutableData()[0] = 9.0f;
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0);
}

TEST(CowTensorTest, ZeroSizeTensorsBehave) {
  Tensor empty;
  EXPECT_EQ(empty.numel(), 0);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.MutableData(), nullptr);
  empty.Fill(1.0f);  // no-op, must not crash
  EXPECT_FLOAT_EQ(empty.SumAll(), 0.0f);

  Tensor shaped_empty({0});
  EXPECT_EQ(shaped_empty.numel(), 0);
  EXPECT_EQ(shaped_empty.data(), nullptr);

  int64_t copies0 = Counter("tensor.cow_copies");
  Tensor alias = empty;  // copying an empty tensor records no COW traffic
  EXPECT_EQ(alias.use_count(), 0);
  EXPECT_FALSE(alias.SharesBufferWith(empty));
  EXPECT_EQ(Counter("tensor.cow_copies"), copies0);
}

TEST(CowTensorTest, MovedFromTensorIsEmptyAndReusable) {
  Tensor a = Iota(8);
  Tensor b = std::move(a);
  EXPECT_EQ(a.numel(), 0);        // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.use_count(), 0);    // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.data(), nullptr);   // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.numel(), 8);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_FLOAT_EQ(b.data()[5], 5.0f);

  a = Iota(4);  // reusable after move-out
  EXPECT_EQ(a.numel(), 4);
  EXPECT_FLOAT_EQ(a.data()[3], 3.0f);

  // Move does not touch the buffer: the move target still shares with any
  // surviving alias of the source.
  Tensor c = b;
  Tensor d = std::move(b);
  EXPECT_TRUE(d.SharesBufferWith(c));
  EXPECT_EQ(d.use_count(), 2);
}

TEST(CowTensorTest, ReshapedIsAnAlias) {
  Tensor t = Iota(12);
  Tensor r = t.Reshaped({3, 4});
  EXPECT_TRUE(r.SharesBufferWith(t));
  EXPECT_EQ(r.numel(), 12);

  r.at(1, 1) = -5.0f;  // write through the view detaches the view only
  EXPECT_FALSE(r.SharesBufferWith(t));
  EXPECT_FLOAT_EQ(t.data()[5], 5.0f);
  EXPECT_FLOAT_EQ(r.data()[5], -5.0f);
}

TEST(CowTensorTest, ZerosAliasesTheSharedZeroPage) {
  int64_t mat0 = Counter("tensor.cow_materializations");
  Tensor z1 = Tensor::Zeros({64});
  Tensor z2 = Tensor::Zeros({32});
  // Both alias one process-wide page (the page holder keeps it alive too).
  EXPECT_TRUE(z1.SharesBufferWith(z2));
  EXPECT_GE(z1.use_count(), 3);
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0);
  for (int64_t i = 0; i < 64; ++i) EXPECT_FLOAT_EQ(z1.data()[i], 0.0f);

  // Writing a zero tensor must never dirty the page for other aliases.
  z1[0] = 1.0f;
  EXPECT_FALSE(z1.SharesBufferWith(z2));
  EXPECT_FLOAT_EQ(z2.data()[0], 0.0f);
  Tensor z3 = Tensor::Zeros({64});
  for (int64_t i = 0; i < 64; ++i) EXPECT_FLOAT_EQ(z3.data()[i], 0.0f);
}

TEST(CowTensorTest, FillZeroOnSharedBufferRealiasesZeroPage) {
  Tensor a = Iota(16);
  Tensor b = a;
  int64_t bytes0 = Counter("tensor.cow_materialized_bytes");
  b.Fill(0.0f);
  // Fill(0) on a shared buffer swaps in the zero page without copying.
  EXPECT_FALSE(b.SharesBufferWith(a));
  EXPECT_EQ(Counter("tensor.cow_materialized_bytes"), bytes0);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], static_cast<float>(i));
    EXPECT_FLOAT_EQ(b.data()[i], 0.0f);
  }
  EXPECT_TRUE(b.SharesBufferWith(Tensor::Zeros({16})));

  // Non-zero fill on a shared buffer detaches without copying bytes.
  Tensor c = a;
  c.Fill(7.0f);
  EXPECT_FALSE(c.SharesBufferWith(a));
  EXPECT_FLOAT_EQ(a.data()[3], 3.0f);
  EXPECT_FLOAT_EQ(c.data()[3], 7.0f);
}

TEST(CowTensorTest, FreshTensorsProduceNoCowTraffic) {
  int64_t copies0 = Counter("tensor.cow_copies");
  int64_t mat0 = Counter("tensor.cow_materializations");
  Tensor t({8, 8});
  float* d = t.MutableData();
  for (int64_t i = 0; i < t.numel(); ++i) d[i] = 1.0f;
  t.Scale(2.0f);
  t.AddInPlace(t);
  EXPECT_EQ(Counter("tensor.cow_copies"), copies0);
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0);
}

TEST(CowTensorTest, MutableDataDiscardSkipsTheCopy) {
  Tensor a = Iota(16);
  Tensor b = a;
  int64_t bytes0 = Counter("tensor.cow_materialized_bytes");
  int64_t mat0 = Counter("tensor.cow_materializations");
  float* bd = b.MutableDataDiscard();
  EXPECT_FALSE(b.SharesBufferWith(a));
  EXPECT_EQ(Counter("tensor.cow_materializations"), mat0 + kMetricsOn);
  EXPECT_EQ(Counter("tensor.cow_materialized_bytes"), bytes0);  // no bytes copied
  for (int64_t i = 0; i < 16; ++i) bd[i] = -1.0f;
  EXPECT_FLOAT_EQ(a.data()[5], 5.0f);
}

// Randomized differential test: drive a pool of aliased tensors through
// random alias/write/fill operations and mirror every step on independent
// std::vector<float> references. COW must be observationally identical to
// eager deep copies.
TEST(CowTensorTest, RandomizedAliasWritesMatchEagerCopySemantics) {
  Rng rng(20240809);
  const int64_t n = 24;
  std::vector<Tensor> pool;
  std::vector<std::vector<float>> ref;
  pool.push_back(Iota(n));
  ref.emplace_back();
  for (int64_t i = 0; i < n; ++i) ref.back().push_back(static_cast<float>(i));

  for (int iter = 0; iter < 2000; ++iter) {
    int64_t which = rng.UniformInt(static_cast<int64_t>(pool.size()));
    switch (rng.UniformInt(4)) {
      case 0:  // alias an existing tensor
        if (pool.size() < 16) {
          pool.push_back(pool[static_cast<size_t>(which)]);
          ref.push_back(ref[static_cast<size_t>(which)]);
        }
        break;
      case 1: {  // single-element write
        int64_t i = rng.UniformInt(n);
        float v = static_cast<float>(rng.Uniform(-10.0, 10.0));
        pool[static_cast<size_t>(which)][i] = v;
        ref[static_cast<size_t>(which)][static_cast<size_t>(i)] = v;
        break;
      }
      case 2: {  // fill (sometimes zero, exercising the zero page)
        float v = rng.Bernoulli(0.3) ? 0.0f
                                     : static_cast<float>(rng.Uniform(-2.0, 2.0));
        pool[static_cast<size_t>(which)].Fill(v);
        ref[static_cast<size_t>(which)].assign(static_cast<size_t>(n), v);
        break;
      }
      case 3:  // drop a tensor (keep at least one)
        if (pool.size() > 1) {
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(which));
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(which));
        }
        break;
    }
    for (size_t t = 0; t < pool.size(); ++t) {
      const float* d = pool[t].data();
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(d[i], ref[t][static_cast<size_t>(i)])
            << "iter " << iter << " tensor " << t << " index " << i;
      }
    }
  }
}

// Concurrency: distinct Tensor objects aliasing one buffer may be read while
// another alias materializes. Run under -DAUTOMC_SANITIZE=thread to prove
// there is no data race (the shared_ptr control block is atomic and shared
// buffer bytes are immutable).
TEST(CowTensorTest, ConcurrentReadersWhileOneAliasMaterializes) {
  const int kReaders = 6;
  const int64_t n = 4096;
  for (int round = 0; round < 20; ++round) {
    Tensor base = Iota(n);
    const double expected = static_cast<double>(n - 1) * n / 2.0;
    std::vector<Tensor> aliases;
    for (int r = 0; r < kReaders; ++r) aliases.push_back(base);
    Tensor writer = base;

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kReaders + 1);
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&go, &aliases, r, n, expected] {
        while (!go.load(std::memory_order_acquire)) {
        }
        const float* d = aliases[static_cast<size_t>(r)].data();
        double s = 0.0;
        for (int64_t i = 0; i < n; ++i) s += d[i];
        EXPECT_DOUBLE_EQ(s, expected);
      });
    }
    threads.emplace_back([&go, &writer] {
      while (!go.load(std::memory_order_acquire)) {
      }
      float* w = writer.MutableData();
      w[0] = -1.0f;
    });
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    EXPECT_FLOAT_EQ(base.data()[0], 0.0f);
    EXPECT_FLOAT_EQ(writer.data()[0], -1.0f);
  }
}

// Many aliases materializing simultaneously: every thread must end up with
// its own intact private copy.
TEST(CowTensorTest, ConcurrentMaterializationsAreIndependent) {
  const int kWriters = 8;
  const int64_t n = 2048;
  for (int round = 0; round < 20; ++round) {
    Tensor base = Iota(n);
    std::vector<Tensor> aliases;
    for (int r = 0; r < kWriters; ++r) aliases.push_back(base);

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int r = 0; r < kWriters; ++r) {
      threads.emplace_back([&go, &aliases, r, n] {
        while (!go.load(std::memory_order_acquire)) {
        }
        float* d = aliases[static_cast<size_t>(r)].MutableData();
        d[r] = static_cast<float>(-(r + 1));
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    for (int r = 0; r < kWriters; ++r) {
      const Tensor& t = aliases[static_cast<size_t>(r)];
      EXPECT_EQ(t.use_count(), 1);
      for (int64_t i = 0; i < n; ++i) {
        float want = (i == r) ? static_cast<float>(-(r + 1))
                              : static_cast<float>(i);
        ASSERT_EQ(t.data()[i], want) << "writer " << r << " index " << i;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(base.data()[i], static_cast<float>(i));
    }
  }
}

}  // namespace
}  // namespace tensor
}  // namespace automc
