#include <memory>

#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/grid_search.h"

namespace automc {
namespace search {
namespace {

struct Fixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;

  Fixture() {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 10;
    cfg.test_per_class = 4;
    cfg.seed = 61;
    task = MakeSyntheticTask(cfg);
    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(3);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 10;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());
    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 10;
  }
};

TEST(GridSearchTest, FindsConfigurationMeetingTarget) {
  Fixture f;
  int64_t params_before = f.model->ParamCount();
  GridSearchOptions opts;
  opts.max_configs = 4;
  opts.target_pr = 0.3;
  opts.seed = 5;
  auto result = GridSearchMethod("NS", f.model.get(), f.ctx, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->best_spec.method, "NS");
  EXPECT_EQ(result->best_spec.hp.at("HP2"), "0.3000");
  EXPECT_NEAR(result->point.pr, 0.3, 0.08);
  EXPECT_GT(result->configs_tried, 0);
  // The base model must not have been mutated.
  EXPECT_EQ(f.model->ParamCount(), params_before);
}

TEST(GridSearchTest, Hp2OverrideCollapsesDuplicates) {
  // NS's grid is 5 (HP1) x 5 (HP2) x 2 (HP6) = 50; with HP2 forced, only
  // 10 distinct configurations remain.
  Fixture f;
  GridSearchOptions opts;
  opts.max_configs = 0;  // full grid
  opts.target_pr = 0.25;
  auto result = GridSearchMethod("NS", f.model.get(), f.ctx, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->configs_tried, 10);
}

TEST(GridSearchTest, WithoutOverrideUsesGridHp2) {
  Fixture f;
  GridSearchOptions opts;
  opts.max_configs = 2;
  opts.target_pr = 0.0;  // no override
  opts.seed = 9;
  auto result = GridSearchMethod("NS", f.model.get(), f.ctx, opts);
  ASSERT_TRUE(result.ok());
  // HP2 stays one of the grid values.
  std::string hp2 = result->best_spec.hp.at("HP2");
  EXPECT_TRUE(hp2 == "0.04" || hp2 == "0.12" || hp2 == "0.2" ||
              hp2 == "0.36" || hp2 == "0.4")
      << hp2;
}

TEST(GridSearchTest, UnknownMethodRejected) {
  Fixture f;
  GridSearchOptions opts;
  EXPECT_FALSE(GridSearchMethod("Distill9000", f.model.get(), f.ctx, opts).ok());
}

TEST(GridSearchTest, NullModelRejected) {
  Fixture f;
  GridSearchOptions opts;
  EXPECT_FALSE(GridSearchMethod("NS", nullptr, f.ctx, opts).ok());
}

TEST(GridSearchTest, DeterministicForSeed) {
  Fixture f;
  GridSearchOptions opts;
  opts.max_configs = 3;
  opts.target_pr = 0.2;
  opts.seed = 21;
  auto a = GridSearchMethod("SFP", f.model.get(), f.ctx, opts);
  auto b = GridSearchMethod("SFP", f.model.get(), f.ctx, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->best_spec.hp, b->best_spec.hp);
  EXPECT_DOUBLE_EQ(a->point.acc, b->point.acc);
}

}  // namespace
}  // namespace search
}  // namespace automc
