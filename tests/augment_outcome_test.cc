// Tests for the augmentation pipeline, TransR ranking metrics, and search
// outcome persistence.
#include <sstream>

#include "data/augment.h"
#include "gtest/gtest.h"
#include "kg/transr.h"
#include "nn/trainer.h"
#include "search/report.h"
#include "search/search_space.h"

namespace automc {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------------------
// Augmentation

TEST(AugmentTest, FlipIsInvolution) {
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 3, 4, 4}, &rng);
  Tensor orig = x;
  data::FlipHorizontal(&x, 1);
  data::FlipHorizontal(&x, 1);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(x[i], orig[i]);
}

TEST(AugmentTest, FlipMirrorsColumns) {
  Tensor x({1, 1, 1, 4});
  for (int j = 0; j < 4; ++j) x[j] = static_cast<float>(j);
  data::FlipHorizontal(&x, 0);
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  EXPECT_FLOAT_EQ(x[3], 0.0f);
}

TEST(AugmentTest, ShiftMovesAndZeroPads) {
  Tensor x({1, 1, 3, 3});
  x.at(0, 0, 1, 1) = 5.0f;
  data::Shift(&x, 0, 1, 0);  // down by one
  EXPECT_FLOAT_EQ(x.at(0, 0, 2, 1), 5.0f);
  EXPECT_FLOAT_EQ(x.at(0, 0, 1, 1), 0.0f);
  // Top row must be zero padding.
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(x.at(0, 0, 0, j), 0.0f);
}

TEST(AugmentTest, AugmentPreservesShapeAndIsSeeded) {
  Rng rng_data(3);
  Tensor x = Tensor::Randn({4, 3, 8, 8}, &rng_data);
  data::AugmentConfig cfg;
  cfg.noise_stddev = 0.1f;
  Rng a(7), b(7);
  Tensor ya = data::Augment(x, cfg, &a);
  Tensor yb = data::Augment(x, cfg, &b);
  ASSERT_EQ(ya.shape(), x.shape());
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(AugmentTest, NoOpConfigKeepsImages) {
  Rng rng_data(5);
  Tensor x = Tensor::Randn({2, 3, 4, 4}, &rng_data);
  data::AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.pad_crop = 0;
  cfg.noise_stddev = 0.0f;
  Rng rng(9);
  Tensor y = data::Augment(x, cfg, &rng);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(AugmentTest, TrainerWithAugmentationStillLearns) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 20;
  cfg.test_per_class = 8;
  cfg.seed = 21;
  data::TaskData task = MakeSyntheticTask(cfg);
  nn::ModelSpec spec;
  spec.family = "resnet";
  spec.depth = 20;
  spec.num_classes = 3;
  spec.base_width = 4;
  Rng rng(4);
  auto model = std::move(nn::BuildModel(spec, &rng)).value();
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.lr = 0.02f;
  tc.augment = true;
  // The synthetic prototypes are not flip-invariant; use shift+noise only.
  tc.augment_config.horizontal_flip = false;
  tc.augment_config.pad_crop = 1;
  tc.augment_config.noise_stddev = 0.05f;
  nn::Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(model.get(), task.train).ok());
  EXPECT_GT(nn::Trainer::Evaluate(model.get(), task.test), 1.3 / 3.0);
}

// --------------------------------------------------------------------------
// TransR ranking metrics

TEST(TransRMetricsTest, TrainingImprovesMrr) {
  auto strategies = search::SearchSpace::SingleMethod("NS").strategies();
  kg::KnowledgeGraph g = kg::KnowledgeGraph::Build(strategies);
  kg::TransRConfig cfg;
  cfg.entity_dim = 16;
  cfg.relation_dim = 16;
  cfg.seed = 3;
  kg::TransR transr(g.num_entities(), kg::kNumRelations, cfg);
  auto before = transr.EvaluateRanking(g.triplets(), g.num_entities(), 100);
  Rng rng(5);
  for (int e = 0; e < 25; ++e) {
    transr.TrainEpoch(g.triplets(), g.num_entities(), &rng);
  }
  auto after = transr.EvaluateRanking(g.triplets(), g.num_entities(), 100);
  EXPECT_GT(after.mrr, before.mrr);
  EXPECT_GT(after.hits_at_10, 0.3);
  EXPECT_EQ(after.evaluated, 100);
}

TEST(TransRMetricsTest, BoundsHold) {
  kg::TransRConfig cfg;
  cfg.entity_dim = 8;
  cfg.relation_dim = 8;
  kg::TransR transr(12, kg::kNumRelations, cfg);
  std::vector<kg::Triplet> triplets = {{0, 0, 1}, {2, 1, 3}, {4, 2, 5}};
  auto m = transr.EvaluateRanking(triplets, 12);
  EXPECT_GE(m.mrr, 0.0);
  EXPECT_LE(m.mrr, 1.0);
  EXPECT_LE(m.hits_at_1, m.hits_at_10);
  EXPECT_EQ(m.evaluated, 3);
}

// --------------------------------------------------------------------------
// Outcome persistence

search::SearchOutcome SampleOutcome() {
  search::SearchOutcome out;
  out.executions = 7;
  out.history = {{1, -1.0, 0.25}, {4, 0.5, 0.6}, {7, 0.55, 0.62}};
  search::EvalPoint p1;
  p1.acc = 0.55;
  p1.params = 1234;
  p1.flops = 99887;
  p1.pr = 0.41;
  p1.fr = 0.37;
  search::EvalPoint p2 = p1;
  p2.acc = 0.5;
  p2.params = 900;
  out.pareto_points = {p1, p2};
  out.pareto_schemes = {{3, 17}, {3, 17, 240}};
  return out;
}

TEST(OutcomePersistenceTest, RoundTripsThroughStream) {
  search::SearchOutcome out = SampleOutcome();
  std::stringstream buf;
  ASSERT_TRUE(search::SaveOutcome(out, &buf).ok());
  auto loaded = search::LoadOutcome(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->executions, out.executions);
  ASSERT_EQ(loaded->history.size(), out.history.size());
  EXPECT_DOUBLE_EQ(loaded->history[1].best_acc, 0.5);
  ASSERT_EQ(loaded->pareto_schemes.size(), 2u);
  EXPECT_EQ(loaded->pareto_schemes[1], (std::vector<int>{3, 17, 240}));
  EXPECT_DOUBLE_EQ(loaded->pareto_points[0].acc, 0.55);
  EXPECT_EQ(loaded->pareto_points[0].params, 1234);
}

TEST(OutcomePersistenceTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/outcome.txt";
  ASSERT_TRUE(search::SaveOutcomeFile(SampleOutcome(), path).ok());
  auto loaded = search::LoadOutcomeFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->executions, 7);
}

TEST(OutcomePersistenceTest, RejectsGarbage) {
  std::stringstream buf;
  buf << "NOT_AN_OUTCOME 1";
  EXPECT_FALSE(search::LoadOutcome(&buf).ok());
}

TEST(OutcomePersistenceTest, RejectsTruncation) {
  std::stringstream buf;
  ASSERT_TRUE(search::SaveOutcome(SampleOutcome(), &buf).ok());
  std::string text = buf.str();
  std::stringstream cut;
  cut << text.substr(0, text.size() - 20);
  EXPECT_FALSE(search::LoadOutcome(&cut).ok());
}

TEST(OutcomePersistenceTest, LoadedSchemesRedeployable) {
  // The persisted scheme indices remain valid against the same space.
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");
  search::SearchOutcome out = SampleOutcome();
  out.pareto_schemes = {{0, 5}};
  out.pareto_points.resize(1);
  std::stringstream buf;
  ASSERT_TRUE(search::SaveOutcome(out, &buf).ok());
  auto loaded = search::LoadOutcome(&buf);
  ASSERT_TRUE(loaded.ok());
  std::string text = space.SchemeToString(loaded->pareto_schemes[0]);
  EXPECT_NE(text.find("NS("), std::string::npos);
}

}  // namespace
}  // namespace automc
