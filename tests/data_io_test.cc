#include <fstream>

#include "compress/scheme_parser.h"
#include "data/cifar.h"
#include "gtest/gtest.h"

namespace automc {
namespace {

// --------------------------------------------------------------------------
// CIFAR binary loaders (synthetic fixture files)

std::string WriteCifar10Fixture(int records, uint8_t label_base) {
  std::string path = ::testing::TempDir() + "/cifar10_fixture.bin";
  std::ofstream out(path, std::ios::binary);
  for (int r = 0; r < records; ++r) {
    uint8_t label = static_cast<uint8_t>((label_base + r) % 10);
    out.put(static_cast<char>(label));
    for (int i = 0; i < data::kCifarImageBytes; ++i) {
      out.put(static_cast<char>((r * 31 + i) % 256));
    }
  }
  return path;
}

TEST(Cifar10LoaderTest, LoadsRecords) {
  std::string path = WriteCifar10Fixture(5, 3);
  auto ds = data::LoadCifar10({path});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->Size(), 5);
  EXPECT_EQ(ds->num_classes, 10);
  EXPECT_EQ(ds->Channels(), 3);
  EXPECT_EQ(ds->Height(), 32);
  EXPECT_EQ(ds->labels[0], 3);
  EXPECT_EQ(ds->labels[4], 7);
  // First pixel of record 0 was byte 0 -> normalized to -1.
  EXPECT_FLOAT_EQ(ds->images[0], -1.0f);
  // Pixel values normalized into [-1, 1].
  for (int64_t i = 0; i < ds->images.numel(); ++i) {
    EXPECT_GE(ds->images[i], -1.0f);
    EXPECT_LE(ds->images[i], 1.0f);
  }
}

TEST(Cifar10LoaderTest, ConcatenatesBatches) {
  std::string path = WriteCifar10Fixture(4, 0);
  auto ds = data::LoadCifar10({path, path});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->Size(), 8);
  EXPECT_EQ(ds->labels[0], ds->labels[4]);
}

TEST(Cifar10LoaderTest, RejectsMissingFile) {
  auto ds = data::LoadCifar10({"/nonexistent/batch.bin"});
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(Cifar10LoaderTest, RejectsCorruptSize) {
  std::string path = ::testing::TempDir() + "/corrupt.bin";
  std::ofstream(path, std::ios::binary) << "abc";
  auto ds = data::LoadCifar10({path});
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(Cifar100LoaderTest, UsesFineLabels) {
  std::string path = ::testing::TempDir() + "/cifar100_fixture.bin";
  {
    std::ofstream out(path, std::ios::binary);
    for (int r = 0; r < 3; ++r) {
      out.put(static_cast<char>(r));        // coarse label (ignored)
      out.put(static_cast<char>(40 + r));   // fine label
      for (int i = 0; i < data::kCifarImageBytes; ++i) {
        out.put(static_cast<char>(128));
      }
    }
  }
  auto ds = data::LoadCifar100(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->Size(), 3);
  EXPECT_EQ(ds->num_classes, 100);
  EXPECT_EQ(ds->labels[0], 40);
  EXPECT_EQ(ds->labels[2], 42);
}

TEST(Cifar10LoaderTest, RejectsEmptyPathList) {
  EXPECT_FALSE(data::LoadCifar10({}).ok());
}

// --------------------------------------------------------------------------
// Scheme parser

TEST(SchemeParserTest, ParsesSingleStrategy) {
  auto spec = compress::ParseStrategy("NS(HP1=0.3,HP2=0.2,HP6=0.9)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->method, "NS");
  EXPECT_EQ(spec->hp.at("HP1"), "0.3");
  EXPECT_EQ(spec->hp.at("HP6"), "0.9");
}

TEST(SchemeParserTest, ParsesMultiStepScheme) {
  auto scheme = compress::ParseScheme(
      "NS(HP1=0.3,HP2=0.2,HP6=0.9) -> SFP(HP10=1,HP2=0.12,HP9=0.4)");
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  ASSERT_EQ(scheme->size(), 2u);
  EXPECT_EQ((*scheme)[0].method, "NS");
  EXPECT_EQ((*scheme)[1].method, "SFP");
  EXPECT_EQ((*scheme)[1].hp.at("HP9"), "0.4");
}

TEST(SchemeParserTest, ToleratesWhitespace) {
  auto scheme = compress::ParseScheme(
      "  LeGR( HP1 = 0.2 , HP8 = l2_weight )  ->  QT(HP17=8, HP1=0.1) ");
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  EXPECT_EQ((*scheme)[0].hp.at("HP8"), "l2_weight");
  EXPECT_EQ((*scheme)[1].method, "QT");
}

TEST(SchemeParserTest, RoundTripsThroughToString) {
  auto scheme = compress::ParseScheme(
      "HOS(HP1=0.3,HP11=P2,HP12=skew_kur,HP13=0.4,HP14=3,HP2=0.2)");
  ASSERT_TRUE(scheme.ok());
  std::string text = compress::SchemeToString(*scheme);
  auto reparsed = compress::ParseScheme(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)[0].method, (*scheme)[0].method);
  EXPECT_EQ((*reparsed)[0].hp, (*scheme)[0].hp);
}

TEST(SchemeParserTest, ParsedSchemeInstantiates) {
  auto scheme = compress::ParseScheme("NS(HP1=0.3,HP2=0.2,HP6=0.9)");
  ASSERT_TRUE(scheme.ok());
  auto compressor = compress::CreateCompressor((*scheme)[0]);
  EXPECT_TRUE(compressor.ok()) << compressor.status().ToString();
}

TEST(SchemeParserTest, EmptyHyperparameters) {
  auto spec = compress::ParseStrategy("Foo()");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->method, "Foo");
  EXPECT_TRUE(spec->hp.empty());
}

class SchemeParserRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeParserRejectTest, RejectsMalformedInput) {
  EXPECT_FALSE(compress::ParseScheme(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SchemeParserRejectTest,
    ::testing::Values("", "NS", "NS(HP1)", "NS(HP1=0.3", "(HP1=0.3)",
                      "NS(HP1=0.3,HP1=0.5)", "NS(HP1=0.3) -> ",
                      "NS(HP = = 3)", "NS(HP1=a b)"));

}  // namespace
}  // namespace automc
