// Bitwise-identity and tuner-cache coverage for the SIMD GEMM substrate
// (tensor/simd.h, tensor/tune.h). The microkernel contract promises that
// the AVX2 path, the scalar fallback, every tile/pack parameter choice, and
// every AUTOMC_SIMD setting produce bit-identical results — so every
// comparison here is EXPECT_EQ on float bits, never EXPECT_NEAR.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tensor/tune.h"
#include "test_util.h"

namespace automc {
namespace tensor {
namespace {

using simd::GemmOp;
using simd::PackedB;
using simd::TileParams;

bool Avx2Available() {
  return simd::KernelsCompiled() && simd::HardwareOk();
}

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

// Reference result via the scalar kernel (full rows, full columns).
std::vector<float> ScalarResult(GemmOp op, const std::vector<float>& a,
                                const std::vector<float>& b, int64_t m,
                                int64_t k, int64_t n, uint64_t cseed) {
  std::vector<float> c = RandomVec(m * n, cseed);  // accumulate into noise
  simd::GemmRowsScalar(op, a.data(), b.data(), c.data(), m, k, n, 0, m);
  return c;
}

std::vector<float> Avx2Result(GemmOp op, const TileParams& p,
                              const std::vector<float>& a,
                              const std::vector<float>& b, int64_t m,
                              int64_t k, int64_t n, uint64_t cseed) {
  std::vector<float> c = RandomVec(m * n, cseed);
  PackedB pb = simd::PackB(op, b.data(), k, n, p.nv);
  simd::GemmRowsAvx2(op, p, a.data(), pb, b.data(), c.data(), m, k, n, 0, m);
  return c;
}

void ExpectBitwiseEqual(const std::vector<float>& x,
                        const std::vector<float>& y, const std::string& tag) {
  ASSERT_EQ(x.size(), y.size()) << tag;
  for (size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(x[i], y[i]) << tag << " element " << i;
    // NaN-safe bit check on top of value equality.
    uint32_t xb, yb;
    std::memcpy(&xb, &x[i], 4);
    std::memcpy(&yb, &y[i], 4);
    ASSERT_EQ(xb, yb) << tag << " bits at " << i;
  }
}

// Randomized shapes — including n % 8 tails, m % mr tails, k == 1, and
// single-panel widths — must be bitwise identical between the scalar chain
// and the packed AVX2 kernels for every op and a spread of tilings.
TEST(SimdKernelTest, Avx2MatchesScalarBitwiseAcrossShapes) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA at runtime";
  const struct {
    int64_t m, k, n;
  } kShapes[] = {{1, 1, 1},    {3, 5, 7},    {4, 27, 64},  {5, 9, 8},
                 {6, 16, 23},  {8, 72, 16},  {11, 13, 40}, {16, 144, 4},
                 {17, 31, 57}, {32, 288, 1}, {33, 29, 65}, {64, 64, 64}};
  const TileParams kTiles[] = {
      {1, 1, 0}, {4, 2, 0}, {4, 3, 7}, {5, 2, 16}, {6, 1, 3}, {6, 2, 0}};
  uint64_t seed = 1;
  for (GemmOp op : {GemmOp::kNormal, GemmOp::kTransposeA, GemmOp::kTransposeB}) {
    for (const auto& s : kShapes) {
      std::vector<float> a =
          RandomVec(s.m * s.k, seed++);  // layout superset: k*m == m*k
      std::vector<float> b = RandomVec(s.k * s.n, seed++);
      std::vector<float> ref =
          ScalarResult(op, a, b, s.m, s.k, s.n, /*cseed=*/99);
      for (const auto& p : kTiles) {
        std::vector<float> got =
            Avx2Result(op, p, a, b, s.m, s.k, s.n, /*cseed=*/99);
        ExpectBitwiseEqual(ref, got,
                           "op=" + std::to_string(static_cast<int>(op)) +
                               " m=" + std::to_string(s.m) +
                               " k=" + std::to_string(s.k) +
                               " n=" + std::to_string(s.n) +
                               " mr=" + std::to_string(p.mr) +
                               " nv=" + std::to_string(p.nv) +
                               " kc=" + std::to_string(p.kc));
      }
    }
  }
}

// The dispatched entry points (what layers actually call) must not depend
// on which tile the tuner picked: force different tilings through the
// override hook and compare full GEMM outputs bitwise.
TEST(SimdKernelTest, DispatchedGemmInvariantUnderTileOverride) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA at runtime";
  Rng rng(17);
  Tensor a = Tensor::Randn({37, 29}, &rng);
  Tensor b = Tensor::Randn({29, 43}, &rng);
  auto run = [&](const TileParams& p) {
    simd::SetTileOverrideForTest(p);
    Tensor c = MatMul(a, b);
    simd::ClearTileOverrideForTest();
    return std::vector<float>(c.data(), c.data() + c.numel());
  };
  std::vector<float> base = run({4, 2, 0});
  for (const TileParams& p :
       {TileParams{1, 1, 0}, TileParams{4, 3, 8}, TileParams{6, 2, 13}}) {
    std::vector<float> other = run(p);
    ExpectBitwiseEqual(base, other, "tile override sweep");
  }
}

// COW buffers (and therefore every tensor's data()) must start on a cache
// line so the packed kernels' aligned loads are safe against buffer starts.
TEST(SimdKernelTest, TensorBuffersAre64ByteAligned) {
  for (int64_t n : {1, 7, 64, 1000}) {
    Tensor t({n});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u) << n;
  }
}

int64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

class TuneCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA at runtime";
    dir_ = std::make_unique<automc::testing::ScopedTempDir>("tune");
    cache_path_ = (dir_->path() / "tune.bin").string();
    ::setenv("AUTOMC_TUNE_CACHE", cache_path_.c_str(), 1);
    simd::ResetTunerForTest();
  }
  void TearDown() override {
    ::unsetenv("AUTOMC_TUNE_CACHE");
    simd::ResetTunerForTest();
  }

  std::unique_ptr<automc::testing::ScopedTempDir> dir_;
  std::string cache_path_;
};

TEST_F(TuneCacheTest, RoundTripSkipsProbesAndPreservesChoice) {
  int64_t probes0 = CounterValue("simd.tune_probes");
  TileParams first = simd::ChooseTile(GemmOp::kNormal, 40, 30, 50);
  int64_t probes1 = CounterValue("simd.tune_probes");
  EXPECT_GT(probes1, probes0);  // first touch benchmarks the grid
  ASSERT_TRUE(std::filesystem::exists(cache_path_));

  // Same shape class again in the same process: in-memory hit, no probes.
  int64_t hits0 = CounterValue("simd.tune_hits");
  TileParams again = simd::ChooseTile(GemmOp::kNormal, 41, 31, 51);
  EXPECT_EQ(CounterValue("simd.tune_probes"), probes1);
  EXPECT_GT(CounterValue("simd.tune_hits"), hits0);
  EXPECT_EQ(again.mr, first.mr);
  EXPECT_EQ(again.nv, first.nv);
  EXPECT_EQ(again.kc, first.kc);

  // Fresh tuner (a new process, in effect): the on-disk table answers and
  // the exact same tile comes back without re-probing.
  simd::ResetTunerForTest();
  TileParams loaded = simd::ChooseTile(GemmOp::kNormal, 40, 30, 50);
  EXPECT_EQ(CounterValue("simd.tune_probes"), probes1);
  EXPECT_EQ(loaded.mr, first.mr);
  EXPECT_EQ(loaded.nv, first.nv);
  EXPECT_EQ(loaded.kc, first.kc);
}

TEST_F(TuneCacheTest, CorruptAndTruncatedFilesAreIgnoredAndRewritten) {
  simd::ChooseTile(GemmOp::kTransposeB, 24, 36, 48);
  ASSERT_TRUE(std::filesystem::exists(cache_path_));

  // Flip a payload byte: CRC fails, loader ignores the file, tuner
  // re-probes and the next save writes a valid file again.
  {
    std::fstream f(cache_path_, std::ios::in | std::ios::out |
                                    std::ios::binary);
    f.seekp(9);
    char junk = 0x5a;
    f.write(&junk, 1);
  }
  simd::ResetTunerForTest();
  int64_t probes0 = CounterValue("simd.tune_probes");
  simd::ChooseTile(GemmOp::kTransposeB, 24, 36, 48);
  EXPECT_GT(CounterValue("simd.tune_probes"), probes0);

  // Truncate below the header: also ignored, no crash.
  std::filesystem::resize_file(cache_path_, 6);
  simd::ResetTunerForTest();
  probes0 = CounterValue("simd.tune_probes");
  simd::ChooseTile(GemmOp::kTransposeB, 24, 36, 48);
  EXPECT_GT(CounterValue("simd.tune_probes"), probes0);

  // The rewrite after recovery must round-trip.
  simd::ResetTunerForTest();
  probes0 = CounterValue("simd.tune_probes");
  simd::ChooseTile(GemmOp::kTransposeB, 24, 36, 48);
  EXPECT_EQ(CounterValue("simd.tune_probes"), probes0);
}

// Full training run (conv + linear forward/backward, every GEMM op) under
// AUTOMC_SIMD=0 vs =1: final loss, test accuracy, and every trained
// parameter must be bit-identical.
struct TrainResult {
  float loss = 0.0f;
  double acc = 0.0;
  std::vector<std::vector<float>> params;
};

TrainResult TrainSmallModel() {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 10;
  cfg.test_per_class = 4;
  cfg.seed = 91;
  data::TaskData task = data::MakeSyntheticTask(cfg);

  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.num_classes = 3;
  spec.base_width = 4;
  Rng rng(3);
  auto model = std::move(nn::BuildModel(spec, &rng)).value();

  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 10;
  nn::Trainer trainer(tc);
  TrainResult r;
  AUTOMC_CHECK(
      trainer.Fit(model.get(), task.train, nullptr, nullptr, &r.loss).ok());
  r.acc = nn::Trainer::Evaluate(model.get(), task.test);
  for (nn::Param* p : model->Params()) {
    r.params.emplace_back(p->value.data(),
                          p->value.data() + p->value.numel());
  }
  return r;
}

TEST(SimdKernelTest, SimdEnvToggleIsBitwiseInvariantThroughTraining) {
  if (!Avx2Available()) {
    GTEST_SKIP() << "only one mode reachable at runtime";
  }
  ::setenv("AUTOMC_SIMD", "1", 1);
  simd::RefreshDispatch();
  ASSERT_EQ(simd::ActiveMode(), simd::SimdMode::kAvx2);
  TrainResult vec = TrainSmallModel();

  ::setenv("AUTOMC_SIMD", "0", 1);
  simd::RefreshDispatch();
  ASSERT_EQ(simd::ActiveMode(), simd::SimdMode::kScalarHwFma);
  TrainResult scal = TrainSmallModel();

  ::unsetenv("AUTOMC_SIMD");
  simd::RefreshDispatch();

  EXPECT_EQ(vec.loss, scal.loss);
  EXPECT_EQ(vec.acc, scal.acc);
  ASSERT_EQ(vec.params.size(), scal.params.size());
  for (size_t i = 0; i < vec.params.size(); ++i) {
    ExpectBitwiseEqual(vec.params[i], scal.params[i],
                       "param " + std::to_string(i));
  }
}

}  // namespace
}  // namespace tensor
}  // namespace automc
