// End-to-end coverage of the automc_serve subsystem: framed protocol over a
// real Unix-domain socket, the durable job lifecycle, and the determinism
// contract — an outcome fetched from the server is bit-identical to a
// direct in-process RunSearch of the same spec, including under concurrent
// jobs, cancellation, graceful drain, and crash-recovery restarts.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/net.h"
#include "core/run_spec.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "search/report.h"
#include "server/job_manager.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"

namespace automc {
namespace {

using server::Client;
using server::JobState;
using testing::ScopedTempDir;

// Small enough that a full search runs in a second or two, large enough
// (via `budget`) to span several evaluation rounds.
core::RunSpec TinySpec(uint64_t seed, int budget) {
  core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = budget;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = seed;
  return spec;
}

// The reference result: a direct, in-process run of the same spec.
std::string DirectOutcomeBytes(const core::RunSpec& spec) {
  auto result = core::RunSearch(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return search::SaveOutcomeBytes(result->outcome);
}

Result<server::JobInfo> PollUntil(Client* client, uint64_t id,
                                  const std::function<bool(JobState)>& pred,
                                  double timeout_s = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    AUTOMC_ASSIGN_OR_RETURN(server::JobInfo info, client->JobStatus(id));
    if (pred(info.state)) return info;
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal(std::string("timed out waiting; job is ") +
                              server::JobStateName(info.state));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(ProtocolTest, FrameRoundTripAndCorruptionOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  std::string payload = "hello automc";
  ASSERT_TRUE(
      server::WriteFrame(fds[0], server::MsgType::kGetMetrics, payload).ok());
  auto frame = server::ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type,
            static_cast<uint32_t>(server::MsgType::kGetMetrics));
  EXPECT_EQ(frame->payload, payload);

  // Bad magic is garbage, not EOF.
  const char junk[16] = "###garbage####";
  ASSERT_EQ(::write(fds[0], junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  auto bad = server::ReadFrame(fds[1]);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);

  // A close at a frame boundary is NotFound (clean EOF), distinct from the
  // InvalidArgument garbage above.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  auto eof = server::ReadFrame(fds[1]);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fds[1]);
}

TEST(ProtocolTest, TruncatedFrameIsInvalidNotEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A valid header promising 100 payload bytes, then EOF after 3.
  ByteWriter w;
  w.U32(server::kFrameMagic);
  w.U32(static_cast<uint32_t>(server::MsgType::kListJobs));
  w.U32(100);
  w.Raw("abc", 3);
  ASSERT_EQ(::write(fds[0], w.str().data(), w.str().size()),
            static_cast<ssize_t>(w.str().size()));
  ::close(fds[0]);
  auto truncated = server::ReadFrame(fds[1]);
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
  ::close(fds[1]);
}

TEST(ProtocolTest, FrameDecoderReassemblesSplitFramesAndPoisonsOnGarbage) {
  using server::FrameDecoder;
  // Two frames dribbled in one-byte feeds: the decoder must emit exactly
  // two kFrame events, in order, with kNeedMore everywhere in between.
  const std::string wire =
      server::EncodeFrame(server::MsgType::kListJobs, "") +
      server::EncodeFrame(server::MsgType::kGetMetrics, "payload!");
  FrameDecoder decoder;
  std::vector<server::Frame> frames;
  for (char byte : wire) {
    decoder.Feed(&byte, 1);
    server::Frame frame;
    Status error;
    while (decoder.Next(&frame, &error) == FrameDecoder::Event::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_TRUE(error.ok()) << error.ToString();
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, static_cast<uint32_t>(server::MsgType::kListJobs));
  EXPECT_EQ(frames[1].type,
            static_cast<uint32_t>(server::MsgType::kGetMetrics));
  EXPECT_EQ(frames[1].payload, "payload!");
  EXPECT_FALSE(decoder.mid_frame());

  // A header promising more than the payload cap poisons the decoder
  // permanently — framing is unrecoverable after a violation.
  FrameDecoder poisoned;
  ByteWriter w;
  w.U32(server::kFrameMagic);
  w.U32(static_cast<uint32_t>(server::MsgType::kListJobs));
  w.U32(server::kMaxFramePayload + 1);
  poisoned.Feed(w.str().data(), w.str().size());
  server::Frame frame;
  Status error;
  ASSERT_EQ(poisoned.Next(&frame, &error), FrameDecoder::Event::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("cap"), std::string::npos) << error.message();
  // Still dead on the next call, even after more (valid-looking) bytes.
  poisoned.Feed(wire.data(), wire.size());
  EXPECT_EQ(poisoned.Next(&frame, &error), FrameDecoder::Event::kError);

  FrameDecoder garbage;
  garbage.Feed("not a frame at all##", 20);
  ASSERT_EQ(garbage.Next(&frame, &error), FrameDecoder::Event::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, TcpTransportServesByteIdenticalOutcomes) {
  ScopedTempDir dir("server_tcp");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.tcp_address = "tcp:127.0.0.1:0";  // kernel-assigned port
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  const std::string tcp = (*srv)->tcp_address();
  ASSERT_EQ(tcp.rfind("tcp:127.0.0.1:", 0), 0u) << tcp;
  ASSERT_NE(tcp, "tcp:127.0.0.1:0") << "port was not resolved";

  auto client = Client::Connect(tcp);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec = TinySpec(/*seed=*/61, /*budget=*/4);
  auto id = client->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto done = PollUntil(&*client, *id, server::JobStateIsTerminal);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, JobState::kDone) << done->error;
  auto bytes = client->FetchOutcomeBytes(*id);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(*bytes, DirectOutcomeBytes(spec))
      << "TCP-served outcome differs from direct in-process run";

  // Both transports front the same job manager: the unix socket sees the
  // TCP-submitted job.
  auto unix_client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(unix_client.ok());
  auto list = unix_client->ListJobs();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].id, *id);
  (*srv)->Stop();
}

TEST(ServerTest, DribbledAndHalfClosedFramesAreStillServed) {
  ScopedTempDir dir("server_dribble");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.tcp_address = "tcp:127.0.0.1:0";
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  // One byte per write over TCP: the event loop must buffer partial frames
  // across reads and answer once the frame completes.
  auto fd = net::ConnectAddress((*srv)->tcp_address());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string wire = server::EncodeFrame(server::MsgType::kListJobs, "");
  for (char byte : wire) {
    ASSERT_EQ(::send(*fd, &byte, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto reply = server::ReadFrame(*fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint32_t>(server::MsgType::kJobList));
  ::close(*fd);

  // Request-then-half-close: shutdown(SHUT_WR) right after the request is
  // the classic one-shot client; the buffered frame must still be served.
  auto fd2 = net::ConnectAddress((*srv)->tcp_address());
  ASSERT_TRUE(fd2.ok());
  ASSERT_EQ(::send(*fd2, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  ASSERT_EQ(::shutdown(*fd2, SHUT_WR), 0);
  auto oneshot = server::ReadFrame(*fd2);
  ASSERT_TRUE(oneshot.ok()) << oneshot.status().ToString();
  EXPECT_EQ(oneshot->type, static_cast<uint32_t>(server::MsgType::kJobList));
  ::close(*fd2);
  (*srv)->Stop();
}

TEST(ServerTest, OversizedPayloadGetsTypedErrorFrame) {
  ScopedTempDir dir("server_cap");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto fd = net::ConnectAddress(opts.socket_path);
  ASSERT_TRUE(fd.ok());
  // A header whose size field exceeds the cap — sent without any payload;
  // the server must reply with a typed kError frame (not silently drop the
  // connection) and then close.
  ByteWriter w;
  w.U32(server::kFrameMagic);
  w.U32(static_cast<uint32_t>(server::MsgType::kSubmitJob));
  w.U32(server::kMaxFramePayload + 1);
  ASSERT_EQ(::send(*fd, w.str().data(), w.str().size(), 0),
            static_cast<ssize_t>(w.str().size()));
  auto reply = server::ReadFrame(*fd);
  ASSERT_TRUE(reply.ok()) << "expected a typed error frame, got: "
                          << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint32_t>(server::MsgType::kError));
  Status decoded = server::DecodeError(reply->payload);
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.message().find("cap"), std::string::npos)
      << decoded.message();
  // The violation closes the connection once the error frame is flushed.
  auto eof = server::ReadFrame(*fd);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(*fd);
  (*srv)->Stop();
}

TEST(ServerTest, IdleConnectionsAreReapedBySweep) {
  ScopedTempDir dir("server_idle");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  opts.idle_timeout_s = 1;
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  const int64_t reaped_before = metrics::MetricsRegistry::Global()
                                    .GetCounter("server.idle_reaped")
                                    .value();
  // A half-open connection that never sends a byte (slow-loris shape):
  // the sweep must close it shortly after the timeout.
  auto fd = net::ConnectAddress(opts.socket_path);
  ASSERT_TRUE(fd.ok());
  const auto start = std::chrono::steady_clock::now();
  auto reply = server::ReadFrame(*fd);  // blocks until the server closes us
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound)
      << reply.status().ToString();
  EXPECT_LT(waited, 10.0) << "idle reap took too long";
  ::close(*fd);
  EXPECT_GT(metrics::MetricsRegistry::Global()
                .GetCounter("server.idle_reaped")
                .value(),
            reaped_before);

  // An active connection with the same lifetime is untouched.
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->ListJobs().ok()) << "active connection was reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
  }
  (*srv)->Stop();
}

TEST(ServerTest, SubmitPollFetchMatchesDirectRun) {
  ScopedTempDir dir("server_rt");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  opts.jobs.max_concurrent = 1;
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec = TinySpec(/*seed=*/7, /*budget=*/4);
  auto id = client->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto done = PollUntil(&*client, *id, server::JobStateIsTerminal);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, JobState::kDone) << done->error;
  EXPECT_EQ(done->executions, 4);
  EXPECT_NE(done->summary.find("random vgg-13 tiny"), std::string::npos);

  auto bytes = client->FetchOutcomeBytes(*id);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(*bytes, DirectOutcomeBytes(spec))
      << "server outcome differs from direct in-process run";

  // The fetched payload decodes back into a structurally sane outcome.
  auto outcome = search::LoadOutcomeBytes(*bytes);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->executions, 4);
  EXPECT_FALSE(outcome->pareto_points.empty());

  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("server.requests"), std::string::npos);
  (*srv)->Stop();
}

// The determinism contract extended to model bytes: the "job-<id>" artifact
// a finished job publishes is bit-identical to MaterializeScheme of the
// winning pareto scheme, over both transports, and loads back through
// nn/serialize.
TEST(ServerTest, FetchedModelMatchesDirectMaterialization) {
  ScopedTempDir dir("server_model");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.tcp_address = "tcp:127.0.0.1:0";
  opts.jobs.workdir = dir.File("wd");
  opts.jobs.artifact_dir = dir.File("artifacts");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec = TinySpec(/*seed=*/31, /*budget=*/4);
  auto id = client->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto done = PollUntil(&*client, *id, server::JobStateIsTerminal);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, JobState::kDone) << done->error;

  // Reference: a direct in-process run of the same spec, winner picked and
  // materialized by the exact recipe the server uses.
  auto direct = core::RunSearch(spec);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto winner = core::PickWinningScheme(direct->outcome);
  ASSERT_TRUE(winner.ok()) << winner.status().ToString();
  const std::vector<int>& scheme = direct->outcome.pareto_schemes[*winner];
  auto model = core::MaterializeScheme(spec, scheme);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::ostringstream want;
  ASSERT_TRUE(nn::SerializeModel(model->get(), &want).ok());

  const std::string name = "job-" + std::to_string(*id);
  for (const std::string& address :
       {opts.socket_path, (*srv)->tcp_address()}) {
    auto conn = Client::Connect(address);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    std::string got;
    auto info = conn->FetchModel(name, [&](std::string_view chunk) {
      got.append(chunk);
      return Status::OK();
    });
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(got, want.str())
        << "fetched model differs from direct materialization over "
        << address;
    EXPECT_EQ(info->job_id, *id);
    EXPECT_EQ(info->scheme, core::SchemeIndicesToString(scheme));
    EXPECT_EQ(info->acc, direct->outcome.pareto_points[*winner].acc);
  }

  // The streamed file round-trips through nn/serialize.
  const std::string path = dir.File("fetched.model");
  ASSERT_TRUE(client->FetchModelToFile(name, path).ok());
  auto reloaded = nn::LoadModel(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  std::ostringstream again;
  ASSERT_TRUE(nn::SerializeModel(reloaded->get(), &again).ok());
  EXPECT_EQ(again.str(), want.str());
  (*srv)->Stop();
}

TEST(ServerTest, TwoConcurrentJobsStayBitIdentical) {
  ScopedTempDir dir("server_conc");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  opts.jobs.max_concurrent = 2;
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec_a = TinySpec(/*seed=*/11, /*budget=*/4);
  const core::RunSpec spec_b = TinySpec(/*seed=*/23, /*budget=*/6);
  auto id_a = client->Submit(spec_a);
  auto id_b = client->Submit(spec_b);
  ASSERT_TRUE(id_a.ok() && id_b.ok());

  ASSERT_TRUE((*srv)->jobs()->WaitIdle(/*timeout_seconds=*/120.0));
  auto bytes_a = client->FetchOutcomeBytes(*id_a);
  auto bytes_b = client->FetchOutcomeBytes(*id_b);
  ASSERT_TRUE(bytes_a.ok()) << bytes_a.status().ToString();
  ASSERT_TRUE(bytes_b.ok()) << bytes_b.status().ToString();
  // Both jobs ran on overlapping job threads; neither may perturb the other.
  EXPECT_EQ(*bytes_a, DirectOutcomeBytes(spec_a));
  EXPECT_EQ(*bytes_b, DirectOutcomeBytes(spec_b));
  (*srv)->Stop();
}

TEST(ServerTest, CancelStopsARunningJob) {
  ScopedTempDir dir("server_cancel");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());
  // A budget large enough that the search is still running when the cancel
  // lands (cooperative: it stops at the next evaluation round).
  auto id = client->Submit(TinySpec(/*seed=*/3, /*budget=*/500));
  ASSERT_TRUE(id.ok());
  auto running = PollUntil(&*client, *id, [](JobState s) {
    return s == JobState::kRunning;
  });
  ASSERT_TRUE(running.ok()) << running.status().ToString();

  ASSERT_TRUE(client->Cancel(*id).ok());
  auto ended = PollUntil(&*client, *id, server::JobStateIsTerminal);
  ASSERT_TRUE(ended.ok()) << ended.status().ToString();
  EXPECT_EQ(ended->state, JobState::kCancelled);
  // No outcome to fetch from a cancelled job.
  EXPECT_FALSE(client->FetchOutcomeBytes(*id).ok());
  // Cancelling a terminal job is an error, not a state change.
  EXPECT_FALSE(client->Cancel(*id).ok());
  (*srv)->Stop();
}

TEST(ServerTest, GarbageFramesCloseOnlyTheBadConnection) {
  ScopedTempDir dir("server_garbage");
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  // Raw connection spewing garbage: the server must answer with an error
  // frame (or just close) without taking down the accept loop.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[32] = "this is not a protocol frame...";
  ASSERT_EQ(::write(fd, junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  auto reply = server::ReadFrame(fd);
  if (reply.ok()) {
    EXPECT_EQ(reply->type, static_cast<uint32_t>(server::MsgType::kError));
  }
  ::close(fd);

  // An unknown request type on a well-formed frame is an error *reply* and
  // the connection survives for the next request.
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());
  auto unknown = client->Call(static_cast<server::MsgType>(77), "");
  EXPECT_FALSE(unknown.ok());
  auto list = client->ListJobs();
  ASSERT_TRUE(list.ok()) << "connection died after an unknown-type request: "
                         << list.status().ToString();
  EXPECT_TRUE(list->empty());

  // And a fresh connection is served as if nothing happened.
  auto fresh = Client::Connect(opts.socket_path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ListJobs().ok());
  (*srv)->Stop();
}

TEST(ServerTest, QueuedJobsSurviveARestart) {
  ScopedTempDir dir("server_requeue");
  const core::RunSpec spec_a = TinySpec(/*seed=*/31, /*budget=*/4);
  const core::RunSpec spec_b = TinySpec(/*seed=*/37, /*budget=*/4);
  uint64_t id_a = 0, id_b = 0;
  {
    // start_paused: jobs are durably accepted but never started — the disk
    // state a server killed right after two submits leaves behind.
    server::JobManager::Options jopts;
    jopts.workdir = dir.File("wd");
    jopts.start_paused = true;
    auto mgr = server::JobManager::Open(jopts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    auto a = (*mgr)->Submit(spec_a);
    auto b = (*mgr)->Submit(spec_b);
    ASSERT_TRUE(a.ok() && b.ok());
    id_a = *a;
    id_b = *b;
  }
  // "Restarted" manager: recovery re-queues and completes both.
  server::JobManager::Options jopts;
  jopts.workdir = dir.File("wd");
  auto mgr = server::JobManager::Open(jopts);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  ASSERT_TRUE((*mgr)->WaitIdle(/*timeout_seconds=*/120.0));
  auto bytes_a = (*mgr)->OutcomeBytes(id_a);
  auto bytes_b = (*mgr)->OutcomeBytes(id_b);
  ASSERT_TRUE(bytes_a.ok()) << bytes_a.status().ToString();
  ASSERT_TRUE(bytes_b.ok()) << bytes_b.status().ToString();
  EXPECT_EQ(*bytes_a, DirectOutcomeBytes(spec_a));
  EXPECT_EQ(*bytes_b, DirectOutcomeBytes(spec_b));
}

TEST(ServerTest, RunningJobResumesFromCheckpointAfterCrash) {
  ScopedTempDir dir("server_crash");
  const core::RunSpec spec = TinySpec(/*seed=*/41, /*budget=*/8);
  uint64_t id = 0;
  {
    // Fault injection: the job's checkpointer dies after one successful
    // write, leaving exactly what SIGKILL leaves — state RUNNING on disk
    // with a valid mid-search checkpoint and store beside it.
    server::JobManager::Options jopts;
    jopts.workdir = dir.File("wd");
    jopts.crash_after_checkpoints = 1;
    auto mgr = server::JobManager::Open(jopts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    auto submitted = (*mgr)->Submit(spec);
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
    ASSERT_TRUE((*mgr)->WaitIdle(/*timeout_seconds=*/120.0));
    // In-memory the job failed; durably it is still RUNNING.
    auto info = (*mgr)->Info(id);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->state, JobState::kFailed);
  }
  server::JobManager::Options jopts;
  jopts.workdir = dir.File("wd");
  auto mgr = server::JobManager::Open(jopts);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  ASSERT_TRUE((*mgr)->WaitIdle(/*timeout_seconds=*/120.0));
  auto info = (*mgr)->Info(id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, JobState::kDone) << info->error;
  auto bytes = (*mgr)->OutcomeBytes(id);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, DirectOutcomeBytes(spec))
      << "crash-resumed outcome differs from an uninterrupted run";
}

TEST(ServerTest, GracefulDrainParksAndANewServerFinishes) {
  ScopedTempDir dir("server_drain");
  const core::RunSpec spec = TinySpec(/*seed=*/43, /*budget=*/200);
  uint64_t id = 0;
  {
    server::Server::Options opts;
    opts.socket_path = dir.File("a.sock");
    opts.jobs.workdir = dir.File("wd");
    auto srv = server::Server::Start(opts);
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    auto client = Client::Connect(opts.socket_path);
    ASSERT_TRUE(client.ok());
    auto submitted = client->Submit(spec);
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
    auto running = PollUntil(&*client, id, [](JobState s) {
      return s == JobState::kRunning;
    });
    ASSERT_TRUE(running.ok()) << running.status().ToString();
    (*srv)->Stop();  // graceful: checkpoints and re-queues the running job
  }
  server::Server::Options opts;
  opts.socket_path = dir.File("b.sock");
  opts.jobs.workdir = dir.File("wd");
  auto srv = server::Server::Start(opts);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  ASSERT_TRUE((*srv)->jobs()->WaitIdle(/*timeout_seconds=*/300.0));
  auto info = (*srv)->jobs()->Info(id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, JobState::kDone) << info->error;
  auto bytes = (*srv)->jobs()->OutcomeBytes(id);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, DirectOutcomeBytes(spec))
      << "drain-resumed outcome differs from an uninterrupted run";
  (*srv)->Stop();
}

TEST(ServerTest, SubmitValidatesAndBoundsTheQueue) {
  ScopedTempDir dir("server_bounds");
  server::JobManager::Options jopts;
  jopts.workdir = dir.File("wd");
  jopts.start_paused = true;  // nothing drains, so the bound is exact
  jopts.queue_capacity = 2;
  auto mgr = server::JobManager::Open(jopts);
  ASSERT_TRUE(mgr.ok());

  core::RunSpec bad = TinySpec(/*seed=*/1, /*budget=*/4);
  bad.searcher = "not_a_searcher";
  EXPECT_EQ((*mgr)->Submit(bad).status().code(),
            StatusCode::kInvalidArgument);

  const core::RunSpec good = TinySpec(/*seed=*/1, /*budget=*/4);
  EXPECT_TRUE((*mgr)->Submit(good).ok());
  EXPECT_TRUE((*mgr)->Submit(good).ok());
  auto full = (*mgr)->Submit(good);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kFailedPrecondition);

  EXPECT_EQ((*mgr)->List().size(), 2u);
  EXPECT_EQ((*mgr)->Info(999).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace automc
