#include <memory>

#include "compress/compressor.h"
#include "compress/decompose.h"
#include "compress/lowrank_apply.h"
#include "compress/methods.h"
#include "compress/surgery.h"
#include "compress/taylor.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {
namespace {

using tensor::Tensor;

nn::ModelSpec SmallSpec(const std::string& family, int depth,
                        int num_classes = 4) {
  nn::ModelSpec s;
  s.family = family;
  s.depth = depth;
  s.num_classes = num_classes;
  s.base_width = 4;
  s.in_channels = 3;
  s.image_size = 8;
  return s;
}

std::unique_ptr<nn::Model> MakeModel(const std::string& family, int depth,
                                     uint64_t seed = 1, int num_classes = 4) {
  Rng rng(seed);
  auto model = nn::BuildModel(SmallSpec(family, depth, num_classes), &rng);
  AUTOMC_CHECK(model.ok());
  return std::move(model).value();
}

data::TaskData SmallTask() {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 16;
  cfg.test_per_class = 6;
  cfg.noise = 0.3f;
  cfg.seed = 99;
  return MakeSyntheticTask(cfg);
}

// --------------------------------------------------------------------------
// Surgery

TEST(SurgeryTest, ResNetPrunableUnitCount) {
  auto model = MakeModel("resnet", 20);
  auto units = CollectPrunableUnits(model.get());
  // 9 basic blocks, one internal conv each.
  EXPECT_EQ(units.size(), 9u);
  for (const auto& u : units) {
    EXPECT_NE(u.conv, nullptr);
    EXPECT_NE(u.bn, nullptr);
    EXPECT_NE(u.next_conv, nullptr);
    EXPECT_EQ(u.next_linear, nullptr);
  }
}

TEST(SurgeryTest, BottleneckHasTwoUnitsPerBlock) {
  auto model = MakeModel("resnet", 164);
  auto units = CollectPrunableUnits(model.get());
  EXPECT_EQ(units.size(), 2u * 54u);
}

TEST(SurgeryTest, VggPrunableUnitCount) {
  auto model = MakeModel("vgg", 13);
  auto units = CollectPrunableUnits(model.get());
  // 10 convs: 9 feed the next conv, the last feeds the classifier.
  EXPECT_EQ(units.size(), 10u);
  EXPECT_NE(units.back().next_linear, nullptr);
}

TEST(SurgeryTest, PruningZeroFiltersPreservesFunction) {
  auto model = MakeModel("vgg", 13);
  auto units = CollectPrunableUnits(model.get());
  PrunableUnit unit = units[2];
  int64_t n = unit.conv->out_channels();
  ASSERT_GE(n, 4);
  // Zero filter 1's weights and BN affine params -> its output contribution
  // vanishes in eval mode.
  int64_t fsize =
      unit.conv->in_channels() * unit.conv->kernel() * unit.conv->kernel();
  float* w = unit.conv->weight().value.MutableData() + 1 * fsize;
  std::fill(w, w + fsize, 0.0f);
  unit.bn->gamma().value[1] = 0.0f;
  unit.bn->beta().value[1] = 0.0f;

  Rng rng(3);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor before = model->Forward(x, false);

  std::vector<int64_t> keep;
  for (int64_t f = 0; f < n; ++f) {
    if (f != 1) keep.push_back(f);
  }
  ASSERT_TRUE(PruneUnitFilters(unit, keep).ok());
  Tensor after = model->Forward(x, false);
  ASSERT_EQ(before.numel(), after.numel());
  for (int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-4);
  }
}

TEST(SurgeryTest, PruneUnitValidation) {
  auto model = MakeModel("resnet", 20);
  auto units = CollectPrunableUnits(model.get());
  EXPECT_FALSE(PruneUnitFilters(units[0], {}).ok());
  EXPECT_FALSE(PruneUnitFilters(units[0], {999}).ok());
}

class GlobalPruneTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(GlobalPruneTargetTest, HitsTargetWithinOneFilter) {
  double target = GetParam();
  auto model = MakeModel("vgg", 13);
  int64_t params0 = model->ParamCount();
  GlobalPruneOptions opts;
  opts.target_param_fraction = target;
  ASSERT_TRUE(GlobalStructuredPrune(model.get(), opts, FilterL2).ok());
  double achieved = 1.0 - static_cast<double>(model->ParamCount()) / params0;
  EXPECT_GE(achieved, target - 0.05);
  EXPECT_LE(achieved, target + 0.1);
  // Model must still run.
  Rng rng(4);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
  Tensor y = model->Forward(x, false);
  EXPECT_EQ(y.size(1), 4);
}

INSTANTIATE_TEST_SUITE_P(Targets, GlobalPruneTargetTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4));

TEST(GlobalPruneTest, RespectsPerLayerCap) {
  auto model = MakeModel("vgg", 13);
  auto units_before = CollectPrunableUnits(model.get());
  std::vector<int64_t> orig;
  for (auto& u : units_before) orig.push_back(u.conv->out_channels());
  GlobalPruneOptions opts;
  opts.target_param_fraction = 0.6;
  opts.max_prune_ratio_per_layer = 0.5;
  ASSERT_TRUE(GlobalStructuredPrune(model.get(), opts, FilterL2).ok());
  auto units_after = CollectPrunableUnits(model.get());
  for (size_t i = 0; i < units_after.size(); ++i) {
    double pruned =
        1.0 - static_cast<double>(units_after[i].conv->out_channels()) /
                  orig[i];
    EXPECT_LE(pruned, 0.5 + 1e-9);
  }
}

TEST(GlobalPruneTest, RejectsBadFraction) {
  auto model = MakeModel("vgg", 13);
  GlobalPruneOptions opts;
  opts.target_param_fraction = 0.0;
  EXPECT_FALSE(GlobalStructuredPrune(model.get(), opts, FilterL2).ok());
  opts.target_param_fraction = 1.0;
  EXPECT_FALSE(GlobalStructuredPrune(model.get(), opts, FilterL2).ok());
}

TEST(UniformPruneTest, RemovesSameFractionPerUnit) {
  auto model = MakeModel("vgg", 16);
  auto units = CollectPrunableUnits(model.get());
  std::vector<int64_t> orig;
  for (auto& u : units) orig.push_back(u.conv->out_channels());
  ASSERT_TRUE(UniformStructuredPrune(model.get(), 0.25, FilterL2).ok());
  units = CollectPrunableUnits(model.get());
  for (size_t i = 0; i < units.size(); ++i) {
    int64_t expected =
        std::max<int64_t>(2, orig[i] - static_cast<int64_t>(0.25 * orig[i]));
    EXPECT_EQ(units[i].conv->out_channels(), expected);
  }
}

TEST(SurgeryTest, ReplaceAllActivationsOnBothFamilies) {
  for (auto family_depth :
       {std::make_pair(std::string("resnet"), 20),
        std::make_pair(std::string("vgg"), 13)}) {
    auto model = MakeModel(family_depth.first, family_depth.second);
    int64_t params_before = model->ParamCount();
    nn::LMAActivation proto(4);
    ReplaceAllActivations(model.get(), proto);
    EXPECT_GT(model->ParamCount(), params_before);
    Rng rng(5);
    Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
    Tensor y = model->Forward(x, false);
    EXPECT_TRUE(std::isfinite(y[0]));
  }
}

// --------------------------------------------------------------------------
// Decomposition

TEST(DecomposeTest, SvdFullRankMatchesOriginal) {
  Rng rng(6);
  nn::Conv2d conv(3, 4, 3, 1, 1, true, &rng);
  for (int64_t i = 0; i < 4; ++i) conv.bias().value[i] = 0.1f * i;
  auto lr = SvdDecomposeConv(conv, 4);  // rank = out_channels (full)
  Tensor x = Tensor::Randn({2, 3, 5, 5}, &rng);
  Tensor y0 = conv.Forward(x, false);
  Tensor y1 = lr->Forward(x, false);
  for (int64_t i = 0; i < y0.numel(); ++i) EXPECT_NEAR(y0[i], y1[i], 1e-3);
}

TEST(DecomposeTest, SvdTruncatedReducesParams) {
  Rng rng(7);
  nn::Conv2d conv(8, 8, 3, 1, 1, false, &rng);
  int64_t breakeven = SvdBreakEvenRank(conv);
  ASSERT_GE(breakeven, 1);
  auto lr = SvdDecomposeConv(conv, breakeven);
  EXPECT_LT(lr->ParamCount(), conv.ParamCount());
  EXPECT_EQ(lr->ParamCount(), SvdParamsAtRank(conv, breakeven));
}

TEST(DecomposeTest, SvdRankOneStillApproximates) {
  Rng rng(8);
  nn::Conv2d conv(4, 4, 3, 1, 1, false, &rng);
  // Make the kernel genuinely rank-1 in its [F, CKK] unfolding.
  Tensor& w = conv.weight().value;
  Rng rng2(9);
  Tensor u = Tensor::Randn({4}, &rng2);
  Tensor v = Tensor::Randn({36}, &rng2);
  for (int64_t f = 0; f < 4; ++f) {
    for (int64_t j = 0; j < 36; ++j) w[f * 36 + j] = u[f] * v[j];
  }
  auto lr = SvdDecomposeConv(conv, 1);
  Tensor x = Tensor::Randn({1, 4, 5, 5}, &rng);
  Tensor y0 = conv.Forward(x, false);
  Tensor y1 = lr->Forward(x, false);
  for (int64_t i = 0; i < y0.numel(); ++i) EXPECT_NEAR(y0[i], y1[i], 1e-3);
}

TEST(DecomposeTest, HooiFullRankMatchesOriginal) {
  Rng rng(10);
  nn::Conv2d conv(4, 5, 3, 2, 1, false, &rng);
  auto lr = HooiDecomposeConv(conv, 5, 4);  // full ranks
  Tensor x = Tensor::Randn({2, 4, 6, 6}, &rng);
  Tensor y0 = conv.Forward(x, false);
  Tensor y1 = lr->Forward(x, false);
  ASSERT_EQ(y0.shape(), y1.shape());
  for (int64_t i = 0; i < y0.numel(); ++i) EXPECT_NEAR(y0[i], y1[i], 2e-3);
}

TEST(DecomposeTest, HooiTruncatedBeatsRandomBaseline) {
  // HOOI at half ranks must approximate the kernel far better than a random
  // kernel of the same structure (sanity on the optimization).
  Rng rng(11);
  nn::Conv2d conv(8, 8, 3, 1, 1, false, &rng);
  auto lr = HooiDecomposeConv(conv, 4, 4);
  Tensor x = Tensor::Randn({2, 8, 6, 6}, &rng);
  Tensor y0 = conv.Forward(x, false);
  Tensor y1 = lr->Forward(x, false);
  double err = 0.0, base = 0.0;
  for (int64_t i = 0; i < y0.numel(); ++i) {
    err += (y0[i] - y1[i]) * (y0[i] - y1[i]);
    base += y0[i] * y0[i];
  }
  EXPECT_LT(err, 0.8 * base);
}

TEST(DecomposeTest, HooiClampsInfeasibleRanks) {
  // Regression: conv 2->16 with requested ranks (10, 1) used to index past
  // the 9 columns the refinement SVD can provide (crash in Matrix::at).
  Rng rng(99);
  nn::Conv2d conv(2, 16, 3, 1, 1, false, &rng);
  auto lr = HooiDecomposeConv(conv, 10, 1);
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(lr->in_channels(), 2);
  EXPECT_EQ(lr->out_channels(), 16);
  Tensor x = Tensor::Randn({1, 2, 5, 5}, &rng);
  Tensor y = lr->Forward(x, false);
  EXPECT_TRUE(std::isfinite(y[0]));
  // Planner and implementation agree on the clamped ranks.
  auto [r_out, r_in] = ClampTuckerRanks(conv, 10, 1);
  EXPECT_EQ(lr->ParamCount(), TuckerParamsAtRanks(conv, r_out, r_in));
  EXPECT_LE(r_out, r_in * 9);
}

TEST(DecomposeTest, TuckerParamsFormula) {
  Rng rng(12);
  nn::Conv2d conv(6, 8, 3, 1, 1, false, &rng);
  auto lr = HooiDecomposeConv(conv, 3, 2);
  EXPECT_EQ(lr->ParamCount(), TuckerParamsAtRanks(conv, 3, 2));
}

TEST(LowRankApplyTest, MeetsGlobalTarget) {
  for (DecompKind kind : {DecompKind::kSvd, DecompKind::kHooi}) {
    auto model = MakeModel("vgg", 16);
    int64_t params0 = model->ParamCount();
    ASSERT_TRUE(ApplyLowRankGlobal(model.get(), 0.3, kind).ok());
    double achieved =
        1.0 - static_cast<double>(model->ParamCount()) / params0;
    EXPECT_GT(achieved, 0.2);
    Rng rng(13);
    Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
    Tensor y = model->Forward(x, false);
    EXPECT_TRUE(std::isfinite(y[0]));
  }
}

TEST(LowRankApplyTest, ResNetBlocksGetDecomposed) {
  auto model = MakeModel("resnet", 20);
  int64_t params0 = model->ParamCount();
  ASSERT_TRUE(ApplyLowRankGlobal(model.get(), 0.25, DecompKind::kSvd).ok());
  EXPECT_LT(model->ParamCount(), params0);
}

// --------------------------------------------------------------------------
// Strategy spec plumbing

TEST(StrategySpecTest, HpParsing) {
  StrategySpec s;
  s.method = "NS";
  s.hp = {{"HP1", "0.3"}, {"HP2", "0.2"}, {"HP6", "0.9"}};
  EXPECT_DOUBLE_EQ(GetHpDouble(s, "HP1").value(), 0.3);
  EXPECT_FALSE(GetHpDouble(s, "HP99").ok());
  s.hp["HPX"] = "abc";
  EXPECT_FALSE(GetHpDouble(s, "HPX").ok());
  EXPECT_EQ(GetHpString(s, "HPX").value(), "abc");
}

TEST(StrategySpecTest, ToStringStable) {
  StrategySpec s;
  s.method = "SFP";
  s.hp = {{"HP2", "0.2"}, {"HP10", "3"}};
  EXPECT_EQ(s.ToString(), "SFP(HP10=3,HP2=0.2)");
}

TEST(FactoryTest, UnknownMethodRejected) {
  StrategySpec s;
  s.method = "Quantize";
  EXPECT_FALSE(CreateCompressor(s).ok());
}

TEST(FactoryTest, MissingHpRejected) {
  StrategySpec s;
  s.method = "NS";
  s.hp = {{"HP1", "0.3"}};
  EXPECT_FALSE(CreateCompressor(s).ok());
}

// --------------------------------------------------------------------------
// End-to-end: every method compresses a small model and leaves it runnable.

struct MethodCase {
  StrategySpec spec;
  std::string family;
  int depth;
};

class MethodEndToEndTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(MethodEndToEndTest, CompressesAndStaysFunctional) {
  const MethodCase& mc = GetParam();
  data::TaskData task = SmallTask();
  auto model = MakeModel(mc.family, mc.depth, /*seed=*/21);

  // Brief pretraining so accuracy is meaningful.
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.seed = 5;
  nn::Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(model.get(), task.train).ok());

  CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 2;
  ctx.batch_size = 16;
  ctx.seed = 7;

  auto compressor = CreateCompressor(mc.spec);
  ASSERT_TRUE(compressor.ok()) << compressor.status().ToString();
  CompressionStats stats;
  Status st = (*compressor)->Compress(model.get(), ctx, &stats);
  ASSERT_TRUE(st.ok()) << mc.spec.ToString() << ": " << st.ToString();

  EXPECT_LT(stats.params_after, stats.params_before) << mc.spec.ToString();
  EXPECT_GT(stats.ParamReduction(), 0.05) << mc.spec.ToString();
  EXPECT_GE(stats.acc_after, 0.0);
  EXPECT_LE(stats.acc_after, 1.0);
  // Still trainable after compression (exercises backward through any
  // composite layers the method introduced).
  nn::TrainConfig post;
  post.epochs = 1;
  post.batch_size = 16;
  nn::Trainer post_trainer(post);
  EXPECT_TRUE(post_trainer.Fit(model.get(), task.train).ok());
}

StrategySpec LmaSpec() {
  return {"LMA",
          {{"HP1", "0.5"},
           {"HP2", "0.2"},
           {"HP3", "4"},
           {"HP4", "3"},
           {"HP5", "0.5"}}};
}
StrategySpec LegrSpec() {
  return {"LeGR",
          {{"HP1", "0.5"},
           {"HP2", "0.2"},
           {"HP6", "0.9"},
           {"HP7", "0.4"},
           {"HP8", "l2_weight"}}};
}
StrategySpec NsSpec() {
  return {"NS", {{"HP1", "0.5"}, {"HP2", "0.2"}, {"HP6", "0.9"}}};
}
StrategySpec SfpSpec() {
  return {"SFP", {{"HP2", "0.2"}, {"HP9", "0.5"}, {"HP10", "1"}}};
}
StrategySpec HosSpec() {
  return {"HOS",
          {{"HP1", "0.5"},
           {"HP2", "0.2"},
           {"HP11", "P2"},
           {"HP12", "skew_kur"},
           {"HP13", "0.3"},
           {"HP14", "3"}}};
}
StrategySpec LfbSpec() {
  return {"LFB",
          {{"HP1", "0.5"}, {"HP2", "0.2"}, {"HP15", "1"}, {"HP16", "MSE"}}};
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MethodEndToEndTest,
    ::testing::Values(MethodCase{LmaSpec(), "resnet", 20},
                      MethodCase{LegrSpec(), "vgg", 13},
                      MethodCase{NsSpec(), "vgg", 13},
                      MethodCase{SfpSpec(), "resnet", 20},
                      MethodCase{HosSpec(), "vgg", 13},
                      MethodCase{LfbSpec(), "resnet", 20}),
    [](const ::testing::TestParamInfo<MethodCase>& info) {
      return info.param.spec.method;
    });

// --------------------------------------------------------------------------
// Taylor-expansion importance (extension criterion)

TEST(TaylorTest, ImportanceScoresAreFiniteAndNonNegative) {
  data::TaskData task = SmallTask();
  auto model = MakeModel("vgg", 13, 71);
  auto importance = MakeTaylorImportance(model.get(), task.train, 1, 16, 3);
  ASSERT_TRUE(importance.ok()) << importance.status().ToString();
  for (const auto& unit : CollectPrunableUnits(model.get())) {
    for (int64_t f = 0; f < unit.conv->out_channels(); ++f) {
      double s = (*importance)(unit, f);
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_GE(s, 0.0);
    }
  }
}

TEST(TaylorTest, StructuredPruneHitsTarget) {
  data::TaskData task = SmallTask();
  auto model = MakeModel("vgg", 13, 72);
  int64_t params0 = model->ParamCount();
  GlobalPruneOptions opts;
  opts.target_param_fraction = 0.25;
  ASSERT_TRUE(TaylorStructuredPrune(model.get(), task.train, opts).ok());
  double achieved = 1.0 - static_cast<double>(model->ParamCount()) / params0;
  EXPECT_GE(achieved, 0.2);
  // Model still runs and trains.
  Rng rng(5);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
  EXPECT_TRUE(std::isfinite(model->Forward(x, false)[0]));
}

TEST(TaylorTest, RejectsBadArguments) {
  data::TaskData task = SmallTask();
  auto model = MakeModel("vgg", 13, 73);
  GlobalPruneOptions opts;
  opts.target_param_fraction = 0.2;
  EXPECT_FALSE(TaylorStructuredPrune(nullptr, task.train, opts).ok());
  EXPECT_FALSE(
      TaylorStructuredPrune(model.get(), task.train, opts, /*rescore_every=*/0)
          .ok());
  data::Dataset empty;
  EXPECT_FALSE(MakeTaylorImportance(model.get(), empty).ok());
}

// Sequential composition: two different strategies applied back to back
// (the core premise of AutoMC's search space).
TEST(MethodCompositionTest, NsThenSfp) {
  data::TaskData task = SmallTask();
  auto model = MakeModel("vgg", 13, 31);
  CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 2;
  ctx.batch_size = 16;
  ctx.seed = 11;

  int64_t params0 = model->ParamCount();
  auto ns = CreateCompressor(NsSpec());
  ASSERT_TRUE(ns.ok());
  CompressionStats s1;
  ASSERT_TRUE((*ns)->Compress(model.get(), ctx, &s1).ok());
  auto sfp = CreateCompressor(SfpSpec());
  ASSERT_TRUE(sfp.ok());
  CompressionStats s2;
  ASSERT_TRUE((*sfp)->Compress(model.get(), ctx, &s2).ok());

  double total = 1.0 - static_cast<double>(model->ParamCount()) / params0;
  EXPECT_GT(total, s1.ParamReduction());
  EXPECT_GT(total, 0.25);
}

}  // namespace
}  // namespace compress
}  // namespace automc
