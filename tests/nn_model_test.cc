#include <sstream>
#include <vector>

#include "common/metrics.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "nn/visit.h"

namespace automc {
namespace nn {
namespace {

using tensor::Tensor;

int64_t CowCounter(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

ModelSpec SmallSpec(const std::string& family, int depth) {
  ModelSpec s;
  s.family = family;
  s.depth = depth;
  s.num_classes = 10;
  s.base_width = 4;
  s.in_channels = 3;
  s.image_size = 8;
  return s;
}

class ResNetDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ResNetDepthTest, BuildsAndForwards) {
  Rng rng(1);
  auto model = BuildResNet(SmallSpec("resnet", GetParam()), &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor logits = (*model)->Forward(x, false);
  EXPECT_EQ(logits.size(0), 2);
  EXPECT_EQ(logits.size(1), 10);
  EXPECT_GT((*model)->ParamCount(), 0);
  EXPECT_GT((*model)->FlopsPerSample(), 0);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetDepthTest,
                         ::testing::Values(20, 56, 164));

TEST(ResNetTest, InvalidDepthRejected) {
  Rng rng(1);
  auto model = BuildResNet(SmallSpec("resnet", 21), &rng);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResNetTest, DeeperHasMoreParams) {
  Rng rng(1);
  auto m20 = BuildResNet(SmallSpec("resnet", 20), &rng);
  auto m56 = BuildResNet(SmallSpec("resnet", 56), &rng);
  ASSERT_TRUE(m20.ok() && m56.ok());
  EXPECT_GT((*m56)->ParamCount(), (*m20)->ParamCount());
}

TEST(ResNetTest, BlockCountMatchesDepthFormula) {
  Rng rng(1);
  auto model = BuildResNet(SmallSpec("resnet", 56), &rng);
  ASSERT_TRUE(model.ok());
  int blocks = 0;
  VisitLayers((*model)->net(), [&blocks](Layer* l) {
    if (dynamic_cast<ResidualBlock*>(l) != nullptr) ++blocks;
  });
  EXPECT_EQ(blocks, 27);  // (56-2)/6 per stage * 3 stages
}

TEST(ResNet164Test, UsesBottleneckBlocks) {
  Rng rng(1);
  auto model = BuildResNet(SmallSpec("resnet", 164), &rng);
  ASSERT_TRUE(model.ok());
  int bottlenecks = 0;
  VisitLayers((*model)->net(), [&bottlenecks](Layer* l) {
    auto* b = dynamic_cast<ResidualBlock*>(l);
    if (b != nullptr && b->kind() == ResidualBlock::Kind::kBottleneck) {
      ++bottlenecks;
    }
  });
  EXPECT_EQ(bottlenecks, 54);  // (164-2)/9 per stage * 3 stages
}

class VggDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(VggDepthTest, BuildsAndForwards) {
  Rng rng(2);
  ModelSpec spec = SmallSpec("vgg", GetParam());
  spec.num_classes = 20;
  auto model = BuildVgg(spec, &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor logits = (*model)->Forward(x, false);
  EXPECT_EQ(logits.size(1), 20);
}

INSTANTIATE_TEST_SUITE_P(Depths, VggDepthTest, ::testing::Values(13, 16, 19));

TEST(VggTest, ConvCountMatchesDepth) {
  Rng rng(2);
  for (int depth : {13, 16, 19}) {
    auto model = BuildVgg(SmallSpec("vgg", depth), &rng);
    ASSERT_TRUE(model.ok());
    int convs = 0;
    VisitLayers((*model)->net(), [&convs](Layer* l) {
      if (dynamic_cast<Conv2d*>(l) != nullptr) ++convs;
    });
    // VGG-n has n-3 conv layers (rest are the classifier FCs in the paper;
    // we use a single linear head).
    EXPECT_EQ(convs, depth - 3) << "depth " << depth;
  }
}

TEST(ModelTest, CloneIsIndependent) {
  Rng rng(3);
  auto model = BuildResNet(SmallSpec("resnet", 20), &rng);
  ASSERT_TRUE(model.ok());
  auto copy = (*model)->Clone();
  // Mutate the copy's params; original unchanged.
  for (Param* p : copy->Params()) p->value.Fill(0.0f);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
  Tensor y_orig = (*model)->Forward(x, false);
  EXPECT_GT(y_orig.L2NormSquared(), 0.0f);
  Tensor y_copy = copy->Forward(x, false);
  EXPECT_FLOAT_EQ(y_copy.L2NormSquared(), 0.0f);
}

// Clone must be a pure buffer alias: zero bytes copied, every parameter
// sharing its source's buffer. This is the regression fence that keeps
// hidden deep copies out of the speculative-evaluation path.
TEST(ModelTest, CloneIsO1CowAlias) {
  Rng rng(3);
  auto model = BuildResNet(SmallSpec("resnet", 20), &rng);
  ASSERT_TRUE(model.ok());

  int64_t mat0 = CowCounter("tensor.cow_materializations");
  int64_t copies0 = CowCounter("tensor.cow_copies");
  auto copy = (*model)->Clone();
  EXPECT_EQ(CowCounter("tensor.cow_materializations"), mat0)
      << "Model::Clone materialized a buffer — a deep copy crept in";
  EXPECT_GT(CowCounter("tensor.cow_copies"), copies0);

  std::vector<Param*> src = (*model)->Params();
  std::vector<Param*> dst = copy->Params();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_TRUE(dst[i]->value.SharesBufferWith(src[i]->value))
        << "param " << i << " was deep-copied by Clone";
  }
}

// Training a clone must leave every source byte untouched, and the COW
// traffic it generates must be bounded by the model's tensor count — not
// by the number of optimizer steps (each shared tensor materializes at
// most once, then stays private).
TEST(ModelTest, TrainedCloneLeavesSourceBytesUntouched) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);

  Rng rng(9);
  ModelSpec spec = SmallSpec("vgg", 13);
  spec.num_classes = 2;
  auto model = BuildVgg(spec, &rng);
  ASSERT_TRUE(model.ok());

  std::vector<std::vector<float>> before;
  for (Param* p : (*model)->Params()) {
    before.emplace_back(p->value.data(), p->value.data() + p->value.numel());
  }

  auto copy = (*model)->Clone();
  int64_t mat0 = CowCounter("tensor.cow_materializations");
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(copy.get(), task.train).ok());

  // Every shared tensor (param value/grad, BN stats, optimizer moments)
  // materializes at most once across the whole run; a per-step deep copy
  // would blow far past this bound.
  int64_t params = static_cast<int64_t>((*model)->Params().size());
  EXPECT_LE(CowCounter("tensor.cow_materializations") - mat0, 6 * params + 16);

  std::vector<Param*> src = (*model)->Params();
  ASSERT_EQ(src.size(), before.size());
  for (size_t i = 0; i < src.size(); ++i) {
    const float* d = src[i]->value.data();
    for (int64_t j = 0; j < src[i]->value.numel(); ++j) {
      ASSERT_EQ(d[j], before[i][static_cast<size_t>(j)])
          << "training the clone dirtied source param " << i;
    }
  }
}

// Serialization reads shared buffers and deserialization writes only
// freshly allocated ones: neither direction may materialize a COW copy.
TEST(ModelTest, SerializeRoundTripIsCowFree) {
  Rng rng(11);
  auto model = BuildVgg(SmallSpec("vgg", 13), &rng);
  ASSERT_TRUE(model.ok());
  auto alias = (*model)->Clone();  // ensure the buffers really are shared

  int64_t mat0 = CowCounter("tensor.cow_materializations");
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SerializeModel(model->get(), &blob).ok());
  auto restored = DeserializeModel(&blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(CowCounter("tensor.cow_materializations"), mat0)
      << "serialize/deserialize should never copy shared buffers";

  std::vector<Param*> src = (*model)->Params();
  std::vector<Param*> dst = (*restored)->Params();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src[i]->value.numel(), dst[i]->value.numel());
    const float* a = src[i]->value.data();
    const float* b = dst[i]->value.data();
    for (int64_t j = 0; j < src[i]->value.numel(); ++j) {
      ASSERT_EQ(a[j], b[j]) << "param " << i << " byte mismatch";
    }
  }
}

// Adam checkpointing: SaveState only reads, LoadState fills fresh
// buffers. Zero COW materializations either way.
TEST(ModelTest, AdamStateRoundTripIsCowFree) {
  Rng rng(12);
  auto model = BuildResNet(SmallSpec("resnet", 20), &rng);
  ASSERT_TRUE(model.ok());
  std::vector<Param*> params = (*model)->Params();

  Adam adam(0.001f);
  for (Param* p : params) p->grad.Fill(0.01f);
  adam.Step(params);
  adam.Step(params);

  int64_t mat0 = CowCounter("tensor.cow_materializations");
  ByteWriter w;
  adam.SaveState(params, &w);
  std::string blob = w.Take();

  Adam fresh(0.001f);
  ByteReader r(blob);
  ASSERT_TRUE(fresh.LoadState(params, &r));
  EXPECT_EQ(CowCounter("tensor.cow_materializations"), mat0)
      << "Adam state save/load should never copy shared buffers";

  // The restored moments are bit-identical: re-saving them reproduces the
  // original blob.
  ByteWriter w2;
  fresh.SaveState(params, &w2);
  EXPECT_EQ(blob, w2.Take());
}

TEST(ModelTest, BuildModelDispatch) {
  Rng rng(4);
  EXPECT_TRUE(BuildModel(SmallSpec("resnet", 20), &rng).ok());
  EXPECT_TRUE(BuildModel(SmallSpec("vgg", 16), &rng).ok());
  EXPECT_FALSE(BuildModel(SmallSpec("alexnet", 8), &rng).ok());
}

// --------------------------------------------------------------------------
// Trainer end-to-end: a small model must learn the synthetic task.

TEST(TrainerTest, LearnsSyntheticTask) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  cfg.noise = 0.25f;
  cfg.seed = 13;
  data::TaskData task = MakeSyntheticTask(cfg);

  Rng rng(5);
  ModelSpec spec = SmallSpec("resnet", 20);
  spec.num_classes = 4;
  auto model = BuildResNet(spec, &rng);
  ASSERT_TRUE(model.ok());

  double acc_before = Trainer::Evaluate(model->get(), task.test);

  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.seed = 3;
  Trainer trainer(tc);
  float final_loss = 0.0f;
  Status st = trainer.Fit(model->get(), task.train, nullptr, nullptr,
                          &final_loss);
  ASSERT_TRUE(st.ok()) << st.ToString();

  double acc_after = Trainer::Evaluate(model->get(), task.test);
  EXPECT_GT(acc_after, acc_before + 0.15)
      << "before=" << acc_before << " after=" << acc_after
      << " loss=" << final_loss;
}

TEST(TrainerTest, RejectsBadConfig) {
  Rng rng(6);
  auto model = BuildResNet(SmallSpec("resnet", 20), &rng);
  ASSERT_TRUE(model.ok());
  data::Dataset empty;
  Trainer trainer(TrainConfig{});
  EXPECT_FALSE(trainer.Fit(model->get(), empty).ok());
  EXPECT_FALSE(trainer.Fit(nullptr, empty).ok());
}

TEST(TrainerTest, EpochHookRuns) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  Rng rng(7);
  auto model = BuildResNet(SmallSpec("resnet", 20), &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  Trainer trainer(tc);
  int hooks = 0;
  ASSERT_TRUE(trainer
                  .Fit(model->get(), task.train, nullptr,
                       [&hooks](int, Model*) { ++hooks; })
                  .ok());
  EXPECT_EQ(hooks, 3);
}

TEST(TrainerTest, BnGammaL1ShrinksGammas) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 16;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  Rng rng(8);
  ModelSpec spec = SmallSpec("vgg", 13);
  spec.num_classes = 2;

  auto sum_gammas = [](Model* m) {
    double s = 0.0;
    VisitLayers(m->net(), [&s](Layer* l) {
      if (auto* bn = dynamic_cast<BatchNorm2d*>(l)) {
        for (int64_t i = 0; i < bn->gamma().value.numel(); ++i) {
          s += std::fabs(bn->gamma().value[i]);
        }
      }
    });
    return s;
  };

  auto plain = BuildVgg(spec, &rng);
  Rng rng2(8);
  auto sparse = BuildVgg(spec, &rng2);
  ASSERT_TRUE(plain.ok() && sparse.ok());

  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  Trainer t1(tc);
  ASSERT_TRUE(t1.Fit(plain->get(), task.train).ok());
  tc.bn_gamma_l1 = 0.02f;
  Trainer t2(tc);
  ASSERT_TRUE(t2.Fit(sparse->get(), task.train).ok());

  EXPECT_LT(sum_gammas(sparse->get()), sum_gammas(plain->get()));
}

// --------------------------------------------------------------------------
// Data module

TEST(DatasetTest, SyntheticShapes) {
  data::TaskData task = data::MakeCifar10Like(3);
  EXPECT_EQ(task.train.num_classes, 10);
  EXPECT_EQ(task.train.Size(), 640);
  EXPECT_EQ(task.test.Size(), 200);
  EXPECT_EQ(task.train.Channels(), 3);
  EXPECT_EQ(task.train.Height(), 8);
}

TEST(DatasetTest, SubsampleFraction) {
  data::TaskData task = data::MakeCifar10Like(3);
  Rng rng(1);
  data::Dataset sub = task.train.Subsample(0.1, &rng);
  EXPECT_EQ(sub.Size(), 64);
  EXPECT_EQ(sub.num_classes, 10);
}

TEST(DatasetTest, SplitPartitions) {
  data::TaskData task = data::MakeCifar10Like(3);
  Rng rng(1);
  auto [a, b] = task.train.Split(0.25, &rng);
  EXPECT_EQ(a.Size() + b.Size(), task.train.Size());
  EXPECT_EQ(a.Size(), 160);
}

TEST(DatasetTest, GatherRoundTrip) {
  data::TaskData task = data::MakeCifar10Like(3);
  std::vector<int64_t> idx = {5, 0, 10};
  Tensor imgs = task.train.GatherImages(idx);
  std::vector<int> labels = task.train.GatherLabels(idx);
  EXPECT_EQ(imgs.size(0), 3);
  EXPECT_EQ(labels.size(), 3u);
  // Row 1 of the gather equals source row 0.
  int64_t stride = task.train.Channels() * 64;
  for (int64_t i = 0; i < stride; ++i) {
    EXPECT_FLOAT_EQ(imgs[stride + i], task.train.images[i]);
  }
}

TEST(DatasetTest, DeterministicAcrossSeeds) {
  data::TaskData a = data::MakeCifar10Like(3);
  data::TaskData b = data::MakeCifar10Like(3);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(DatasetTest, TaskFeatureVectorShape) {
  data::TaskData task = data::MakeCifar10Like(3);
  auto f = data::TaskFeatureVector(task.train, 1000, 50000, 0.8);
  EXPECT_EQ(f.size(), static_cast<size_t>(data::kTaskFeatureDim));
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FLOAT_EQ(f[6], 0.8f);
}

}  // namespace
}  // namespace nn
}  // namespace automc
