#include <cmath>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace automc {
namespace {

// --------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  AUTOMC_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> err = QuarterEven(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(1);
  Rng child = a.Fork();
  // The fork should not replay the parent's stream.
  Rng b(1);
  b.Fork();
  EXPECT_NE(child.Uniform(), a.Uniform());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------------------
// Stats

TEST(StatsTest, MeanAndVariance) {
  float d[] = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Mean(d, 4), 2.5);
  EXPECT_DOUBLE_EQ(Variance(d, 4), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(d, 4), std::sqrt(1.25));
}

TEST(StatsTest, SkewnessOfSymmetricDataIsZero) {
  float d[] = {-2.0f, -1.0f, 0.0f, 1.0f, 2.0f};
  EXPECT_NEAR(Skewness(d, 5), 0.0, 1e-9);
}

TEST(StatsTest, SkewnessSignMatchesTail) {
  float right[] = {0.0f, 0.0f, 0.0f, 0.0f, 10.0f};
  EXPECT_GT(Skewness(right, 5), 0.0);
  float left[] = {0.0f, 0.0f, 0.0f, 0.0f, -10.0f};
  EXPECT_LT(Skewness(left, 5), 0.0);
}

TEST(StatsTest, KurtosisOfUniformIsNegative) {
  // Uniform distributions are platykurtic (excess kurtosis < 0).
  std::vector<float> d;
  for (int i = 0; i < 100; ++i) d.push_back(static_cast<float>(i));
  EXPECT_LT(Kurtosis(d.data(), d.size()), 0.0);
}

TEST(StatsTest, DegenerateDataIsSafe) {
  float d[] = {3.0f, 3.0f, 3.0f};
  EXPECT_DOUBLE_EQ(Skewness(d, 3), 0.0);
  EXPECT_DOUBLE_EQ(Kurtosis(d, 3), -3.0);
  EXPECT_DOUBLE_EQ(Variance(d, 3), 0.0);
}

TEST(StatsTest, Norms) {
  float d[] = {3.0f, -4.0f};
  EXPECT_DOUBLE_EQ(L1Norm(d, 2), 7.0);
  EXPECT_DOUBLE_EQ(L2Norm(d, 2), 5.0);
}

// --------------------------------------------------------------------------
// Matrix / SVD

TEST(MatrixTest, MultiplyIdentity) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  Matrix eye(3, 3);
  for (int i = 0; i < 3; ++i) eye.at(i, i) = 1.0;
  Matrix p = a.Multiply(eye);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(p.at(i, j), a.at(i, j));
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(3);
  Matrix a(4, 7);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 7; ++j) a.at(i, j) = rng.Normal();
  }
  Matrix t = a.Transposed().Transposed();
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 7; ++j) EXPECT_DOUBLE_EQ(t.at(i, j), a.at(i, j));
  }
}

class SvdShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SvdShapeTest, FullRankReconstructs) {
  auto [m, n] = GetParam();
  Rng rng(11);
  Matrix a(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) a.at(i, j) = rng.Normal();
  }
  int64_t full = std::min(m, n);
  SvdResult svd = TruncatedSvd(a, full);
  // Reconstruct and compare.
  Matrix recon(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < full; ++k) {
        s += svd.u.at(i, k) * svd.s[static_cast<size_t>(k)] * svd.v.at(j, k);
      }
      recon.at(i, j) = s;
    }
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(recon.at(i, j), a.at(i, j), 1e-6);
    }
  }
  // Singular values are sorted non-increasing and non-negative.
  for (size_t k = 0; k + 1 < svd.s.size(); ++k) {
    EXPECT_GE(svd.s[k], svd.s[k + 1]);
  }
  EXPECT_GE(svd.s.back(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::make_tuple(4, 4),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(3, 6),
                                           std::make_tuple(10, 2),
                                           std::make_tuple(2, 10),
                                           std::make_tuple(1, 5),
                                           std::make_tuple(5, 1)));

TEST(SvdTest, RankOneMatrixRecovered) {
  // a = u v^T has exactly one nonzero singular value.
  Matrix a(3, 4);
  double u[] = {1.0, -2.0, 0.5};
  double v[] = {3.0, 0.0, -1.0, 2.0};
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) a.at(i, j) = u[i] * v[j];
  }
  SvdResult svd = TruncatedSvd(a, 3);
  EXPECT_GT(svd.s[0], 1.0);
  EXPECT_NEAR(svd.s[1], 0.0, 1e-8);
  EXPECT_NEAR(svd.s[2], 0.0, 1e-8);
}

TEST(SvdTest, TruncationMinimizesFrobeniusError) {
  // Truncated SVD of a known diagonal matrix keeps the largest values.
  Matrix a(4, 4);
  a.at(0, 0) = 5.0;
  a.at(1, 1) = 3.0;
  a.at(2, 2) = 1.0;
  a.at(3, 3) = 0.1;
  SvdResult svd = TruncatedSvd(a, 2);
  ASSERT_EQ(svd.s.size(), 2u);
  EXPECT_NEAR(svd.s[0], 5.0, 1e-9);
  EXPECT_NEAR(svd.s[1], 3.0, 1e-9);
}

}  // namespace
}  // namespace automc
