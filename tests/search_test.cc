#include <memory>

#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/evolutionary.h"
#include "search/fmo.h"
#include "search/pareto.h"
#include "search/progressive.h"
#include "search/random_search.h"
#include "search/rl.h"
#include "search/search_space.h"

namespace automc {
namespace search {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------------------
// SearchSpace

TEST(SearchSpaceTest, MethodGridSizes) {
  EXPECT_EQ(SearchSpace::SingleMethod("LMA").size(), 1200u);   // 5*5*3*4*4
  EXPECT_EQ(SearchSpace::SingleMethod("LeGR").size(), 600u);   // 5*5*2*4*3
  EXPECT_EQ(SearchSpace::SingleMethod("NS").size(), 50u);      // 5*5*2
  EXPECT_EQ(SearchSpace::SingleMethod("SFP").size(), 75u);     // 5*5*3
  EXPECT_EQ(SearchSpace::SingleMethod("HOS").size(), 2025u);   // 5*5*3*3*3*3
  EXPECT_EQ(SearchSpace::SingleMethod("LFB").size(), 375u);    // 5*5*5*3
}

TEST(SearchSpaceTest, FullSpaceIsUnionOfMethods) {
  SearchSpace full = SearchSpace::FullTable1();
  EXPECT_EQ(full.size(), 1200u + 600u + 50u + 75u + 2025u + 375u);  // 4325
}

TEST(SearchSpaceTest, AllStrategiesInstantiable) {
  // Every strategy in the grid must produce a valid compressor: the grids
  // and the factory must agree on hyperparameter names and values.
  SearchSpace full = SearchSpace::FullTable1();
  for (size_t i = 0; i < full.size(); i += 7) {  // stride keeps this fast
    auto c = compress::CreateCompressor(full.strategy(i));
    ASSERT_TRUE(c.ok()) << full.strategy(i).ToString() << ": "
                        << c.status().ToString();
  }
}

TEST(SearchSpaceTest, SchemeToString) {
  SearchSpace ns = SearchSpace::SingleMethod("NS");
  std::string s = ns.SchemeToString({0, 1});
  EXPECT_NE(s.find("NS("), std::string::npos);
  EXPECT_NE(s.find(" -> "), std::string::npos);
  EXPECT_EQ(ns.SchemeToString({}), "(empty)");
}

// --------------------------------------------------------------------------
// Pareto

TEST(ParetoTest, DominationRules) {
  EXPECT_TRUE(Dominates({2.0, 2.0}, {1.0, 1.0}));
  EXPECT_TRUE(Dominates({2.0, 1.0}, {1.0, 1.0}));
  EXPECT_FALSE(Dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no strict gain
  EXPECT_FALSE(Dominates({2.0, 0.5}, {1.0, 1.0}));  // trade-off
}

TEST(ParetoTest, FrontOfTradeoffCurve) {
  std::vector<std::pair<double, double>> pts = {
      {1.0, 5.0}, {2.0, 4.0}, {3.0, 3.0}, {2.5, 2.0},  // dominated by (3,3)
      {4.0, 1.0}, {0.5, 0.5},                          // dominated
  };
  auto front = ParetoFrontIndices(pts);
  EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2, 4}));
}

TEST(ParetoTest, DuplicatePointsBothKept) {
  std::vector<std::pair<double, double>> pts = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(ParetoFrontIndices(pts).size(), 2u);
}

TEST(ParetoTest, SinglePoint) {
  std::vector<std::pair<double, double>> pts = {{3.0, -2.0}};
  EXPECT_EQ(ParetoFrontIndices(pts), (std::vector<size_t>{0}));
}

// --------------------------------------------------------------------------
// Evaluator with prefix cache

struct EvalFixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  EvalFixture() {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 12;
    cfg.test_per_class = 4;
    cfg.seed = 41;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(5);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 12;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 12;
    ctx.seed = 3;
  }
};

TEST(EvaluatorTest, BasePointMatchesModel) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  EXPECT_EQ(ev.base_point().params, f.model->ParamCount());
  EXPECT_DOUBLE_EQ(ev.base_point().pr, 0.0);
  EXPECT_EQ(ev.strategy_executions(), 0);
}

TEST(EvaluatorTest, EvaluateSingleStrategy) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  auto point = ev.Evaluate({0});
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_GT(point->pr, 0.0);
  EXPECT_LT(point->params, ev.base_point().params);
  EXPECT_EQ(ev.strategy_executions(), 1);
  // The base model must not have been mutated.
  EXPECT_EQ(f.model->ParamCount(), ev.base_point().params);
}

TEST(EvaluatorTest, RepeatEvaluationIsCached) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  auto p1 = ev.Evaluate({2, 5});
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(ev.strategy_executions(), 2);
  auto p2 = ev.Evaluate({2, 5});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(ev.strategy_executions(), 2);  // no new executions
  EXPECT_DOUBLE_EQ(p1->acc, p2->acc);
  EXPECT_EQ(ev.cache_hits(), 1);
}

TEST(EvaluatorTest, PrefixReuseCostsOnlySuffix) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  ASSERT_TRUE(ev.Evaluate({2}).ok());
  EXPECT_EQ(ev.strategy_executions(), 1);
  // Extending by one strategy must cost exactly one more execution.
  ASSERT_TRUE(ev.Evaluate({2, 7}).ok());
  EXPECT_EQ(ev.strategy_executions(), 2);
}

TEST(EvaluatorTest, ParentPointReported) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  EvalPoint parent;
  auto p1 = ev.Evaluate({4}, &parent);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(parent.params, ev.base_point().params);
  EvalPoint parent2;
  auto p2 = ev.Evaluate({4, 9}, &parent2);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(parent2.params, p1->params);
  EXPECT_DOUBLE_EQ(parent2.acc, p1->acc);
}

TEST(EvaluatorTest, DeterministicAcrossInstances) {
  EvalFixture f;
  SchemeEvaluator ev1(&f.space, f.model.get(), f.ctx, {});
  SchemeEvaluator ev2(&f.space, f.model.get(), f.ctx, {});
  auto p1 = ev1.Evaluate({3});
  auto p2 = ev2.Evaluate({3});
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_DOUBLE_EQ(p1->acc, p2->acc);
  EXPECT_EQ(p1->params, p2->params);
}

TEST(EvaluatorTest, RejectsBadIndices) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  EXPECT_FALSE(ev.Evaluate({-1}).ok());
  EXPECT_FALSE(ev.Evaluate({static_cast<int>(f.space.size())}).ok());
}

// --------------------------------------------------------------------------
// F_mo

TEST(FmoTest, LearnsSyntheticStepFunction) {
  // Target: ar_step = 0.1 * cand[0], pr_step = 0.2 * cand[1] (+0 from seq).
  Rng rng(7);
  Fmo fmo(4, 2, /*seed=*/11, /*lr=*/0.01f);
  auto make_example = [&](float a, float b) {
    FmoExample ex;
    ex.candidate = Tensor({4});
    ex.candidate[0] = a;
    ex.candidate[1] = b;
    ex.task = Tensor({2});
    ex.ar_step = 0.1f * a;
    ex.pr_step = 0.2f * b;
    return ex;
  };
  std::vector<FmoExample> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(make_example(static_cast<float>(rng.Normal()),
                                 static_cast<float>(rng.Normal())));
  }
  double first = fmo.TrainBatch(batch);
  double last = first;
  for (int e = 0; e < 200; ++e) last = fmo.TrainBatch(batch);
  EXPECT_LT(last, 0.25 * first);
  // Prediction close to target on a training point.
  auto [ar, pr] = fmo.Predict({}, batch[0].candidate, batch[0].task);
  EXPECT_NEAR(ar, batch[0].ar_step, 0.15);
  EXPECT_NEAR(pr, batch[0].pr_step, 0.15);
}

TEST(FmoTest, SequenceAffectsPrediction) {
  Fmo fmo(4, 2, 13);
  Rng rng(17);
  Tensor cand = Tensor::Randn({4}, &rng);
  Tensor task = Tensor::Randn({2}, &rng);
  Tensor step = Tensor::Randn({4}, &rng, 2.0f);
  auto [a0, p0] = fmo.Predict({}, cand, task);
  auto [a1, p1] = fmo.Predict({step}, cand, task);
  // An (untrained) GRU still mixes the sequence into the state.
  EXPECT_TRUE(a0 != a1 || p0 != p1);
}

TEST(FmoTest, EmptyBatchIsNoop) {
  Fmo fmo(4, 2, 13);
  EXPECT_DOUBLE_EQ(fmo.TrainBatch({}), 0.0);
}

// --------------------------------------------------------------------------
// Searchers (tiny budgets; NS-only space keeps each execution cheap)

SearchConfig TinyConfig() {
  SearchConfig cfg;
  cfg.max_strategy_executions = 8;
  cfg.max_length = 3;
  cfg.gamma = 0.2;
  cfg.seed = 5;
  return cfg;
}

void CheckOutcome(const SearchOutcome& out, int budget) {
  EXPECT_GT(out.executions, 0);
  EXPECT_LE(out.executions, budget + 1);
  ASSERT_FALSE(out.pareto_schemes.empty());
  ASSERT_EQ(out.pareto_schemes.size(), out.pareto_points.size());
  ASSERT_FALSE(out.history.empty());
  // best_acc_any is monotone non-decreasing.
  for (size_t i = 1; i < out.history.size(); ++i) {
    EXPECT_GE(out.history[i].best_acc_any, out.history[i - 1].best_acc_any);
  }
}

TEST(RandomSearcherTest, RunsWithinBudget) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  RandomSearcher searcher;
  auto out = searcher.Search(&ev, f.space, TinyConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  CheckOutcome(*out, TinyConfig().max_strategy_executions + 3);
}

TEST(EvolutionarySearcherTest, RunsWithinBudget) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  EvolutionarySearcher::Options opts;
  opts.population = 3;
  EvolutionarySearcher searcher(opts);
  auto out = searcher.Search(&ev, f.space, TinyConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  CheckOutcome(*out, TinyConfig().max_strategy_executions + 3);
}

TEST(RlSearcherTest, RunsWithinBudget) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  RlSearcher searcher;
  auto out = searcher.Search(&ev, f.space, TinyConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  CheckOutcome(*out, TinyConfig().max_strategy_executions + 3);
}

TEST(ProgressiveSearcherTest, RunsWithinBudget) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  // Random embeddings stand in for Algorithm 1 output in this unit test.
  Rng rng(19);
  std::vector<Tensor> embeddings;
  for (size_t i = 0; i < f.space.size(); ++i) {
    embeddings.push_back(Tensor::Randn({8}, &rng));
  }
  Tensor task_features = Tensor::Randn({data::kTaskFeatureDim}, &rng);
  ProgressiveSearcher::Options opts;
  opts.sample_schemes = 3;
  opts.candidates_per_scheme = 16;
  opts.max_evals_per_round = 2;
  ProgressiveSearcher searcher(embeddings, task_features, opts);
  auto out = searcher.Search(&ev, f.space, TinyConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  CheckOutcome(*out, TinyConfig().max_strategy_executions + 3);
  // Progressive growth: pareto schemes are non-empty sequences within L.
  for (const auto& s : out->pareto_schemes) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 3u);
  }
}

TEST(ProgressiveSearcherTest, RejectsMismatchedEmbeddings) {
  EvalFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  ProgressiveSearcher searcher({}, Tensor({data::kTaskFeatureDim}));
  EXPECT_FALSE(searcher.Search(&ev, f.space, TinyConfig()).ok());
}

}  // namespace
}  // namespace search
}  // namespace automc
