// Wire-level coverage of the FetchModel streaming path: payload boundaries
// at the 64 MiB frame cap, chunked replies interleaved with other
// connections' control traffic, a mid-stream disconnect leaving the
// registry clean, and the write-watermark backpressure bound — a fetch of
// any size must never balloon the server's reply buffer past the pause
// threshold plus one frame.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "artifact/manifest.h"
#include "common/bytes.h"
#include "common/metrics.h"
#include "common/net.h"
#include "common/sha256.h"
#include "fleet/event_loop.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"

namespace automc {
namespace {

using artifact::Registry;
using server::Client;
using server::Frame;
using server::FrameDecoder;
using server::MsgType;
using testing::ScopedTempDir;

std::string RandomBlob(size_t n, uint64_t seed) {
  std::string blob(n, '\0');
  uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (char& c : blob) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    c = static_cast<char>(x >> 56);
  }
  return blob;
}

// Publishes `blob` under `name` into `dir` before any server opens it.
void Prepublish(const std::string& dir, const std::string& name,
                const std::string& blob, size_t chunk_size) {
  Registry::Options opts;
  opts.dir = dir;
  opts.chunk_size = chunk_size;
  auto registry = Registry::Open(opts);
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  artifact::Provenance prov;
  prov.job_id = 99;
  prov.scheme = "1,2";
  prov.summary = "stream test";
  prov.acc = 0.5;
  auto published = (*registry)->Publish(name, blob, prov);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
}

Result<std::unique_ptr<server::Server>> StartServer(const ScopedTempDir& dir,
                                                    bool tcp = false) {
  server::Server::Options opts;
  opts.socket_path = dir.File("s.sock");
  if (tcp) opts.tcp_address = "tcp:127.0.0.1:0";
  opts.jobs.workdir = dir.File("wd");
  opts.jobs.artifact_dir = dir.File("artifacts");
  return server::Server::Start(std::move(opts));
}

TEST(FrameBoundaryTest, PayloadAtTheCapRoundTripsAboveIsRejected) {
  // Exactly kMaxFramePayload must survive the wire; writer in a thread
  // because 64 MiB cannot fit any socket buffer.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = RandomBlob(server::kMaxFramePayload, 3);
  const Sha256Digest want = Sha256::Hash(payload);
  std::thread writer([&] {
    EXPECT_TRUE(
        server::WriteFrame(fds[0], MsgType::kModelChunk, payload).ok());
  });
  auto frame = server::ReadFrame(fds[1]);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload.size(), server::kMaxFramePayload);
  EXPECT_EQ(Sha256::Hash(frame->payload), want);

  // One byte over: the writer itself must refuse (nothing hits the wire).
  std::string over(server::kMaxFramePayload + 1, 'x');
  EXPECT_EQ(server::WriteFrame(fds[0], MsgType::kModelChunk, over)
                .code(),
            StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);

  // And a decoder fed a header promising cap+1 poisons instead of
  // allocating.
  FrameDecoder decoder;
  ByteWriter w;
  w.U32(server::kFrameMagic);
  w.U32(static_cast<uint32_t>(MsgType::kModelChunk));
  w.U32(server::kMaxFramePayload + 1);
  decoder.Feed(w.str().data(), w.str().size());
  Frame out;
  Status error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Event::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(ArtifactStreamTest, FetchModelRoundTripsOverUnixAndTcp) {
  ScopedTempDir dir("stream_rt");
  const std::string blob = RandomBlob(777777, 8);
  Prepublish(dir.File("artifacts"), "model-a", blob, 4096);
  auto srv = StartServer(dir, /*tcp=*/true);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  for (const std::string& address :
       {dir.File("s.sock"), (*srv)->tcp_address()}) {
    auto client = Client::Connect(address);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    std::string got;
    auto info = client->FetchModel("model-a", [&](std::string_view chunk) {
      got.append(chunk);
      return Status::OK();
    });
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(got, blob) << "bytes differ over " << address;
    EXPECT_EQ(info->total_size, blob.size());
    EXPECT_EQ(info->job_id, 99u);
    EXPECT_EQ(info->scheme, "1,2");

    // The connection is still a normal control channel after a stream.
    auto list = client->ListJobs();
    ASSERT_TRUE(list.ok()) << list.status().ToString();

    auto absent = client->FetchModel("no-such", [](std::string_view) {
      return Status::OK();
    });
    EXPECT_EQ(absent.status().code(), StatusCode::kNotFound);

    auto artifacts = client->ListArtifacts();
    ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
    ASSERT_EQ(artifacts->size(), 1u);
    EXPECT_EQ((*artifacts)[0].name, "model-a");
    EXPECT_EQ((*artifacts)[0].total_size, blob.size());
  }
  (*srv)->Stop();
}

TEST(ArtifactStreamTest, StreamInterleavesWithOtherConnectionsTraffic) {
  ScopedTempDir dir("stream_interleave");
  const std::string blob = RandomBlob(8u << 20, 12);  // 8 MiB: > watermark
  Prepublish(dir.File("artifacts"), "big", blob, 65536);
  auto srv = StartServer(dir);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  // Connection A asks for the model but does not read yet: the server
  // pumps until the write watermark, parks the stream, and must keep
  // serving everyone else.
  auto a = net::ConnectAddress(dir.File("s.sock"));
  ASSERT_TRUE(a.ok());
  ByteWriter req;
  req.Str("big");
  ASSERT_TRUE(
      server::WriteFrame(*a, MsgType::kFetchModel, req.str()).ok());

  // Connection B: many prompt control round-trips while A's stream is
  // stalled mid-flight.
  auto b = Client::Connect(dir.File("s.sock"));
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 20; ++i) {
    auto list = b->ListJobs();
    ASSERT_TRUE(list.ok()) << "control traffic starved behind a stream: "
                           << list.status().ToString();
    auto artifacts = b->ListArtifacts();
    ASSERT_TRUE(artifacts.ok());
  }

  // Now drain A completely and verify every byte.
  auto start = server::ReadFrame(*a);
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  ASSERT_EQ(start->type, static_cast<uint32_t>(MsgType::kModelStart));
  std::string got;
  for (;;) {
    auto frame = server::ReadFrame(*a);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->type == static_cast<uint32_t>(MsgType::kModelEnd)) break;
    ASSERT_EQ(frame->type, static_cast<uint32_t>(MsgType::kModelChunk));
    got.append(frame->payload);
  }
  EXPECT_EQ(got, blob);
  ::close(*a);
  (*srv)->Stop();
}

TEST(ArtifactStreamTest, MidStreamDisconnectLeavesRegistryClean) {
  ScopedTempDir dir("stream_disconnect");
  const std::string blob = RandomBlob(8u << 20, 17);
  const std::string artifacts = dir.File("artifacts");
  Prepublish(artifacts, "victim", blob, 65536);
  auto srv = StartServer(dir);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  // Start a fetch, read one frame, vanish.
  {
    auto fd = net::ConnectAddress(dir.File("s.sock"));
    ASSERT_TRUE(fd.ok());
    ByteWriter req;
    req.Str("victim");
    ASSERT_TRUE(
        server::WriteFrame(*fd, MsgType::kFetchModel, req.str()).ok());
    auto start = server::ReadFrame(*fd);
    ASSERT_TRUE(start.ok());
    ::close(*fd);
  }

  // The abandoned stream must not wedge the loop or corrupt anything: a
  // fresh client still gets the whole artifact, byte-exact.
  auto client = Client::Connect(dir.File("s.sock"));
  ASSERT_TRUE(client.ok());
  std::string got;
  auto info = client->FetchModel("victim", [&](std::string_view chunk) {
    got.append(chunk);
    return Status::OK();
  });
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(got, blob);
  (*srv)->Stop();

  // And the on-disk registry is untouched: a direct reopen verifies every
  // chunk end to end.
  Registry::Options ropts;
  ropts.dir = artifacts;
  auto registry = Registry::Open(ropts);
  ASSERT_TRUE(registry.ok());
  auto direct = (*registry)->FetchBlob("victim");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(*direct, blob);
}

// The acceptance bound: a slow reader of a 16 MiB artifact must stall the
// stream at the 4 MiB pause watermark — peak buffered bytes stay within
// one chunk frame of it, and nothing is dropped (the 256 MiB hard cap is
// never approached).
TEST(ArtifactStreamTest, SlowReaderKeepsBufferedBytesBounded) {
  metrics::MetricsRegistry::Global().Reset();
  ScopedTempDir dir("stream_bounded");
  const size_t chunk_size = 256 * 1024;
  const std::string blob = RandomBlob(16u << 20, 23);
  Prepublish(dir.File("artifacts"), "huge", blob, chunk_size);
  auto srv = StartServer(dir);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto client = Client::Connect(dir.File("s.sock"));
  ASSERT_TRUE(client.ok());
  std::string got;
  size_t chunks = 0;
  auto info = client->FetchModel("huge", [&](std::string_view chunk) {
    got.append(chunk);
    // Throttle every few chunks so the kernel buffers fill and the
    // server's userspace backlog is what absorbs the mismatch.
    if (++chunks % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return Status::OK();
  });
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(got, blob);
  (*srv)->Stop();

  auto& registry = metrics::MetricsRegistry::Global();
  const double peak =
      registry.GetGauge("server.backpressure_peak_bytes").value();
  const double bound = static_cast<double>(
      fleet::EventLoop::kOutbufHighWatermark + chunk_size + 4096);
  EXPECT_GT(peak, 0.0) << "stream never exercised the reply buffer";
  EXPECT_LE(peak, bound)
      << "streaming a 16 MiB artifact ballooned the reply buffer";
  EXPECT_EQ(registry.GetCounter("server.backpressure_drops").value(), 0);
  EXPECT_GE(registry.GetCounter("server.backpressure_stalls").value(), 1);
  EXPECT_GE(registry.GetCounter("server.model_streams").value(), 1);
}

}  // namespace
}  // namespace automc
