// Coverage of the fleet's shared experience tier: the mmap-indexed AMXI
// hash index over AMXP segments, its publish/rebuild lifecycle, the
// reader-never-blocks concurrency contract, and the end-to-end payoff —
// a warm rerun on a different worker performs zero real strategy
// executions yet returns a bit-identical outcome.
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/run_spec.h"
#include "gtest/gtest.h"
#include "search/report.h"
#include "server/job_manager.h"
#include "store/experience_index.h"
#include "store/experience_store.h"
#include "test_util.h"

namespace automc {
namespace {

using store::EvalRecord;
using store::ExperienceIndex;
using store::Fingerprint;
using testing::ScopedTempDir;

Fingerprint FP(uint64_t space, uint64_t model) {
  Fingerprint fp;
  fp.space = space;
  fp.model = model;
  return fp;
}

// A record whose every field is a deterministic function of `tag`, so a
// round-trip mismatch pinpoints the corrupted field.
EvalRecord Rec(int tag) {
  EvalRecord rec;
  rec.scheme = {tag, tag + 1, (tag * 7) % 13};
  rec.acc = 0.5 + 0.001 * tag;
  rec.params = 1000 + tag;
  rec.flops = 50000 + tag;
  rec.ar = 0.01 * tag;
  rec.pr = 0.02 * tag;
  rec.fr = 0.03 * tag;
  rec.task_features = {1.0f * tag, 2.0f * tag};
  return rec;
}

void ExpectSame(const EvalRecord& got, const EvalRecord& want) {
  EXPECT_EQ(got.scheme, want.scheme);
  EXPECT_EQ(got.acc, want.acc);
  EXPECT_EQ(got.params, want.params);
  EXPECT_EQ(got.flops, want.flops);
  EXPECT_EQ(got.ar, want.ar);
  EXPECT_EQ(got.pr, want.pr);
  EXPECT_EQ(got.fr, want.fr);
  EXPECT_EQ(got.task_features, want.task_features);
}

std::vector<std::pair<Fingerprint, EvalRecord>> Batch(uint64_t model,
                                                      int from, int count) {
  std::vector<std::pair<Fingerprint, EvalRecord>> recs;
  for (int i = from; i < from + count; ++i) {
    recs.emplace_back(FP(/*space=*/1, model), Rec(i));
  }
  return recs;
}

int64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

TEST(ExperienceIndexTest, MultiSegmentRoundTripThroughMmapIndex) {
  ScopedTempDir dir("amxi_rt");
  // Two publishers (two workers), each appending to its own segment.
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(7, 0, 3))
          .ok());
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-2.bin", Batch(9, 10, 4))
          .ok());

  auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE((*idx)->rebuilt()) << "a published index must mmap cleanly";
  EXPECT_EQ((*idx)->size(), 7u);
  EXPECT_EQ((*idx)->generation(), 2u);

  EvalRecord got;
  for (int i = 0; i < 3; ++i) {
    auto found = (*idx)->Find(FP(1, 7), Rec(i).scheme, &got);
    ASSERT_TRUE(found.ok() && *found) << "missing seg-1 record " << i;
    ExpectSame(got, Rec(i));
  }
  for (int i = 10; i < 14; ++i) {
    auto found = (*idx)->Find(FP(1, 9), Rec(i).scheme, &got);
    ASSERT_TRUE(found.ok() && *found) << "missing seg-2 record " << i;
    ExpectSame(got, Rec(i));
  }

  // Same scheme under a different fingerprint is a different key: the
  // index must never serve another model's measurement.
  auto wrong_model = (*idx)->Find(FP(1, 8), Rec(0).scheme, &got);
  ASSERT_TRUE(wrong_model.ok());
  EXPECT_FALSE(*wrong_model);
  auto absent = (*idx)->Find(FP(1, 7), {99, 98, 97}, &got);
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);
}

TEST(ExperienceIndexTest, RepublishDedupsAndStaysIncremental) {
  ScopedTempDir dir("amxi_dedup");
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(7, 0, 3))
          .ok());
  const auto size_once = std::filesystem::file_size(dir.File("seg-1.bin"));
  // Re-publishing the same records appends nothing (first writer wins)...
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(7, 0, 3))
          .ok());
  EXPECT_EQ(std::filesystem::file_size(dir.File("seg-1.bin")), size_once);
  // ...while novel records still land.
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(7, 0, 5))
          .ok());
  auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(idx.ok());
  EXPECT_FALSE((*idx)->rebuilt());
  EXPECT_EQ((*idx)->size(), 5u);
}

TEST(ExperienceIndexTest, CorruptOrMissingIndexFallsBackToSegmentReplay) {
  ScopedTempDir dir("amxi_corrupt");
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(3, 0, 4))
          .ok());

  // Flip a byte in the middle of the index: the CRC guard must reject the
  // whole image and serve from a replay of the segments instead.
  {
    std::fstream f(dir.File(ExperienceIndex::kIndexFile),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(40);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  const int64_t rebuilds_before = CounterValue("store.index_rebuilds");
  {
    auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    EXPECT_TRUE((*idx)->rebuilt());
    EXPECT_EQ((*idx)->size(), 4u);
    EvalRecord got;
    for (int i = 0; i < 4; ++i) {
      auto found = (*idx)->Find(FP(1, 3), Rec(i).scheme, &got);
      ASSERT_TRUE(found.ok() && *found) << "record " << i << " lost";
      ExpectSame(got, Rec(i));
    }
  }
  EXPECT_EQ(CounterValue("store.index_rebuilds"), rebuilds_before + 1);

  // Truncation (a torn rename never produces this, but a dying disk can):
  // same fallback.
  std::filesystem::resize_file(dir.File(ExperienceIndex::kIndexFile), 17);
  {
    auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
    ASSERT_TRUE(idx.ok());
    EXPECT_TRUE((*idx)->rebuilt());
    EXPECT_EQ((*idx)->size(), 4u);
  }

  // The next publish heals the file: a fresh reader mmaps again.
  ASSERT_TRUE(store::PublishIndex(dir.File("")).ok());
  auto healed = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE((*healed)->rebuilt());
  EXPECT_EQ((*healed)->size(), 4u);
}

TEST(ExperienceIndexTest, TornSegmentTailIsIgnoredNotFatal) {
  ScopedTempDir dir("amxi_torn");
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(5, 0, 3))
          .ok());
  // A crash mid-append leaves a frame header promising more bytes than
  // exist. Every replay path must stop cleanly at the tear.
  {
    std::ofstream f(dir.File("seg-1.bin"),
                    std::ios::app | std::ios::binary);
    const uint32_t torn[2] = {4096u, 0xdeadbeefu};
    f.write(reinterpret_cast<const char*>(torn), sizeof(torn));
    f.write("xx", 2);
  }
  std::filesystem::remove(dir.File(ExperienceIndex::kIndexFile));
  auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_TRUE((*idx)->rebuilt());
  EXPECT_EQ((*idx)->size(), 3u);
  EvalRecord got;
  auto found = (*idx)->Find(FP(1, 5), Rec(2).scheme, &got);
  ASSERT_TRUE(found.ok() && *found);
  ExpectSame(got, Rec(2));
  // And a republish over the torn segment still indexes the intact prefix.
  ASSERT_TRUE(store::PublishIndex(dir.File("")).ok());
  auto healed = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE((*healed)->rebuilt());
  EXPECT_EQ((*healed)->size(), 3u);
}

// TSan-facing: one publisher appending batches while readers continuously
// open the directory and resolve lookups. Readers never take the lock, so
// nothing here may block or race — every opened generation serves a
// consistent snapshot.
TEST(ExperienceIndexTest, ReadersNeverBlockDuringPublish) {
  ScopedTempDir dir("amxi_conc");
  ASSERT_TRUE(
      store::PublishExperience(dir.File(""), "seg-1.bin", Batch(2, 0, 4))
          .ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 1; round <= 8; ++round) {
      ASSERT_TRUE(store::PublishExperience(dir.File(""), "seg-1.bin",
                                           Batch(2, round * 10, 4))
                      .ok());
    }
    stop.store(true);
  });
  std::thread reader([&] {
    EvalRecord got;
    while (!stop.load()) {
      auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
      ASSERT_TRUE(idx.ok()) << idx.status().ToString();
      // The first batch predates every publish in flight: it must be
      // visible in every snapshot.
      for (int i = 0; i < 4; ++i) {
        auto found = (*idx)->Find(FP(1, 2), Rec(i).scheme, &got);
        ASSERT_TRUE(found.ok() && *found);
      }
    }
  });
  writer.join();
  reader.join();

  auto idx = ExperienceIndex::OpenOrRebuild(dir.File(""));
  ASSERT_TRUE(idx.ok());
  EXPECT_FALSE((*idx)->rebuilt());
  EXPECT_EQ((*idx)->size(), 4u + 8u * 4u);
}

// The payoff the tier exists for: worker B reruns a spec worker A already
// solved. Every evaluation is served from the shared index (zero real
// strategy executions) and the outcome is byte-identical — warm never
// changes results, it only removes work.
TEST(ExperienceIndexTest, CrossWorkerWarmRerunChargesZeroExecutions) {
  ScopedTempDir dir("amxi_warm");
  core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = 4;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = 77;

  auto run_on_worker = [&](const std::string& workdir,
                           const std::string& segment) -> std::string {
    server::JobManager::Options jopts;
    jopts.workdir = dir.File(workdir);
    jopts.shared_dir = dir.File("experience");
    jopts.shared_segment = segment;
    auto mgr = server::JobManager::Open(jopts);
    EXPECT_TRUE(mgr.ok()) << mgr.status().ToString();
    auto id = (*mgr)->Submit(spec);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE((*mgr)->WaitIdle(/*timeout_seconds=*/120.0));
    auto bytes = (*mgr)->OutcomeBytes(*id);
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    return bytes.ok() ? *bytes : std::string();
  };

  const std::string cold = run_on_worker("worker-1", "seg-1.bin");
  ASSERT_FALSE(cold.empty());

  // Worker B: different job dir, different segment, same shared tier.
  const int64_t execs_before = CounterValue("search.strategy_executions");
  const int64_t shared_before = CounterValue("store.shared_hits");
  const std::string warm = run_on_worker("worker-2", "seg-2.bin");
  ASSERT_FALSE(warm.empty());

  EXPECT_EQ(warm, cold)
      << "shared-tier warm rerun must be byte-identical to the cold run";
  EXPECT_EQ(CounterValue("search.strategy_executions"), execs_before)
      << "warm rerun executed real strategies despite the shared index";
  EXPECT_GT(CounterValue("store.shared_hits"), shared_before);

  // The outcome still reports the budget it *charged* — identical to the
  // cold run's — even though no execution actually happened.
  auto outcome = search::LoadOutcomeBytes(warm);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->executions, 4);
}

}  // namespace
}  // namespace automc
