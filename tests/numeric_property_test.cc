// Numeric property tests: orthogonality/ordering invariants of the SVD,
// matrix algebra against naive references, and analytic loss properties.
#include <cmath>

#include "common/matrix.h"
#include "gtest/gtest.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace automc {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------------------
// Matrix algebra vs naive reference

Matrix RandomMatrix(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) m.at(i, j) = rng.Normal();
  }
  return m;
}

TEST(MatrixAlgebraTest, MultiplyMatchesNaive) {
  Matrix a = RandomMatrix(5, 7, 1);
  Matrix b = RandomMatrix(7, 4, 2);
  Matrix c = a.Multiply(b);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < 7; ++k) s += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), s, 1e-9);
    }
  }
}

TEST(MatrixAlgebraTest, MultiplyAssociativity) {
  Matrix a = RandomMatrix(3, 4, 3);
  Matrix b = RandomMatrix(4, 5, 4);
  Matrix c = RandomMatrix(5, 2, 5);
  Matrix left = a.Multiply(b).Multiply(c);
  Matrix right = a.Multiply(b.Multiply(c));
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(left.at(i, j), right.at(i, j), 1e-8);
    }
  }
}

TEST(MatrixAlgebraTest, FrobeniusNormMatchesDefinition) {
  Matrix a = RandomMatrix(4, 6, 7);
  double s = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) s += a.at(i, j) * a.at(i, j);
  }
  EXPECT_NEAR(a.FrobeniusNorm(), std::sqrt(s), 1e-9);
}

class SvdOrthogonalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SvdOrthogonalityTest, FactorsAreOrthonormal) {
  Matrix a = RandomMatrix(8, 6, GetParam());
  SvdResult svd = TruncatedSvd(a, 4);
  // U^T U = I and V^T V = I on the retained columns.
  for (int64_t p = 0; p < 4; ++p) {
    for (int64_t q = 0; q < 4; ++q) {
      double uu = 0.0, vv = 0.0;
      for (int64_t i = 0; i < 8; ++i) uu += svd.u.at(i, p) * svd.u.at(i, q);
      for (int64_t i = 0; i < 6; ++i) vv += svd.v.at(i, p) * svd.v.at(i, q);
      double expect = p == q ? 1.0 : 0.0;
      EXPECT_NEAR(uu, expect, 1e-6) << "U column pair " << p << "," << q;
      EXPECT_NEAR(vv, expect, 1e-6) << "V column pair " << p << "," << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdOrthogonalityTest,
                         ::testing::Values(11, 12, 13));

TEST(SvdPropertyTest, FrobeniusCapturedEnergyGrowsWithRank) {
  Matrix a = RandomMatrix(10, 10, 17);
  double total = a.FrobeniusNorm();
  double prev = 0.0;
  for (int64_t rank : {1, 3, 5, 10}) {
    SvdResult svd = TruncatedSvd(a, rank);
    double energy = 0.0;
    for (double s : svd.s) energy += s * s;
    energy = std::sqrt(energy);
    EXPECT_GE(energy + 1e-9, prev);
    EXPECT_LE(energy, total + 1e-6);
    prev = energy;
  }
  EXPECT_NEAR(prev, total, 1e-6);  // full rank captures everything
}

TEST(SvdPropertyTest, SingularValuesInvariantToTransposition) {
  Matrix a = RandomMatrix(7, 4, 19);
  SvdResult s1 = TruncatedSvd(a, 4);
  SvdResult s2 = TruncatedSvd(a.Transposed(), 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(s1.s[i], s2.s[i], 1e-8);
  }
}

// --------------------------------------------------------------------------
// Loss properties

TEST(LossPropertyTest, CrossEntropyNonNegative) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor logits = Tensor::Randn({3, 5}, &rng, 2.0f);
    std::vector<int> labels = {static_cast<int>(rng.UniformInt(5)),
                               static_cast<int>(rng.UniformInt(5)),
                               static_cast<int>(rng.UniformInt(5))};
    EXPECT_GE(nn::CrossEntropy(logits, labels).loss, 0.0f);
  }
}

TEST(LossPropertyTest, CrossEntropyDropsWhenLogitMovesTowardLabel) {
  Rng rng(29);
  Tensor logits = Tensor::Randn({1, 4}, &rng);
  std::vector<int> labels = {2};
  float before = nn::CrossEntropy(logits, labels).loss;
  logits.at(0, 2) += 1.0f;
  float after = nn::CrossEntropy(logits, labels).loss;
  EXPECT_LT(after, before);
}

TEST(LossPropertyTest, KdApproachesZeroAsTemperatureGrows) {
  // softmax(s/T) -> uniform for both distributions as T -> inf, so the
  // KL term vanishes; with the T^2 prefactor the loss tends to a finite
  // limit but the normalized KL shrinks. Check monotone decrease of
  // KL = loss / T^2.
  Rng rng(31);
  Tensor s = Tensor::Randn({2, 5}, &rng, 2.0f);
  Tensor t = Tensor::Randn({2, 5}, &rng, 2.0f);
  double prev = 1e30;
  for (float temp : {1.0f, 3.0f, 10.0f, 30.0f}) {
    double kl = nn::DistillationKl(s, t, temp).loss / (temp * temp);
    EXPECT_LT(kl, prev);
    prev = kl;
  }
}

TEST(LossPropertyTest, KdNonNegative) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor s = Tensor::Randn({2, 4}, &rng, 2.0f);
    Tensor t = Tensor::Randn({2, 4}, &rng, 2.0f);
    EXPECT_GE(nn::DistillationKl(s, t, 3.0f).loss, -1e-5f);
  }
}

TEST(LossPropertyTest, NegativeLikelihoodBounds) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor logits = Tensor::Randn({2, 6}, &rng, 3.0f);
    std::vector<int> labels = {static_cast<int>(rng.UniformInt(6)),
                               static_cast<int>(rng.UniformInt(6))};
    float loss = nn::NegativeLikelihood(logits, labels).loss;
    EXPECT_GE(loss, -1.0f - 1e-6f);
    EXPECT_LE(loss, 0.0f + 1e-6f);
  }
}

TEST(LossPropertyTest, SoftmaxMseBounded) {
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor logits = Tensor::Randn({2, 4}, &rng, 3.0f);
    std::vector<int> labels = {static_cast<int>(rng.UniformInt(4)),
                               static_cast<int>(rng.UniformInt(4))};
    float loss = nn::SoftmaxMse(logits, labels).loss;
    EXPECT_GE(loss, 0.0f);
    // Residuals are in [-1, 1], so the mean square is at most 1.
    EXPECT_LE(loss, 1.0f);
  }
}

TEST(LossPropertyTest, AccuracyAndCrossEntropyAgreeOnConfidentModel) {
  // A model with very confident correct logits: accuracy 1, CE ~ 0.
  Tensor logits({3, 3});
  for (int i = 0; i < 3; ++i) logits.at(i, i) = 30.0f;
  std::vector<int> labels = {0, 1, 2};
  EXPECT_DOUBLE_EQ(nn::Accuracy(logits, labels), 1.0);
  EXPECT_NEAR(nn::CrossEntropy(logits, labels).loss, 0.0f, 1e-5);
}

// --------------------------------------------------------------------------
// LogSoftmax / softmax bridge

TEST(LogSoftmaxPropertyTest, MonotoneInLogits) {
  // Increasing one logit increases its own log-probability.
  Tensor a({1, 3});
  a[0] = 0.2f;
  a[1] = -1.0f;
  a[2] = 0.5f;
  Tensor l1 = tensor::LogSoftmax(a);
  a[1] += 2.0f;
  Tensor l2 = tensor::LogSoftmax(a);
  EXPECT_GT(l2[1], l1[1]);
  // And decreases everyone else's.
  EXPECT_LT(l2[0], l1[0]);
  EXPECT_LT(l2[2], l1[2]);
}

}  // namespace
}  // namespace automc
