#include <fstream>
#include <set>
#include <sstream>

#include "compress/lowrank_apply.h"
#include "compress/surgery.h"
#include "gtest/gtest.h"
#include "nn/summary.h"
#include "nn/trainer.h"
#include "search/report.h"

namespace automc {
namespace {

std::unique_ptr<nn::Model> SmallModel(const std::string& family, int depth) {
  nn::ModelSpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.num_classes = 4;
  spec.base_width = 4;
  Rng rng(3);
  return std::move(nn::BuildModel(spec, &rng)).value();
}

// --------------------------------------------------------------------------
// Model summary

TEST(SummaryTest, TotalsMatchModelCounters) {
  auto model = SmallModel("resnet", 20);
  nn::ModelSummary s = nn::Summarize(model.get());
  EXPECT_EQ(s.total_params, model->ParamCount());
  EXPECT_EQ(s.total_flops, model->FlopsPerSample());
  EXPECT_EQ(s.weight_bits, 32);
  EXPECT_FALSE(s.layers.empty());
}

TEST(SummaryTest, VggLayerCount) {
  auto model = SmallModel("vgg", 13);
  nn::ModelSummary s = nn::Summarize(model.get());
  // 10 convs + 10 BNs + 10 ReLUs + 3 pools + GAP + flatten + linear = 36.
  EXPECT_EQ(s.layers.size(), 36u);
}

TEST(SummaryTest, PathsAreUnique) {
  auto model = SmallModel("resnet", 20);
  nn::ModelSummary s = nn::Summarize(model.get());
  std::set<std::string> paths;
  for (const auto& row : s.layers) {
    EXPECT_TRUE(paths.insert(row.path).second) << "duplicate " << row.path;
  }
}

TEST(SummaryTest, ReflectsLowRankSurgery) {
  auto model = SmallModel("resnet", 20);
  int64_t before = nn::Summarize(model.get()).total_params;
  ASSERT_TRUE(compress::ApplyLowRankGlobal(model.get(), 0.25,
                                           compress::DecompKind::kSvd)
                  .ok());
  nn::ModelSummary s = nn::Summarize(model.get());
  EXPECT_LT(s.total_params, before);
  // Decomposed convs show up as stage paths.
  bool has_stage = false;
  for (const auto& row : s.layers) {
    if (row.path.find(".stage") != std::string::npos) has_stage = true;
  }
  EXPECT_TRUE(has_stage);
}

TEST(SummaryTest, ToStringContainsTotals) {
  auto model = SmallModel("vgg", 13);
  nn::ModelSummary s = nn::Summarize(model.get());
  std::string text = s.ToString();
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_NE(text.find("Conv2d"), std::string::npos);
  EXPECT_NE(text.find("32-bit"), std::string::npos);
}

// --------------------------------------------------------------------------
// CSV reports

search::SearchOutcome FakeOutcome() {
  search::SearchOutcome out;
  search::EvalPoint p1;
  p1.acc = 0.9;
  p1.params = 1000;
  p1.flops = 5000;
  p1.pr = 0.4;
  p1.fr = 0.3;
  out.pareto_points = {p1};
  out.pareto_schemes = {{0}};
  out.history = {{1, -1.0, 0.5}, {2, 0.9, 0.9}};
  out.executions = 2;
  return out;
}

TEST(ReportTest, HistoryCsvFormat) {
  std::ostringstream os;
  ASSERT_TRUE(search::WriteHistoryCsv(FakeOutcome(), &os).ok());
  std::string csv = os.str();
  EXPECT_NE(csv.find("executions,best_acc_feasible,best_acc_any"),
            std::string::npos);
  EXPECT_NE(csv.find("1,-1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("2,0.9,0.9"), std::string::npos);
}

TEST(ReportTest, ParetoCsvIncludesSchemeText) {
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");
  std::ostringstream os;
  ASSERT_TRUE(search::WriteParetoCsv(FakeOutcome(), space, &os).ok());
  std::string csv = os.str();
  EXPECT_NE(csv.find("acc,params,flops,pr,fr,scheme"), std::string::npos);
  EXPECT_NE(csv.find("\"NS("), std::string::npos);
}

TEST(ReportTest, FileRoundTrip) {
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");
  std::string path = ::testing::TempDir() + "/history.csv";
  ASSERT_TRUE(search::WriteHistoryCsvFile(FakeOutcome(), path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "executions,best_acc_feasible,best_acc_any");
}

TEST(ReportTest, RejectsNullStream) {
  EXPECT_FALSE(search::WriteHistoryCsv(FakeOutcome(), nullptr).ok());
}

TEST(ReportTest, RejectsInconsistentOutcome) {
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");
  search::SearchOutcome bad = FakeOutcome();
  bad.pareto_schemes.clear();  // now out of sync with points
  std::ostringstream os;
  EXPECT_FALSE(search::WriteParetoCsv(bad, space, &os).ok());
}

// --------------------------------------------------------------------------
// Trainer lr decay

TEST(TrainerDecayTest, DecayReducesStepSizes) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);

  // With decay ~0, only the first epoch moves the weights appreciably.
  auto run = [&](float decay) {
    auto model = SmallModel("vgg", 13);
    std::vector<float> w0;
    for (nn::Param* p : model->Params()) {
      for (int64_t i = 0; i < p->value.numel(); ++i) w0.push_back(p->value[i]);
    }
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 8;
    tc.lr = 0.01f;
    tc.lr_decay = decay;
    tc.seed = 4;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());
    double moved = 0.0;
    size_t k = 0;
    for (nn::Param* p : model->Params()) {
      for (int64_t i = 0; i < p->value.numel(); ++i, ++k) {
        moved += std::fabs(p->value[i] - w0[k]);
      }
    }
    return moved;
  };
  EXPECT_LT(run(0.1f), run(1.0f));
}

}  // namespace
}  // namespace automc
