// Kill-and-resume identity for every searcher: a run that crashes mid-search
// (fault-injected checkpoint write) and is resumed from its checkpoint +
// experience store must finish with a SearchOutcome byte-identical to an
// uninterrupted run. Exercises Snapshot/Restore of all four searchers, the
// evaluator's state snapshot, and store-served re-evaluation of the rounds
// that fell between the last checkpoint and the crash.
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/evolutionary.h"
#include "search/progressive.h"
#include "search/random_search.h"
#include "search/report.h"
#include "search/rl.h"
#include "search/search_space.h"
#include "store/checkpoint.h"
#include "store/experience_store.h"
#include "test_util.h"

namespace automc {
namespace search {
namespace {

namespace fs = std::filesystem;
using automc::testing::ScopedTempDir;

struct ResumeFixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  ResumeFixture() {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 12;
    cfg.test_per_class = 4;
    cfg.seed = 41;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(5);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 12;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 12;
    ctx.seed = 3;
  }

  // Deterministic factory: repeated calls build identical searchers (the
  // progressive searcher's embeddings come from a fixed-seed RNG).
  std::unique_ptr<Searcher> Make(const std::string& kind) const {
    if (kind == "random") return std::make_unique<RandomSearcher>();
    if (kind == "evolution") {
      EvolutionarySearcher::Options opts;
      opts.population = 2;
      return std::make_unique<EvolutionarySearcher>(opts);
    }
    if (kind == "rl") return std::make_unique<RlSearcher>();
    AUTOMC_CHECK(kind == "automc");
    Rng rng(123);
    std::vector<tensor::Tensor> embeddings;
    for (size_t i = 0; i < space.size(); ++i) {
      embeddings.push_back(tensor::Tensor::Randn({8}, &rng, 0.5f));
    }
    tensor::Tensor feats({data::kTaskFeatureDim});
    for (int i = 0; i < data::kTaskFeatureDim; ++i) {
      feats[i] = 0.1f * static_cast<float>(i + 1);
    }
    ProgressiveSearcher::Options opts;
    opts.sample_schemes = 3;
    opts.candidates_per_scheme = 16;
    opts.max_evals_per_round = 2;
    opts.max_replay = 64;
    return std::make_unique<ProgressiveSearcher>(std::move(embeddings),
                                                 std::move(feats), opts);
  }
};

std::string OutcomeString(const SearchOutcome& outcome) {
  std::ostringstream os;
  Status st = SaveOutcome(outcome, &os);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return os.str();
}

SearchConfig BaseConfig(const std::string& kind) {
  SearchConfig cfg;
  cfg.max_strategy_executions = kind == "evolution" ? 10 : 8;
  cfg.max_length = 3;
  cfg.gamma = 0.3;
  cfg.seed = 11;
  // Small rounds keep the searchers checkpointing often enough that the
  // abort_after_writes=1 fault below fires within the tiny budget.
  cfg.eval_batch = 2;
  return cfg;
}

void CheckKillResumeIdentity(const std::string& kind) {
  ResumeFixture f;
  const SearchConfig cfg = BaseConfig(kind);

  // Reference: one uninterrupted run, no persistence at all.
  std::string reference;
  {
    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    auto searcher = f.Make(kind);
    auto out = searcher->Search(&ev, f.space, cfg);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    reference = OutcomeString(*out);
  }

  ScopedTempDir dir(kind);
  const std::string store_path = dir.File("store.bin");

  // Victim: checkpoints every round; the fault injection kills the process
  // at the second checkpoint write, leaving round 1's checkpoint and every
  // evaluation up to the crash durably on disk.
  {
    auto store = store::ExperienceStore::Open(store_path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store::SearchCheckpointer::Options copts;
    copts.dir = dir.path().string();
    copts.every_rounds = 1;
    copts.abort_after_writes = 1;
    store::SearchCheckpointer ckpt(copts);

    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    ASSERT_TRUE(ev.AttachStore(store->get()).ok());
    SearchConfig vcfg = cfg;
    vcfg.checkpointer = &ckpt;
    auto searcher = f.Make(kind);
    auto out = searcher->Search(&ev, f.space, vcfg);
    ASSERT_FALSE(out.ok()) << kind << ": fault injection never fired — "
                           << "the budget finished before round 2";
    EXPECT_EQ(out.status().code(), StatusCode::kInternal);
    EXPECT_EQ(ckpt.writes(), 1);
  }

  // Resume: a fresh process (new searcher, new evaluator) picks up the
  // pending checkpoint and the store, and must land exactly where the
  // uninterrupted run did.
  {
    auto store = store::ExperienceStore::Open(store_path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store::SearchCheckpointer::Options copts;
    copts.dir = dir.path().string();
    copts.every_rounds = 1;
    store::SearchCheckpointer ckpt(copts);
    ASSERT_TRUE(ckpt.LoadPending().ok());

    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    ASSERT_TRUE(ev.AttachStore(store->get()).ok());
    SearchConfig rcfg = cfg;
    rcfg.checkpointer = &ckpt;
    auto searcher = f.Make(kind);
    auto out = searcher->Search(&ev, f.space, rcfg);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(OutcomeString(*out), reference) << kind;
  }
}

TEST(ResumeTest, RandomKillResumeIsByteIdentical) {
  CheckKillResumeIdentity("random");
}

TEST(ResumeTest, EvolutionKillResumeIsByteIdentical) {
  CheckKillResumeIdentity("evolution");
}

TEST(ResumeTest, RlKillResumeIsByteIdentical) {
  CheckKillResumeIdentity("rl");
}

TEST(ResumeTest, AutoMCKillResumeIsByteIdentical) {
  CheckKillResumeIdentity("automc");
}

// Resuming under a different configuration (or a different searcher) would
// silently diverge from the crashed run; both are rejected up front.
TEST(ResumeTest, MismatchedConfigOrSearcherIsRejected) {
  ResumeFixture f;
  SearchConfig cfg = BaseConfig("random");
  ScopedTempDir dir("mismatch");

  {
    store::SearchCheckpointer::Options copts;
    copts.dir = dir.path().string();
    copts.every_rounds = 1;
    copts.abort_after_writes = 1;
    store::SearchCheckpointer ckpt(copts);
    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    SearchConfig vcfg = cfg;
    vcfg.checkpointer = &ckpt;
    auto searcher = f.Make("random");
    ASSERT_FALSE(searcher->Search(&ev, f.space, vcfg).ok());
  }

  auto resume_with = [&](std::unique_ptr<Searcher> searcher,
                         SearchConfig rcfg) {
    store::SearchCheckpointer ckpt({dir.path().string()});
    AUTOMC_CHECK(ckpt.LoadPending().ok());
    rcfg.checkpointer = &ckpt;
    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    return searcher->Search(&ev, f.space, rcfg).status();
  };

  SearchConfig other_seed = cfg;
  other_seed.seed = cfg.seed + 1;
  EXPECT_EQ(resume_with(f.Make("random"), other_seed).code(),
            StatusCode::kFailedPrecondition);
  SearchConfig other_budget = cfg;
  other_budget.max_strategy_executions += 5;
  EXPECT_EQ(resume_with(f.Make("random"), other_budget).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(resume_with(f.Make("evolution"), BaseConfig("evolution")).code(),
            StatusCode::kFailedPrecondition);

  // The matching searcher + config still resumes fine.
  EXPECT_TRUE(resume_with(f.Make("random"), cfg).ok());
}

// A checkpoint written against one base model must not restore into an
// evaluator built around a different one (e.g. a retrained base).
TEST(ResumeTest, ForeignBasePointIsRejected) {
  ResumeFixture f;
  SearchConfig cfg = BaseConfig("random");
  ScopedTempDir dir("foreignbase");

  {
    store::SearchCheckpointer::Options copts;
    copts.dir = dir.path().string();
    copts.every_rounds = 1;
    copts.abort_after_writes = 1;
    store::SearchCheckpointer ckpt(copts);
    SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
    SearchConfig vcfg = cfg;
    vcfg.checkpointer = &ckpt;
    auto searcher = f.Make("random");
    ASSERT_FALSE(searcher->Search(&ev, f.space, vcfg).ok());
  }

  // A wider base model: same family, provably different base point (params).
  nn::ModelSpec spec = f.model->spec();
  spec.base_width *= 2;
  Rng rng(99);
  std::unique_ptr<nn::Model> other = std::move(nn::BuildModel(spec, &rng)).value();

  store::SearchCheckpointer ckpt({dir.path().string()});
  ASSERT_TRUE(ckpt.LoadPending().ok());
  SearchConfig rcfg = cfg;
  rcfg.checkpointer = &ckpt;
  SchemeEvaluator ev(&f.space, other.get(), f.ctx, {});
  auto searcher = f.Make("random");
  EXPECT_EQ(searcher->Search(&ev, f.space, rcfg).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace search
}  // namespace automc
