// SchemeEvaluator prefix-cache behaviour: LRU eviction at the
// max_cached_models boundary, cache_hits() accounting, and recomputation
// identity for evicted prefixes.
#include <memory>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/search_space.h"

namespace automc {
namespace search {
namespace {

struct CacheFixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  CacheFixture() {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 12;
    cfg.test_per_class = 4;
    cfg.seed = 41;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(5);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 12;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 12;
    ctx.seed = 3;
  }

  SchemeEvaluator::Options Capped(int max_cached) {
    SchemeEvaluator::Options opts;
    opts.max_cached_models = max_cached;
    return opts;
  }
};

TEST(EvaluatorCacheTest, LruEvictionAtBoundary) {
  CacheFixture f;
  metrics::MetricsRegistry::Global().Reset();
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, f.Capped(2));

  ASSERT_TRUE(ev.Evaluate({0}).ok());
  ASSERT_TRUE(ev.Evaluate({1}).ok());
  EXPECT_EQ(ev.strategy_executions(), 2);

  // Touch {0} so {1} becomes the least-recently-used entry.
  ASSERT_TRUE(ev.Evaluate({0}).ok());
  EXPECT_EQ(ev.strategy_executions(), 2);

  // Third distinct entry exceeds max_cached_models=2 and evicts LRU ({1}).
  ASSERT_TRUE(ev.Evaluate({2}).ok());
  EXPECT_EQ(ev.strategy_executions(), 3);
  EXPECT_GE(
      metrics::MetricsRegistry::Global().GetCounter("evaluator.cache_evictions")
          .value(),
      1);

  // {0} survived the eviction (recently used): free.
  ASSERT_TRUE(ev.Evaluate({0}).ok());
  EXPECT_EQ(ev.strategy_executions(), 3);

  // {1}'s model snapshot was evicted but its measurement lives on in the
  // point index: re-asking is still free.
  ASSERT_TRUE(ev.Evaluate({1}).ok());
  EXPECT_EQ(ev.strategy_executions(), 3);
  EXPECT_EQ(ev.charged_executions(), 3);

  // Only extending past the evicted prefix pays: the compressor re-runs
  // strategy 1 to rebuild the model state (not re-measured, not re-charged),
  // then executes the one novel step.
  ASSERT_TRUE(ev.Evaluate({1, 4}).ok());
  EXPECT_EQ(ev.strategy_executions(), 5);
  EXPECT_EQ(ev.charged_executions(), 4);
}

TEST(EvaluatorCacheTest, CacheHitsAccounting) {
  CacheFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});

  EXPECT_EQ(ev.cache_hits(), 0);
  ASSERT_TRUE(ev.Evaluate({2}).ok());
  EXPECT_EQ(ev.cache_hits(), 0);  // cold evaluation is not a hit

  ASSERT_TRUE(ev.Evaluate({2}).ok());
  EXPECT_EQ(ev.cache_hits(), 1);  // fully cached scheme

  // Extending a cached prefix is not a full hit...
  ASSERT_TRUE(ev.Evaluate({2, 5}).ok());
  EXPECT_EQ(ev.cache_hits(), 1);
  EXPECT_EQ(ev.strategy_executions(), 2);  // ...but only the suffix ran.

  ASSERT_TRUE(ev.Evaluate({2, 5}).ok());
  EXPECT_EQ(ev.cache_hits(), 2);

  // The empty scheme is the (never-evicted) root: always a hit.
  auto root = ev.Evaluate({});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(ev.cache_hits(), 3);
  EXPECT_DOUBLE_EQ(root->acc, ev.base_point().acc);
  EXPECT_EQ(ev.strategy_executions(), 2);
}

TEST(EvaluatorCacheTest, EvictedPrefixRecomputesIdentically) {
  CacheFixture f;
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, f.Capped(1));

  auto p1 = ev.Evaluate({3, 4});
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(ev.strategy_executions(), 2);
  EXPECT_EQ(ev.charged_executions(), 2);

  // Force {3,4} (and the intermediate {3}) out of the one-slot model cache.
  ASSERT_TRUE(ev.Evaluate({5}).ok());
  EXPECT_EQ(ev.strategy_executions(), 3);

  // The measurement itself survives eviction in the point index: re-asking
  // for {3,4} is free and identical.
  auto p2 = ev.Evaluate({3, 4});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(ev.strategy_executions(), 3);
  EXPECT_EQ(ev.charged_executions(), 3);
  EXPECT_DOUBLE_EQ(p1->acc, p2->acc);
  EXPECT_EQ(p1->params, p2->params);
  EXPECT_EQ(p1->flops, p2->flops);

  // Extending past the evicted prefix rebuilds the model (two compressor
  // re-runs, not re-measured or re-charged) plus one novel execution. The
  // per-node deterministic seeding makes the rebuild bit-identical, so the
  // extension matches a never-evicted evaluator exactly.
  auto p3 = ev.Evaluate({3, 4, 6});
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(ev.strategy_executions(), 6);
  EXPECT_EQ(ev.charged_executions(), 4);

  SchemeEvaluator fresh(&f.space, f.model.get(), f.ctx, f.Capped(8));
  auto q = fresh.Evaluate({3, 4, 6});
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(p3->acc, q->acc);
  EXPECT_EQ(p3->params, q->params);
  EXPECT_EQ(p3->flops, q->flops);
  EXPECT_DOUBLE_EQ(p3->ar, q->ar);
  EXPECT_DOUBLE_EQ(p3->pr, q->pr);
  EXPECT_DOUBLE_EQ(p3->fr, q->fr);
}

TEST(EvaluatorCacheTest, StrategyExecutionMetricTracksEvaluator) {
  CacheFixture f;
  metrics::MetricsRegistry::Global().Reset();
  SchemeEvaluator ev(&f.space, f.model.get(), f.ctx, {});
  ASSERT_TRUE(ev.Evaluate({1, 2}).ok());
  ASSERT_TRUE(ev.Evaluate({1, 2, 3}).ok());
  EXPECT_EQ(metrics::MetricsRegistry::Global()
                .GetCounter("search.strategy_executions")
                .value(),
            ev.strategy_executions());
  // The second call reused the cached 2-step prefix.
  EXPECT_GE(metrics::MetricsRegistry::Global()
                .GetCounter("evaluator.cache_hits")
                .value(),
            2);
}

}  // namespace
}  // namespace search
}  // namespace automc
