// End-to-end determinism of the parallel execution backend: training loss
// curves and progressive-search outcomes must be BIT-IDENTICAL for any
// thread count (the ISSUE acceptance bar: same Pareto CSV no matter what
// AUTOMC_THREADS is set to). Each case runs the same seeded workload under a
// 1-lane and a 4-lane global pool and compares with EXPECT_EQ, never
// EXPECT_NEAR.
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/progressive.h"
#include "search/rl.h"

namespace automc {
namespace search {
namespace {

using tensor::Tensor;

struct Fixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  explicit Fixture(uint64_t seed = 3) {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 10;
    cfg.test_per_class = 4;
    cfg.seed = 91;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(seed);
    model = std::move(nn::BuildModel(spec, &rng)).value();

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 10;
    ctx.seed = 5;
  }
};

class PoolGuard {
 public:
  explicit PoolGuard(int threads) { ThreadPool::ResetGlobal(threads); }
  ~PoolGuard() { ThreadPool::ResetGlobal(1); }
};

TEST(DeterminismTest, TrainerFitLossIsThreadCountInvariant) {
  auto run = [](int threads) {
    PoolGuard guard(threads);
    Fixture f;
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 10;
    nn::Trainer trainer(tc);
    float final_loss = 0.0f;
    AUTOMC_CHECK(
        trainer.Fit(f.model.get(), f.task.train, nullptr, nullptr, &final_loss)
            .ok());
    double acc = nn::Trainer::Evaluate(f.model.get(), f.task.test);
    return std::make_pair(final_loss, acc);
  };
  auto [loss1, acc1] = run(1);
  auto [loss4, acc4] = run(4);
  EXPECT_EQ(loss1, loss4);  // bitwise: same chunks, same reduction order
  EXPECT_EQ(acc1, acc4);
}

// The full progressive pipeline: evaluator (compressors + retraining), F_mo
// scoring fan-out, Pareto front computation. The archives must match scheme
// for scheme and point for point.
SearchOutcome RunProgressive(int threads) {
  PoolGuard guard(threads);
  Fixture f;
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10;
  nn::Trainer trainer(tc);
  AUTOMC_CHECK(trainer.Fit(f.model.get(), f.task.train).ok());

  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  Rng rng(7);
  std::vector<Tensor> embeddings;
  for (size_t i = 0; i < f.space.size(); ++i) {
    embeddings.push_back(Tensor::Randn({8}, &rng));
  }
  ProgressiveSearcher::Options opts;
  opts.sample_schemes = 2;
  opts.candidates_per_scheme = 10;
  opts.max_evals_per_round = 2;
  ProgressiveSearcher searcher(
      embeddings, Tensor::Randn({data::kTaskFeatureDim}, &rng), opts);
  SearchConfig cfg;
  cfg.max_strategy_executions = 6;
  cfg.max_length = 3;
  cfg.gamma = 0.1;
  cfg.seed = 11;
  auto outcome = searcher.Search(&evaluator, f.space, cfg);
  AUTOMC_CHECK(outcome.ok()) << outcome.status().ToString();
  return *outcome;
}

TEST(DeterminismTest, ProgressiveSearchArchiveIsThreadCountInvariant) {
  SearchOutcome serial = RunProgressive(1);
  SearchOutcome quad = RunProgressive(4);
  EXPECT_EQ(serial.executions, quad.executions);
  ASSERT_EQ(serial.pareto_schemes.size(), quad.pareto_schemes.size());
  EXPECT_EQ(serial.pareto_schemes, quad.pareto_schemes);
  ASSERT_EQ(serial.pareto_points.size(), quad.pareto_points.size());
  for (size_t i = 0; i < serial.pareto_points.size(); ++i) {
    EXPECT_EQ(serial.pareto_points[i].acc, quad.pareto_points[i].acc) << i;
    EXPECT_EQ(serial.pareto_points[i].params, quad.pareto_points[i].params)
        << i;
    EXPECT_EQ(serial.pareto_points[i].flops, quad.pareto_points[i].flops) << i;
    EXPECT_EQ(serial.pareto_points[i].pr, quad.pareto_points[i].pr) << i;
  }
}

// The RL controller samples from softmax probabilities computed by the
// (now row-parallel) action head; the sampled episodes must not depend on
// the thread count either.
SearchOutcome RunRl(int threads) {
  PoolGuard guard(threads);
  Fixture f;
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10;
  nn::Trainer trainer(tc);
  AUTOMC_CHECK(trainer.Fit(f.model.get(), f.task.train).ok());
  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  RlSearcher searcher;
  SearchConfig cfg;
  cfg.max_strategy_executions = 5;
  cfg.max_length = 3;
  cfg.gamma = 0.1;
  cfg.seed = 13;
  auto outcome = searcher.Search(&evaluator, f.space, cfg);
  AUTOMC_CHECK(outcome.ok()) << outcome.status().ToString();
  return *outcome;
}

TEST(DeterminismTest, RlSearchArchiveIsThreadCountInvariant) {
  SearchOutcome serial = RunRl(1);
  SearchOutcome quad = RunRl(4);
  EXPECT_EQ(serial.executions, quad.executions);
  EXPECT_EQ(serial.pareto_schemes, quad.pareto_schemes);
}

}  // namespace
}  // namespace search
}  // namespace automc
