// Behavioral contracts every search strategy must honor: budget, length
// caps, determinism, and consistency between outcome and evaluator.
#include <memory>

#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evolutionary.h"
#include "search/progressive.h"
#include "search/random_search.h"
#include "search/rl.h"

namespace automc {
namespace search {
namespace {

using tensor::Tensor;

struct Fixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  explicit Fixture(uint64_t seed = 3) {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 10;
    cfg.test_per_class = 4;
    cfg.seed = 91;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(seed);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 10;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 10;
    ctx.seed = 5;
  }
};

std::unique_ptr<Searcher> MakeSearcher(const std::string& name,
                                       size_t space_size) {
  if (name == "random") return std::make_unique<RandomSearcher>();
  if (name == "evolution") {
    EvolutionarySearcher::Options opts;
    opts.population = 3;
    return std::make_unique<EvolutionarySearcher>(opts);
  }
  if (name == "rl") return std::make_unique<RlSearcher>();
  // progressive with random embeddings
  Rng rng(7);
  std::vector<Tensor> embeddings;
  for (size_t i = 0; i < space_size; ++i) {
    embeddings.push_back(Tensor::Randn({8}, &rng));
  }
  ProgressiveSearcher::Options opts;
  opts.sample_schemes = 2;
  opts.candidates_per_scheme = 10;
  opts.max_evals_per_round = 2;
  return std::make_unique<ProgressiveSearcher>(
      embeddings, Tensor::Randn({data::kTaskFeatureDim}, &rng), opts);
}

class SearcherContractTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SearcherContractTest, RespectsLengthCap) {
  Fixture f;
  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  auto searcher = MakeSearcher(GetParam(), f.space.size());
  SearchConfig cfg;
  cfg.max_strategy_executions = 6;
  cfg.max_length = 2;
  cfg.gamma = 0.1;
  cfg.seed = 11;
  auto outcome = searcher->Search(&evaluator, f.space, cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  for (const auto& scheme : outcome->pareto_schemes) {
    EXPECT_LE(scheme.size(), 2u) << GetParam();
    EXPECT_GE(scheme.size(), 1u) << GetParam();
  }
}

TEST_P(SearcherContractTest, ExecutionsMatchEvaluator) {
  Fixture f;
  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  auto searcher = MakeSearcher(GetParam(), f.space.size());
  SearchConfig cfg;
  cfg.max_strategy_executions = 5;
  cfg.max_length = 3;
  cfg.gamma = 0.1;
  cfg.seed = 13;
  auto outcome = searcher->Search(&evaluator, f.space, cfg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->executions, evaluator.strategy_executions());
  // Budget respected up to one scheme's slack.
  EXPECT_LE(outcome->executions, cfg.max_strategy_executions + cfg.max_length);
}

TEST_P(SearcherContractTest, DeterministicForFixedSeed) {
  auto run = [&]() {
    Fixture f;
    SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
    auto searcher = MakeSearcher(GetParam(), f.space.size());
    SearchConfig cfg;
    cfg.max_strategy_executions = 5;
    cfg.max_length = 3;
    cfg.gamma = 0.1;
    cfg.seed = 17;
    auto outcome = searcher->Search(&evaluator, f.space, cfg);
    AUTOMC_CHECK(outcome.ok());
    return std::move(outcome).value();
  };
  SearchOutcome a = run();
  SearchOutcome b = run();
  ASSERT_EQ(a.pareto_schemes.size(), b.pareto_schemes.size()) << GetParam();
  for (size_t i = 0; i < a.pareto_schemes.size(); ++i) {
    EXPECT_EQ(a.pareto_schemes[i], b.pareto_schemes[i]) << GetParam();
  }
  EXPECT_EQ(a.executions, b.executions) << GetParam();
}

TEST_P(SearcherContractTest, RejectsEmptySpace) {
  Fixture f;
  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  SearchSpace empty;
  auto searcher = MakeSearcher(GetParam(), 0);
  SearchConfig cfg;
  cfg.max_strategy_executions = 2;
  auto outcome = searcher->Search(&evaluator, empty, cfg);
  EXPECT_FALSE(outcome.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Searchers, SearcherContractTest,
                         ::testing::Values("random", "evolution", "rl",
                                           "progressive"));

// Pareto outcomes are mutually non-dominated in (acc, -params).
TEST(SearchOutcomeTest, ParetoSetIsNonDominated) {
  Fixture f;
  SchemeEvaluator evaluator(&f.space, f.model.get(), f.ctx, {});
  RandomSearcher searcher;
  SearchConfig cfg;
  cfg.max_strategy_executions = 8;
  cfg.max_length = 2;
  cfg.gamma = 0.05;
  cfg.seed = 19;
  auto outcome = searcher.Search(&evaluator, f.space, cfg);
  ASSERT_TRUE(outcome.ok());
  const auto& pts = outcome->pareto_points;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      bool dominates = pts[j].acc >= pts[i].acc &&
                       pts[j].params <= pts[i].params &&
                       (pts[j].acc > pts[i].acc ||
                        pts[j].params < pts[i].params);
      EXPECT_FALSE(dominates) << i << " dominated by " << j;
    }
  }
}

}  // namespace
}  // namespace search
}  // namespace automc
