// SaveOutcome/LoadOutcome failure paths: corrupted headers, truncated
// bodies, hostile counts, and unwritable/missing files must come back as
// error Results, never as partially-filled outcomes.
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "search/report.h"
#include "search/searcher.h"

namespace automc {
namespace search {
namespace {

SearchOutcome SampleOutcome() {
  SearchOutcome out;
  out.executions = 7;
  HistoryPoint h1;
  h1.executions = 3;
  h1.best_acc = 0.5;
  h1.best_acc_any = 0.6;
  HistoryPoint h2;
  h2.executions = 7;
  h2.best_acc = 0.55;
  h2.best_acc_any = 0.62;
  out.history = {h1, h2};
  EvalPoint p;
  p.acc = 0.55;
  p.params = 1234;
  p.flops = 99;
  p.pr = 0.4;
  p.fr = 0.3;
  out.pareto_points = {p};
  out.pareto_schemes = {{2, 5, 1}};
  return out;
}

std::string Serialized(const SearchOutcome& out) {
  std::ostringstream os;
  EXPECT_TRUE(SaveOutcome(out, &os).ok());
  return os.str();
}

TEST(ReportTest, SaveLoadRoundTrip) {
  SearchOutcome out = SampleOutcome();
  std::istringstream in(Serialized(out));
  auto loaded = LoadOutcome(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->executions, 7);
  ASSERT_EQ(loaded->history.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->history[1].best_acc, 0.55);
  ASSERT_EQ(loaded->pareto_schemes.size(), 1u);
  EXPECT_EQ(loaded->pareto_schemes[0], (std::vector<int>{2, 5, 1}));
  EXPECT_EQ(loaded->pareto_points[0].params, 1234);
  // The round-trip is lossless: re-serializing gives the same bytes.
  EXPECT_EQ(Serialized(*loaded), Serialized(out));
}

TEST(ReportTest, SaveRejectsNullAndInconsistentOutcome) {
  EXPECT_EQ(SaveOutcome(SampleOutcome(), nullptr).code(),
            StatusCode::kInvalidArgument);
  SearchOutcome skewed = SampleOutcome();
  skewed.pareto_schemes.push_back({1});  // schemes/points out of sync
  std::ostringstream os;
  EXPECT_EQ(SaveOutcome(skewed, &os).code(), StatusCode::kInvalidArgument);
}

TEST(ReportTest, LoadRejectsBadHeader) {
  for (const std::string bad :
       {std::string(""), std::string("garbage"),
        std::string("AUTOMC_OUTCOME 2\n"),  // future version
        std::string("NOT_AN_OUTCOME 1\n")}) {
    std::istringstream in(bad);
    auto loaded = LoadOutcome(&in);
    EXPECT_FALSE(loaded.ok()) << "input: " << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ReportTest, LoadRejectsTruncationAtEveryLine) {
  const std::string full = Serialized(SampleOutcome());
  // Chop the serialized form at every line boundary except the last; each
  // prefix must fail to load rather than yield a partial outcome.
  for (size_t pos = full.find('\n'); pos != std::string::npos && pos + 1 < full.size();
       pos = full.find('\n', pos + 1)) {
    std::istringstream in(full.substr(0, pos + 1));
    auto loaded = LoadOutcome(&in);
    EXPECT_FALSE(loaded.ok()) << "prefix length " << pos + 1;
  }
}

TEST(ReportTest, LoadRejectsHostileCounts) {
  std::istringstream history_bomb(
      "AUTOMC_OUTCOME 1\nexecutions 3\nhistory 99999999999\n");
  EXPECT_FALSE(LoadOutcome(&history_bomb).ok());

  std::istringstream pareto_bomb(
      "AUTOMC_OUTCOME 1\nexecutions 3\nhistory 0\npareto 99999999999\n");
  EXPECT_FALSE(LoadOutcome(&pareto_bomb).ok());

  std::istringstream scheme_bomb(
      "AUTOMC_OUTCOME 1\nexecutions 3\nhistory 0\npareto 1\n"
      "0.5 10 10 0.1 0.1 123456\n");
  EXPECT_FALSE(LoadOutcome(&scheme_bomb).ok());
}

TEST(ReportTest, LoadRejectsTruncatedScheme) {
  std::istringstream in(
      "AUTOMC_OUTCOME 1\nexecutions 3\nhistory 0\npareto 1\n"
      "0.5 10 10 0.1 0.1 3 7 8\n");  // scheme claims 3 indices, has 2
  auto loaded = LoadOutcome(&in);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReportTest, FileHelpersReportMissingAndUnwritablePaths) {
  EXPECT_EQ(LoadOutcomeFile("/nonexistent/dir/outcome.txt").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(SaveOutcomeFile(SampleOutcome(), "/nonexistent/dir/outcome.txt")
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace search
}  // namespace automc
