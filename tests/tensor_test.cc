#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace automc {
namespace tensor {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.dim(), 4);
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(3), 5);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillAndScale) {
  Tensor t({3, 3});
  t.Fill(2.0f);
  t.Scale(1.5f);
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(t[i], 3.0f);
  EXPECT_FLOAT_EQ(t.SumAll(), 27.0f);
  EXPECT_FLOAT_EQ(t.L2NormSquared(), 81.0f);
}

TEST(TensorTest, At4dRowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 6});
  for (int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.Reshaped({3, 4});
  EXPECT_EQ(r.dim(), 2);
  EXPECT_EQ(r.size(0), 3);
  for (int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
}

TEST(TensorTest, AddAndAxpy) {
  Tensor a = Tensor::Full({4}, 1.0f);
  Tensor b = Tensor::Full({4}, 2.0f);
  a.AddInPlace(b);
  a.AxpyInPlace(0.5f, b);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 4.0f);
}

TEST(TensorTest, RandnIsSeedDeterministic) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::Randn({10}, &r1);
  Tensor b = Tensor::Randn({10}, &r2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(TensorTest, KaimingNormalScale) {
  Rng rng(5);
  Tensor t = Tensor::KaimingNormal({2000}, 50, &rng);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) var += static_cast<double>(t[i]) * t[i];
  var /= t.numel();
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

// --------------------------------------------------------------------------
// MatMul family

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  for (int i = 0; i < 6; ++i) {
    a[i] = av[i];
    b[i] = bv[i];
  }
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransposeVariantsAgree) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 6}, &rng);
  Tensor b = Tensor::Randn({6, 5}, &rng);
  Tensor c = MatMul(a, b);

  // MatMulTransposeA(a^T stored, b) should equal c.
  Tensor at({6, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor c2 = MatMulTransposeA(at, b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], c2[i], 1e-4);

  // MatMulTransposeB(a, b^T stored) should equal c.
  Tensor bt({5, 6});
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c3 = MatMulTransposeB(a, bt);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], c3[i], 1e-4);
}

// --------------------------------------------------------------------------
// Im2Col / Col2Im

TEST(Im2ColTest, IdentityKernelGeometry) {
  // 1x1 kernel, stride 1, no padding: cols equals the flattened image.
  ConvGeometry g{2, 3, 3, 1, 1, 0};
  Tensor x({2, 3, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  Tensor cols({2, 9});
  Im2Col(x.data(), g, &cols);
  for (int64_t i = 0; i < 18; ++i) EXPECT_FLOAT_EQ(cols[i], static_cast<float>(i));
}

TEST(Im2ColTest, PaddingProducesZeros) {
  ConvGeometry g{1, 2, 2, 3, 1, 1};
  Tensor x({1, 2, 2});
  x.Fill(1.0f);
  Tensor cols({9, 4});
  Im2Col(x.data(), g, &cols);
  // Top-left output position, kernel offset (0,0) reads padding.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Center kernel offset (1,1) reads the image.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
}

class Im2ColAdjointTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

// <cols, dx> adjoint identity: for random y and x,
// <Im2Col(x), y> == <x, Col2Im(y)>.
TEST_P(Im2ColAdjointTest, AdjointIdentity) {
  auto [kernel, stride, pad] = GetParam();
  ConvGeometry g{3, 6, 6, kernel, stride, pad};
  if (g.OutH() <= 0 || g.OutW() <= 0) GTEST_SKIP();
  Rng rng(2);
  Tensor x = Tensor::Randn({g.in_c, g.in_h, g.in_w}, &rng);
  Tensor cols({g.in_c * kernel * kernel, g.OutH() * g.OutW()});
  Im2Col(x.data(), g, &cols);
  Tensor y = Tensor::Randn(cols.shape(), &rng);
  double lhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  Tensor back({g.in_c, g.in_h, g.in_w});
  Col2Im(y, g, back.MutableData());
  double rhs = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColAdjointTest,
    ::testing::Values(std::make_tuple(3, 1, 1), std::make_tuple(3, 2, 1),
                      std::make_tuple(1, 1, 0), std::make_tuple(1, 2, 0),
                      std::make_tuple(5, 1, 2), std::make_tuple(2, 2, 0)));

// --------------------------------------------------------------------------
// LogSoftmax

TEST(LogSoftmaxTest, RowsSumToOneInProbSpace) {
  Rng rng(3);
  Tensor logits = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor lsm = LogSoftmax(logits);
  for (int64_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 7; ++j) s += std::exp(lsm.at(i, j));
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(LogSoftmaxTest, ShiftInvariant) {
  Tensor a({1, 3});
  a[0] = 1.0f;
  a[1] = 2.0f;
  a[2] = 3.0f;
  Tensor b({1, 3});
  for (int i = 0; i < 3; ++i) b[i] = a[i] + 100.0f;
  Tensor la = LogSoftmax(a), lb = LogSoftmax(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(la[i], lb[i], 1e-5);
}

TEST(LogSoftmaxTest, LargeLogitsStable) {
  Tensor a({1, 2});
  a[0] = 1000.0f;
  a[1] = -1000.0f;
  Tensor l = LogSoftmax(a);
  EXPECT_NEAR(l[0], 0.0f, 1e-5);
  EXPECT_TRUE(std::isfinite(l[1]));
}

}  // namespace
}  // namespace tensor
}  // namespace automc
