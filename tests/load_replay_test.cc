// Load-replay harness + the two server behaviours it motivated.
//
//   * BuildSchedule is deterministic and open-loop (fixed seed => identical
//     (timestamp, op, conn) sequence; rate and mix approximate the params);
//   * Histogram::Percentile matches a sorted-sample reference within one
//     bucket of LatencyBounds resolution;
//   * a server that never answers inside the timeout yields *timeouts*,
//     never latency samples — late replies are discarded, not smuggled in
//     as good news (the anti-coordinated-omission contract);
//   * FairQueue round-robins tenants, and a real server gives a second
//     connection's single job a slot ahead of another connection's queued
//     batch;
//   * the event loop pauses reading a connection whose reply backlog
//     crosses the high watermark (bounded memory), resumes below the low
//     watermark, and still answers every request.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/net.h"
#include "core/run_spec.h"
#include "gtest/gtest.h"
#include "server/job_manager.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"

namespace automc {
namespace {

namespace loadgen = server::loadgen;
using server::Client;
using server::FairQueue;
using server::JobState;
using server::MsgType;
using testing::ScopedTempDir;

core::RunSpec TinySpec(uint64_t seed) {
  core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = 1;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------------------
// Schedule generation

TEST(LoadGenTest, ScheduleIsDeterministicForFixedSeed) {
  loadgen::ScheduleParams params;
  params.qps = 500;
  params.duration_s = 2.0;
  params.connections = 7;
  params.seed = 42;
  const auto a = loadgen::BuildSchedule(params);
  const auto b = loadgen::BuildSchedule(params);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ns, b[i].at_ns);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].conn, b[i].conn);
  }
  // A different seed must not reproduce the sequence.
  params.seed = 43;
  const auto c = loadgen::BuildSchedule(params);
  ASSERT_FALSE(c.empty());
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < c.size(); ++i) {
    any_diff = c[i].at_ns != a[i].at_ns || c[i].op != a[i].op;
  }
  EXPECT_TRUE(any_diff);
}

TEST(LoadGenTest, ScheduleApproximatesRateMixAndSpread) {
  loadgen::ScheduleParams params;
  params.qps = 1000;
  params.duration_s = 4.0;
  params.connections = 4;
  params.seed = 7;
  auto mix = loadgen::Mix::Parse("status=50,submit=50");
  ASSERT_TRUE(mix.ok()) << mix.status().ToString();
  params.mix = *mix;
  const auto schedule = loadgen::BuildSchedule(params);

  // Poisson(4000) total count: within 5 sigma of the mean.
  EXPECT_NEAR(static_cast<double>(schedule.size()), 4000.0, 5 * 64.0);
  int64_t prev = -1;
  int64_t by_op[loadgen::kNumOps] = {};
  std::vector<int64_t> by_conn(params.connections, 0);
  for (const auto& entry : schedule) {
    EXPECT_GT(entry.at_ns, prev);  // strictly increasing
    prev = entry.at_ns;
    EXPECT_LT(entry.at_ns, static_cast<int64_t>(params.duration_s * 1e9));
    ++by_op[static_cast<int>(entry.op)];
    ASSERT_LT(entry.conn, static_cast<uint32_t>(params.connections));
    ++by_conn[entry.conn];
  }
  // The 50/50 mix: each side within 10% of half.
  const double half = static_cast<double>(schedule.size()) / 2.0;
  EXPECT_NEAR(static_cast<double>(by_op[0]), half, half * 0.1);  // status
  EXPECT_NEAR(static_cast<double>(by_op[2]), half, half * 0.1);  // submit
  EXPECT_EQ(by_op[1] + by_op[3] + by_op[4], 0);  // unlisted ops: weight 0
  // Connections drawn uniformly: each within 20% of its share.
  for (int64_t n : by_conn) {
    EXPECT_NEAR(static_cast<double>(n), half / 2.0, half * 0.2);
  }
}

TEST(LoadGenTest, MixParseRejectsGarbage) {
  EXPECT_FALSE(loadgen::Mix::Parse("status").ok());
  EXPECT_FALSE(loadgen::Mix::Parse("bogus=3").ok());
  EXPECT_FALSE(loadgen::Mix::Parse("status=-1").ok());
  EXPECT_FALSE(loadgen::Mix::Parse("status=0,list=0").ok());
  auto ok = loadgen::Mix::Parse("fetch=2,status=1");
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->weight[static_cast<int>(loadgen::Op::kFetch)], 2.0);
  EXPECT_DOUBLE_EQ(ok->weight[static_cast<int>(loadgen::Op::kSubmit)], 0.0);
}

// ---------------------------------------------------------------------------
// Percentile math

TEST(LoadGenTest, PercentileMatchesSortedReference) {
  metrics::Histogram hist(metrics::Histogram::LatencyBounds());
  std::vector<double> samples;
  // Deterministic log-uniform spread over the ladder's range.
  uint64_t state = 99;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    samples.push_back(std::pow(10.0, -1.0 + 4.0 * u));  // 0.1 .. 1000
  }
  for (double s : samples) hist.Observe(s);
  std::sort(samples.begin(), samples.end());

  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double est = hist.Percentile(q);
    const double ref =
        samples[std::min(samples.size() - 1,
                         static_cast<size_t>(q * samples.size()))];
    // LatencyBounds buckets are at most 30% wide; allow one bucket of slop.
    EXPECT_NEAR(est, ref, ref * 0.3)
        << "q=" << q << " est=" << est << " ref=" << ref;
  }
  // Monotone in q, bounded by the observed extremes.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = hist.Percentile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, hist.min());
    EXPECT_LE(v, hist.max());
    prev = v;
  }
}

TEST(LoadGenTest, PercentileEdgeCases) {
  metrics::Histogram empty(metrics::Histogram::LatencyBounds());
  EXPECT_DOUBLE_EQ(empty.Percentile(0.99), 0.0);

  metrics::Histogram one(metrics::Histogram::LatencyBounds());
  one.Observe(3.7);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(one.Percentile(q), 3.7);
  }

  // An observation beyond the last bound lands in the overflow bucket; the
  // estimate must use the observed max, not infinity.
  metrics::Histogram over(metrics::Histogram::LatencyBounds());
  over.Observe(1e9);
  EXPECT_DOUBLE_EQ(over.Percentile(0.99), 1e9);
}

TEST(LoadGenTest, CheckSloFlagsBudgetViolations) {
  loadgen::Report report;
  report.per_op[0].sent = 100;
  report.per_op[0].ok = 90;
  report.per_op[0].timeouts = 10;
  report.p99_ms[0] = 12.0;
  loadgen::SloBudget slo;
  slo.p99_ms = 10.0;
  slo.max_error_rate = 0.05;
  const auto violations = loadgen::CheckSlo(report, slo);
  ASSERT_EQ(violations.size(), 2u);  // p99 over budget + 10% error rate

  slo.p99_ms = 20.0;
  slo.max_error_rate = 0.2;
  EXPECT_TRUE(loadgen::CheckSlo(report, slo).empty());
  // Disabled budgets never fire.
  EXPECT_TRUE(loadgen::CheckSlo(report, loadgen::SloBudget{}).empty());
}

// ---------------------------------------------------------------------------
// Timeouts are recorded, late replies discarded

TEST(LoadGenTest, SlowServerYieldsTimeoutsNotLatencySamples) {
  ScopedTempDir dir("load_slow");
  const std::string path = dir.File("slow.sock");
  auto listen_fd = net::ListenUnix(path, 8);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();

  // A server that answers every request — but only long after the client's
  // timeout. On-time accounting would call these successes; open-loop
  // accounting must call every one of them a timeout.
  std::thread slow([fd = *listen_fd] {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) return;
    server::FrameDecoder decoder;
    char chunk[4096];
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::seconds(5)) {
      ssize_t r = ::recv(conn, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (r > 0) decoder.Feed(chunk, static_cast<size_t>(r));
      if (r == 0) break;
      server::Frame frame;
      Status error;
      bool replied = false;
      while (decoder.Next(&frame, &error) ==
             server::FrameDecoder::Event::kFrame) {
        ::usleep(220 * 1000);  // well past the 100 ms replay timeout
        const std::string reply = server::EncodeFrame(
            MsgType::kError, server::EncodeError(Status::NotFound("late")));
        // MSG_NOSIGNAL: the replayer may have hung up already — an EPIPE
        // here is expected, a SIGPIPE would kill the test.
        (void)::send(conn, reply.data(), reply.size(), MSG_NOSIGNAL);
        replied = true;
      }
      if (!replied) ::usleep(2000);
    }
    ::close(conn);
  });

  metrics::MetricsRegistry::Global().Reset();
  loadgen::ReplayOptions options;
  options.address = path;
  options.schedule.qps = 50;
  options.schedule.duration_s = 0.2;
  options.schedule.connections = 1;
  options.schedule.seed = 5;
  auto mix = loadgen::Mix::Parse("status=1");
  ASSERT_TRUE(mix.ok());
  options.schedule.mix = *mix;
  options.timeout_ms = 100;
  auto report = loadgen::RunReplay(options);
  slow.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const loadgen::OpStats total = report->Total();
  ASSERT_GT(total.sent, 0);
  EXPECT_EQ(total.timeouts, total.sent);
  EXPECT_EQ(total.ok, 0);
  EXPECT_EQ(total.rejected, 0);  // late NotFound replies were discarded
  EXPECT_DOUBLE_EQ(report->ErrorRate(), 1.0);
  // No latency sample may exist: a timed-out request has no latency.
  EXPECT_EQ(metrics::MetricsRegistry::Global()
                .GetHistogram("load.status_ms")
                .count(),
            0);
  EXPECT_DOUBLE_EQ(report->p99_ms[static_cast<int>(loadgen::Op::kStatus)],
                   0.0);
}

// ---------------------------------------------------------------------------
// FairQueue

TEST(FairQueueTest, RoundRobinsAcrossTenants) {
  FairQueue q;
  q.Push(1, 10);
  q.Push(1, 11);
  q.Push(1, 12);
  q.Push(2, 20);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.tenants(), 2u);

  uint64_t id = 0;
  std::vector<uint64_t> order;
  while (q.PopNext(&id)) order.push_back(id);
  // Tenant 2's single job preempts tenant 1's backlog at the second slot.
  EXPECT_EQ(order, (std::vector<uint64_t>{10, 20, 11, 12}));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.PopNext(&id));
}

TEST(FairQueueTest, SingleTenantDegeneratesToFifo) {
  FairQueue q;
  for (uint64_t id : {5, 1, 9, 3}) q.Push(0, id);
  uint64_t id = 0;
  std::vector<uint64_t> order;
  while (q.PopNext(&id)) order.push_back(id);
  EXPECT_EQ(order, (std::vector<uint64_t>{5, 1, 9, 3}));
}

TEST(FairQueueTest, RemoveDropsQueuedJob) {
  FairQueue q;
  q.Push(1, 10);
  q.Push(2, 20);
  q.Push(2, 21);
  EXPECT_TRUE(q.Remove(20));
  EXPECT_FALSE(q.Remove(20));
  EXPECT_EQ(q.size(), 2u);
  uint64_t id = 0;
  std::vector<uint64_t> order;
  while (q.PopNext(&id)) order.push_back(id);
  EXPECT_EQ(order, (std::vector<uint64_t>{10, 21}));
}

// A second connection's single job gets the slot after the in-flight one,
// ahead of the first connection's queued batch.
TEST(FairnessTest, SecondConnectionIsNotStarvedByBatchSubmitter) {
  ScopedTempDir dir("load_fair");
  server::Server::Options opts;
  opts.socket_path = dir.File("fair.sock");
  opts.idle_timeout_s = 0;
  opts.jobs.workdir = dir.File("jobs");
  opts.jobs.max_concurrent = 1;
  opts.jobs.start_paused = true;  // queue everything before any job runs
  auto srv = server::Server::Start(std::move(opts));
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto conn_a = Client::Connect((*srv)->socket_path());
  ASSERT_TRUE(conn_a.ok());
  auto conn_b = Client::Connect((*srv)->socket_path());
  ASSERT_TRUE(conn_b.ok());

  std::vector<uint64_t> a_ids;
  for (uint64_t seed : {301, 302, 303}) {
    auto id = conn_a->Submit(TinySpec(seed));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    a_ids.push_back(*id);
  }
  auto b_id = conn_b->Submit(TinySpec(304));
  ASSERT_TRUE(b_id.ok()) << b_id.status().ToString();

  (*srv)->jobs()->StartWorkers();

  // Wait for B's job; the moment it is DONE, A's *last* job must still be
  // waiting — under the old global FIFO all three A jobs finished first.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    auto info = conn_b->JobStatus(*b_id);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    if (info->state == JobState::kDone) break;
    ASSERT_NE(info->state, JobState::kFailed) << info->error;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto a_last = conn_a->JobStatus(a_ids.back());
  ASSERT_TRUE(a_last.ok());
  EXPECT_NE(a_last->state, JobState::kDone)
      << "batch submitter starved the interactive connection";

  ASSERT_TRUE((*srv)->jobs()->WaitIdle(180.0));
  (*srv)->Stop();
}

// ---------------------------------------------------------------------------
// Write backpressure

TEST(BackpressureTest, PausesReadingAtWatermarkAndAnswersEverything) {
#ifdef AUTOMC_DISABLE_METRICS
  // The pause is observed through the server.backpressure_* counters,
  // which this build compiles out (the watermark logic itself still
  // runs; event_loop.cc records it via the AUTOMC_METRIC_* macros).
  GTEST_SKIP() << "backpressure counters compiled out";
#endif
  ScopedTempDir dir("load_bp");
  metrics::MetricsRegistry::Global().Reset();
  // Pad the metrics registry so each kGetMetrics reply is a few KiB — the
  // 4 MiB watermark then trips after ~1-2k parked replies.
  for (int i = 0; i < 64; ++i) {
    metrics::MetricsRegistry::Global()
        .GetHistogram("pad.h" + std::to_string(i),
                      metrics::Histogram::LatencyBounds())
        .Observe(1.0);
  }

  server::Server::Options opts;
  opts.socket_path = dir.File("bp.sock");
  opts.idle_timeout_s = 0;
  opts.jobs.workdir = dir.File("jobs");
  opts.jobs.max_concurrent = 1;
  auto srv = server::Server::Start(std::move(opts));
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();

  auto fd = net::ConnectAddress((*srv)->socket_path());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(net::SetNonBlocking(*fd, true).ok());

  const std::string request =
      server::EncodeFrame(MsgType::kGetMetrics, "");
  constexpr int kRequests = 4000;
  std::string wire;
  wire.reserve(request.size() * kRequests);
  for (int i = 0; i < kRequests; ++i) wire += request;

  auto& stalls =
      metrics::MetricsRegistry::Global().GetCounter(
          "server.backpressure_stalls");
  auto& resumes =
      metrics::MetricsRegistry::Global().GetCounter(
          "server.backpressure_resumes");
  auto& peak = metrics::MetricsRegistry::Global().GetGauge(
      "server.backpressure_peak_bytes");

  // Phase 1: pipeline requests without reading a single reply until the
  // server visibly stalls this connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t wpos = 0;
  while (stalls.value() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no stall after " << wpos << " bytes";
    if (wpos < wire.size()) {
      ssize_t w = ::send(*fd, wire.data() + wpos,
                         std::min<size_t>(wire.size() - wpos, 64 << 10),
                         MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w > 0) {
        wpos += static_cast<size_t>(w);
        continue;
      }
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK)
          << std::strerror(errno);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(stalls.value(), 1);
  // Bounded buffering: the backlog stopped near the 4 MiB watermark, two
  // orders of magnitude under the 256 MiB drop limit.
  EXPECT_GT(peak.value(), 0.0);
  EXPECT_LT(peak.value(), 8.0 * (1 << 20));

  // Phase 2: read replies (and finish writing) — the paused connection
  // must resume and every one of the kRequests requests must be answered.
  server::FrameDecoder decoder;
  int replies = 0;
  char chunk[64 << 10];
  while (replies < kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << replies << " of " << kRequests << " replies";
    if (wpos < wire.size()) {
      ssize_t w = ::send(*fd, wire.data() + wpos,
                         std::min<size_t>(wire.size() - wpos, 64 << 10),
                         MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w > 0) wpos += static_cast<size_t>(w);
    }
    ssize_t r = ::recv(*fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (r > 0) {
      decoder.Feed(chunk, static_cast<size_t>(r));
    } else if (r == 0) {
      FAIL() << "server closed the connection after " << replies
             << " replies";
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      FAIL() << "recv: " << std::strerror(errno);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server::Frame frame;
    Status error;
    while (decoder.Next(&frame, &error) ==
           server::FrameDecoder::Event::kFrame) {
      EXPECT_EQ(frame.type, static_cast<uint32_t>(MsgType::kMetrics));
      ++replies;
    }
  }
  EXPECT_EQ(replies, kRequests);
  EXPECT_GE(resumes.value(), 1);
  ::close(*fd);
  (*srv)->Stop();
}

}  // namespace
}  // namespace automc
