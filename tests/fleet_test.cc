// End-to-end coverage of the fleet subsystem: a coordinator sharding jobs
// across forked automc_serve --worker processes. The contract under test is
// the same one the single-process server honors — every acknowledged job
// completes with an outcome byte-identical to a direct in-process run —
// now including a worker killed with SIGKILL mid-job.
//
// Needs the built daemon binary: ctest exports AUTOMC_SERVE_BIN; running
// the test binary by hand without it skips these tests.
#include <signal.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include "common/bytes.h"
#include "core/run_spec.h"
#include "fleet/coordinator.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "search/report.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"

namespace automc {
namespace {

using server::Client;
using server::JobState;
using testing::ScopedTempDir;

const char* ServeBin() { return std::getenv("AUTOMC_SERVE_BIN"); }

core::RunSpec TinySpec(uint64_t seed, int budget) {
  core::RunSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.dataset = "tiny";
  spec.searcher = "random";
  spec.budget = budget;
  spec.pretrain = 1;
  spec.eval_batch = 2;
  spec.seed = seed;
  return spec;
}

std::string DirectOutcomeBytes(const core::RunSpec& spec) {
  auto result = core::RunSearch(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return search::SaveOutcomeBytes(result->outcome);
}

Result<server::JobInfo> PollUntil(Client* client, uint64_t id,
                                  const std::function<bool(JobState)>& pred,
                                  double timeout_s = 120.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    AUTOMC_ASSIGN_OR_RETURN(server::JobInfo info, client->JobStatus(id));
    if (pred(info.state)) return info;
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal(std::string("timed out waiting; job is ") +
                              server::JobStateName(info.state));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct Fleet {
  std::unique_ptr<fleet::Coordinator> coordinator;
  std::unique_ptr<server::Server> server;

  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  ~Fleet() {
    if (server != nullptr) server->Stop();
    if (coordinator != nullptr) coordinator->Shutdown();
  }
};

// Coordinator (N real forked workers) fronted by an in-process Server on a
// unix socket, exactly the wiring `automc_serve --fleet N` builds.
Fleet StartFleet(const ScopedTempDir& dir, int workers) {
  Fleet fleet;
  fleet::Coordinator::Options copts;
  copts.num_workers = workers;
  copts.workdir = dir.File("fleet");
  copts.worker_exe = ServeBin();
  auto coord = fleet::Coordinator::Start(copts);
  EXPECT_TRUE(coord.ok()) << coord.status().ToString();
  if (!coord.ok()) return fleet;
  fleet.coordinator = std::move(*coord);

  server::Server::Options sopts;
  sopts.socket_path = dir.File("fleet.sock");
  sopts.handler = fleet.coordinator.get();
  auto srv = server::Server::Start(std::move(sopts));
  EXPECT_TRUE(srv.ok()) << srv.status().ToString();
  if (srv.ok()) fleet.server = std::move(*srv);
  return fleet;
}

TEST(FleetTest, ShardedJobsMatchDirectRunsAndListMerges) {
  if (ServeBin() == nullptr) GTEST_SKIP() << "AUTOMC_SERVE_BIN not set";
  ScopedTempDir dir("fleet_rt");
  Fleet fleet = StartFleet(dir, /*workers=*/2);
  ASSERT_NE(fleet.server, nullptr);

  auto client = Client::Connect(dir.File("fleet.sock"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Three jobs across two workers: ids 1, 2, 3 land on workers 1, 2, 1.
  const core::RunSpec specs[3] = {TinySpec(101, 4), TinySpec(102, 4),
                                  TinySpec(103, 6)};
  uint64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    auto id = client->Submit(specs[i]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids[i] = *id;
    EXPECT_EQ(*id, static_cast<uint64_t>(i + 1));
  }

  for (int i = 0; i < 3; ++i) {
    auto done = PollUntil(&*client, ids[i], server::JobStateIsTerminal);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    ASSERT_EQ(done->state, JobState::kDone) << done->error;
    auto bytes = client->FetchOutcomeBytes(ids[i]);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    EXPECT_EQ(*bytes, DirectOutcomeBytes(specs[i]))
        << "sharded outcome " << ids[i] << " differs from a direct run";
  }

  // ListJobs fans out to every worker and merges into one namespace.
  auto list = client->ListJobs();
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*list)[i].id, i + 1);
    EXPECT_EQ((*list)[i].state, JobState::kDone);
  }

  // Per-worker metrics: a u32 worker id selects one worker's registry.
  ByteWriter w;
  w.U32(1);
  auto metrics = client->Call(server::MsgType::kGetMetrics, w.str());
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->payload.find("search.strategy_executions"),
            std::string::npos);
  ByteWriter bad;
  bad.U32(99);
  EXPECT_FALSE(client->Call(server::MsgType::kGetMetrics, bad.str()).ok());

  // The internal submit-with-id type is coordinator-to-worker only.
  EXPECT_FALSE(client->Call(server::MsgType::kSubmitWithId, "").ok());
}

TEST(FleetTest, SigkilledWorkerRespawnsAndJobFinishesBitIdentical) {
  if (ServeBin() == nullptr) GTEST_SKIP() << "AUTOMC_SERVE_BIN not set";
  ScopedTempDir dir("fleet_kill");
  Fleet fleet = StartFleet(dir, /*workers=*/2);
  ASSERT_NE(fleet.server, nullptr);

  auto client = Client::Connect(dir.File("fleet.sock"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec = TinySpec(/*seed=*/53, /*budget=*/200);
  auto id = client->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_EQ(*id, 1u);  // job 1 is owned by worker 1

  auto running = PollUntil(&*client, *id, [](JobState s) {
    return s == JobState::kRunning;
  });
  ASSERT_TRUE(running.ok()) << running.status().ToString();

  const pid_t victim = fleet.coordinator->worker_pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // The monitor respawns worker 1; its recovery re-queues the job from its
  // durable checkpoint, and the finished outcome is the one an
  // uninterrupted run produces.
  auto done = PollUntil(&*client, *id, server::JobStateIsTerminal,
                        /*timeout_s=*/300.0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, JobState::kDone) << done->error;

  const pid_t respawned = fleet.coordinator->worker_pid(1);
  EXPECT_GT(respawned, 0);
  EXPECT_NE(respawned, victim);

  auto bytes = client->FetchOutcomeBytes(*id);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(*bytes, DirectOutcomeBytes(spec))
      << "outcome after a SIGKILL'd worker differs from an uninterrupted run";
}

// Artifacts flow through the fleet: a job runs on one worker's shard, but
// its published model is fetchable through the coordinator front door —
// byte-identical to a direct materialization, and still there after the
// publishing worker is SIGKILL'd and respawned (the registry is durable
// shared state, not worker memory).
TEST(FleetTest, PublishedModelSurvivesThePublishingWorker) {
  if (ServeBin() == nullptr) GTEST_SKIP() << "AUTOMC_SERVE_BIN not set";
  ScopedTempDir dir("fleet_artifact");
  Fleet fleet = StartFleet(dir, /*workers=*/2);
  ASSERT_NE(fleet.server, nullptr);

  auto client = Client::Connect(dir.File("fleet.sock"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const core::RunSpec spec = TinySpec(/*seed=*/61, /*budget=*/4);
  auto id = client->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_EQ(*id, 1u);  // job 1 runs on worker 1's shard
  auto done = PollUntil(&*client, *id, server::JobStateIsTerminal);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, JobState::kDone) << done->error;

  // Reference bytes: the server-side publish recipe run directly.
  auto direct = core::RunSearch(spec);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto winner = core::PickWinningScheme(direct->outcome);
  ASSERT_TRUE(winner.ok()) << winner.status().ToString();
  auto model = core::MaterializeScheme(
      spec, direct->outcome.pareto_schemes[*winner]);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::ostringstream want;
  ASSERT_TRUE(nn::SerializeModel(model->get(), &want).ok());

  const auto fetch = [&](const char* when) {
    std::string got;
    auto info = client->FetchModel("job-1", [&](std::string_view chunk) {
      got.append(chunk);
      return Status::OK();
    });
    ASSERT_TRUE(info.ok()) << when << ": " << info.status().ToString();
    EXPECT_EQ(got, want.str()) << "fleet-fetched model differs from a "
                               << "direct materialization " << when;
    EXPECT_EQ(info->job_id, 1u);
  };
  fetch("before the kill");

  auto artifacts = client->ListArtifacts();
  ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  ASSERT_EQ(artifacts->size(), 1u);
  EXPECT_EQ((*artifacts)[0].name, "job-1");

  // Kill the worker that published the artifact; the model must not die
  // with it. Wait for the monitor to respawn the shard so the fleet is
  // healthy again, then fetch the same bytes.
  const pid_t victim = fleet.coordinator->worker_pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (fleet.coordinator->worker_pid(1) == victim ||
         fleet.coordinator->worker_pid(1) <= 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker 1 never respawned";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  fetch("after SIGKILL + respawn of the publishing worker");
}

}  // namespace
}  // namespace automc
