// ExperienceStore crash-safety and SearchCheckpointer atomicity: torn-write
// recovery at every byte offset, CRC rejection of corrupted payloads,
// fingerprint-keyed invalidation, experience export, and the warm-rerun
// contract (a repeat evaluation runs zero real strategy executions).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/search_space.h"
#include "store/checkpoint.h"
#include "store/experience_store.h"
#include "test_util.h"

namespace automc {
namespace store {
namespace {

namespace fs = std::filesystem;
using automc::testing::ScopedTempDir;

EvalRecord MakeRecord(std::vector<int> scheme, double acc, int64_t params) {
  EvalRecord rec;
  rec.scheme = std::move(scheme);
  rec.acc = acc;
  rec.params = params;
  rec.flops = 2 * params;
  rec.ar = acc - 0.8;
  rec.pr = 1.0 - static_cast<double>(params) / 1000.0;
  rec.fr = rec.pr;
  return rec;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(ExperienceStoreTest, RoundTripAcrossReopen) {
  ScopedTempDir dir("roundtrip");
  std::string path = dir.File("store.bin");
  Fingerprint fp{11, 22};

  {
    auto opened = ExperienceStore::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& st = **opened;
    st.Bind(fp);
    st.set_task_features({1.0f, 2.0f, 3.0f});
    ASSERT_TRUE(st.Append(MakeRecord({}, 0.8, 1000)).ok());
    ASSERT_TRUE(st.Append(MakeRecord({3}, 0.78, 700)).ok());
    ASSERT_TRUE(st.Append(MakeRecord({3, 5}, 0.74, 400)).ok());
    EXPECT_EQ(st.appends(), 3);
    EXPECT_EQ(st.size(), 3u);
    EXPECT_EQ(st.loaded_size(), 0u);  // nothing was on disk at open
  }

  auto reopened = ExperienceStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& st = **reopened;
  EXPECT_EQ(st.size(), 3u);
  EXPECT_EQ(st.recovered(), 3);
  EXPECT_EQ(st.loaded_size(), 3u);
  EXPECT_EQ(st.truncated_bytes(), 0);

  st.Bind(fp);
  const EvalRecord* rec = st.Lookup({3, 5});
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->acc, 0.74);
  EXPECT_EQ(rec->params, 400);
  ASSERT_EQ(rec->task_features.size(), 3u);
  EXPECT_FLOAT_EQ(rec->task_features[1], 2.0f);
  EXPECT_EQ(st.hits(), 1);
  EXPECT_EQ(st.Lookup({9, 9}), nullptr);
  EXPECT_EQ(st.misses(), 1);
}

TEST(ExperienceStoreTest, DuplicateAppendIsNoOp) {
  ScopedTempDir dir("dup");
  std::string path = dir.File("store.bin");
  auto opened = ExperienceStore::Open(path);
  ASSERT_TRUE(opened.ok());
  auto& st = **opened;
  st.Bind({1, 1});
  ASSERT_TRUE(st.Append(MakeRecord({4}, 0.7, 500)).ok());
  uintmax_t size_after_first = fs::file_size(path);
  // Same key, different value: the determinism contract says the value
  // cannot actually have changed, so nothing is written.
  ASSERT_TRUE(st.Append(MakeRecord({4}, 0.1, 999)).ok());
  EXPECT_EQ(st.appends(), 1);
  EXPECT_EQ(st.size(), 1u);
  EXPECT_EQ(fs::file_size(path), size_after_first);
  EXPECT_DOUBLE_EQ(st.Lookup({4})->acc, 0.7);
}

TEST(ExperienceStoreTest, FingerprintChangeInvalidatesRecords) {
  ScopedTempDir dir("fp");
  std::string path = dir.File("store.bin");
  auto opened = ExperienceStore::Open(path);
  ASSERT_TRUE(opened.ok());
  auto& st = **opened;
  st.Bind({100, 200});
  ASSERT_TRUE(st.Append(MakeRecord({2}, 0.75, 600)).ok());
  ASSERT_TRUE(st.Contains({2}));

  // A different search space or a retrained base model gets a different
  // fingerprint: old records are never served for it.
  st.Bind({100, 201});
  EXPECT_FALSE(st.Contains({2}));
  EXPECT_EQ(st.Lookup({2}), nullptr);
  st.Bind({101, 200});
  EXPECT_FALSE(st.Contains({2}));

  st.Bind({100, 200});
  EXPECT_NE(st.Lookup({2}), nullptr);
}

TEST(ExperienceStoreTest, RejectsForeignFile) {
  ScopedTempDir dir("foreign");
  std::string path = dir.File("store.bin");
  WriteFileBytes(path, "this is definitely not an experience store file");
  auto opened = ExperienceStore::Open(path);
  EXPECT_FALSE(opened.ok());
  // The foreign file must not have been destroyed by the failed open.
  EXPECT_EQ(ReadFileBytes(path),
            "this is definitely not an experience store file");
}

TEST(ExperienceStoreTest, TornHeaderStartsFresh) {
  ScopedTempDir dir("tornheader");
  std::string path = dir.File("store.bin");
  WriteFileBytes(path, "AMX");  // crash during creation: 3 of 8 header bytes
  auto opened = ExperienceStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->size(), 0u);
  EXPECT_EQ((*opened)->truncated_bytes(), 3);
  // The store is usable again after the recovery.
  (*opened)->Bind({1, 2});
  ASSERT_TRUE((*opened)->Append(MakeRecord({7}, 0.7, 500)).ok());
}

// The core crash-safety property: write N records, then simulate a crash
// that tears the final append at EVERY byte offset. Each reopen must
// recover exactly the first N-1 records, report the torn tail, and chop
// the file back so subsequent appends continue from a clean state.
TEST(ExperienceStoreTest, TruncationAtEveryOffsetRecoversPrefix) {
  ScopedTempDir dir("fault");
  std::string path = dir.File("store.bin");
  Fingerprint fp{7, 8};

  uintmax_t size_before_last = 0;
  {
    auto opened = ExperienceStore::Open(path);
    ASSERT_TRUE(opened.ok());
    auto& st = **opened;
    st.Bind(fp);
    st.set_task_features({0.5f, 0.25f});
    ASSERT_TRUE(st.Append(MakeRecord({}, 0.8, 1000)).ok());
    ASSERT_TRUE(st.Append(MakeRecord({1}, 0.79, 800)).ok());
    ASSERT_TRUE(st.Append(MakeRecord({1, 2}, 0.77, 640)).ok());
    size_before_last = fs::file_size(path);  // appends are flushed per record
    ASSERT_TRUE(st.Append(MakeRecord({1, 2, 3}, 0.72, 512)).ok());
  }
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(full.size(), size_before_last);

  std::string victim = dir.File("victim.bin");
  for (uintmax_t cut = size_before_last; cut < full.size(); ++cut) {
    WriteFileBytes(victim, full.substr(0, cut));
    auto opened = ExperienceStore::Open(victim);
    ASSERT_TRUE(opened.ok()) << "cut=" << cut << ": "
                             << opened.status().ToString();
    auto& st = **opened;
    EXPECT_EQ(st.size(), 3u) << "cut=" << cut;
    EXPECT_EQ(st.recovered(), 3) << "cut=" << cut;
    EXPECT_EQ(st.truncated_bytes(),
              static_cast<int64_t>(cut - size_before_last))
        << "cut=" << cut;
    // The torn tail was physically removed.
    EXPECT_EQ(fs::file_size(victim), size_before_last) << "cut=" << cut;
    st.Bind(fp);
    EXPECT_TRUE(st.Contains({}));
    EXPECT_TRUE(st.Contains({1}));
    EXPECT_TRUE(st.Contains({1, 2}));
    EXPECT_FALSE(st.Contains({1, 2, 3})) << "cut=" << cut;
  }

  // The untouched file still yields all four records.
  auto intact = ExperienceStore::Open(path);
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ((*intact)->size(), 4u);
  EXPECT_EQ((*intact)->truncated_bytes(), 0);
}

TEST(ExperienceStoreTest, CorruptedPayloadIsDropped) {
  ScopedTempDir dir("corrupt");
  std::string path = dir.File("store.bin");
  {
    auto opened = ExperienceStore::Open(path);
    ASSERT_TRUE(opened.ok());
    (*opened)->Bind({1, 2});
    ASSERT_TRUE((*opened)->Append(MakeRecord({5}, 0.7, 500)).ok());
    ASSERT_TRUE((*opened)->Append(MakeRecord({5, 6}, 0.6, 300)).ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 5] ^= 0x40;  // flip a bit inside the last payload
  WriteFileBytes(path, bytes);

  auto reopened = ExperienceStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 1u);  // CRC rejected the damaged record
  EXPECT_GT((*reopened)->truncated_bytes(), 0);
}

TEST(ExperienceStoreTest, ExportStepsDerivesTransitions) {
  ScopedTempDir dir("export");
  std::string path = dir.File("store.bin");
  auto opened = ExperienceStore::Open(path);
  ASSERT_TRUE(opened.ok());
  auto& st = **opened;
  st.Bind({42, 1});
  st.set_task_features({9.0f});
  ASSERT_TRUE(st.Append(MakeRecord({}, 0.8, 1000)).ok());
  ASSERT_TRUE(st.Append(MakeRecord({3}, 0.76, 700)).ok());
  ASSERT_TRUE(st.Append(MakeRecord({3, 1}, 0.7, 490)).ok());
  // Same scheme indices under another space: must not leak into the export.
  st.Bind({43, 1});
  ASSERT_TRUE(st.Append(MakeRecord({}, 0.5, 100)).ok());
  ASSERT_TRUE(st.Append(MakeRecord({3}, 0.4, 50)).ok());

  std::vector<ExperienceStep> steps = st.ExportSteps(42);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].strategy, 3);
  EXPECT_FLOAT_EQ(steps[0].ar_step, static_cast<float>(0.76 / 0.8 - 1.0));
  EXPECT_FLOAT_EQ(steps[0].pr_step, static_cast<float>(1.0 - 700.0 / 1000.0));
  EXPECT_EQ(steps[1].strategy, 1);
  ASSERT_EQ(steps[1].task_features.size(), 1u);
  EXPECT_FLOAT_EQ(steps[1].task_features[0], 9.0f);

  // A record cutoff scoped to the first two log records sees only the
  // depth-1 transition — the replayable-export contract for resumed runs.
  EXPECT_EQ(st.ExportSteps(42, 2).size(), 1u);
}

// End-to-end warm-rerun contract: a second evaluator over the same space,
// base model, and store serves every evaluation from the log — zero real
// strategy executions — while still charging budget identically.
TEST(ExperienceStoreTest, WarmRerunRunsZeroRealExecutions) {
  ScopedTempDir dir("warm");
  std::string path = dir.File("store.bin");

  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 12;
  cfg.test_per_class = 4;
  cfg.seed = 77;
  data::TaskData task = MakeSyntheticTask(cfg);

  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.num_classes = 3;
  spec.base_width = 4;
  Rng rng(5);
  std::unique_ptr<nn::Model> model = std::move(nn::BuildModel(spec, &rng)).value();
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 12;
  nn::Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(model.get(), task.train).ok());

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 1;
  ctx.batch_size = 12;
  ctx.seed = 3;
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");

  const std::vector<std::vector<int>> schemes = {{0}, {0, 2}, {4}, {0, 2, 1}};
  std::vector<search::EvalPoint> cold_points;
  int64_t cold_charged = 0;
  {
    auto opened = ExperienceStore::Open(path);
    ASSERT_TRUE(opened.ok());
    search::SchemeEvaluator ev(&space, model.get(), ctx, {});
    ASSERT_TRUE(ev.AttachStore(opened->get()).ok());
    for (const auto& s : schemes) {
      auto p = ev.Evaluate(s);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      cold_points.push_back(*p);
    }
    EXPECT_GT(ev.strategy_executions(), 0);
    cold_charged = ev.charged_executions();
  }

  auto reopened = ExperienceStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  search::SchemeEvaluator warm(&space, model.get(), ctx, {});
  ASSERT_TRUE(warm.AttachStore(reopened->get()).ok());
  for (size_t i = 0; i < schemes.size(); ++i) {
    auto p = warm.Evaluate(schemes[i]);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_DOUBLE_EQ(p->acc, cold_points[i].acc);
    EXPECT_EQ(p->params, cold_points[i].params);
    EXPECT_EQ(p->flops, cold_points[i].flops);
    EXPECT_DOUBLE_EQ(p->ar, cold_points[i].ar);
    EXPECT_DOUBLE_EQ(p->pr, cold_points[i].pr);
  }
  EXPECT_EQ(warm.strategy_executions(), 0);  // everything store-served
  EXPECT_EQ(warm.charged_executions(), cold_charged);
  EXPECT_GT(warm.store_hits(), 0);
  EXPECT_EQ((*reopened)->appends(), 0);  // nothing new to persist
}

TEST(CheckpointTest, WriteLoadRoundTrip) {
  ScopedTempDir dir("ckpt");
  SearchCheckpointer::Options opts;
  opts.dir = dir.path().string();
  SearchCheckpointer writer(opts);
  EXPECT_EQ(writer.LoadPending().code(), StatusCode::kNotFound);

  std::string binary("\x00\x01\xff payload", 11);
  ASSERT_TRUE(writer.Write({{"alpha", "hello"}, {"beta", binary}}).ok());

  SearchCheckpointer reader(opts);
  ASSERT_TRUE(reader.LoadPending().ok());
  ASSERT_TRUE(reader.has_pending());
  auto alpha = reader.TakePending("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, "hello");
  auto beta = reader.TakePending("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(*beta, binary);
  EXPECT_EQ(reader.TakePending("alpha").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, CorruptedCheckpointIsRejected) {
  ScopedTempDir dir("ckpt_corrupt");
  SearchCheckpointer::Options opts;
  opts.dir = dir.path().string();
  SearchCheckpointer writer(opts);
  ASSERT_TRUE(writer.Write({{"s", "state"}}).ok());

  std::string bytes = ReadFileBytes(writer.checkpoint_path());
  bytes[bytes.size() - 2] ^= 0x01;
  WriteFileBytes(writer.checkpoint_path(), bytes);

  SearchCheckpointer reader(opts);
  Status st = reader.LoadPending();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(reader.has_pending());
}

TEST(CheckpointTest, StickySectionsMergeIntoEveryWrite) {
  ScopedTempDir dir("ckpt_sticky");
  SearchCheckpointer::Options opts;
  opts.dir = dir.path().string();
  SearchCheckpointer writer(opts);
  writer.SetStickySection("pin", "42");
  ASSERT_TRUE(writer.Write({{"s", "round1"}}).ok());
  ASSERT_TRUE(writer.Write({{"s", "round2"}}).ok());

  SearchCheckpointer reader(opts);
  ASSERT_TRUE(reader.LoadPending().ok());
  EXPECT_EQ(reader.pending().at("pin"), "42");
  EXPECT_EQ(reader.pending().at("s"), "round2");
}

TEST(CheckpointTest, FaultInjectionLeavesValidCheckpoint) {
  ScopedTempDir dir("ckpt_fault");
  SearchCheckpointer::Options opts;
  opts.dir = dir.path().string();
  opts.abort_after_writes = 1;
  SearchCheckpointer writer(opts);
  ASSERT_TRUE(writer.Write({{"s", "survives"}}).ok());
  Status st = writer.Write({{"s", "never lands"}});
  EXPECT_EQ(st.code(), StatusCode::kInternal);

  SearchCheckpointer reader({dir.path().string()});
  ASSERT_TRUE(reader.LoadPending().ok());
  EXPECT_EQ(reader.pending().at("s"), "survives");
}

TEST(CheckpointTest, CadenceFollowsEveryRounds) {
  SearchCheckpointer::Options opts;
  opts.dir = "/tmp";
  opts.every_rounds = 3;
  SearchCheckpointer ckpt(opts);
  std::vector<bool> ticks;
  for (int i = 0; i < 7; ++i) ticks.push_back(ckpt.ShouldCheckpoint());
  EXPECT_EQ(ticks, (std::vector<bool>{false, false, true, false, false, true,
                                      false}));
}

}  // namespace
}  // namespace store
}  // namespace automc
