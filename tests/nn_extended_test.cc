// Extended substrate coverage: layer outputs checked against independent
// naive reference implementations, running-statistics math, FLOPs formulas,
// and model-zoo geometry sweeps.
#include <cmath>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/visit.h"
#include "test_util.h"

namespace automc {
namespace nn {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------------------
// Naive direct convolution as an independent reference for the im2col path.

Tensor NaiveConv2d(const Tensor& x, const Tensor& w, const Tensor* bias,
                   int64_t stride, int64_t pad) {
  int64_t n = x.size(0), in_c = x.size(1), h = x.size(2), ww = x.size(3);
  int64_t out_c = w.size(0), k = w.size(2);
  int64_t oh = (h + 2 * pad - k) / stride + 1;
  int64_t ow = (ww + 2 * pad - k) / stride + 1;
  Tensor y({n, out_c, oh, ow});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t f = 0; f < out_c; ++f) {
      for (int64_t oi = 0; oi < oh; ++oi) {
        for (int64_t oj = 0; oj < ow; ++oj) {
          double s = bias != nullptr ? (*bias)[f] : 0.0;
          for (int64_t c = 0; c < in_c; ++c) {
            for (int64_t ki = 0; ki < k; ++ki) {
              for (int64_t kj = 0; kj < k; ++kj) {
                int64_t si = oi * stride + ki - pad;
                int64_t sj = oj * stride + kj - pad;
                if (si < 0 || si >= h || sj < 0 || sj >= ww) continue;
                s += static_cast<double>(x.at(ni, c, si, sj)) *
                     w.at(f, c, ki, kj);
              }
            }
          }
          y.at(ni, f, oi, oj) = static_cast<float>(s);
        }
      }
    }
  }
  return y;
}

struct ConvRefCase {
  int64_t in_c, out_c, kernel, stride, pad, size;
  bool bias;
};

class ConvReferenceTest : public ::testing::TestWithParam<ConvRefCase> {};

TEST_P(ConvReferenceTest, MatchesNaiveConvolution) {
  ConvRefCase c = GetParam();
  Rng rng(7);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, c.bias, &rng);
  if (c.bias) {
    for (int64_t i = 0; i < c.out_c; ++i) {
      conv.bias().value[i] = static_cast<float>(rng.Normal());
    }
  }
  Tensor x = Tensor::Randn({2, c.in_c, c.size, c.size}, &rng);
  Tensor y = conv.Forward(x, false);
  Tensor ref = NaiveConv2d(x, conv.weight().value,
                           c.bias ? &conv.bias().value : nullptr, c.stride,
                           c.pad);
  ASSERT_EQ(y.shape(), ref.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_NEAR(y[i], ref[i], 1e-3) << "flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvReferenceTest,
    ::testing::Values(ConvRefCase{3, 4, 3, 1, 1, 6, false},
                      ConvRefCase{3, 4, 3, 2, 1, 7, false},
                      ConvRefCase{2, 5, 5, 1, 2, 8, true},
                      ConvRefCase{4, 2, 1, 1, 0, 5, true},
                      ConvRefCase{1, 1, 3, 3, 0, 9, false},
                      ConvRefCase{6, 3, 3, 1, 0, 6, false}));

// --------------------------------------------------------------------------
// BatchNorm running statistics.

TEST(BatchNormStatsTest, RunningStatsConvergeToDataMoments) {
  Rng rng(11);
  BatchNorm2d bn(1);
  // Stream batches with known mean 2, std 3.
  for (int step = 0; step < 300; ++step) {
    Tensor x({8, 1, 2, 2});
    for (int64_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.Normal(2.0, 3.0));
    }
    bn.Forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.5f);
  EXPECT_NEAR(bn.running_var()[0], 9.0f, 2.5f);
}

TEST(BatchNormStatsTest, EvalModeIsAffineInInput) {
  // In eval mode, BN is a fixed affine map: BN(a*x) - BN(0) = a*(BN(x)-BN(0)).
  Rng rng(13);
  BatchNorm2d bn(2);
  bn.running_mean()[0] = 1.0f;
  bn.running_var()[0] = 4.0f;
  bn.gamma().value[0] = 1.5f;
  bn.beta().value[0] = -0.5f;
  Tensor x = Tensor::Randn({1, 2, 2, 2}, &rng);
  Tensor x2 = x;
  x2.Scale(2.0f);
  Tensor zero = Tensor::Zeros(x.shape());
  Tensor y = bn.Forward(x, false);
  Tensor y2 = bn.Forward(x2, false);
  Tensor y0 = bn.Forward(zero, false);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y2[i] - y0[i], 2.0f * (y[i] - y0[i]), 1e-4);
  }
}

// --------------------------------------------------------------------------
// FLOPs formulas.

TEST(FlopsTest, LinearFlops) {
  Rng rng(17);
  Linear lin(10, 4, &rng);
  lin.Forward(Tensor::Zeros({3, 10}), false);
  EXPECT_EQ(lin.FlopsLastForward(), 3 * 10 * 4);
}

TEST(FlopsTest, ModelFlopsScaleWithImageArea) {
  // Doubling the image side ~quadruples conv FLOPs for VGG-style nets.
  for (int size : {8, 16}) {
    Rng rng(19);
    ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 4;
    spec.base_width = 4;
    spec.image_size = size;
    auto model = std::move(BuildModel(spec, &rng)).value();
    int64_t flops = model->FlopsPerSample();
    if (size == 16) {
      // Compare against the 8x8 run recomputed here.
      Rng rng2(19);
      spec.image_size = 8;
      auto small = std::move(BuildModel(spec, &rng2)).value();
      double ratio = static_cast<double>(flops) / small->FlopsPerSample();
      EXPECT_GT(ratio, 3.0);
      EXPECT_LT(ratio, 5.0);
    }
  }
}

TEST(FlopsTest, SequentialSumsChildren) {
  Rng rng(23);
  Sequential seq;
  seq.Add(std::make_unique<Conv2d>(2, 3, 3, 1, 1, false, &rng));
  seq.Add(std::make_unique<ReLU>());
  seq.Add(std::make_unique<Conv2d>(3, 2, 1, 1, 0, false, &rng));
  Tensor x({1, 2, 4, 4});
  seq.Forward(x, false);
  int64_t expected = 1 * 3 * (2 * 9) * 16 + 1 * 2 * 3 * 16;
  EXPECT_EQ(seq.FlopsLastForward(), expected);
}

// --------------------------------------------------------------------------
// Model zoo geometry sweeps.

class ModelGeometryTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, int, int>> {
};

TEST_P(ModelGeometryTest, ForwardShapeAndParamsPositive) {
  auto [family, depth, width, image] = GetParam();
  Rng rng(29);
  ModelSpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.num_classes = 7;
  spec.base_width = width;
  spec.image_size = image;
  auto built = BuildModel(spec, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Tensor x = Tensor::Randn({2, 3, image, image}, &rng);
  Tensor y = (*built)->Forward(x, false);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 7);
  EXPECT_GT((*built)->ParamCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelGeometryTest,
    ::testing::Values(std::make_tuple("resnet", 20, 4, 8),
                      std::make_tuple("resnet", 20, 8, 16),
                      std::make_tuple("resnet", 56, 4, 8),
                      std::make_tuple("vgg", 13, 4, 8),
                      std::make_tuple("vgg", 16, 8, 16),
                      std::make_tuple("vgg", 19, 4, 8)));

TEST(ModelGeometryTest, WidthScalesParamsQuadratically) {
  Rng rng(31);
  ModelSpec spec;
  spec.family = "resnet";
  spec.depth = 20;
  spec.num_classes = 10;
  spec.base_width = 4;
  auto narrow = std::move(BuildModel(spec, &rng)).value();
  spec.base_width = 8;
  Rng rng2(31);
  auto wide = std::move(BuildModel(spec, &rng2)).value();
  double ratio = static_cast<double>(wide->ParamCount()) /
                 static_cast<double>(narrow->ParamCount());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.5);
}

// --------------------------------------------------------------------------
// Visitor coverage.

TEST(VisitTest, CountsMatchArchitecture) {
  Rng rng(37);
  ModelSpec spec;
  spec.family = "resnet";
  spec.depth = 20;
  spec.num_classes = 4;
  spec.base_width = 4;
  auto model = std::move(BuildModel(spec, &rng)).value();
  int convs = 0, bns = 0, blocks = 0;
  VisitLayers(model->net(), [&](Layer* l) {
    if (dynamic_cast<Conv2d*>(l)) ++convs;
    if (dynamic_cast<BatchNorm2d*>(l)) ++bns;
    if (dynamic_cast<ResidualBlock*>(l)) ++blocks;
  });
  EXPECT_EQ(blocks, 9);
  // stem + 9 blocks x 2 + downsample convs (stage transitions: 2).
  EXPECT_EQ(convs, 1 + 18 + 2);
  EXPECT_EQ(bns, 1 + 18 + 2);
}

TEST(VisitTest, NullRootIsSafe) {
  int count = 0;
  VisitLayers(nullptr, [&](Layer*) { ++count; });
  EXPECT_EQ(count, 0);
}

// --------------------------------------------------------------------------
// Optimizer behavior.

TEST(SgdTest, MomentumAcceleratesAlongConstantGradient) {
  Param p(Tensor::Zeros({1}));
  Sgd plain(0.1f, 0.0f, 0.0f);
  Sgd momentum(0.1f, 0.9f, 0.0f);
  Param p2(Tensor::Zeros({1}));
  for (int step = 0; step < 10; ++step) {
    p.grad[0] = 1.0f;
    plain.Step({&p});
    p2.grad[0] = 1.0f;
    momentum.Step({&p2});
  }
  EXPECT_LT(p2.value[0], p.value[0]);  // moved further (more negative)
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Param p(Tensor::Full({1}, 1.0f));
  Sgd opt(0.1f, 0.0f, 0.5f);
  p.grad[0] = 0.0f;
  opt.Step({&p});
  EXPECT_LT(p.value[0], 1.0f);
}

TEST(SgdTest, GradientClippingBoundsStep) {
  Param p(Tensor::Zeros({1}));
  Sgd opt(0.1f, 0.0f, 0.0f);
  p.grad[0] = 1e6f;  // exploding gradient
  opt.Step({&p});
  EXPECT_GE(p.value[0], -0.5f - 1e-6f);  // clip at 5 -> step <= 0.5
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2.
  Param p(Tensor::Zeros({1}));
  Adam opt(0.1f);
  for (int step = 0; step < 300; ++step) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.Step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.1f);
}

}  // namespace
}  // namespace nn
}  // namespace automc
