// Property-style tests: invariants that must hold across randomized inputs
// and configurations, plus failure injection on API misuse.
#include <cmath>

#include "compress/compressor.h"
#include "compress/decompose.h"
#include "compress/lowrank_apply.h"
#include "compress/surgery.h"
#include "gtest/gtest.h"
#include "kg/transr.h"
#include "nn/trainer.h"
#include "search/pareto.h"
#include "search/search_space.h"

namespace automc {
namespace {

using tensor::Tensor;

// GTEST_FLAG_SET only exists from GoogleTest 1.12; older releases expose the
// flags as testing::FLAGS_gtest_* globals.
void UseThreadsafeDeathTests() {
#if defined(GTEST_FLAG_SET)
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
}

std::unique_ptr<nn::Model> SmallModel(const std::string& family, int depth,
                                      uint64_t seed) {
  nn::ModelSpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.num_classes = 4;
  spec.base_width = 4;
  Rng rng(seed);
  return std::move(nn::BuildModel(spec, &rng)).value();
}

// --------------------------------------------------------------------------
// Pruning invariants over randomized targets and seeds.

class PruneInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruneInvariantTest, ParamsNeverIncreaseAndForwardStaysFinite) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  bool use_resnet = rng.Bernoulli(0.5);
  auto model =
      SmallModel(use_resnet ? "resnet" : "vgg", use_resnet ? 20 : 13, seed);
  int64_t params = model->ParamCount();
  // Apply a random sequence of surgeries.
  for (int step = 0; step < 3; ++step) {
    double frac = rng.Uniform(0.05, 0.3);
    Status st;
    if (rng.Bernoulli(0.5)) {
      compress::GlobalPruneOptions opts;
      opts.target_param_fraction = frac;
      st = compress::GlobalStructuredPrune(model.get(), opts,
                                           compress::FilterL2);
    } else {
      st = compress::ApplyLowRankGlobal(
          model.get(), frac,
          rng.Bernoulli(0.5) ? compress::DecompKind::kSvd
                             : compress::DecompKind::kHooi);
    }
    if (!st.ok()) continue;  // caps may legitimately block further surgery
    int64_t now = model->ParamCount();
    EXPECT_LE(now, params) << "surgery increased parameters";
    params = now;
    Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
    Tensor y = model->Forward(x, false);
    for (int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(y[i])) << "non-finite output after surgery";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PruneInvariantTest, ImportanceFunctionsNonNegative) {
  auto model = SmallModel("vgg", 16, 9);
  for (const auto& unit : compress::CollectPrunableUnits(model.get())) {
    for (int64_t f = 0; f < unit.conv->out_channels(); ++f) {
      EXPECT_GE(compress::FilterL1(unit, f), 0.0);
      EXPECT_GE(compress::FilterL2(unit, f), 0.0);
      EXPECT_GE(compress::FilterBnGamma(unit, f), 0.0);
    }
  }
}

TEST(PruneInvariantTest, L1DominatesL2PerFilter) {
  // For any vector, ||w||_1 >= ||w||_2.
  auto model = SmallModel("resnet", 20, 11);
  for (const auto& unit : compress::CollectPrunableUnits(model.get())) {
    for (int64_t f = 0; f < unit.conv->out_channels(); ++f) {
      EXPECT_GE(compress::FilterL1(unit, f) + 1e-9,
                compress::FilterL2(unit, f));
    }
  }
}

// --------------------------------------------------------------------------
// Decomposition: error decreases monotonically with rank (on average).

TEST(DecomposeProperty, SvdErrorShrinksWithRank) {
  Rng rng(13);
  nn::Conv2d conv(6, 8, 3, 1, 1, false, &rng);
  Tensor x = Tensor::Randn({2, 6, 6, 6}, &rng);
  Tensor y_ref = conv.Forward(x, false);
  double prev_err = 1e30;
  for (int64_t rank : {1, 2, 4, 8}) {
    auto lr = compress::SvdDecomposeConv(conv, rank);
    Tensor y = lr->Forward(x, false);
    double err = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i) {
      err += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    }
    EXPECT_LE(err, prev_err + 1e-6) << "rank " << rank;
    prev_err = err;
  }
  EXPECT_NEAR(prev_err, 0.0, 1e-5);  // full rank reconstructs
}

// --------------------------------------------------------------------------
// Pareto front properties on random point sets.

class ParetoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoPropertyTest, FrontIsNonDominatedAndCoversDominators) {
  Rng rng(GetParam());
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({rng.Normal(), rng.Normal()});
  auto front = search::ParetoFrontIndices(pts);
  ASSERT_FALSE(front.empty());
  // No front member is dominated by any point.
  for (size_t fi : front) {
    for (size_t j = 0; j < pts.size(); ++j) {
      EXPECT_FALSE(j != fi && search::Dominates(pts[j], pts[fi]));
    }
  }
  // Every non-front point is dominated by someone.
  std::vector<bool> in_front(pts.size(), false);
  for (size_t fi : front) in_front[fi] = true;
  for (size_t j = 0; j < pts.size(); ++j) {
    if (in_front[j]) continue;
    bool dominated = false;
    for (size_t k = 0; k < pts.size() && !dominated; ++k) {
      if (k != j && search::Dominates(pts[k], pts[j])) dominated = true;
    }
    EXPECT_TRUE(dominated) << "point " << j << " excluded but not dominated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

// --------------------------------------------------------------------------
// TransR invariants.

TEST(TransRProperty, EntityNormsBoundedAfterTraining) {
  auto strategies = search::SearchSpace::SingleMethod("SFP").strategies();
  kg::KnowledgeGraph g = kg::KnowledgeGraph::Build(strategies);
  kg::TransRConfig cfg;
  cfg.entity_dim = 12;
  cfg.relation_dim = 12;
  kg::TransR transr(g.num_entities(), kg::kNumRelations, cfg);
  Rng rng(31);
  for (int e = 0; e < 5; ++e) {
    transr.TrainEpoch(g.triplets(), g.num_entities(), &rng);
  }
  for (int64_t id = 0; id < g.num_entities(); ++id) {
    Tensor e = transr.EntityEmbedding(id);
    double n = 0.0;
    for (int64_t i = 0; i < e.numel(); ++i) n += e[i] * e[i];
    EXPECT_LE(std::sqrt(n), 1.0 + 1e-4) << "entity " << id;
  }
}

TEST(TransRProperty, ScoreIsNonNegative) {
  kg::TransRConfig cfg;
  cfg.entity_dim = 8;
  cfg.relation_dim = 8;
  kg::TransR transr(20, kg::kNumRelations, cfg);
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    kg::Triplet t{rng.UniformInt(20), rng.UniformInt(kg::kNumRelations),
                  rng.UniformInt(20)};
    EXPECT_GE(transr.Score(t), 0.0);
  }
}

// --------------------------------------------------------------------------
// Failure injection: misuse must produce Status errors (recoverable APIs) or
// process death (checked invariants), never silent corruption.

TEST(FailureInjection, CompressorsRejectMissingDatasets) {
  auto model = SmallModel("vgg", 13, 41);
  compress::CompressionContext ctx;  // train/test left null
  for (const char* method : {"NS", "SFP", "LFB"}) {
    search::SearchSpace grid = search::SearchSpace::SingleMethod(method);
    auto compressor = compress::CreateCompressor(grid.strategy(0));
    ASSERT_TRUE(compressor.ok());
    Status st = (*compressor)->Compress(model.get(), ctx, nullptr);
    EXPECT_FALSE(st.ok()) << method;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << method;
  }
}

TEST(FailureInjection, CompressorsRejectNullModel) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  search::SearchSpace grid = search::SearchSpace::SingleMethod("NS");
  auto compressor = compress::CreateCompressor(grid.strategy(0));
  ASSERT_TRUE(compressor.ok());
  EXPECT_FALSE((*compressor)->Compress(nullptr, ctx, nullptr).ok());
}

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, ConvRejectsWrongChannelCount) {
  UseThreadsafeDeathTests();
  Rng rng(43);
  nn::Conv2d conv(3, 4, 3, 1, 1, false, &rng);
  Tensor x({1, 5, 8, 8});  // 5 channels into a 3-channel conv
  EXPECT_DEATH(conv.Forward(x, false), "channels mismatch");
}

TEST(FailureDeathTest, ReshapeRejectsSizeMismatch) {
  UseThreadsafeDeathTests();
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshaped({4, 4}), "reshape");
}

TEST(FailureDeathTest, BackwardWithoutForwardDies) {
  UseThreadsafeDeathTests();
  Rng rng(47);
  nn::Linear lin(4, 2, &rng);
  Tensor g({1, 2});
  EXPECT_DEATH(lin.Backward(g), "without Forward");
}

}  // namespace
}  // namespace automc
