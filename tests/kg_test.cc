#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "kg/embedding.h"
#include "kg/experience.h"
#include "kg/knowledge_graph.h"
#include "kg/transr.h"
#include "search/search_space.h"

namespace automc {
namespace kg {
namespace {

using compress::StrategySpec;

std::vector<StrategySpec> SmallStrategies() {
  return search::SearchSpace::SingleMethod("NS").strategies();
}

// --------------------------------------------------------------------------
// Knowledge graph

TEST(KnowledgeGraphTest, EntityAndTripletStructure) {
  auto strategies = SmallStrategies();  // NS: 5*5*2 = 50 strategies
  KnowledgeGraph g = KnowledgeGraph::Build(strategies);
  // Entities: 50 strategies + 1 method + 3 hps (HP1, HP2, HP6)
  // + settings (5 + 5 + 2 = 12) + 2 techniques (TE4, TE3) = 68.
  EXPECT_EQ(g.num_entities(), 68);
  EXPECT_NE(g.FindEntity("M:NS"), -1);
  EXPECT_NE(g.FindEntity("H:HP2"), -1);
  EXPECT_NE(g.FindEntity("V:HP2=0.2"), -1);
  EXPECT_NE(g.FindEntity("T:TE3"), -1);
  EXPECT_NE(g.FindEntity("T:TE4"), -1);
  EXPECT_EQ(g.FindEntity("M:LeGR"), -1);

  // Triplets: per strategy 1 R1 + 3 R2 = 200; method-level: 3 R3 + 2 R4;
  // hp-level: 12 R5. Total 217.
  EXPECT_EQ(g.triplets().size(), 217u);
}

TEST(KnowledgeGraphTest, StrategyEntitiesDistinct) {
  auto strategies = SmallStrategies();
  KnowledgeGraph g = KnowledgeGraph::Build(strategies);
  std::set<int64_t> ids;
  for (size_t i = 0; i < strategies.size(); ++i) {
    ids.insert(g.StrategyEntity(i));
  }
  EXPECT_EQ(ids.size(), strategies.size());
}

TEST(KnowledgeGraphTest, RelationsWellTyped) {
  auto strategies = SmallStrategies();
  KnowledgeGraph g = KnowledgeGraph::Build(strategies);
  for (const Triplet& t : g.triplets()) {
    ASSERT_GE(t.relation, 0);
    ASSERT_LT(t.relation, kNumRelations);
    const std::string& head = g.EntityName(t.head);
    const std::string& tail = g.EntityName(t.tail);
    switch (t.relation) {
      case kStrategyMethod:
        EXPECT_EQ(head[0], 'S');
        EXPECT_EQ(tail[0], 'M');
        break;
      case kStrategySetting:
        EXPECT_EQ(head[0], 'S');
        EXPECT_EQ(tail[0], 'V');
        break;
      case kMethodHp:
        EXPECT_EQ(head[0], 'M');
        EXPECT_EQ(tail[0], 'H');
        break;
      case kMethodTechnique:
        EXPECT_EQ(head[0], 'M');
        EXPECT_EQ(tail[0], 'T');
        break;
      case kHpSetting:
        EXPECT_EQ(head[0], 'H');
        EXPECT_EQ(tail[0], 'V');
        break;
      default:
        FAIL();
    }
  }
}

TEST(KnowledgeGraphTest, TechniqueTableMatchesPaper) {
  EXPECT_EQ(TechniquesOfMethod("HOS").size(), 3u);
  EXPECT_EQ(TechniquesOfMethod("LMA").size(), 1u);
  EXPECT_TRUE(TechniquesOfMethod("Quantize").empty());
}

// --------------------------------------------------------------------------
// TransR

TEST(TransRTest, TrainingReducesLoss) {
  auto strategies = SmallStrategies();
  KnowledgeGraph g = KnowledgeGraph::Build(strategies);
  TransRConfig cfg;
  cfg.entity_dim = 16;
  cfg.relation_dim = 16;
  cfg.seed = 3;
  TransR transr(g.num_entities(), kNumRelations, cfg);
  Rng rng(4);
  double first = transr.TrainEpoch(g.triplets(), g.num_entities(), &rng);
  double last = first;
  for (int e = 0; e < 15; ++e) {
    last = transr.TrainEpoch(g.triplets(), g.num_entities(), &rng);
  }
  EXPECT_LT(last, first);
}

TEST(TransRTest, PositivesScoreBelowCorruptions) {
  auto strategies = SmallStrategies();
  KnowledgeGraph g = KnowledgeGraph::Build(strategies);
  TransRConfig cfg;
  cfg.entity_dim = 16;
  cfg.relation_dim = 16;
  cfg.seed = 3;
  TransR transr(g.num_entities(), kNumRelations, cfg);
  Rng rng(4);
  for (int e = 0; e < 20; ++e) {
    transr.TrainEpoch(g.triplets(), g.num_entities(), &rng);
  }
  // After training, true triplets should usually beat random corruptions.
  int wins = 0, total = 0;
  Rng neg_rng(9);
  for (const Triplet& t : g.triplets()) {
    Triplet corrupted = t;
    corrupted.tail = neg_rng.UniformInt(g.num_entities());
    if (corrupted.tail == t.tail) continue;
    ++total;
    if (transr.Score(t) < transr.Score(corrupted)) ++wins;
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.75);
}

TEST(TransRTest, EmbeddingRoundTrip) {
  TransRConfig cfg;
  cfg.entity_dim = 8;
  cfg.relation_dim = 8;
  TransR transr(10, kNumRelations, cfg);
  tensor::Tensor e({8});
  for (int64_t i = 0; i < 8; ++i) e[i] = 0.1f * static_cast<float>(i);
  transr.SetEntityEmbedding(3, e);
  tensor::Tensor back = transr.EntityEmbedding(3);
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(back[i], e[i]);
}

// --------------------------------------------------------------------------
// Experience generation (real strategy executions on micro tasks)

TEST(ExperienceTest, GeneratesValidRecords) {
  auto strategies = SmallStrategies();
  ExperienceGenConfig cfg;
  cfg.num_tasks = 1;
  cfg.strategies_per_task = 4;
  cfg.pretrain_epochs = 1;
  cfg.batch_size = 16;
  cfg.seed = 7;
  auto records = GenerateExperience(strategies, cfg);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_FALSE(records->empty());
  for (const ExperienceRecord& r : *records) {
    EXPECT_LT(r.strategy_index, strategies.size());
    EXPECT_EQ(r.task_features.size(),
              static_cast<size_t>(data::kTaskFeatureDim));
    EXPECT_GT(r.pr, 0.0f);   // every strategy removes parameters
    EXPECT_GT(r.ar, -1.0f);  // AR is bounded below by -1
  }
}

TEST(ExperienceTest, RejectsEmptyStrategyList) {
  ExperienceGenConfig cfg;
  EXPECT_FALSE(GenerateExperience({}, cfg).ok());
}

// --------------------------------------------------------------------------
// Algorithm 1: joint embedding learning

class EmbeddingVariantTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(EmbeddingVariantTest, LearnsEmbeddings) {
  auto [use_kg, use_exp] = GetParam();
  auto strategies = SmallStrategies();

  EmbeddingLearnerConfig cfg;
  cfg.train_epochs = 5;
  cfg.transr.entity_dim = 16;
  cfg.transr.relation_dim = 16;
  cfg.use_kg = use_kg;
  cfg.use_exp = use_exp;
  cfg.seed = 13;

  std::vector<ExperienceRecord> experience;
  if (use_exp) {
    ExperienceGenConfig xcfg;
    xcfg.num_tasks = 1;
    xcfg.strategies_per_task = 4;
    xcfg.pretrain_epochs = 1;
    xcfg.seed = 17;
    auto records = GenerateExperience(strategies, xcfg);
    ASSERT_TRUE(records.ok());
    experience = std::move(records).value();
  }

  StrategyEmbeddingLearner learner(strategies, cfg);
  ASSERT_TRUE(learner.Learn(experience).ok());
  EXPECT_EQ(learner.num_strategies(), strategies.size());
  // Embeddings exist, are finite, and are not all identical.
  const tensor::Tensor& e0 = learner.Embedding(0);
  const tensor::Tensor& e1 = learner.Embedding(strategies.size() - 1);
  EXPECT_EQ(e0.numel(), 16);
  double diff = 0.0;
  for (int64_t i = 0; i < e0.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(e0[i]));
    diff += std::fabs(e0[i] - e1[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Variants, EmbeddingVariantTest,
                         ::testing::Values(std::make_tuple(true, true),
                                           std::make_tuple(true, false),
                                           std::make_tuple(false, true)));

TEST(EmbeddingLearnerTest, UseExpRequiresExperience) {
  auto strategies = SmallStrategies();
  EmbeddingLearnerConfig cfg;
  cfg.use_exp = true;
  StrategyEmbeddingLearner learner(strategies, cfg);
  EXPECT_FALSE(learner.Learn({}).ok());
}

TEST(EmbeddingLearnerTest, ExperienceLossDecreases) {
  auto strategies = SmallStrategies();
  ExperienceGenConfig xcfg;
  xcfg.num_tasks = 1;
  xcfg.strategies_per_task = 6;
  xcfg.pretrain_epochs = 1;
  xcfg.seed = 19;
  auto records = GenerateExperience(strategies, xcfg);
  ASSERT_TRUE(records.ok());

  EmbeddingLearnerConfig short_cfg;
  short_cfg.train_epochs = 1;
  short_cfg.transr.entity_dim = 16;
  short_cfg.transr.relation_dim = 16;
  short_cfg.seed = 21;
  StrategyEmbeddingLearner short_learner(strategies, short_cfg);
  ASSERT_TRUE(short_learner.Learn(*records).ok());

  EmbeddingLearnerConfig long_cfg = short_cfg;
  long_cfg.train_epochs = 20;
  StrategyEmbeddingLearner long_learner(strategies, long_cfg);
  ASSERT_TRUE(long_learner.Learn(*records).ok());

  EXPECT_LT(long_learner.last_exp_loss(), short_learner.last_exp_loss());
}

TEST(EmbeddingLearnerTest, SameMethodStrategiesCluster) {
  // With KG training, strategies sharing a method should sit closer to each
  // other than strategies of different methods.
  std::vector<StrategySpec> strategies;
  auto ns = search::SearchSpace::SingleMethod("NS").strategies();
  auto sfp = search::SearchSpace::SingleMethod("SFP").strategies();
  strategies.insert(strategies.end(), ns.begin(), ns.end());
  strategies.insert(strategies.end(), sfp.begin(), sfp.end());

  EmbeddingLearnerConfig cfg;
  cfg.train_epochs = 30;
  cfg.transr.entity_dim = 16;
  cfg.transr.relation_dim = 16;
  cfg.use_exp = false;
  cfg.seed = 23;
  StrategyEmbeddingLearner learner(strategies, cfg);
  ASSERT_TRUE(learner.Learn({}).ok());

  auto dist = [&](size_t a, size_t b) {
    const tensor::Tensor& ea = learner.Embedding(a);
    const tensor::Tensor& eb = learner.Embedding(b);
    double d = 0.0;
    for (int64_t i = 0; i < ea.numel(); ++i) {
      d += (ea[i] - eb[i]) * (ea[i] - eb[i]);
    }
    return d;
  };
  // Average within-NS distance vs NS-to-SFP distance over fixed samples.
  double within = 0.0, across = 0.0;
  int count = 0;
  Rng rng(29);
  for (int k = 0; k < 200; ++k) {
    size_t a = static_cast<size_t>(rng.UniformInt(ns.size()));
    size_t b = static_cast<size_t>(rng.UniformInt(ns.size()));
    size_t c = ns.size() + static_cast<size_t>(rng.UniformInt(sfp.size()));
    if (a == b) continue;
    within += dist(a, b);
    across += dist(a, c);
    ++count;
  }
  EXPECT_LT(within / count, across / count);
}

}  // namespace
}  // namespace kg
}  // namespace automc
