// Cross-module integration scenarios: method x architecture sweeps,
// determinism of the full pipeline, evaluator cache correctness under
// eviction, and search over the extended (quantization-included) space.
#include <memory>
#include <sstream>

#include "core/automc.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "search/evolutionary.h"
#include "search/random_search.h"

namespace automc {
namespace {

using tensor::Tensor;

data::TaskData SmallTask(uint64_t seed = 77) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 16;
  cfg.test_per_class = 6;
  cfg.seed = seed;
  return MakeSyntheticTask(cfg);
}

std::unique_ptr<nn::Model> PretrainedModel(const std::string& family,
                                           int depth,
                                           const data::TaskData& task,
                                           uint64_t seed = 3) {
  nn::ModelSpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.num_classes = task.train.num_classes;
  spec.base_width = 4;
  Rng rng(seed);
  auto model = std::move(nn::BuildModel(spec, &rng)).value();
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.seed = seed;
  nn::Trainer trainer(tc);
  AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());
  return model;
}

// --------------------------------------------------------------------------
// Every method must run on BOTH architecture families (the per-method test
// in compress_test.cc covers one family each).

struct Combo {
  const char* method;
  const char* family;
  int depth;
};

class MethodFamilySweep : public ::testing::TestWithParam<Combo> {};

TEST_P(MethodFamilySweep, CompressesBothFamilies) {
  Combo c = GetParam();
  data::TaskData task = SmallTask();
  auto model = PretrainedModel(c.family, c.depth, task);

  search::SearchSpace grid = search::SearchSpace::SingleMethod(c.method);
  compress::StrategySpec spec = grid.strategy(grid.size() / 2);

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 2;
  ctx.batch_size = 16;
  ctx.seed = 5;

  auto compressor = compress::CreateCompressor(spec);
  ASSERT_TRUE(compressor.ok());
  compress::CompressionStats stats;
  Status st = (*compressor)->Compress(model.get(), ctx, &stats);
  ASSERT_TRUE(st.ok()) << c.method << " on " << c.family << ": "
                       << st.ToString();
  EXPECT_GT(stats.ParamReduction(), 0.0) << spec.ToString();
  // Output remains finite.
  Rng rng(6);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &rng);
  Tensor y = model->Forward(x, false);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MethodFamilySweep,
    ::testing::Values(Combo{"LMA", "vgg", 13}, Combo{"LeGR", "resnet", 20},
                      Combo{"NS", "resnet", 20}, Combo{"SFP", "vgg", 13},
                      Combo{"HOS", "resnet", 20}, Combo{"LFB", "vgg", 13},
                      Combo{"QT", "resnet", 20}, Combo{"QT", "vgg", 13}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return std::string(info.param.method) + "_" + info.param.family;
    });

// --------------------------------------------------------------------------
// Determinism: the same seed yields the same search outcome end to end.

TEST(DeterminismTest, AutoMcRunIsReproducible) {
  core::CompressionTask task;
  task.data = SmallTask(101);
  task.model_spec.family = "resnet";
  task.model_spec.depth = 20;
  task.model_spec.num_classes = 4;
  task.model_spec.base_width = 4;
  task.pretrain_epochs = 2;
  task.search_data_fraction = 0.5;
  task.seed = 13;

  core::AutoMCOptions opts;
  opts.search.max_strategy_executions = 5;
  opts.search.gamma = 0.2;
  opts.embedding.train_epochs = 2;
  opts.experience.num_tasks = 1;
  opts.experience.strategies_per_task = 3;
  opts.experience.pretrain_epochs = 1;
  opts.multi_source = false;
  opts.seed = 21;

  core::AutoMC a(opts), b(opts);
  auto ra = a.Run(task);
  auto rb = b.Run(task);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->outcome.pareto_schemes.size(), rb->outcome.pareto_schemes.size());
  for (size_t i = 0; i < ra->outcome.pareto_schemes.size(); ++i) {
    EXPECT_EQ(ra->outcome.pareto_schemes[i], rb->outcome.pareto_schemes[i]);
    EXPECT_DOUBLE_EQ(ra->outcome.pareto_points[i].acc,
                     rb->outcome.pareto_points[i].acc);
  }
}

TEST(DeterminismTest, ExperienceGenerationIsReproducible) {
  auto strategies = search::SearchSpace::SingleMethod("NS").strategies();
  kg::ExperienceGenConfig cfg;
  cfg.num_tasks = 1;
  cfg.strategies_per_task = 3;
  cfg.pretrain_epochs = 1;
  cfg.seed = 31;
  auto a = kg::GenerateExperience(strategies, cfg);
  auto b = kg::GenerateExperience(strategies, cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].strategy_index, (*b)[i].strategy_index);
    EXPECT_FLOAT_EQ((*a)[i].ar, (*b)[i].ar);
    EXPECT_FLOAT_EQ((*a)[i].pr, (*b)[i].pr);
  }
}

// --------------------------------------------------------------------------
// Evaluator under eviction pressure must stay correct (recompute == cached).

TEST(EvaluatorEvictionTest, TinyCacheMatchesLargeCache) {
  data::TaskData task = SmallTask(55);
  auto model = PretrainedModel("vgg", 13, task, 7);
  search::SearchSpace space = search::SearchSpace::SingleMethod("NS");

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 1;
  ctx.batch_size = 16;
  ctx.seed = 11;

  search::SchemeEvaluator::Options big_opts;
  big_opts.max_cached_models = 64;
  search::SchemeEvaluator big(&space, model.get(), ctx, big_opts);
  search::SchemeEvaluator::Options tiny_opts;
  tiny_opts.max_cached_models = 1;
  search::SchemeEvaluator tiny(&space, model.get(), ctx, tiny_opts);

  std::vector<std::vector<int>> schemes = {{0}, {5, 7}, {0, 3}, {5, 7}, {0}};
  for (const auto& scheme : schemes) {
    auto pb = big.Evaluate(scheme);
    auto pt = tiny.Evaluate(scheme);
    ASSERT_TRUE(pb.ok() && pt.ok());
    EXPECT_DOUBLE_EQ(pb->acc, pt->acc) << "scheme size " << scheme.size();
    EXPECT_EQ(pb->params, pt->params);
  }
  // The tiny cache must have re-executed more strategies.
  EXPECT_GT(tiny.strategy_executions(), big.strategy_executions());
}

// --------------------------------------------------------------------------
// Search over the extended space (quantization included) works end to end
// and can pick quantization steps.

TEST(ExtensionSpaceTest, SearchRunsOverQuantizedSpace) {
  data::TaskData task = SmallTask(66);
  auto model = PretrainedModel("resnet", 20, task, 9);
  search::SearchSpace space = search::SearchSpace::Table1WithExtensions();

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 1;
  ctx.batch_size = 16;
  ctx.seed = 17;
  search::SchemeEvaluator evaluator(&space, model.get(), ctx, {});

  search::SearchConfig cfg;
  cfg.max_strategy_executions = 6;
  cfg.max_length = 2;
  cfg.gamma = 0.3;
  cfg.seed = 19;
  search::RandomSearcher searcher;
  auto outcome = searcher.Search(&evaluator, space, cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->pareto_schemes.empty());
}

TEST(ExtensionSpaceTest, QuantizationStepEvaluates) {
  data::TaskData task = SmallTask(67);
  auto model = PretrainedModel("vgg", 13, task, 10);
  search::SearchSpace space = search::SearchSpace::Table1WithExtensions();
  // Find a QT strategy index.
  int qt = -1;
  for (size_t i = 0; i < space.size(); ++i) {
    if (space.strategy(i).method == "QT") {
      qt = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(qt, 0);
  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 1;
  ctx.batch_size = 16;
  search::SchemeEvaluator evaluator(&space, model.get(), ctx, {});
  auto point = evaluator.Evaluate({qt});
  ASSERT_TRUE(point.ok());
  EXPECT_GT(point->pr, 0.5);  // 4..8-bit weights save >= 75% storage
}

// --------------------------------------------------------------------------
// Compress -> serialize -> load -> keep compressing (a realistic workflow).

TEST(WorkflowTest, CompressSaveLoadCompressAgain) {
  data::TaskData task = SmallTask(88);
  auto model = PretrainedModel("vgg", 13, task, 12);
  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 2;
  ctx.batch_size = 16;

  compress::StrategySpec ns{"NS",
                            {{"HP1", "0.5"}, {"HP2", "0.2"}, {"HP6", "0.9"}}};
  auto c1 = compress::CreateCompressor(ns);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE((*c1)->Compress(model.get(), ctx, nullptr).ok());

  std::stringstream buf;
  ASSERT_TRUE(nn::SerializeModel(model.get(), &buf).ok());
  auto loaded = nn::DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok());

  compress::StrategySpec qt{"QT", {{"HP1", "0.5"}, {"HP17", "8"}}};
  auto c2 = compress::CreateCompressor(qt);
  ASSERT_TRUE(c2.ok());
  compress::CompressionStats stats;
  ASSERT_TRUE((*c2)->Compress(loaded->get(), ctx, &stats).ok());
  EXPECT_GT(stats.ParamReduction(), 0.5);
  EXPECT_GT(stats.acc_after, 0.0);
}

// --------------------------------------------------------------------------
// Archive history semantics.

TEST(ArchiveTest, TracksBestFeasibleSeparately) {
  search::Archive archive(/*gamma=*/0.5);
  search::EvalPoint infeasible;
  infeasible.acc = 0.9;
  infeasible.pr = 0.2;
  archive.Record({1}, infeasible, 1);
  EXPECT_LT(archive.best_feasible_acc(), 0.0);  // none yet
  search::EvalPoint feasible;
  feasible.acc = 0.6;
  feasible.pr = 0.6;
  archive.Record({2}, feasible, 2);
  EXPECT_DOUBLE_EQ(archive.best_feasible_acc(), 0.6);

  search::SearchOutcome out = archive.Finalize(2);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_DOUBLE_EQ(out.history[0].best_acc_any, 0.9);
  EXPECT_DOUBLE_EQ(out.history[1].best_acc, 0.6);
  // Pareto set contains only the feasible scheme.
  ASSERT_EQ(out.pareto_schemes.size(), 1u);
  EXPECT_EQ(out.pareto_schemes[0], (std::vector<int>{2}));
}

TEST(ArchiveTest, FallsBackWhenNothingFeasible) {
  search::Archive archive(0.9);
  search::EvalPoint p;
  p.acc = 0.5;
  p.pr = 0.1;
  p.params = 100;
  archive.Record({3}, p, 1);
  search::SearchOutcome out = archive.Finalize(1);
  ASSERT_EQ(out.pareto_schemes.size(), 1u);  // best effort
}

TEST(ArchiveTest, DeduplicatesSchemes) {
  search::Archive archive(0.0);
  search::EvalPoint p;
  p.acc = 0.5;
  p.pr = 0.3;
  p.params = 100;
  archive.Record({1, 2}, p, 1);
  archive.Record({1, 2}, p, 2);
  search::SearchOutcome out = archive.Finalize(2);
  EXPECT_EQ(out.pareto_schemes.size(), 1u);
}

}  // namespace
}  // namespace automc
