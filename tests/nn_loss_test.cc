#include <cmath>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "test_util.h"

namespace automc {
namespace nn {
namespace {

using automc::testing::ExpectGradientsMatch;
using tensor::Tensor;

// Numeric gradient check for losses that map logits -> scalar.
template <typename LossCall>
void CheckLossGradient(LossCall call, Tensor logits) {
  LossResult res = call(logits);
  auto f = [&]() { return static_cast<double>(call(logits).loss); };
  ExpectGradientsMatch(&logits, f, res.grad, 1e-3, 3e-2);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 20.0f;
  logits.at(1, 2) = 20.0f;
  LossResult r = CrossEntropy(logits, {1, 2});
  EXPECT_LT(r.loss, 1e-3f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits({1, 4});
  LossResult r = CrossEntropy(logits, {0});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5);
}

TEST(CrossEntropyTest, GradientSumsToZeroPerRow) {
  Rng rng(1);
  Tensor logits = Tensor::Randn({3, 5}, &rng);
  LossResult r = CrossEntropy(logits, {0, 2, 4});
  for (int64_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 5; ++j) s += r.grad.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, FiniteDifference) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({4, 3}, &rng);
  std::vector<int> labels = {0, 1, 2, 1};
  CheckLossGradient(
      [&](const Tensor& l) { return CrossEntropy(l, labels); }, logits);
}

TEST(NegativeLikelihoodTest, FiniteDifference) {
  Rng rng(3);
  Tensor logits = Tensor::Randn({3, 4}, &rng);
  std::vector<int> labels = {1, 0, 3};
  CheckLossGradient(
      [&](const Tensor& l) { return NegativeLikelihood(l, labels); }, logits);
}

TEST(NegativeLikelihoodTest, RangeIsMinusOneToZero) {
  Tensor good({1, 2});
  good.at(0, 0) = 30.0f;
  LossResult r = NegativeLikelihood(good, {0});
  EXPECT_NEAR(r.loss, -1.0f, 1e-4);
  Tensor bad({1, 2});
  bad.at(0, 1) = 30.0f;
  LossResult r2 = NegativeLikelihood(bad, {0});
  EXPECT_NEAR(r2.loss, 0.0f, 1e-4);
}

TEST(SoftmaxMseTest, FiniteDifference) {
  Rng rng(4);
  Tensor logits = Tensor::Randn({3, 4}, &rng);
  std::vector<int> labels = {2, 2, 0};
  CheckLossGradient(
      [&](const Tensor& l) { return SoftmaxMse(l, labels); }, logits);
}

TEST(SoftmaxMseTest, ZeroWhenExactlyOneHot) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.0f;
  logits.at(0, 0) = -50.0f;
  logits.at(0, 2) = -50.0f;
  LossResult r = SoftmaxMse(logits, {1});
  EXPECT_NEAR(r.loss, 0.0f, 1e-6);
}

TEST(MseTest, KnownValue) {
  Tensor a({2}), b({2});
  a[0] = 1.0f;
  a[1] = 3.0f;
  b[0] = 0.0f;
  b[1] = 1.0f;
  LossResult r = Mse(a, b);
  EXPECT_FLOAT_EQ(r.loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(r.grad[0], 1.0f);
  EXPECT_FLOAT_EQ(r.grad[1], 2.0f);
}

TEST(MseTest, FiniteDifference) {
  Rng rng(5);
  Tensor pred = Tensor::Randn({2, 3}, &rng);
  Tensor target = Tensor::Randn({2, 3}, &rng);
  LossResult res = Mse(pred, target);
  auto f = [&]() { return static_cast<double>(Mse(pred, target).loss); };
  ExpectGradientsMatch(&pred, f, res.grad, 1e-3, 3e-2);
}

class KdTemperatureTest : public ::testing::TestWithParam<float> {};

TEST_P(KdTemperatureTest, FiniteDifference) {
  float t = GetParam();
  Rng rng(6);
  Tensor student = Tensor::Randn({3, 4}, &rng);
  Tensor teacher = Tensor::Randn({3, 4}, &rng);
  LossResult res = DistillationKl(student, teacher, t);
  auto f = [&]() {
    return static_cast<double>(DistillationKl(student, teacher, t).loss);
  };
  ExpectGradientsMatch(&student, f, res.grad, 1e-3, 3e-2);
}

TEST_P(KdTemperatureTest, ZeroWhenDistributionsMatch) {
  float t = GetParam();
  Rng rng(7);
  Tensor logits = Tensor::Randn({2, 5}, &rng);
  LossResult r = DistillationKl(logits, logits, t);
  EXPECT_NEAR(r.loss, 0.0f, 1e-5);
  for (int64_t i = 0; i < r.grad.numel(); ++i) EXPECT_NEAR(r.grad[i], 0.0f, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, KdTemperatureTest,
                         ::testing::Values(1.0f, 3.0f, 6.0f, 10.0f));

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits({3, 2});
  logits.at(0, 0) = 1.0f;   // pred 0
  logits.at(1, 1) = 1.0f;   // pred 1
  logits.at(2, 0) = -1.0f;  // pred 1
  logits.at(2, 1) = 0.5f;
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 2.0 / 3.0);
}

}  // namespace
}  // namespace nn
}  // namespace automc
