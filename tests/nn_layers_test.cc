#include <cmath>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "nn/lowrank.h"
#include "nn/residual.h"
#include "nn/seqnet.h"
#include "test_util.h"

namespace automc {
namespace nn {
namespace {

using automc::testing::ExpectGradientsMatch;
using automc::testing::Scalarize;
using automc::testing::ScalarizeWeights;
using tensor::Tensor;

// Runs input- and parameter-gradient finite difference checks for a layer.
void CheckLayerGradients(Layer* layer, Tensor x, uint64_t seed,
                         double tol = 2e-2) {
  // Discover output shape.
  Tensor y0 = layer->Forward(x, /*training=*/true);
  Tensor w = ScalarizeWeights(y0.shape(), seed);

  // Analytic gradients.
  for (Param* p : layer->Params()) p->ZeroGrad();
  layer->Forward(x, true);
  Tensor dx = layer->Backward(w);

  auto f = [&]() {
    Tensor out = layer->Forward(x, true);
    return Scalarize(out, w);
  };

  ExpectGradientsMatch(&x, f, dx, 1e-3, tol);
  for (Param* p : layer->Params()) {
    Tensor analytic = p->grad;
    ExpectGradientsMatch(&p->value, f, analytic, 1e-3, tol);
  }
}

// --------------------------------------------------------------------------
// Conv2d

struct ConvCase {
  int64_t in_c, out_c, kernel, stride, pad;
  bool bias;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, FiniteDifference) {
  ConvCase c = GetParam();
  Rng rng(42);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, c.bias, &rng);
  Tensor x = Tensor::Randn({2, c.in_c, 5, 5}, &rng);
  CheckLayerGradients(&conv, x, 17);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradTest,
    ::testing::Values(ConvCase{2, 3, 3, 1, 1, false},
                      ConvCase{2, 3, 3, 2, 1, false},
                      ConvCase{3, 2, 1, 1, 0, false},
                      ConvCase{1, 4, 3, 1, 0, true},
                      ConvCase{2, 2, 5, 1, 2, true},
                      ConvCase{4, 1, 1, 2, 0, false}));

TEST(Conv2dTest, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, false, &rng);
  Tensor x({4, 3, 8, 8});
  Tensor y = conv.Forward(x, false);
  EXPECT_EQ(y.size(0), 4);
  EXPECT_EQ(y.size(1), 8);
  EXPECT_EQ(y.size(2), 4);
  EXPECT_EQ(y.size(3), 4);
}

TEST(Conv2dTest, FlopsCount) {
  Rng rng(1);
  Conv2d conv(2, 4, 3, 1, 1, false, &rng);
  Tensor x({1, 2, 4, 4});
  conv.Forward(x, false);
  // N * out_c * in_c*k*k * oh*ow = 1*4*18*16
  EXPECT_EQ(conv.FlopsLastForward(), 4 * 18 * 16);
}

TEST(Conv2dTest, KeepOutputFiltersShrinksWeights) {
  Rng rng(1);
  Conv2d conv(2, 4, 3, 1, 1, true, &rng);
  Tensor w_before = conv.weight().value;
  conv.KeepOutputFilters({1, 3});
  EXPECT_EQ(conv.out_channels(), 2);
  EXPECT_EQ(conv.weight().value.shape(),
            (std::vector<int64_t>{2, 2, 3, 3}));
  // First retained filter is old filter 1.
  for (int64_t i = 0; i < 2 * 3 * 3; ++i) {
    EXPECT_FLOAT_EQ(conv.weight().value[i], w_before[1 * 18 + i]);
  }
}

TEST(Conv2dTest, KeepInputChannelsMatchesSubsetForward) {
  Rng rng(1);
  Conv2d conv(3, 2, 3, 1, 1, false, &rng);
  Tensor x = Tensor::Randn({1, 3, 4, 4}, &rng);
  // Zero channel 1 of the input; pruning channel 1 must give same output.
  Tensor x_zeroed = x;
  for (int64_t i = 0; i < 16; ++i) x_zeroed[16 + i] = 0.0f;
  Tensor y_full = conv.Forward(x_zeroed, false);

  conv.KeepInputChannels({0, 2});
  Tensor x_sub({1, 2, 4, 4});
  for (int64_t i = 0; i < 16; ++i) {
    x_sub[i] = x[i];            // old channel 0
    x_sub[16 + i] = x[32 + i];  // old channel 2
  }
  Tensor y_sub = conv.Forward(x_sub, false);
  for (int64_t i = 0; i < y_full.numel(); ++i) {
    EXPECT_NEAR(y_full[i], y_sub[i], 1e-5);
  }
}

TEST(Conv2dTest, CloneIsDeepCopy) {
  Rng rng(1);
  Conv2d conv(2, 2, 3, 1, 1, false, &rng);
  auto copy = conv.Clone();
  auto* conv_copy = dynamic_cast<Conv2d*>(copy.get());
  ASSERT_NE(conv_copy, nullptr);
  conv_copy->weight().value.Fill(0.0f);
  EXPECT_NE(conv.weight().value.L2NormSquared(), 0.0f);
}

// --------------------------------------------------------------------------
// Linear

TEST(LinearGradTest, FiniteDifference) {
  Rng rng(4);
  Linear lin(6, 4, &rng);
  Tensor x = Tensor::Randn({3, 6}, &rng);
  CheckLayerGradients(&lin, x, 23);
}

TEST(LinearTest, KeepInputFeaturesGrouped) {
  Rng rng(4);
  Linear lin(8, 2, &rng);  // 4 channels * group 2
  Tensor w = lin.weight().value;
  lin.KeepInputFeatures({0, 3}, 2);
  EXPECT_EQ(lin.in_features(), 4);
  EXPECT_FLOAT_EQ(lin.weight().value.at(0, 0), w.at(0, 0));
  EXPECT_FLOAT_EQ(lin.weight().value.at(0, 2), w.at(0, 6));
}

// --------------------------------------------------------------------------
// BatchNorm2d

TEST(BatchNormGradTest, FiniteDifference) {
  Rng rng(5);
  BatchNorm2d bn(3);
  // Non-unit gamma/beta so their gradients are exercised.
  for (int64_t i = 0; i < 3; ++i) {
    bn.gamma().value[i] = 0.7f + 0.2f * static_cast<float>(i);
    bn.beta().value[i] = -0.1f * static_cast<float>(i);
  }
  Tensor x = Tensor::Randn({4, 3, 3, 3}, &rng);
  CheckLayerGradients(&bn, x, 31, /*tol=*/5e-2);
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  Rng rng(6);
  BatchNorm2d bn(2);
  Tensor x = Tensor::Randn({8, 2, 4, 4}, &rng, 3.0f);
  Tensor y = bn.Forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    int64_t cnt = 0;
    for (int64_t n = 0; n < 8; ++n) {
      for (int64_t k = 0; k < 16; ++k) {
        mean += y[(n * 2 + c) * 16 + k];
        ++cnt;
      }
    }
    mean /= cnt;
    for (int64_t n = 0; n < 8; ++n) {
      for (int64_t k = 0; k < 16; ++k) {
        double d = y[(n * 2 + c) * 16 + k] - mean;
        var += d * d;
      }
    }
    var /= cnt;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d bn(1);
  Tensor x = Tensor::Randn({16, 1, 2, 2}, &rng, 2.0f);
  // Train several times so running stats converge toward batch stats.
  for (int i = 0; i < 50; ++i) bn.Forward(x, true);
  Tensor y_train = bn.Forward(x, true);
  Tensor y_eval = bn.Forward(x, false);
  for (int64_t i = 0; i < y_train.numel(); ++i) {
    EXPECT_NEAR(y_train[i], y_eval[i], 0.15);
  }
}

TEST(BatchNormTest, KeepChannelsSelects) {
  BatchNorm2d bn(4);
  for (int64_t i = 0; i < 4; ++i) bn.gamma().value[i] = static_cast<float>(i);
  bn.KeepChannels({1, 3});
  EXPECT_EQ(bn.channels(), 2);
  EXPECT_FLOAT_EQ(bn.gamma().value[0], 1.0f);
  EXPECT_FLOAT_EQ(bn.gamma().value[1], 3.0f);
}

// --------------------------------------------------------------------------
// Activations

TEST(ReluGradTest, FiniteDifference) {
  Rng rng(7);
  ReLU relu;
  Tensor x = Tensor::Randn({2, 3, 4, 4}, &rng);
  CheckLayerGradients(&relu, x, 37);
}

TEST(ReluTest, ClampsNegative) {
  ReLU relu;
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -0.5f;
  Tensor y = relu.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

class LmaSegmentsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(LmaSegmentsTest, InitApproximatesRelu) {
  int64_t segments = GetParam();
  LMAActivation lma(segments, 2.0f);
  float width = 4.0f / static_cast<float>(segments);
  // With an even segment count a breakpoint sits exactly at 0 and the init
  // reproduces ReLU; with an odd count the straddling segment makes the init
  // ReLU only up to one segment width.
  float tol = (segments % 2 == 0) ? 1e-5f : width;
  Tensor x({7});
  float vals[] = {-1.9f, -1.0f, -0.3f, 0.3f, 0.9f, 1.5f, 1.9f};
  for (int i = 0; i < 7; ++i) x[i] = vals[i];
  Tensor y = lma.Forward(x, false);
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(y[i], std::max(0.0f, vals[i]), tol) << "at x=" << vals[i];
  }
}

TEST_P(LmaSegmentsTest, FiniteDifference) {
  Rng rng(8);
  LMAActivation lma(GetParam(), 2.0f);
  // Perturb slopes away from the ReLU init so gradients are generic.
  for (int64_t i = 0; i < lma.segments(); ++i) {
    lma.Params()[0]->value[i] += static_cast<float>(rng.Normal(0.0, 0.3));
  }
  Tensor x = Tensor::Randn({2, 10}, &rng);
  CheckLayerGradients(&lma, x, 41, /*tol=*/5e-2);
}

INSTANTIATE_TEST_SUITE_P(Segments, LmaSegmentsTest,
                         ::testing::Values(2, 4, 5, 8));

TEST(LmaTest, ContinuousAcrossBoundaries) {
  Rng rng(9);
  LMAActivation lma(4, 2.0f);
  for (int64_t i = 0; i < 4; ++i) {
    lma.Params()[0]->value[i] = static_cast<float>(rng.Normal());
  }
  // Check continuity at each internal breakpoint.
  for (int b = 1; b < 4; ++b) {
    float bp = -2.0f + static_cast<float>(b) * 1.0f;
    Tensor lo({1}), hi({1});
    lo[0] = bp - 1e-4f;
    hi[0] = bp + 1e-4f;
    Tensor ylo = lma.Forward(lo, false);
    Tensor yhi = lma.Forward(hi, false);
    EXPECT_NEAR(ylo[0], yhi[0], 1e-2);
  }
}

// --------------------------------------------------------------------------
// Pooling / Flatten

TEST(MaxPoolGradTest, FiniteDifference) {
  Rng rng(10);
  MaxPool2d pool(2, 2);
  Tensor x = Tensor::Randn({2, 2, 4, 4}, &rng);
  CheckLayerGradients(&pool, x, 43);
}

TEST(MaxPoolTest, SelectsMaximum) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -3.0f;
  x[3] = 2.0f;
  Tensor y = pool.Forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(GlobalAvgPoolGradTest, FiniteDifference) {
  Rng rng(11);
  GlobalAvgPool gap;
  Tensor x = Tensor::Randn({2, 3, 4, 4}, &rng);
  CheckLayerGradients(&gap, x, 47);
}

TEST(FlattenTest, RoundTrip) {
  Rng rng(12);
  Flatten fl;
  Tensor x = Tensor::Randn({2, 3, 2, 2}, &rng);
  Tensor y = fl.Forward(x, true);
  EXPECT_EQ(y.dim(), 2);
  EXPECT_EQ(y.size(1), 12);
  Tensor back = fl.Backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(back[i], x[i]);
}

// --------------------------------------------------------------------------
// Composite layers

TEST(SequentialGradTest, ConvBnReluStack) {
  Rng rng(13);
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<Conv2d>(2, 3, 3, 1, 1, false, &rng));
  seq->Add(std::make_unique<BatchNorm2d>(3));
  seq->Add(std::make_unique<ReLU>());
  Tensor x = Tensor::Randn({3, 2, 4, 4}, &rng);
  CheckLayerGradients(seq.get(), x, 53, /*tol=*/6e-2);
}

TEST(SequentialTest, ReplaceChild) {
  Rng rng(14);
  Sequential seq;
  seq.Add(std::make_unique<ReLU>());
  seq.Add(std::make_unique<Flatten>());
  auto old = seq.ReplaceChild(0, std::make_unique<GlobalAvgPool>());
  EXPECT_EQ(old->Name(), "ReLU");
  EXPECT_EQ(seq.Child(0)->Name(), "GlobalAvgPool");
}

class ResidualGradTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(ResidualGradTest, FiniteDifference) {
  auto [kind_i, stride] = GetParam();
  auto kind = kind_i == 0 ? ResidualBlock::Kind::kBasic
                          : ResidualBlock::Kind::kBottleneck;
  Rng rng(15);
  ResidualBlock block(kind, 4, 2, stride, &rng);
  Tensor x = Tensor::Randn({2, 4, 4, 4}, &rng);
  CheckLayerGradients(&block, x, 59, /*tol=*/8e-2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ResidualGradTest,
                         ::testing::Values(std::make_tuple(0, 1),
                                           std::make_tuple(0, 2),
                                           std::make_tuple(1, 1),
                                           std::make_tuple(1, 2)));

TEST(ResidualBlockTest, IdentityShortcutWhenShapesMatch) {
  Rng rng(16);
  ResidualBlock block(ResidualBlock::Kind::kBasic, 4, 4, 1, &rng);
  EXPECT_FALSE(block.has_downsample());
  ResidualBlock strided(ResidualBlock::Kind::kBasic, 4, 4, 2, &rng);
  EXPECT_TRUE(strided.has_downsample());
  ResidualBlock widened(ResidualBlock::Kind::kBasic, 4, 8, 1, &rng);
  EXPECT_TRUE(widened.has_downsample());
}

TEST(ResidualBlockTest, ReplaceActivationsSwapsToLma) {
  Rng rng(17);
  ResidualBlock block(ResidualBlock::Kind::kBasic, 2, 2, 1, &rng);
  LMAActivation proto(4);
  block.ReplaceActivations(proto);
  Tensor x = Tensor::Randn({1, 2, 3, 3}, &rng);
  Tensor y = block.Forward(x, false);  // must still run
  EXPECT_EQ(y.shape(), x.shape());
  // LMA slopes are trainable, so block params grew.
  bool has_lma_param = false;
  for (Param* p : block.Params()) {
    if (p->value.numel() == 4) has_lma_param = true;
  }
  EXPECT_TRUE(has_lma_param);
}

TEST(LowRankConvGradTest, FiniteDifference) {
  Rng rng(18);
  std::vector<std::unique_ptr<Conv2d>> stages;
  stages.push_back(std::make_unique<Conv2d>(3, 2, 3, 1, 1, false, &rng));
  stages.push_back(std::make_unique<Conv2d>(2, 4, 1, 1, 0, false, &rng));
  LowRankConv lr(std::move(stages));
  EXPECT_EQ(lr.in_channels(), 3);
  EXPECT_EQ(lr.out_channels(), 4);
  Tensor x = Tensor::Randn({2, 3, 4, 4}, &rng);
  CheckLayerGradients(&lr, x, 61, /*tol=*/5e-2);
}

// --------------------------------------------------------------------------
// GruCell / VecMlp

TEST(GruCellTest, FiniteDifferenceSingleStep) {
  Rng rng(19);
  GruCell cell(3, 4, &rng);
  Tensor x = Tensor::Randn({3}, &rng);
  Tensor h0 = Tensor::Randn({4}, &rng);
  Tensor w = ScalarizeWeights({4}, 67);

  for (Param* p : cell.Params()) p->ZeroGrad();
  GruCell::Cache cache;
  cell.Step(x, h0, &cache);
  auto [dx, dh0] = cell.BackwardStep(cache, w);

  auto f = [&]() {
    Tensor h = cell.Step(x, h0, nullptr);
    return Scalarize(h, w);
  };
  ExpectGradientsMatch(&x, f, dx, 1e-3, 3e-2);
  ExpectGradientsMatch(&h0, f, dh0, 1e-3, 3e-2);
  for (Param* p : cell.Params()) {
    Tensor analytic = p->grad;
    ExpectGradientsMatch(&p->value, f, analytic, 1e-3, 3e-2);
  }
}

TEST(GruCellTest, SequenceBackpropThroughTime) {
  Rng rng(20);
  GruCell cell(2, 3, &rng);
  std::vector<Tensor> xs;
  for (int t = 0; t < 3; ++t) xs.push_back(Tensor::Randn({2}, &rng));
  Tensor w = ScalarizeWeights({3}, 71);

  auto run = [&]() {
    Tensor h = cell.InitialState();
    for (const auto& x : xs) h = cell.Step(x, h, nullptr);
    return Scalarize(h, w);
  };

  // Analytic BPTT.
  for (Param* p : cell.Params()) p->ZeroGrad();
  std::vector<GruCell::Cache> caches(3);
  Tensor h = cell.InitialState();
  for (int t = 0; t < 3; ++t) h = cell.Step(xs[static_cast<size_t>(t)], h, &caches[static_cast<size_t>(t)]);
  Tensor dh = w;
  std::vector<Tensor> dxs(3);
  for (int t = 2; t >= 0; --t) {
    auto [dx, dh_prev] = cell.BackwardStep(caches[static_cast<size_t>(t)], dh);
    dxs[static_cast<size_t>(t)] = dx;
    dh = dh_prev;
  }

  for (int t = 0; t < 3; ++t) {
    ExpectGradientsMatch(&xs[static_cast<size_t>(t)], run, dxs[static_cast<size_t>(t)], 1e-3,
                         4e-2);
  }
  for (Param* p : cell.Params()) {
    Tensor analytic = p->grad;
    ExpectGradientsMatch(&p->value, run, analytic, 1e-3, 4e-2);
  }
}

TEST(VecMlpTest, FiniteDifference) {
  Rng rng(21);
  VecMlp mlp({4, 6, 2}, &rng);
  Tensor x = Tensor::Randn({4}, &rng);
  Tensor w = ScalarizeWeights({2}, 73);

  for (Param* p : mlp.Params()) p->ZeroGrad();
  VecMlp::Cache cache;
  mlp.Forward(x, &cache);
  Tensor dx = mlp.Backward(cache, w);

  auto f = [&]() {
    Tensor out = mlp.Forward(x, nullptr);
    return Scalarize(out, w);
  };
  ExpectGradientsMatch(&x, f, dx, 1e-3, 3e-2);
  for (Param* p : mlp.Params()) {
    Tensor analytic = p->grad;
    ExpectGradientsMatch(&p->value, f, analytic, 1e-3, 3e-2);
  }
}

TEST(VecMlpTest, OutputDims) {
  Rng rng(22);
  VecMlp mlp({5, 8, 8, 3}, &rng);
  EXPECT_EQ(mlp.input_dim(), 5);
  EXPECT_EQ(mlp.output_dim(), 3);
  Tensor y = mlp.Forward(Tensor::Zeros({5}), nullptr);
  EXPECT_EQ(y.numel(), 3);
}

}  // namespace
}  // namespace nn
}  // namespace automc
