// Bitwise equivalence of SchemeEvaluator::EvaluateBatch against the serial
// Evaluate loop it replaces: points, parent points, charged-budget traces,
// cache digests, checkpoint snapshots, counters, and the experience-store
// file bytes must all match exactly — at AUTOMC_THREADS=1 and 4, across
// overlapping-prefix batches, duplicate schemes, mid-batch budget
// exhaustion, mid-batch errors, and eviction-heavy tiny caches.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"
#include "search/evaluator.h"
#include "search/search_space.h"
#include "store/experience_store.h"
#include "test_util.h"

namespace automc {
namespace search {
namespace {

namespace fs = std::filesystem;
using automc::testing::PoolGuard;
using automc::testing::ScopedTempDir;

struct BatchFixture {
  data::TaskData task;
  std::unique_ptr<nn::Model> model;
  compress::CompressionContext ctx;
  SearchSpace space = SearchSpace::SingleMethod("NS");

  BatchFixture() {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 12;
    cfg.test_per_class = 4;
    cfg.seed = 41;
    task = MakeSyntheticTask(cfg);

    nn::ModelSpec spec;
    spec.family = "vgg";
    spec.depth = 13;
    spec.num_classes = 3;
    spec.base_width = 4;
    Rng rng(5);
    model = std::move(nn::BuildModel(spec, &rng)).value();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 12;
    nn::Trainer trainer(tc);
    AUTOMC_CHECK(trainer.Fit(model.get(), task.train).ok());

    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = 1;
    ctx.batch_size = 12;
    ctx.seed = 3;
  }

  SchemeEvaluator MakeEvaluator(SchemeEvaluator::Options opts = {}) {
    return SchemeEvaluator(&space, model.get(), ctx, opts);
  }
};

std::string StateBlob(const SchemeEvaluator& ev) {
  ByteWriter w;
  ev.SnapshotState(&w);
  return w.Take();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void ExpectPointEq(const EvalPoint& a, const EvalPoint& b,
                   const std::string& what) {
  EXPECT_EQ(a.acc, b.acc) << what;
  EXPECT_EQ(a.params, b.params) << what;
  EXPECT_EQ(a.flops, b.flops) << what;
  EXPECT_EQ(a.ar, b.ar) << what;
  EXPECT_EQ(a.pr, b.pr) << what;
  EXPECT_EQ(a.fr, b.fr) << what;
}

// The contract being tested, stated as code: EvaluateBatch(schemes, limit)
// must leave the evaluator in the exact state this loop does, and return
// exactly the points/parents/budget trace this loop observes.
struct SerialTrace {
  std::vector<EvalPoint> points;
  std::vector<EvalPoint> parents;
  std::vector<int64_t> charged_after;
  Status error = Status::OK();
};

SerialTrace SerialReference(SchemeEvaluator* ev,
                            const std::vector<std::vector<int>>& schemes,
                            int64_t charged_limit) {
  SerialTrace trace;
  for (const auto& scheme : schemes) {
    if (charged_limit >= 0 && ev->charged_executions() >= charged_limit) break;
    EvalPoint parent;
    Result<EvalPoint> point = ev->Evaluate(scheme, &parent);
    if (!point.ok()) {
      trace.error = point.status();
      break;
    }
    trace.points.push_back(*point);
    trace.parents.push_back(parent);
    trace.charged_after.push_back(ev->charged_executions());
  }
  return trace;
}

void ExpectSameState(const SchemeEvaluator& serial,
                     const SchemeEvaluator& batch, const std::string& what) {
  EXPECT_EQ(serial.charged_executions(), batch.charged_executions()) << what;
  EXPECT_EQ(serial.strategy_executions(), batch.strategy_executions()) << what;
  EXPECT_EQ(serial.cache_hits(), batch.cache_hits()) << what;
  EXPECT_EQ(serial.store_hits(), batch.store_hits()) << what;
  EXPECT_EQ(serial.CacheDigest(), batch.CacheDigest()) << what;
  EXPECT_EQ(StateBlob(serial), StateBlob(batch)) << what;
}

// Runs the serial loop and EvaluateBatch on two fresh evaluators and demands
// bit-identical results and end states.
void CheckEquivalence(BatchFixture* f,
                      const std::vector<std::vector<int>>& schemes,
                      int64_t charged_limit, int threads,
                      SchemeEvaluator::Options opts = {}) {
  PoolGuard pool(threads);
  const std::string what =
      "threads=" + std::to_string(threads) +
      " limit=" + std::to_string(charged_limit);

  SchemeEvaluator serial = f->MakeEvaluator(opts);
  SerialTrace ref = SerialReference(&serial, schemes, charged_limit);
  ASSERT_TRUE(ref.error.ok()) << ref.error.ToString();

  SchemeEvaluator parallel = f->MakeEvaluator(opts);
  Result<BatchEval> got = parallel.EvaluateBatch(schemes, charged_limit);
  ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();

  ASSERT_EQ(got->points.size(), ref.points.size()) << what;
  ASSERT_EQ(got->parents.size(), ref.parents.size()) << what;
  ASSERT_EQ(got->charged_after.size(), ref.charged_after.size()) << what;
  for (size_t i = 0; i < ref.points.size(); ++i) {
    const std::string at = what + " scheme#" + std::to_string(i);
    ExpectPointEq(got->points[i], ref.points[i], at);
    ExpectPointEq(got->parents[i], ref.parents[i], at + " (parent)");
    EXPECT_EQ(got->charged_after[i], ref.charged_after[i]) << at;
  }
  ExpectSameState(serial, parallel, what);
}

// Disjoint subtrees: the planner should fan these out as parallel chains.
TEST(BatchEvalTest, DisjointSchemesMatchSerial) {
  BatchFixture f;
  const std::vector<std::vector<int>> schemes = {{0}, {1}, {2, 3}, {4}};
  for (int threads : {1, 4}) CheckEquivalence(&f, schemes, -1, threads);
}

// Overlapping prefixes: {0}, {0,1}, {0,1,2} must execute each tree node
// exactly once (one chain), while {3} runs beside them.
TEST(BatchEvalTest, OverlappingPrefixesMatchSerial) {
  BatchFixture f;
  const std::vector<std::vector<int>> schemes = {
      {0}, {0, 1}, {0, 1, 2}, {0, 2}, {3}};
  for (int threads : {1, 4}) {
    CheckEquivalence(&f, schemes, -1, threads);
    // Strategy executions equal the number of distinct tree nodes — no
    // duplicate compressor runs across the shared prefixes.
    PoolGuard pool(threads);
    SchemeEvaluator ev = f.MakeEvaluator();
    ASSERT_TRUE(ev.EvaluateBatch(schemes).ok());
    EXPECT_EQ(ev.strategy_executions(), 5);  // 0, 01, 012, 02, 3
  }
}

TEST(BatchEvalTest, DuplicateSchemesMatchSerial) {
  BatchFixture f;
  const std::vector<std::vector<int>> schemes = {{2}, {2}, {0, 1}, {2}, {0, 1}};
  for (int threads : {1, 4}) CheckEquivalence(&f, schemes, -1, threads);
}

TEST(BatchEvalTest, SecondBatchReusesFirstBatchState) {
  BatchFixture f;
  for (int threads : {1, 4}) {
    PoolGuard pool(threads);
    SchemeEvaluator serial = f.MakeEvaluator();
    SchemeEvaluator parallel = f.MakeEvaluator();
    const std::vector<std::vector<int>> first = {{0}, {1, 2}};
    const std::vector<std::vector<int>> second = {{0, 3}, {1, 2, 0}, {1}};
    SerialTrace r1 = SerialReference(&serial, first, -1);
    SerialTrace r2 = SerialReference(&serial, second, -1);
    ASSERT_TRUE(r1.error.ok() && r2.error.ok());
    ASSERT_TRUE(parallel.EvaluateBatch(first).ok());
    Result<BatchEval> got = parallel.EvaluateBatch(second);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->points.size(), r2.points.size());
    for (size_t i = 0; i < r2.points.size(); ++i) {
      ExpectPointEq(got->points[i], r2.points[i], "second batch");
    }
    ExpectSameState(serial, parallel, "after second batch");
  }
}

// Budget exhaustion mid-batch: the evaluated prefix must stop exactly where
// the serial loop's per-candidate `charged < limit` check stops it.
TEST(BatchEvalTest, BudgetTruncationMatchesSerial) {
  BatchFixture f;
  const std::vector<std::vector<int>> schemes = {{0, 1}, {2}, {3, 4}, {1}};
  // Each scheme charges its novel nodes; sweep limits so the cut lands at
  // every position, including 0 (nothing runs) and past the end.
  for (int64_t limit : {0, 1, 2, 3, 4, 5, 99}) {
    CheckEquivalence(&f, schemes, limit, 4);
  }
}

// A scheme with an out-of-range strategy index mid-batch: the batch must
// commit everything before it, then surface the same error a serial loop
// hits, leaving the evaluator in the serial loop's exact error-time state.
TEST(BatchEvalTest, MidBatchErrorMatchesSerialPrefix) {
  BatchFixture f;
  const int bad = static_cast<int>(f.space.size());  // one past the end
  const std::vector<std::vector<int>> schemes = {{0}, {1, bad}, {2}};
  for (int threads : {1, 4}) {
    PoolGuard pool(threads);
    SchemeEvaluator serial = f.MakeEvaluator();
    SerialTrace ref = SerialReference(&serial, schemes, -1);
    ASSERT_FALSE(ref.error.ok());
    ASSERT_EQ(ref.points.size(), 1u);  // only {0} landed

    SchemeEvaluator parallel = f.MakeEvaluator();
    Result<BatchEval> got = parallel.EvaluateBatch(schemes);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ref.error.code());
    ExpectSameState(serial, parallel,
                    "threads=" + std::to_string(threads) + " after error");
  }
}

// A one-entry model cache forces evictions between chains, so the commit
// phase sees speculative nodes whose cached ancestors are long gone. The
// fallback (inline re-execution) must keep results and eviction order
// bit-identical to serial.
TEST(BatchEvalTest, TinyCacheEvictionsMatchSerial) {
  BatchFixture f;
  SchemeEvaluator::Options opts;
  opts.max_cached_models = 1;
  const std::vector<std::vector<int>> schemes = {
      {0}, {0, 1}, {2}, {0, 1, 3}, {2, 4}};
  for (int threads : {1, 4}) CheckEquivalence(&f, schemes, -1, threads, opts);
}

// With an attached store, the log file a batch run writes must be byte-for-
// byte the file a serial run writes (same records, same order), and a warm
// second batch over the same schemes must charge without executing.
TEST(BatchEvalTest, StoreBytesMatchSerial) {
  BatchFixture f;
  ScopedTempDir dir("batch_store");
  const std::vector<std::vector<int>> schemes = {{0}, {0, 2}, {4}, {0, 2, 1}};

  const std::string serial_path = dir.File("serial.bin");
  {
    auto store = store::ExperienceStore::Open(serial_path);
    ASSERT_TRUE(store.ok());
    SchemeEvaluator ev = f.MakeEvaluator();
    ASSERT_TRUE(ev.AttachStore(store->get()).ok());
    SerialTrace ref = SerialReference(&ev, schemes, -1);
    ASSERT_TRUE(ref.error.ok());
  }

  const std::string batch_path = dir.File("batch.bin");
  int64_t batch_charged = 0;
  {
    PoolGuard pool(4);
    auto store = store::ExperienceStore::Open(batch_path);
    ASSERT_TRUE(store.ok());
    SchemeEvaluator ev = f.MakeEvaluator();
    ASSERT_TRUE(ev.AttachStore(store->get()).ok());
    ASSERT_TRUE(ev.EvaluateBatch(schemes).ok());
    batch_charged = ev.charged_executions();
  }
  EXPECT_EQ(ReadFileBytes(serial_path), ReadFileBytes(batch_path));

  // Warm rerun against the batch-written store: everything store-served.
  {
    PoolGuard pool(4);
    auto store = store::ExperienceStore::Open(batch_path);
    ASSERT_TRUE(store.ok());
    SchemeEvaluator warm = f.MakeEvaluator();
    ASSERT_TRUE(warm.AttachStore(store->get()).ok());
    ASSERT_TRUE(warm.EvaluateBatch(schemes).ok());
    EXPECT_EQ(warm.strategy_executions(), 0);
    EXPECT_EQ(warm.charged_executions(), batch_charged);
    EXPECT_EQ((*store)->appends(), 0);
  }
}

// ---------------------------------------------------------------------------
// COW traffic: the speculation phase clones model snapshots per chain, and
// copy-on-write is what makes those clones O(1). These sections assert —
// via the tensor.cow_* counters — that a full 16-candidate round copies
// bytes only for the layers compression/finetune actually rewrites, and
// that a warm (fully cached) round copies nothing at all.

int64_t CowCounter(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

TEST(BatchEvalTest, SixteenCandidateRoundCopiesOnlyRewrittenLayers) {
  BatchFixture f;
  // 16 schemes over the 5-strategy space, with heavy prefix overlap.
  const std::vector<std::vector<int>> schemes = {
      {0},       {1},       {2},       {3},          {4},       {0, 1},
      {0, 2},    {1, 2},    {1, 3},    {2, 3},       {0, 1, 2}, {1, 2, 3},
      {2, 3, 4}, {0, 1, 3}, {3, 4},    {0, 3}};
  const int64_t model_tensors =
      static_cast<int64_t>(f.model->Params().size());

  for (int threads : {1, 4}) {
    PoolGuard pool(threads);
    SchemeEvaluator ev = f.MakeEvaluator();

    int64_t mat0 = CowCounter("tensor.cow_materializations");
    int64_t mat_bytes0 = CowCounter("tensor.cow_materialized_bytes");
    int64_t shared0 = CowCounter("tensor.shared_bytes");
    ASSERT_TRUE(ev.EvaluateBatch(schemes).ok());
    int64_t mat = CowCounter("tensor.cow_materializations") - mat0;
    int64_t mat_bytes = CowCounter("tensor.cow_materialized_bytes") - mat_bytes0;
    int64_t shared = CowCounter("tensor.shared_bytes") - shared0;

    // Each strategy execution clones a snapshot (O(1)), compresses (rewrites
    // a subset of layers), finetunes (materializes each trained tensor at
    // most once), and caches a clone of the result (O(1) again). A deep
    // copy anywhere in that loop would scale with clone count x model size
    // and blow straight through this per-execution tensor budget.
    int64_t executions = ev.strategy_executions();
    ASSERT_GT(executions, 0);
    EXPECT_LE(mat, executions * (6 * model_tensors + 16))
        << "threads=" << threads << ": speculative evaluation materialized "
        << mat << " buffers over " << executions << " executions";
    // The aliasing the round relied on must dwarf the bytes it copied:
    // most snapshot traffic stays shared.
    EXPECT_GT(shared, mat_bytes)
        << "threads=" << threads << " shared=" << shared
        << " materialized=" << mat_bytes;

    // Warm repeat of the same 16 candidates: everything is served from the
    // point index — not a single buffer may materialize.
    int64_t warm_mat0 = CowCounter("tensor.cow_materializations");
    ASSERT_TRUE(ev.EvaluateBatch(schemes).ok());
    EXPECT_EQ(CowCounter("tensor.cow_materializations"), warm_mat0)
        << "threads=" << threads
        << ": a fully cached round should copy zero bytes";
  }
}

TEST(BatchEvalTest, EmptyBatchIsANoOp) {
  BatchFixture f;
  SchemeEvaluator ev = f.MakeEvaluator();
  Result<BatchEval> got = ev.EvaluateBatch({});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->points.empty());
  EXPECT_EQ(ev.charged_executions(), 0);
  EXPECT_EQ(ev.strategy_executions(), 0);
}

}  // namespace
}  // namespace search
}  // namespace automc
