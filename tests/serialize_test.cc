#include <sstream>

#include "compress/lowrank_apply.h"
#include "compress/methods.h"
#include "compress/surgery.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "search/search_space.h"
#include "nn/trainer.h"

namespace automc {
namespace nn {
namespace {

using tensor::Tensor;

ModelSpec SmallSpec(const std::string& family, int depth) {
  ModelSpec s;
  s.family = family;
  s.depth = depth;
  s.num_classes = 5;
  s.base_width = 4;
  s.in_channels = 3;
  s.image_size = 8;
  return s;
}

std::unique_ptr<Model> MakeModel(const std::string& family, int depth,
                                 uint64_t seed = 3) {
  Rng rng(seed);
  auto model = BuildModel(SmallSpec(family, depth), &rng);
  AUTOMC_CHECK(model.ok());
  return std::move(model).value();
}

void ExpectSameOutputs(Model* a, Model* b) {
  Rng rng(9);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor ya = a->Forward(x, false);
  Tensor yb = b->Forward(x, false);
  ASSERT_EQ(ya.shape(), yb.shape());
  for (int64_t i = 0; i < ya.numel(); ++i) {
    ASSERT_FLOAT_EQ(ya[i], yb[i]) << "output diverged at " << i;
  }
}

class RoundTripTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(RoundTripTest, BitExactThroughStream) {
  auto [family, depth] = GetParam();
  auto model = MakeModel(family, depth);
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->spec().family, family);
  EXPECT_EQ((*loaded)->spec().depth, depth);
  EXPECT_EQ((*loaded)->ParamCount(), model->ParamCount());
  ExpectSameOutputs(model.get(), loaded->get());
}

INSTANTIATE_TEST_SUITE_P(Models, RoundTripTest,
                         ::testing::Values(std::make_pair("resnet", 20),
                                           std::make_pair("resnet", 164),
                                           std::make_pair("vgg", 13),
                                           std::make_pair("vgg", 19)));

TEST(SerializeTest, SurvivesPruningSurgery) {
  auto model = MakeModel("vgg", 13);
  compress::GlobalPruneOptions opts;
  opts.target_param_fraction = 0.3;
  ASSERT_TRUE(
      compress::GlobalStructuredPrune(model.get(), opts, compress::FilterL2)
          .ok());
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->ParamCount(), model->ParamCount());
  ExpectSameOutputs(model.get(), loaded->get());
}

TEST(SerializeTest, SurvivesLowRankSurgery) {
  auto model = MakeModel("resnet", 20);
  ASSERT_TRUE(compress::ApplyLowRankGlobal(model.get(), 0.25,
                                           compress::DecompKind::kHooi)
                  .ok());
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameOutputs(model.get(), loaded->get());
}

TEST(SerializeTest, SurvivesLmaActivations) {
  auto model = MakeModel("resnet", 20);
  LMAActivation proto(5, 2.0f);
  compress::ReplaceAllActivations(model.get(), proto);
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameOutputs(model.get(), loaded->get());
}

TEST(SerializeTest, PreservesWeightBits) {
  auto model = MakeModel("vgg", 13);
  model->set_weight_bits(8);
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->weight_bits(), 8);
  EXPECT_EQ((*loaded)->EffectiveParamCount(), model->EffectiveParamCount());
}

TEST(SerializeTest, PreservesBatchNormRunningStats) {
  // Running stats matter for eval-mode behavior; train a bit so they move.
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 5;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  auto model = MakeModel("vgg", 13);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(model.get(), task.train).ok());

  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok());
  ExpectSameOutputs(model.get(), loaded->get());
}

TEST(SerializeTest, LoadedModelIsTrainable) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 5;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  auto model = MakeModel("resnet", 20);
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  auto loaded = DeserializeModel(&buf);
  ASSERT_TRUE(loaded.ok());
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  Trainer trainer(tc);
  EXPECT_TRUE(trainer.Fit(loaded->get(), task.train).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  auto model = MakeModel("resnet", 20);
  std::string path = ::testing::TempDir() + "/automc_model.bin";
  ASSERT_TRUE(SaveModel(model.get(), path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameOutputs(model.get(), loaded->get());
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream buf;
  buf << "this is not a model";
  EXPECT_FALSE(DeserializeModel(&buf).ok());
}

TEST(SerializeTest, RejectsTruncatedStream) {
  auto model = MakeModel("vgg", 13);
  std::stringstream buf;
  ASSERT_TRUE(SerializeModel(model.get(), &buf).ok());
  std::string bytes = buf.str();
  std::stringstream cut;
  cut << bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(DeserializeModel(&cut).ok());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto loaded = LoadModel("/nonexistent/automc.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// Quantization extension method

TEST(QuantTest, ReducesEffectiveParamsAndKeepsFunction) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 16;
  cfg.test_per_class = 6;
  data::TaskData task = MakeSyntheticTask(cfg);
  ModelSpec spec = SmallSpec("vgg", 13);
  spec.num_classes = 4;
  Rng rng(5);
  auto model = std::move(BuildModel(spec, &rng)).value();
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  Trainer trainer(tc);
  ASSERT_TRUE(trainer.Fit(model.get(), task.train).ok());

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 2;
  ctx.batch_size = 16;

  compress::StrategySpec spec8{"QT", {{"HP1", "0.5"}, {"HP17", "8"}}};
  auto compressor = compress::CreateCompressor(spec8);
  ASSERT_TRUE(compressor.ok());
  compress::CompressionStats stats;
  ASSERT_TRUE((*compressor)->Compress(model.get(), ctx, &stats).ok());
  // 8-bit weights: effective params = raw / 4.
  EXPECT_NEAR(stats.ParamReduction(), 0.75, 0.01);
  EXPECT_EQ(model->weight_bits(), 8);
  EXPECT_GT(stats.acc_after, 0.0);
  // Weight values lie on the quantization grid per tensor (spot check: not
  // more distinct values than 2^8 per parameter tensor).
  for (Param* p : model->Params()) {
    std::set<float> values;
    for (int64_t i = 0; i < p->value.numel(); ++i) values.insert(p->value[i]);
    EXPECT_LE(values.size(), 256u);
  }
}

TEST(QuantTest, RefusesRequantizationToMoreBits) {
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 8;
  cfg.test_per_class = 3;
  data::TaskData task = MakeSyntheticTask(cfg);
  ModelSpec spec = SmallSpec("vgg", 13);
  spec.num_classes = 3;
  Rng rng(6);
  auto model = std::move(BuildModel(spec, &rng)).value();
  model->set_weight_bits(4);

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  compress::StrategySpec spec8{"QT", {{"HP1", "0.1"}, {"HP17", "8"}}};
  auto compressor = compress::CreateCompressor(spec8);
  ASSERT_TRUE(compressor.ok());
  Status st = (*compressor)->Compress(model.get(), ctx, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(QuantTest, ExtensionSpaceIncludesQt) {
  automc::search::SearchSpace ext =
      automc::search::SearchSpace::Table1WithExtensions();
  automc::search::SearchSpace base =
      automc::search::SearchSpace::FullTable1();
  EXPECT_EQ(ext.size(), base.size() + 15);  // 5 HP1 x 3 HP17
  bool found = false;
  for (const auto& s : ext.strategies()) {
    if (s.method == "QT") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QuantTest, RejectsBadBits) {
  compress::StrategySpec bad{"QT", {{"HP1", "0.1"}, {"HP17", "1"}}};
  auto compressor = compress::CreateCompressor(bad);
  ASSERT_TRUE(compressor.ok());  // construction defers validation
  data::SyntheticTaskConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  data::TaskData task = MakeSyntheticTask(cfg);
  ModelSpec spec = SmallSpec("vgg", 13);
  spec.num_classes = 2;
  Rng rng(7);
  auto model = std::move(BuildModel(spec, &rng)).value();
  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  EXPECT_FALSE((*compressor)->Compress(model.get(), ctx, nullptr).ok());
}

}  // namespace
}  // namespace nn
}  // namespace automc
