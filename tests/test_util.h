#ifndef AUTOMC_TESTS_TEST_UTIL_H_
#define AUTOMC_TESTS_TEST_UTIL_H_

#include <atomic>
#include <cmath>
#include <filesystem>
#include <functional>
#include <string>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace automc {
namespace testing {

// RAII temp directory for store/checkpoint artifacts. Every instance gets a
// unique path (pid + per-process counter), so a test that aborted early in a
// previous run can never collide with — or leak state into — this one, and
// the destructor both removes the tree and *asserts* the removal, keeping
// stray store.bin/checkpoint.bin files out of /tmp and the build dir.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    namespace fs = std::filesystem;
    path_ = fs::temp_directory_path() /
            ("automc_test_" + tag + "_" +
             std::to_string(static_cast<long>(::getpid())) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }

  ~ScopedTempDir() {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::remove_all(path_, ec);
    EXPECT_FALSE(ec) << "failed to clean " << path_ << ": " << ec.message();
    EXPECT_FALSE(fs::exists(path_)) << "stray test artifacts left at " << path_;
  }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// Rebuilds the global thread pool for the guard's lifetime (and restores the
// serial pool afterwards). Tests use it to compare results across thread
// counts; callers must not have a ParallelFor in flight.
class PoolGuard {
 public:
  explicit PoolGuard(int threads) { ThreadPool::ResetGlobal(threads); }
  ~PoolGuard() { ThreadPool::ResetGlobal(1); }
};

// Central-difference numeric gradient of a scalar function with respect to
// the entries of `x`, compared elementwise against `analytic`.
// `f` must be a pure function of the current contents of *x.
inline void ExpectGradientsMatch(tensor::Tensor* x,
                                 const std::function<double()>& f,
                                 const tensor::Tensor& analytic,
                                 double eps = 1e-3, double tol = 2e-2) {
  ASSERT_EQ(x->numel(), analytic.numel());
  for (int64_t i = 0; i < x->numel(); ++i) {
    float orig = (*x)[i];
    (*x)[i] = orig + static_cast<float>(eps);
    double fp = f();
    (*x)[i] = orig - static_cast<float>(eps);
    double fm = f();
    (*x)[i] = orig;
    double numeric = (fp - fm) / (2.0 * eps);
    double a = analytic[i];
    double scale = std::max({1.0, std::fabs(numeric), std::fabs(a)});
    EXPECT_NEAR(numeric, a, tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

// Deterministic weights used to reduce a tensor to a scalar "loss" so both
// the analytic backward pass and the numeric differentiation see the same
// objective.
inline tensor::Tensor ScalarizeWeights(const std::vector<int64_t>& shape,
                                       uint64_t seed) {
  Rng rng(seed);
  return tensor::Tensor::Randn(shape, &rng, 1.0f);
}

inline double Scalarize(const tensor::Tensor& y, const tensor::Tensor& w) {
  double s = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * w[i];
  return s;
}

}  // namespace testing
}  // namespace automc

#endif  // AUTOMC_TESTS_TEST_UTIL_H_
