#ifndef AUTOMC_TESTS_TEST_UTIL_H_
#define AUTOMC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace automc {
namespace testing {

// Central-difference numeric gradient of a scalar function with respect to
// the entries of `x`, compared elementwise against `analytic`.
// `f` must be a pure function of the current contents of *x.
inline void ExpectGradientsMatch(tensor::Tensor* x,
                                 const std::function<double()>& f,
                                 const tensor::Tensor& analytic,
                                 double eps = 1e-3, double tol = 2e-2) {
  ASSERT_EQ(x->numel(), analytic.numel());
  for (int64_t i = 0; i < x->numel(); ++i) {
    float orig = (*x)[i];
    (*x)[i] = orig + static_cast<float>(eps);
    double fp = f();
    (*x)[i] = orig - static_cast<float>(eps);
    double fm = f();
    (*x)[i] = orig;
    double numeric = (fp - fm) / (2.0 * eps);
    double a = analytic[i];
    double scale = std::max({1.0, std::fabs(numeric), std::fabs(a)});
    EXPECT_NEAR(numeric, a, tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

// Deterministic weights used to reduce a tensor to a scalar "loss" so both
// the analytic backward pass and the numeric differentiation see the same
// objective.
inline tensor::Tensor ScalarizeWeights(const std::vector<int64_t>& shape,
                                       uint64_t seed) {
  Rng rng(seed);
  return tensor::Tensor::Randn(shape, &rng, 1.0f);
}

inline double Scalarize(const tensor::Tensor& y, const tensor::Tensor& w) {
  double s = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * w[i];
  return s;
}

}  // namespace testing
}  // namespace automc

#endif  // AUTOMC_TESTS_TEST_UTIL_H_
