// Metrics/trace subsystem: counter/gauge/histogram semantics, scoped-timer
// nesting, JSON export round-trip, and disabled-mode no-op behaviour.
#include "common/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/trace.h"
#include "gtest/gtest.h"

namespace automc {
namespace {

using metrics::Histogram;
using metrics::MetricsRegistry;

// Pulls the numeric value following `"key": ` out of a JSON document. Good
// enough for round-tripping our own flat export without a JSON library.
double ExtractNumber(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return -1e300;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    trace::ClearRoots();
    metrics::SetEnabled(true);
    trace::SetEnabled(false);
  }
  void TearDown() override {
    MetricsRegistry::Global().Reset();
    trace::ClearRoots();
    metrics::SetEnabled(true);
    trace::SetEnabled(false);
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  metrics::Count("t.counter");
  metrics::Count("t.counter", 4);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("t.counter").value(), 5);
  // Same name resolves to the same instance.
  MetricsRegistry::Global().GetCounter("t.counter").Add(2);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("t.counter").value(), 7);
}

TEST_F(MetricsTest, GaugeLastValueWins) {
  metrics::SetGauge("t.gauge", 1.5);
  metrics::SetGauge("t.gauge", -2.25);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().GetGauge("t.gauge").value(),
                   -2.25);
}

TEST_F(MetricsTest, HistogramBucketSemantics) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.hist", {1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (inclusive upper edge)
  h.Observe(5.0);    // <= 10
  h.Observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  std::vector<int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
}

TEST_F(MetricsTest, HistogramDefaultBoundsCoverMillisecondRange) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.default");
  ASSERT_FALSE(h.bounds().empty());
  EXPECT_LE(h.bounds().front(), 1e-3);
  EXPECT_GE(h.bounds().back(), 1e4);
  h.Observe(0.42);
  EXPECT_EQ(h.count(), 1);
}

TEST_F(MetricsTest, ScopedTimerFeedsHistogram) {
  {
    trace::ScopedTimer t("t.timer_ms");
    EXPECT_GE(t.ElapsedMs(), 0.0);
  }
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.timer_ms");
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.sum(), 0.0);
}

TEST_F(MetricsTest, ScopedTimerNestingBuildsTraceTree) {
  trace::SetEnabled(true);
  {
    trace::ScopedTimer outer("t.outer_ms");
    {
      trace::ScopedTimer inner("t.inner_ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    { trace::ScopedTimer inner2("t.inner2_ms"); }
  }
  std::vector<trace::Span> roots = trace::Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "t.outer_ms");
  ASSERT_EQ(roots[0].children.size(), 2u);
  EXPECT_EQ(roots[0].children[0].name, "t.inner_ms");
  EXPECT_EQ(roots[0].children[1].name, "t.inner2_ms");
  EXPECT_GE(roots[0].ms, roots[0].children[0].ms);
  EXPECT_GT(roots[0].children[0].ms, 0.0);
  // Trace JSON mirrors the tree.
  std::string json = trace::ToJson();
  EXPECT_NE(json.find("t.outer_ms"), std::string::npos);
  EXPECT_NE(json.find("t.inner_ms"), std::string::npos);
}

TEST_F(MetricsTest, JsonExportRoundTrip) {
  metrics::Count("rt.executions", 42);
  metrics::SetGauge("rt.gauge", 3.5);
  Histogram& h = MetricsRegistry::Global().GetHistogram("rt.hist", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);

  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "rt.executions"), 42.0);
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "rt.gauge"), 3.5);
  // Histogram summary fields appear after the histogram name.
  size_t hist_pos = json.find("\"rt.hist\"");
  ASSERT_NE(hist_pos, std::string::npos);
  std::string hist_part = json.substr(hist_pos);
  EXPECT_DOUBLE_EQ(ExtractNumber(hist_part, "count"), 3.0);
  EXPECT_DOUBLE_EQ(ExtractNumber(hist_part, "sum"), 11.0);
  // The export prints 12 significant digits, not full double precision.
  EXPECT_NEAR(ExtractNumber(hist_part, "mean"), 11.0 / 3.0, 1e-9);

  // File round-trip: WriteJson output re-reads byte-identical to ToJson.
  std::string path = ::testing::TempDir() + "/automc_metrics_rt.json";
  ASSERT_TRUE(MetricsRegistry::Global().WriteJson(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), MetricsRegistry::Global().ToJson());
  std::remove(path.c_str());
}

TEST_F(MetricsTest, DumpIfConfiguredHonorsEnv) {
  metrics::Count("dump.counter", 7);
  // Unset: nothing written.
  unsetenv("AUTOMC_METRICS_OUT");
  EXPECT_FALSE(MetricsRegistry::Global().DumpIfConfigured());
  // Set: file appears with the counter in it.
  std::string path = ::testing::TempDir() + "/automc_metrics_dump.json";
  setenv("AUTOMC_METRICS_OUT", path.c_str(), 1);
  EXPECT_TRUE(MetricsRegistry::Global().DumpIfConfigured());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_DOUBLE_EQ(ExtractNumber(buf.str(), "dump.counter"), 7.0);
  unsetenv("AUTOMC_METRICS_OUT");
  std::remove(path.c_str());
}

TEST_F(MetricsTest, DisabledModeIsNoOp) {
  metrics::SetEnabled(false);
  EXPECT_FALSE(metrics::Enabled());
  metrics::Count("off.counter", 5);
  metrics::SetGauge("off.gauge", 1.0);
  metrics::Observe("off.hist", 1.0);
  { trace::ScopedTimer t("off.timer_ms"); }
  metrics::SetEnabled(true);
  // Nothing was recorded while disabled: the names exist only if someone
  // created them, and the export must not mention them.
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_EQ(json.find("off.counter"), std::string::npos);
  EXPECT_EQ(json.find("off.gauge"), std::string::npos);
  EXPECT_EQ(json.find("off.hist"), std::string::npos);
  EXPECT_EQ(json.find("off.timer_ms"), std::string::npos);
}

TEST_F(MetricsTest, ResetDropsEverything) {
  metrics::Count("gone.counter");
  metrics::Observe("gone.hist", 1.0);
  MetricsRegistry::Global().Reset();
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_EQ(json.find("gone.counter"), std::string::npos);
  EXPECT_EQ(json.find("gone.hist"), std::string::npos);
}

}  // namespace
}  // namespace automc
