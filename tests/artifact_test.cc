// The content-addressed artifact registry: SHA-256 correctness, chunk
// round-trips, real (metric-pinned) dedup across fine-tuned variants,
// manifest-driven GC that only reclaims unreferenced chunks, corruption
// detection (a flipped byte is a typed kDataLoss, never silently served),
// index-loss degradation, cross-instance visibility, and publisher/reader
// concurrency (the TSan target).
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "artifact/chunk_store.h"
#include "artifact/manifest.h"
#include "common/metrics.h"
#include "common/sha256.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace automc {
namespace {

using artifact::ChunkStore;
using artifact::Manifest;
using artifact::Provenance;
using artifact::Registry;
using testing::ScopedTempDir;

int64_t MetricValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).value();
}

// Deterministic pseudo-random bytes — incompressible, so distinct seeds
// share no chunks by accident.
std::string RandomBlob(size_t n, uint64_t seed) {
  std::string blob(n, '\0');
  uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (char& c : blob) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    c = static_cast<char>(x >> 56);
  }
  return blob;
}

Registry::Options SmallChunks(const std::string& dir) {
  Registry::Options opts;
  opts.dir = dir;
  opts.chunk_size = 4096;  // the clamp floor: many chunks per test blob
  return opts;
}

TEST(Sha256Test, NistVectors) {
  EXPECT_EQ(
      HexDigest(Sha256::Hash("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HexDigest(Sha256::Hash("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      HexDigest(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Incremental updates across block boundaries equal the one-shot hash.
  const std::string big = RandomBlob(200000, 7);
  Sha256 hasher;
  for (size_t i = 0; i < big.size(); i += 777) {
    hasher.Update(big.data() + i, std::min<size_t>(777, big.size() - i));
  }
  EXPECT_EQ(hasher.Finish(), Sha256::Hash(big));
}

TEST(ArtifactNameTest, ValidatesPathSafety) {
  EXPECT_TRUE(artifact::ValidArtifactName("job-17"));
  EXPECT_TRUE(artifact::ValidArtifactName("resnet20_c10.v2"));
  EXPECT_FALSE(artifact::ValidArtifactName(""));
  EXPECT_FALSE(artifact::ValidArtifactName(".hidden"));
  EXPECT_FALSE(artifact::ValidArtifactName("../escape"));
  EXPECT_FALSE(artifact::ValidArtifactName("a/b"));
  EXPECT_FALSE(artifact::ValidArtifactName("sp ace"));
  EXPECT_FALSE(artifact::ValidArtifactName(std::string(129, 'a')));
}

TEST(ManifestTest, CodecRoundTripsAndRejectsTruncation) {
  Manifest m;
  m.name = "job-3";
  m.total_size = 123456;
  m.blob_digest = Sha256::Hash("whole blob");
  m.chunks = {Sha256::Hash("c0"), Sha256::Hash("c1")};
  m.prov.job_id = 3;
  m.prov.scheme = "2,7,1";
  m.prov.summary = "vgg-13 tiny";
  m.prov.acc = 0.75;
  m.prov.params = 99;
  m.prov.flops = 1234;

  const std::string bytes = artifact::EncodeManifest(m);
  auto back = artifact::DecodeManifest(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, m.name);
  EXPECT_EQ(back->total_size, m.total_size);
  EXPECT_EQ(back->blob_digest, m.blob_digest);
  EXPECT_EQ(back->chunks, m.chunks);
  EXPECT_EQ(back->prov.scheme, m.prov.scheme);
  EXPECT_EQ(back->prov.acc, m.prov.acc);

  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(artifact::DecodeManifest(bytes.substr(0, cut)).ok())
        << "truncation at " << cut << " decoded";
  }
}

TEST(ChunkStoreTest, PutGetRoundTripAcrossChunksAndPacks) {
  ScopedTempDir dir("chunkstore_rt");
  ChunkStore::Options opts;
  opts.dir = dir.File("store");
  opts.chunk_size = 4096;
  opts.pack_rollover = 1u << 20;  // force several packs for a big blob
  auto store = ChunkStore::Open(opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const std::string blob = RandomBlob((3u << 20) + 1234, 42);  // ~3 MiB
  auto put = (*store)->PutBlob(blob);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  ASSERT_EQ(put->digests.size(), (blob.size() + 4095) / 4096);
  EXPECT_EQ(put->new_bytes, blob.size());
  EXPECT_EQ(put->dup_chunks, 0u);

  std::string reassembled;
  for (const Sha256Digest& digest : put->digests) {
    auto chunk = (*store)->GetChunk(digest);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    EXPECT_EQ(Sha256::Hash(*chunk), digest);
    reassembled += *chunk;
  }
  EXPECT_EQ(reassembled, blob);
  EXPECT_EQ((*store)->KnownChunks(), put->digests.size());

  // Unknown digests are NotFound, not DataLoss.
  EXPECT_EQ((*store)->GetChunk(Sha256::Hash("nope")).status().code(),
            StatusCode::kNotFound);

  // A second identical put stores nothing new.
  auto again = (*store)->PutBlob(blob);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->new_chunks, 0u);
  EXPECT_EQ(again->dup_bytes, blob.size());
}

TEST(ChunkStoreTest, ReopenedStoreServesExistingChunks) {
  ScopedTempDir dir("chunkstore_reopen");
  ChunkStore::Options opts;
  opts.dir = dir.File("store");
  opts.chunk_size = 4096;
  const std::string blob = RandomBlob(100000, 5);
  std::vector<Sha256Digest> digests;
  {
    auto store = ChunkStore::Open(opts);
    ASSERT_TRUE(store.ok());
    auto put = (*store)->PutBlob(blob);
    ASSERT_TRUE(put.ok());
    digests = put->digests;
  }
  auto store = ChunkStore::Open(opts);
  ASSERT_TRUE(store.ok());
  for (const Sha256Digest& digest : digests) {
    auto chunk = (*store)->GetChunk(digest);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  }
}

TEST(RegistryTest, PublishFetchRoundTripWithProvenance) {
  ScopedTempDir dir("registry_rt");
  auto registry = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();

  const std::string blob = RandomBlob(300000, 9);
  Provenance prov;
  prov.job_id = 12;
  prov.scheme = "1,4";
  prov.summary = "test model";
  prov.acc = 0.5;
  auto published = (*registry)->Publish("job-12", blob, prov);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published->total_size, blob.size());
  EXPECT_EQ(published->blob_digest, Sha256::Hash(blob));

  auto fetched = (*registry)->FetchBlob("job-12");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, blob);

  auto manifest = (*registry)->GetManifest("job-12");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->prov.job_id, 12u);
  EXPECT_EQ(manifest->prov.scheme, "1,4");

  EXPECT_EQ((*registry)->FetchBlob("absent").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE((*registry)->Publish("../escape", blob, prov).ok());

  auto listed = (*registry)->List();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].name, "job-12");
}

TEST(RegistryTest, FineTunedVariantsDedupAgainstTheBase) {
  metrics::MetricsRegistry::Global().Reset();
  ScopedTempDir dir("registry_dedup");
  auto registry = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(registry.ok());

  // A base model and two "fine-tuned" variants: same bytes except the last
  // chunk-and-a-half. Chunking is offset-aligned, so all full shared-prefix
  // chunks dedup.
  const std::string base = RandomBlob(64 * 4096, 11);
  std::string variant1 = base, variant2 = base;
  for (size_t i = base.size() - 6000; i < base.size(); ++i) {
    variant1[i] = static_cast<char>(variant1[i] ^ 0x5a);
    variant2[i] = static_cast<char>(variant2[i] ^ 0xa5);
  }

  ASSERT_TRUE((*registry)->Publish("base", base, {}).ok());
  const int64_t dedup_before = MetricValue("artifact.dedup_bytes");
  auto put1 = (*registry)->Publish("variant1", variant1, {});
  ASSERT_TRUE(put1.ok());
  auto put2 = (*registry)->Publish("variant2", variant2, {});
  ASSERT_TRUE(put2.ok());

  // 64 chunks each, the last 2 touched: >= 62 chunks' worth of dedup per
  // variant, pinned through the metric the operations runbook watches.
  const int64_t dedup_after = MetricValue("artifact.dedup_bytes");
  EXPECT_GE(dedup_after - dedup_before, 2 * 62 * 4096)
      << "variants re-stored chunks the base already holds";

  // Dedup must not blur content: all three fetch back byte-exact.
  EXPECT_EQ(*(*registry)->FetchBlob("base"), base);
  EXPECT_EQ(*(*registry)->FetchBlob("variant1"), variant1);
  EXPECT_EQ(*(*registry)->FetchBlob("variant2"), variant2);
}

TEST(RegistryTest, GcReclaimsOnlyUnreferencedChunks) {
  ScopedTempDir dir("registry_gc");
  auto registry = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(registry.ok());

  // K variants sharing one 32-chunk base; each adds a unique 8-chunk tail.
  const std::string base = RandomBlob(32 * 4096, 21);
  constexpr int kVariants = 4;
  std::vector<std::string> blobs;
  for (int i = 0; i < kVariants; ++i) {
    blobs.push_back(base + RandomBlob(8 * 4096, 100 + i));
    ASSERT_TRUE(
        (*registry)->Publish("v" + std::to_string(i), blobs.back(), {}).ok());
  }

  // Nothing is garbage while every manifest lives.
  auto none = (*registry)->CollectGarbage();
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_EQ(*none, 0u);

  // Delete K-1 manifests: exactly their unique tails become garbage.
  for (int i = 0; i < kVariants - 1; ++i) {
    ASSERT_TRUE((*registry)->Remove("v" + std::to_string(i)).ok());
  }
  auto reclaimed = (*registry)->CollectGarbage();
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  EXPECT_EQ(*reclaimed, (kVariants - 1) * 8u * 4096u)
      << "GC must reclaim the dead tails and nothing else";

  // The survivor (base chunks included) is untouched.
  auto survivor = (*registry)->FetchBlob("v" + std::to_string(kVariants - 1));
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  EXPECT_EQ(*survivor, blobs.back());
  EXPECT_EQ((*registry)->chunks()->KnownChunks(), 32u + 8u);
}

// Flip one byte inside a stored pack frame: the fetch must fail with a
// typed kDataLoss (and quarantine the chunk), never return altered bytes.
TEST(RegistryTest, FlippedByteIsDataLossNeverServed) {
  metrics::MetricsRegistry::Global().Reset();
  ScopedTempDir dir("registry_flip");
  const std::string reg_dir = dir.File("reg");
  auto registry = Registry::Open(SmallChunks(reg_dir));
  ASSERT_TRUE(registry.ok());
  const std::string blob = RandomBlob(20 * 4096, 33);
  ASSERT_TRUE((*registry)->Publish("victim", blob, {}).ok());

  // Corrupt a payload byte in the middle of the single pack file.
  const std::string pack = reg_dir + "/packs/pack-000001.bin";
  std::fstream f(pack, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(5 * 4096 + 200, std::ios::beg);
  char byte = 0;
  f.seekg(5 * 4096 + 200, std::ios::beg);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xff);
  f.seekp(5 * 4096 + 200, std::ios::beg);
  f.write(&byte, 1);
  f.close();

  auto fetched = (*registry)->FetchBlob("victim");
  ASSERT_FALSE(fetched.ok()) << "corrupt blob was served";
  EXPECT_EQ(fetched.status().code(), StatusCode::kDataLoss);
  EXPECT_GE(MetricValue("artifact.quarantined"), 1);
  // The quarantine log names the bad chunk for the operator.
  struct stat st{};
  EXPECT_EQ(::stat((reg_dir + "/quarantine.log").c_str(), &st), 0);
  EXPECT_GT(st.st_size, 0);

  // Repeated fetches stay failed (no flapping), still typed.
  EXPECT_EQ((*registry)->FetchBlob("victim").status().code(),
            StatusCode::kDataLoss);
}

TEST(RegistryTest, CorruptLiveChunkAbortsGcUntouched) {
  ScopedTempDir dir("registry_gc_abort");
  const std::string reg_dir = dir.File("reg");
  auto registry = Registry::Open(SmallChunks(reg_dir));
  ASSERT_TRUE(registry.ok());
  const std::string blob = RandomBlob(10 * 4096, 44);
  ASSERT_TRUE((*registry)->Publish("live", blob, {}).ok());

  std::fstream f(reg_dir + "/packs/pack-000001.bin",
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(100, std::ios::beg);
  f.write("\xde", 1);
  f.close();

  // GC re-verifies live chunks on the way through; a corrupt one must
  // abort rather than propagate garbage into a fresh pack.
  auto gc = (*registry)->CollectGarbage();
  ASSERT_FALSE(gc.ok());
  EXPECT_EQ(gc.status().code(), StatusCode::kDataLoss);
}

TEST(RegistryTest, LostIndexDegradesToPackReplay) {
  metrics::MetricsRegistry::Global().Reset();
  ScopedTempDir dir("registry_idx");
  const std::string reg_dir = dir.File("reg");
  const std::string blob = RandomBlob(30 * 4096, 55);
  {
    auto registry = Registry::Open(SmallChunks(reg_dir));
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE((*registry)->Publish("model", blob, {}).ok());
  }
  // Truncate the published index to garbage; packs are the ground truth.
  std::ofstream(reg_dir + "/chunks.idx", std::ios::binary | std::ios::trunc)
      << "not an index";
  auto registry = Registry::Open(SmallChunks(reg_dir));
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  EXPECT_GE(MetricValue("artifact.index_rebuilds"), 1);
  auto fetched = (*registry)->FetchBlob("model");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, blob);
  // The next publish re-publishes a healthy index.
  ASSERT_TRUE((*registry)->Publish("model2", RandomBlob(4096, 56), {}).ok());
  auto reopened = Registry::Open(SmallChunks(reg_dir));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->FetchBlob("model"), blob);
}

TEST(RegistryTest, SecondInstanceSeesCrossProcessPublishes) {
  ScopedTempDir dir("registry_shared");
  auto writer = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(writer.ok());
  auto reader = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(reader.ok());

  // Publish through one instance after the other already opened: the reader
  // must pick up the new index via its miss-refresh path, the same contract
  // fleet workers and the coordinator rely on for the shared dir.
  const std::string blob = RandomBlob(50000, 66);
  ASSERT_TRUE((*writer)->Publish("late", blob, {}).ok());
  auto fetched = (*reader)->FetchBlob("late");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, blob);
}

// The TSan target: concurrent publishers (distinct and overlapping blobs)
// and readers through one shared Registry — the exact sharing shape of a
// JobManager publishing from job threads while the event loop streams.
TEST(RegistryTest, ConcurrentPublishersAndReaders) {
  ScopedTempDir dir("registry_mt");
  auto registry = Registry::Open(SmallChunks(dir.File("reg")));
  ASSERT_TRUE(registry.ok());
  Registry* reg = registry->get();

  const std::string shared_base = RandomBlob(16 * 4096, 77);
  ASSERT_TRUE(reg->Publish("base", shared_base, {}).ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([reg, &shared_base, &failed, w] {
      for (int i = 0; i < 6; ++i) {
        const std::string name =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        const std::string blob =
            shared_base + RandomBlob(4 * 4096, 1000 + w * 100 + i);
        if (!reg->Publish(name, blob, {}).ok()) failed = true;
        auto back = reg->FetchBlob(name);
        if (!back.ok() || *back != blob) failed = true;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([reg, &shared_base, &failed] {
      for (int i = 0; i < 20; ++i) {
        auto back = reg->FetchBlob("base");
        if (!back.ok() || *back != shared_base) failed = true;
        reg->List();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(reg->List().size(), 1u + kWriters * 6u);
}

}  // namespace
}  // namespace automc
