// Unit tests for the shared execution backend (common/thread_pool.h):
// chunking arithmetic, edge cases, exception propagation, nesting, and the
// determinism contract (chunk boundaries independent of the thread count).
#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace automc {
namespace {

TEST(ThreadPoolTest, NumChunksMatchesCeilDiv) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 4), 0);
  EXPECT_EQ(ThreadPool::NumChunks(1, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(4, 4), 1);
  EXPECT_EQ(ThreadPool::NumChunks(5, 4), 2);
  EXPECT_EQ(ThreadPool::NumChunks(8, 4), 2);
  EXPECT_EQ(ThreadPool::NumChunks(9, 4), 3);
  // grain < 1 behaves as 1.
  EXPECT_EQ(ThreadPool::NumChunks(7, 0), 7);
  EXPECT_EQ(ThreadPool::NumChunks(7, -3), 7);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t n : {1, 3, 17, 100, 1000}) {
    for (int64_t grain : {1, 2, 7, 64, 5000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
      pool.ParallelFor(n, grain, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkIndicesAreDeterministic) {
  // The (begin, end, chunk) triples must be a function of (n, grain) only.
  auto collect = [](ThreadPool& pool, int64_t n, int64_t grain) {
    std::vector<std::pair<int64_t, int64_t>> spans(
        static_cast<size_t>(ThreadPool::NumChunks(n, grain)));
    pool.ParallelFor(n, grain, [&](int64_t b, int64_t e, int64_t chunk) {
      spans[static_cast<size_t>(chunk)] = {b, e};
    });
    return spans;
  };
  ThreadPool serial(1);
  ThreadPool quad(4);
  for (int64_t n : {1, 13, 64, 257}) {
    for (int64_t grain : {1, 8, 100}) {
      EXPECT_EQ(collect(serial, n, grain), collect(quad, n, grain))
          << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  // Per-chunk partials combined in ascending chunk order: the canonical
  // deterministic-reduction pattern used by the gradient code.
  const int64_t n = 10000, grain = 64;
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] = 1.0 / static_cast<double>(i + 1);
  }
  auto run = [&](ThreadPool& pool) {
    std::vector<double> partial(
        static_cast<size_t>(ThreadPool::NumChunks(n, grain)), 0.0);
    pool.ParallelFor(n, grain, [&](int64_t b, int64_t e, int64_t chunk) {
      double s = 0.0;
      for (int64_t i = b; i < e; ++i) s += values[static_cast<size_t>(i)];
      partial[static_cast<size_t>(chunk)] = s;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  ThreadPool serial(1);
  ThreadPool quad(4);
  // Bitwise equality, not near-equality: same chunks, same order.
  EXPECT_EQ(run(serial), run(quad));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, 1,
                       [&](int64_t b, int64_t) {
                         if (b == 42) throw std::runtime_error("chunk failed");
                       }),
      std::runtime_error);
  // The pool must survive a failed loop and run subsequent work.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    // Nested loop must complete inline without deadlock.
    pool.ParallelFor(4, 1,
                     [&](int64_t b, int64_t e) {
                       inner_total.fetch_add(static_cast<int>(e - b));
                     });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, SerialPoolRunsCallerInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(10, 1, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, ResetGlobalChangesThreadCount) {
  ThreadPool::ResetGlobal(3);
  EXPECT_EQ(ThreadPool::Global().threads(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(100, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);
  ThreadPool::ResetGlobal(1);
  EXPECT_EQ(ThreadPool::Global().threads(), 1);
}

}  // namespace
}  // namespace automc
