// Scheme-parser coverage: the textual strategy syntax round-trips every
// grid point of the search space, and malformed input fails with a Status
// instead of a misparse (the CLI --apply path and saved-scheme files both
// feed user-controlled text through this parser).
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "compress/scheme_parser.h"
#include "gtest/gtest.h"
#include "search/search_space.h"

namespace automc {
namespace {

using compress::ParseScheme;
using compress::ParseStrategy;
using compress::StrategySpec;

TEST(SchemeParserTest, RoundTripsEveryGridStrategy) {
  // Table1WithExtensions is a superset of FullTable1, so this walks every
  // method's full hyperparameter grid, QT included.
  search::SearchSpace space = search::SearchSpace::Table1WithExtensions();
  ASSERT_GT(space.size(), 0u);
  for (size_t i = 0; i < space.size(); ++i) {
    const StrategySpec& original = space.strategy(i);
    auto parsed = ParseStrategy(original.ToString());
    ASSERT_TRUE(parsed.ok())
        << original.ToString() << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->method, original.method);
    EXPECT_EQ(parsed->hp, original.hp) << original.ToString();
  }
}

TEST(SchemeParserTest, RoundTripsMultiStepSchemes) {
  search::SearchSpace space = search::SearchSpace::FullTable1();
  ASSERT_GE(space.size(), 3u);
  // Stitch grid strategies into 3-step schemes covering the whole space.
  for (size_t i = 0; i + 2 < space.size(); i += 3) {
    std::vector<StrategySpec> scheme = {space.strategy(i),
                                        space.strategy(i + 1),
                                        space.strategy(i + 2)};
    const std::string text = compress::SchemeToString(scheme);
    auto parsed = ParseScheme(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), scheme.size());
    for (size_t j = 0; j < scheme.size(); ++j) {
      EXPECT_EQ((*parsed)[j].method, scheme[j].method);
      EXPECT_EQ((*parsed)[j].hp, scheme[j].hp);
    }
  }
}

TEST(SchemeParserTest, AcceptsWhitespaceAndEmptyHpList) {
  auto parsed = ParseStrategy("  NS ( HP1 = 0.3 , HP2 = 0.2 )  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->method, "NS");
  EXPECT_EQ(parsed->hp.at("HP1"), "0.3");
  EXPECT_EQ(parsed->hp.at("HP2"), "0.2");

  auto no_hp = ParseStrategy("QT()");
  ASSERT_TRUE(no_hp.ok());
  EXPECT_EQ(no_hp->method, "QT");
  EXPECT_TRUE(no_hp->hp.empty());
}

TEST(SchemeParserTest, RejectsMalformedStrategies) {
  const char* kBad[] = {
      "",                    // empty
      "NS",                  // no parens
      "NS(",                 // unterminated
      "NS(HP1=0.3",          // missing close paren
      "NS HP1=0.3)",         // missing open paren
      "(HP1=0.3)",           // missing method name
      "NS(HP1)",             // missing =value
      "NS(HP1=0.3,HP1=0.4)", // duplicate key
      "NS(HP 1=0.3)",        // space inside key
      "N S(HP1=0.3)",        // space inside method
      "NS(HP1=0.3;HP2=0.2)", // wrong separator
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseStrategy(text).ok()) << "accepted: '" << text << "'";
  }
}

TEST(SchemeParserTest, RejectsMalformedSchemes) {
  const char* kBad[] = {
      "",                          // empty scheme
      "   ",                       // whitespace only
      "NS(HP1=0.3) ->",            // trailing arrow
      "-> NS(HP1=0.3)",            // leading arrow
      "NS(HP1=0.3) -> -> SFP()",   // double arrow
      "NS(HP1=0.3) , SFP(HP2=1)",  // wrong separator
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseScheme(text).ok()) << "accepted: '" << text << "'";
  }
}

TEST(SchemeParserTest, UnknownMethodFailsAtCreate) {
  // The parser is purely lexical; unknown names surface in CreateCompressor.
  auto parsed = ParseStrategy("Bogus(HP1=0.3)");
  ASSERT_TRUE(parsed.ok());
  auto compressor = compress::CreateCompressor(*parsed);
  EXPECT_FALSE(compressor.ok());
  EXPECT_NE(compressor.status().ToString().find("Bogus"), std::string::npos);
}

TEST(SchemeParserTest, OutOfGridHyperparametersFailAtCreate) {
  search::SearchSpace space = search::SearchSpace::FullTable1();
  // Every grid strategy instantiates cleanly...
  for (size_t i = 0; i < space.size(); ++i) {
    EXPECT_TRUE(compress::CreateCompressor(space.strategy(i)).ok())
        << space.strategy(i).ToString();
  }
  // ...but a numeric hp that is not a number, a missing hp, and a
  // non-integral count are all rejected.
  StrategySpec bad = space.strategy(0);
  ASSERT_FALSE(bad.hp.empty());
  const std::string first_key = bad.hp.begin()->first;
  bad.hp[first_key] = "not_a_number";
  EXPECT_FALSE(compress::CreateCompressor(bad).ok());

  StrategySpec missing = space.strategy(0);
  missing.hp.erase(missing.hp.begin());
  EXPECT_FALSE(compress::CreateCompressor(missing).ok());

  auto lma = ParseStrategy("LMA(HP1=0.3,HP2=0.2,HP3=2.5,HP4=2,HP5=0.5)");
  ASSERT_TRUE(lma.ok());
  EXPECT_FALSE(compress::CreateCompressor(*lma).ok())
      << "non-integral segment count accepted";
}

}  // namespace
}  // namespace automc
