#include "compress/compressor.h"

#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "compress/methods.h"

namespace automc {
namespace compress {

namespace {

#ifndef AUTOMC_DISABLE_METRICS
// Wraps a concrete compressor so every Compress() call reports a
// per-method invocation counter ("compress.<M>.invocations") and a
// wall-time histogram ("compress.<M>.ms"). Compiled out entirely when
// metrics are disabled at build time.
class InstrumentedCompressor : public Compressor {
 public:
  explicit InstrumentedCompressor(std::unique_ptr<Compressor> inner)
      : inner_(std::move(inner)),
        counter_name_("compress." + inner_->MethodName() + ".invocations"),
        timer_name_("compress." + inner_->MethodName() + ".ms") {}

  std::string MethodName() const override { return inner_->MethodName(); }

  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override {
    metrics::Count(counter_name_);
    trace::ScopedTimer timer(timer_name_);
    return inner_->Compress(model, ctx, stats);
  }

 private:
  std::unique_ptr<Compressor> inner_;
  std::string counter_name_;
  std::string timer_name_;
};
#endif  // AUTOMC_DISABLE_METRICS

Result<std::unique_ptr<Compressor>> MakeLma(const StrategySpec& s) {
  LmaConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.segments, GetHpInt(s, "HP3"));
  AUTOMC_ASSIGN_OR_RETURN(c.temperature, GetHpDouble(s, "HP4"));
  AUTOMC_ASSIGN_OR_RETURN(c.alpha, GetHpDouble(s, "HP5"));
  return std::unique_ptr<Compressor>(new LmaCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeLegr(const StrategySpec& s) {
  LegrConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.max_prune_ratio, GetHpDouble(s, "HP6"));
  AUTOMC_ASSIGN_OR_RETURN(c.evolution_frac, GetHpDouble(s, "HP7"));
  AUTOMC_ASSIGN_OR_RETURN(c.criterion, GetHpString(s, "HP8"));
  return std::unique_ptr<Compressor>(new LegrCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeNs(const StrategySpec& s) {
  NsConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.max_prune_ratio, GetHpDouble(s, "HP6"));
  return std::unique_ptr<Compressor>(new NsCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeSfp(const StrategySpec& s) {
  SfpConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.backprop_frac, GetHpDouble(s, "HP9"));
  AUTOMC_ASSIGN_OR_RETURN(c.update_frequency, GetHpInt(s, "HP10"));
  return std::unique_ptr<Compressor>(new SfpCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeHos(const StrategySpec& s) {
  HosConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.global_criterion, GetHpString(s, "HP11"));
  AUTOMC_ASSIGN_OR_RETURN(c.stat_criterion, GetHpString(s, "HP12"));
  AUTOMC_ASSIGN_OR_RETURN(c.optim_frac, GetHpDouble(s, "HP13"));
  AUTOMC_ASSIGN_OR_RETURN(c.mse_factor, GetHpDouble(s, "HP14"));
  return std::unique_ptr<Compressor>(new HosCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeQuant(const StrategySpec& s) {
  QuantConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.bits, GetHpInt(s, "HP17"));
  return std::unique_ptr<Compressor>(new QuantCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeLfb(const StrategySpec& s) {
  LfbConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.aux_factor, GetHpDouble(s, "HP15"));
  AUTOMC_ASSIGN_OR_RETURN(c.aux_loss, GetHpString(s, "HP16"));
  return std::unique_ptr<Compressor>(new LfbCompressor(c));
}

}  // namespace

Result<std::unique_ptr<Compressor>> CreateCompressor(const StrategySpec& spec) {
  Result<std::unique_ptr<Compressor>> made =
      Status::NotFound("unknown compression method: " + spec.method);
  if (spec.method == "LMA") made = MakeLma(spec);
  else if (spec.method == "LeGR") made = MakeLegr(spec);
  else if (spec.method == "NS") made = MakeNs(spec);
  else if (spec.method == "SFP") made = MakeSfp(spec);
  else if (spec.method == "HOS") made = MakeHos(spec);
  else if (spec.method == "LFB") made = MakeLfb(spec);
  else if (spec.method == "QT") made = MakeQuant(spec);
  if (!made.ok()) return made;
#ifdef AUTOMC_DISABLE_METRICS
  return made;
#else
  return std::unique_ptr<Compressor>(
      new InstrumentedCompressor(std::move(*made)));
#endif
}

}  // namespace compress
}  // namespace automc
