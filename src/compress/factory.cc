#include "compress/compressor.h"
#include "compress/methods.h"

namespace automc {
namespace compress {

namespace {

Result<std::unique_ptr<Compressor>> MakeLma(const StrategySpec& s) {
  LmaConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.segments, GetHpInt(s, "HP3"));
  AUTOMC_ASSIGN_OR_RETURN(c.temperature, GetHpDouble(s, "HP4"));
  AUTOMC_ASSIGN_OR_RETURN(c.alpha, GetHpDouble(s, "HP5"));
  return std::unique_ptr<Compressor>(new LmaCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeLegr(const StrategySpec& s) {
  LegrConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.max_prune_ratio, GetHpDouble(s, "HP6"));
  AUTOMC_ASSIGN_OR_RETURN(c.evolution_frac, GetHpDouble(s, "HP7"));
  AUTOMC_ASSIGN_OR_RETURN(c.criterion, GetHpString(s, "HP8"));
  return std::unique_ptr<Compressor>(new LegrCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeNs(const StrategySpec& s) {
  NsConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.max_prune_ratio, GetHpDouble(s, "HP6"));
  return std::unique_ptr<Compressor>(new NsCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeSfp(const StrategySpec& s) {
  SfpConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.backprop_frac, GetHpDouble(s, "HP9"));
  AUTOMC_ASSIGN_OR_RETURN(c.update_frequency, GetHpInt(s, "HP10"));
  return std::unique_ptr<Compressor>(new SfpCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeHos(const StrategySpec& s) {
  HosConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.global_criterion, GetHpString(s, "HP11"));
  AUTOMC_ASSIGN_OR_RETURN(c.stat_criterion, GetHpString(s, "HP12"));
  AUTOMC_ASSIGN_OR_RETURN(c.optim_frac, GetHpDouble(s, "HP13"));
  AUTOMC_ASSIGN_OR_RETURN(c.mse_factor, GetHpDouble(s, "HP14"));
  return std::unique_ptr<Compressor>(new HosCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeQuant(const StrategySpec& s) {
  QuantConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.bits, GetHpInt(s, "HP17"));
  return std::unique_ptr<Compressor>(new QuantCompressor(c));
}

Result<std::unique_ptr<Compressor>> MakeLfb(const StrategySpec& s) {
  LfbConfig c;
  AUTOMC_ASSIGN_OR_RETURN(c.finetune_frac, GetHpDouble(s, "HP1"));
  AUTOMC_ASSIGN_OR_RETURN(c.decrease_ratio, GetHpDouble(s, "HP2"));
  AUTOMC_ASSIGN_OR_RETURN(c.aux_factor, GetHpDouble(s, "HP15"));
  AUTOMC_ASSIGN_OR_RETURN(c.aux_loss, GetHpString(s, "HP16"));
  return std::unique_ptr<Compressor>(new LfbCompressor(c));
}

}  // namespace

Result<std::unique_ptr<Compressor>> CreateCompressor(const StrategySpec& spec) {
  if (spec.method == "LMA") return MakeLma(spec);
  if (spec.method == "LeGR") return MakeLegr(spec);
  if (spec.method == "NS") return MakeNs(spec);
  if (spec.method == "SFP") return MakeSfp(spec);
  if (spec.method == "HOS") return MakeHos(spec);
  if (spec.method == "LFB") return MakeLfb(spec);
  if (spec.method == "QT") return MakeQuant(spec);
  return Status::NotFound("unknown compression method: " + spec.method);
}

}  // namespace compress
}  // namespace automc
