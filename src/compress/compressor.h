#ifndef AUTOMC_COMPRESS_COMPRESSOR_H_
#define AUTOMC_COMPRESS_COMPRESSOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace automc {
namespace compress {

// Everything a compression strategy needs about the task it runs on.
// Epoch-fraction hyperparameters (the paper's "*0.1 ... *0.5" grids) are
// resolved against `pretrain_epochs`.
struct CompressionContext {
  const data::Dataset* train = nullptr;
  const data::Dataset* test = nullptr;
  int pretrain_epochs = 4;
  int batch_size = 32;
  float lr = 0.02f;
  uint64_t seed = 1;

  // Converts an epoch-fraction hyperparameter into a concrete epoch count.
  int EpochsFromFraction(double fraction) const;
};

// Before/after measurements of one compression step.
struct CompressionStats {
  int64_t params_before = 0, params_after = 0;
  int64_t flops_before = 0, flops_after = 0;
  double acc_before = 0.0, acc_after = 0.0;

  // PR(S, M) of the paper: relative parameter reduction in [0, 1].
  double ParamReduction() const {
    return params_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(params_after) / params_before;
  }
  // FR(S, M): relative FLOPs reduction.
  double FlopReduction() const {
    return flops_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(flops_after) / flops_before;
  }
  // AR(S, M): relative accuracy change (> -1).
  double AccIncrease() const {
    return acc_before <= 0.0 ? 0.0 : acc_after / acc_before - 1.0;
  }
};

// A compression method bound to one hyperparameter setting (one
// "compression strategy" in the paper's vocabulary). Compress() mutates the
// model in place and reports measurements through *stats (optional).
class Compressor {
 public:
  virtual ~Compressor() = default;
  virtual std::string MethodName() const = 0;
  virtual Status Compress(nn::Model* model, const CompressionContext& ctx,
                          CompressionStats* stats) = 0;
};

// A compression method name plus raw hyperparameter assignments, as
// enumerated by the search space (values kept as strings so the knowledge
// graph can treat each setting as an entity).
struct StrategySpec {
  std::string method;
  std::map<std::string, std::string> hp;

  // "LeGR(HP1=0.2,HP2=0.12,...)"
  std::string ToString() const;
};

// Parses hp values with range checks.
Result<double> GetHpDouble(const StrategySpec& spec, const std::string& key);
Result<int> GetHpInt(const StrategySpec& spec, const std::string& key);
Result<std::string> GetHpString(const StrategySpec& spec,
                                const std::string& key);

// Instantiates the concrete compressor for a strategy. Fails on unknown
// method names or missing/invalid hyperparameters.
Result<std::unique_ptr<Compressor>> CreateCompressor(const StrategySpec& spec);

// Fills `stats` around a compression body: measures the model before,
// invokes `body`, measures after. Used by every method implementation.
Status MeasureAround(nn::Model* model, const CompressionContext& ctx,
                     const std::function<Status()>& body,
                     CompressionStats* stats);

// Standard fine-tuning pass (technique TE3 of Table 1).
Status Finetune(nn::Model* model, const CompressionContext& ctx, int epochs);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_COMPRESSOR_H_
