#include "compress/taylor.h"

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "nn/loss.h"

namespace automc {
namespace compress {

namespace {

// Accumulates cross-entropy gradients over a few random batches.
Status AccumulateGradients(nn::Model* model, const data::Dataset& data,
                           int batches, int batch_size, Rng* rng) {
  if (data.Size() == 0) return Status::InvalidArgument("empty dataset");
  model->ZeroGrad();
  for (int b = 0; b < batches; ++b) {
    std::vector<int64_t> idx;
    for (int i = 0; i < batch_size; ++i) {
      idx.push_back(rng->UniformInt(data.Size()));
    }
    tensor::Tensor images = data.GatherImages(idx);
    std::vector<int> labels = data.GatherLabels(idx);
    tensor::Tensor logits = model->Forward(images, /*training=*/true);
    nn::LossResult loss = nn::CrossEntropy(logits, labels);
    model->Backward(loss.grad);
  }
  return Status::OK();
}

// |sum grad*w| per filter of every prunable unit, keyed by conv pointer.
std::map<const nn::Conv2d*, std::vector<double>> ScoreFilters(
    nn::Model* model) {
  std::map<const nn::Conv2d*, std::vector<double>> scores;
  for (const PrunableUnit& unit : CollectPrunableUnits(model)) {
    const nn::Conv2d* conv = unit.conv;
    int64_t fsize = conv->in_channels() * conv->kernel() * conv->kernel();
    std::vector<double> per_filter(
        static_cast<size_t>(conv->out_channels()), 0.0);
    const float* w = conv->weight().value.data();
    const float* g = conv->weight().grad.data();
    for (int64_t f = 0; f < conv->out_channels(); ++f) {
      double s = 0.0;
      for (int64_t i = 0; i < fsize; ++i) {
        s += static_cast<double>(g[f * fsize + i]) * w[f * fsize + i];
      }
      per_filter[static_cast<size_t>(f)] = std::fabs(s);
    }
    scores[conv] = std::move(per_filter);
  }
  return scores;
}

}  // namespace

Result<ImportanceFn> MakeTaylorImportance(nn::Model* model,
                                          const data::Dataset& data,
                                          int batches, int batch_size,
                                          uint64_t seed) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (batches <= 0 || batch_size <= 0) {
    return Status::InvalidArgument("batches/batch_size must be positive");
  }
  Rng rng(seed);
  AUTOMC_RETURN_IF_ERROR(
      AccumulateGradients(model, data, batches, batch_size, &rng));
  auto scores = std::make_shared<
      std::map<const nn::Conv2d*, std::vector<double>>>(ScoreFilters(model));
  model->ZeroGrad();
  return ImportanceFn([scores](const PrunableUnit& unit, int64_t filter) {
    auto it = scores->find(unit.conv);
    if (it == scores->end() ||
        static_cast<size_t>(filter) >= it->second.size()) {
      // Structure changed since scoring; fall back to a norm criterion.
      return FilterL2(unit, filter);
    }
    return it->second[static_cast<size_t>(filter)];
  });
}

Status TaylorStructuredPrune(nn::Model* model, const data::Dataset& data,
                             const GlobalPruneOptions& opts,
                             int rescore_every, int batches, int batch_size,
                             uint64_t seed) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (rescore_every <= 0) {
    return Status::InvalidArgument("rescore_every must be positive");
  }
  if (opts.target_param_fraction <= 0.0 ||
      opts.target_param_fraction >= 1.0) {
    return Status::InvalidArgument("target_param_fraction must be in (0,1)");
  }
  int64_t params_start = model->ParamCount();
  int64_t params_target = static_cast<int64_t>(
      std::llround(static_cast<double>(params_start) *
                   (1.0 - opts.target_param_fraction)));

  // Per-conv floors from the cap, frozen at entry.
  std::map<const nn::Conv2d*, int64_t> floors;
  for (const PrunableUnit& unit : CollectPrunableUnits(model)) {
    int64_t orig = unit.conv->out_channels();
    floors[unit.conv] = std::max<int64_t>(
        opts.min_filters,
        static_cast<int64_t>(std::ceil(
            static_cast<double>(orig) *
            (1.0 - opts.max_prune_ratio_per_layer))));
  }

  Rng rng(seed + 7);
  while (model->ParamCount() > params_target) {
    AUTOMC_ASSIGN_OR_RETURN(
        ImportanceFn importance,
        MakeTaylorImportance(model, data, batches, batch_size,
                             rng.engine()()));
    bool removed_any = false;
    for (int step = 0; step < rescore_every &&
                       model->ParamCount() > params_target;
         ++step) {
      std::vector<PrunableUnit> units = CollectPrunableUnits(model);
      double best_score = 1e300;
      int best_unit = -1;
      int64_t best_filter = -1;
      for (size_t u = 0; u < units.size(); ++u) {
        auto floor_it = floors.find(units[u].conv);
        int64_t floor =
            floor_it != floors.end() ? floor_it->second : opts.min_filters;
        if (units[u].conv->out_channels() <= floor) continue;
        for (int64_t f = 0; f < units[u].conv->out_channels(); ++f) {
          double s = importance(units[u], f);
          if (s < best_score) {
            best_score = s;
            best_unit = static_cast<int>(u);
            best_filter = f;
          }
        }
      }
      if (best_filter < 0) break;
      std::vector<int64_t> keep;
      for (int64_t f = 0;
           f < units[static_cast<size_t>(best_unit)].conv->out_channels();
           ++f) {
        if (f != best_filter) keep.push_back(f);
      }
      AUTOMC_RETURN_IF_ERROR(
          PruneUnitFilters(units[static_cast<size_t>(best_unit)], keep));
      removed_any = true;
    }
    if (!removed_any) break;  // caps reached everywhere
  }
  return Status::OK();
}

}  // namespace compress
}  // namespace automc
