#ifndef AUTOMC_COMPRESS_SCHEME_PARSER_H_
#define AUTOMC_COMPRESS_SCHEME_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compress/compressor.h"

namespace automc {
namespace compress {

// Parses the textual scheme syntax produced by StrategySpec::ToString /
// SearchSpace::SchemeToString back into strategy specs, e.g.
//
//   "NS(HP1=0.3,HP2=0.2,HP6=0.9) -> SFP(HP10=1,HP2=0.12,HP9=0.4)"
//
// Whitespace around tokens is ignored. Hyperparameter values are kept as
// raw strings (validation happens in CreateCompressor). This lets users
// save a searched scheme as text and re-apply it via the CLI.
Result<std::vector<StrategySpec>> ParseScheme(const std::string& text);

// Single strategy, e.g. "NS(HP1=0.3,HP2=0.2,HP6=0.9)".
Result<StrategySpec> ParseStrategy(const std::string& text);

// Inverse of ParseScheme.
std::string SchemeToString(const std::vector<StrategySpec>& scheme);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_SCHEME_PARSER_H_
