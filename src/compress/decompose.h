#ifndef AUTOMC_COMPRESS_DECOMPOSE_H_
#define AUTOMC_COMPRESS_DECOMPOSE_H_

#include <memory>

#include "nn/layers.h"
#include "nn/lowrank.h"

namespace automc {
namespace compress {

// Low-rank replacements for convolutions. Both constructions produce a
// LowRankConv with identical in/out channels, stride and padding, whose
// composed weights approximate the original kernel.

// --- SVD filter-basis split (used by LFB) ----------------------------------
// W[F, C*k*k] ~= U[F, r] * (S V^T)[r, C*k*k]; realized as a k x k conv with r
// "basis" filters followed by a 1x1 mixing conv.
std::unique_ptr<nn::LowRankConv> SvdDecomposeConv(const nn::Conv2d& conv,
                                                  int64_t rank);

// Parameter count of the split at the given rank (bias included if present).
int64_t SvdParamsAtRank(const nn::Conv2d& conv, int64_t rank);

// Largest rank at which the split has fewer parameters than the original.
int64_t SvdBreakEvenRank(const nn::Conv2d& conv);

// --- Tucker-2 via HOOI (used by HOS) ---------------------------------------
// W ~= G x1 U x2 V with U[F, r_out], V[C, r_in], core G[r_out, r_in, k, k];
// realized as 1x1 (C -> r_in), k x k (r_in -> r_out, original stride/pad),
// 1x1 (r_out -> F). `iters` HOOI alternating refinement sweeps.
std::unique_ptr<nn::LowRankConv> HooiDecomposeConv(const nn::Conv2d& conv,
                                                   int64_t rank_out,
                                                   int64_t rank_in,
                                                   int iters = 3);

int64_t TuckerParamsAtRanks(const nn::Conv2d& conv, int64_t rank_out,
                            int64_t rank_in);

// The (rank_out, rank_in) pair actually used by HooiDecomposeConv after
// feasibility clamping (the mode SVDs can only supply min(F, r_in*k^2) and
// min(C, r_out*k^2) directions). Planners must use this so predicted and
// realized parameter counts agree.
std::pair<int64_t, int64_t> ClampTuckerRanks(const nn::Conv2d& conv,
                                             int64_t rank_out,
                                             int64_t rank_in);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_DECOMPOSE_H_
