#ifndef AUTOMC_COMPRESS_METHODS_H_
#define AUTOMC_COMPRESS_METHODS_H_

#include <string>

#include "compress/compressor.h"

namespace automc {
namespace compress {

// The six open-source compression methods of the paper's Table 1, each bound
// to a concrete hyperparameter assignment. Hyperparameter names in comments
// reference the table (HP1 = fine-tune epoch fraction, HP2 = parameter
// decrease ratio, etc.).

// C1 — LMA (Xu et al.): knowledge distillation into a structurally shrunk
// student whose activations are replaced with learnable multi-segment
// piecewise-linear functions.
struct LmaConfig {
  double finetune_frac = 0.3;   // HP1
  double decrease_ratio = 0.2;  // HP2
  int segments = 4;             // HP3 (segment count of the LMA function)
  double temperature = 3.0;     // HP4
  double alpha = 0.5;           // HP5: CE weight; (1-alpha) weights the KD term
};

class LmaCompressor : public Compressor {
 public:
  explicit LmaCompressor(LmaConfig config) : config_(config) {}
  std::string MethodName() const override { return "LMA"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  LmaConfig config_;
};

// C2 — LeGR (Chin et al.): an evolutionary algorithm learns per-layer affine
// transforms of filter norms, producing a global filter ranking that is then
// pruned to the target ratio and fine-tuned.
struct LegrConfig {
  double finetune_frac = 0.3;     // HP1
  double decrease_ratio = 0.2;    // HP2
  double max_prune_ratio = 0.9;   // HP6 (per-layer cap)
  double evolution_frac = 0.5;    // HP7 (EA generations as epoch fraction)
  std::string criterion = "l2_weight";  // HP8
};

class LegrCompressor : public Compressor {
 public:
  explicit LegrCompressor(LegrConfig config) : config_(config) {}
  std::string MethodName() const override { return "LeGR"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  LegrConfig config_;
};

// C3 — NS / Network Slimming (Liu et al.): L1-sparsity training on BatchNorm
// scaling factors, then global channel pruning by gamma magnitude.
struct NsConfig {
  double finetune_frac = 0.3;    // HP1
  double decrease_ratio = 0.2;   // HP2
  double max_prune_ratio = 0.9;  // HP6
};

class NsCompressor : public Compressor {
 public:
  explicit NsCompressor(NsConfig config) : config_(config) {}
  std::string MethodName() const override { return "NS"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  NsConfig config_;
};

// C4 — SFP / Soft Filter Pruning (He et al.): during training, the lowest
// norm filters are softly zeroed every few epochs but keep receiving
// gradients; at the end the selection is pruned for real.
struct SfpConfig {
  double decrease_ratio = 0.2;  // HP2
  double backprop_frac = 0.3;   // HP9 (training epochs)
  int update_frequency = 1;     // HP10 (epochs between re-selections)
};

class SfpCompressor : public Compressor {
 public:
  explicit SfpCompressor(SfpConfig config) : config_(config) {}
  std::string MethodName() const override { return "SFP"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  SfpConfig config_;
};

// C5 — HOS (Chatzikonstantinou et al.): filter pruning scored by
// higher-order weight statistics plus HOOI Tucker-2 kernel decomposition,
// optimized with an auxiliary logit-reconstruction MSE loss.
struct HosConfig {
  double finetune_frac = 0.3;        // HP1
  double decrease_ratio = 0.2;       // HP2
  std::string global_criterion = "P1";   // HP11 (cross-layer normalization)
  std::string stat_criterion = "l1norm"; // HP12 (l1norm | k34 | skew_kur)
  double optim_frac = 0.4;           // HP13 (optimization epochs)
  double mse_factor = 3.0;           // HP14
};

class HosCompressor : public Compressor {
 public:
  explicit HosCompressor(HosConfig config) : config_(config) {}
  std::string MethodName() const override { return "HOS"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  HosConfig config_;
};

// C6 — LFB (Li et al.): filters expressed over a learned shared basis
// (realized as a truncated-SVD split), trained with an auxiliary loss.
struct LfbConfig {
  double finetune_frac = 0.3;   // HP1
  double decrease_ratio = 0.2;  // HP2
  double aux_factor = 1.0;      // HP15
  std::string aux_loss = "CE";  // HP16 (NLL | CE | MSE)
};

class LfbCompressor : public Compressor {
 public:
  explicit LfbCompressor(LfbConfig config) : config_(config) {}
  std::string MethodName() const override { return "LFB"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  LfbConfig config_;
};

// QT — quantization (extension). The paper lists quantization as the fourth
// method category and names enriching the search space as future work; this
// method implements it: uniform symmetric fake-quantization of all weights
// to `bits` with quantization-aware fine-tuning. Its parameter reduction is
// accounted through Model::EffectiveParamCount (params x bits / 32), so it
// trades off against pruning in the same PR currency. Included in the
// search space via SearchSpace::Table1WithExtensions().
struct QuantConfig {
  double finetune_frac = 0.3;  // HP1
  int bits = 8;                // HP17: weight precision
};

class QuantCompressor : public Compressor {
 public:
  explicit QuantCompressor(QuantConfig config) : config_(config) {}
  std::string MethodName() const override { return "QT"; }
  Status Compress(nn::Model* model, const CompressionContext& ctx,
                  CompressionStats* stats) override;

 private:
  QuantConfig config_;
};

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_METHODS_H_
