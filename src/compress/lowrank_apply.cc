#include "compress/lowrank_apply.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "compress/decompose.h"
#include "compress/surgery.h"

namespace automc {
namespace compress {

namespace {

struct SitePlan {
  ConvSite site;
  int64_t orig_params = 0;
  // Chosen ranks at a given scale (rank_in unused for SVD).
  int64_t rank_out = 0;
  int64_t rank_in = 0;
  int64_t new_params = 0;
  bool worthwhile = false;  // new_params < orig_params
};

// Computes the plan for one site at rank scale rho in (0, 1].
void PlanSite(DecompKind kind, double rho, SitePlan* plan) {
  const nn::Conv2d& conv = *plan->site.conv;
  if (kind == DecompKind::kSvd) {
    int64_t breakeven = SvdBreakEvenRank(conv);
    int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(rho * breakeven)));
    plan->rank_out = rank;
    plan->new_params = SvdParamsAtRank(conv, rank);
  } else {
    int64_t r_out = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(rho * conv.out_channels())));
    int64_t r_in = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(rho * conv.in_channels())));
    std::tie(r_out, r_in) = ClampTuckerRanks(conv, r_out, r_in);
    plan->rank_out = r_out;
    plan->rank_in = r_in;
    plan->new_params = TuckerParamsAtRanks(conv, r_out, r_in);
  }
  plan->worthwhile = plan->new_params < plan->orig_params;
}

int64_t TotalAfter(std::vector<SitePlan>* plans, DecompKind kind, double rho,
                   int64_t params_total) {
  int64_t saved = 0;
  for (SitePlan& p : *plans) {
    PlanSite(kind, rho, &p);
    if (p.worthwhile) saved += p.orig_params - p.new_params;
  }
  return params_total - saved;
}

}  // namespace

Status ApplyLowRankGlobal(nn::Model* model, double target_param_fraction,
                          DecompKind kind) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (target_param_fraction <= 0.0 || target_param_fraction >= 1.0) {
    return Status::InvalidArgument("target_param_fraction must be in (0,1)");
  }

  std::vector<SitePlan> plans;
  for (const ConvSite& site : CollectConvSites(model)) {
    // Decomposing 1x1 convs is numerically legal but saves next to nothing
    // at substrate scale; restrict to spatial kernels.
    if (site.conv->kernel() < 2) continue;
    SitePlan p;
    p.site = site;
    p.orig_params = site.conv->ParamCount();
    plans.push_back(p);
  }
  if (plans.empty()) {
    return Status::FailedPrecondition("no decomposable convolutions");
  }

  int64_t params_total = model->ParamCount();
  int64_t params_target = static_cast<int64_t>(std::llround(
      static_cast<double>(params_total) * (1.0 - target_param_fraction)));

  // Smaller rho => smaller ranks => fewer params. Binary search the largest
  // rho that still meets the target (keep maximum capacity).
  double lo = 0.0, hi = 1.0;
  if (TotalAfter(&plans, kind, 1e-9, params_total) > params_target) {
    AUTOMC_LOG(Warning) << "low-rank target " << target_param_fraction
                        << " unreachable; applying minimum ranks";
    lo = hi = 1e-9;
  } else {
    for (int it = 0; it < 30; ++it) {
      double mid = 0.5 * (lo + hi);
      if (TotalAfter(&plans, kind, mid, params_total) <= params_target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  // Final plan at the chosen scale.
  TotalAfter(&plans, kind, lo, params_total);

  for (const SitePlan& p : plans) {
    if (!p.worthwhile) continue;
    std::unique_ptr<nn::Layer> replacement;
    if (kind == DecompKind::kSvd) {
      replacement = SvdDecomposeConv(*p.site.conv, p.rank_out);
    } else {
      replacement = HooiDecomposeConv(*p.site.conv, p.rank_out, p.rank_in);
    }
    ReplaceConvAtSite(p.site, std::move(replacement));
  }
  return Status::OK();
}

}  // namespace compress
}  // namespace automc
