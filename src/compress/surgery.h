#ifndef AUTOMC_COMPRESS_SURGERY_H_
#define AUTOMC_COMPRESS_SURGERY_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/residual.h"

namespace automc {
namespace compress {

// One structurally prunable producer: a convolution whose output filters can
// be removed together with the matching BatchNorm channels and the input
// channels of exactly one downstream consumer. The model families constrain
// what is prunable: residual-block-internal convs (block I/O stays fixed so
// skip connections remain valid) and VGG convs feeding the next conv or the
// classifier head.
struct PrunableUnit {
  nn::Conv2d* conv = nullptr;
  nn::BatchNorm2d* bn = nullptr;
  nn::Conv2d* next_conv = nullptr;      // exactly one of next_conv /
  nn::Linear* next_linear = nullptr;    // next_linear is set
  // Features per channel seen by next_linear (spatial positions after the
  // flatten; 1 when a GlobalAvgPool precedes it).
  int64_t linear_group = 1;
};

// Walks the model and returns its prunable units (pointers remain valid
// until layers are replaced; re-collect after any low-rank surgery).
std::vector<PrunableUnit> CollectPrunableUnits(nn::Model* model);

// Keeps only the listed output filters of the unit's conv, updating the BN
// and the consumer. `keep` must be non-empty, sorted, in range.
Status PruneUnitFilters(const PrunableUnit& unit,
                        const std::vector<int64_t>& keep);

// A site where a Conv2d can be swapped for a decomposed replacement.
struct ConvSite {
  // Either a child of a Sequential...
  nn::Sequential* parent = nullptr;
  int64_t child_index = -1;
  // ...or one of a residual block's three conv slots (1-based `slot`).
  nn::ResidualBlock* block = nullptr;
  int slot = 0;

  nn::Conv2d* conv = nullptr;
};

// All Conv2d layers that may be replaced by LowRankConv composites.
// Downsample (skip-path) convs are excluded: they are 1x1 and tiny.
std::vector<ConvSite> CollectConvSites(nn::Model* model);

// Swaps the conv at `site` for `replacement` (same in/out geometry).
void ReplaceConvAtSite(const ConvSite& site,
                       std::unique_ptr<nn::Layer> replacement);

// Filter importance: given the unit and a filter index, smaller = pruned
// first.
using ImportanceFn =
    std::function<double(const PrunableUnit& unit, int64_t filter)>;

// Options for greedy global structured pruning.
struct GlobalPruneOptions {
  // Fraction of the model's current parameters to remove (HP2).
  double target_param_fraction = 0.3;
  // No unit may lose more than this fraction of its filters (HP6).
  double max_prune_ratio_per_layer = 0.9;
  // Absolute floor of filters left in any unit.
  int64_t min_filters = 2;
};

// Repeatedly removes the globally least-important filter (subject to the
// per-layer cap) until the model's parameter count has dropped by
// target_param_fraction or no filter is removable. Parameter counts are
// re-measured after every removal, so the target is met exactly up to one
// filter's granularity.
Status GlobalStructuredPrune(nn::Model* model, const GlobalPruneOptions& opts,
                             const ImportanceFn& importance);

// Removes the same fraction of filters from every prunable unit, keeping the
// most important ones (SFP-style layer-uniform pruning). Fractions are
// rounded down so at least min_filters survive per unit.
Status UniformStructuredPrune(nn::Model* model, double filter_fraction,
                              const ImportanceFn& importance,
                              int64_t min_filters = 2);

// Replaces every activation in the model (top-level ReLUs and all
// residual-block activations) with clones of `prototype`. Used by LMA.
void ReplaceAllActivations(nn::Model* model, const nn::Layer& prototype);

// Built-in importance criteria.
double FilterL1(const PrunableUnit& unit, int64_t filter);
double FilterL2(const PrunableUnit& unit, int64_t filter);
double FilterBnGamma(const PrunableUnit& unit, int64_t filter);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_SURGERY_H_
