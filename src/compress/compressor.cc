#include "compress/compressor.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "nn/trainer.h"

namespace automc {
namespace compress {

int CompressionContext::EpochsFromFraction(double fraction) const {
  return std::max(1, static_cast<int>(std::llround(fraction * pretrain_epochs)));
}

std::string StrategySpec::ToString() const {
  std::ostringstream os;
  os << method << "(";
  bool first = true;
  for (const auto& [k, v] : hp) {
    if (!first) os << ",";
    os << k << "=" << v;
    first = false;
  }
  os << ")";
  return os.str();
}

Result<std::string> GetHpString(const StrategySpec& spec,
                                const std::string& key) {
  auto it = spec.hp.find(key);
  if (it == spec.hp.end()) {
    return Status::NotFound(spec.method + " missing hyperparameter " + key);
  }
  return it->second;
}

Result<double> GetHpDouble(const StrategySpec& spec, const std::string& key) {
  AUTOMC_ASSIGN_OR_RETURN(std::string raw, GetHpString(spec, key));
  char* end = nullptr;
  double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    return Status::InvalidArgument(spec.method + "." + key +
                                   " is not numeric: " + raw);
  }
  return v;
}

Result<int> GetHpInt(const StrategySpec& spec, const std::string& key) {
  AUTOMC_ASSIGN_OR_RETURN(double v, GetHpDouble(spec, key));
  double rounded = std::round(v);
  if (std::fabs(v - rounded) > 1e-9) {
    return Status::InvalidArgument(spec.method + "." + key +
                                   " is not integral");
  }
  return static_cast<int>(rounded);
}

Status MeasureAround(nn::Model* model, const CompressionContext& ctx,
                     const std::function<Status()>& body,
                     CompressionStats* stats) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (ctx.train == nullptr || ctx.test == nullptr) {
    return Status::InvalidArgument("context missing datasets");
  }
  CompressionStats local;
  local.params_before = model->EffectiveParamCount();
  local.flops_before = model->FlopsPerSample();
  local.acc_before = nn::Trainer::Evaluate(model, *ctx.test);

  AUTOMC_RETURN_IF_ERROR(body());

  local.params_after = model->EffectiveParamCount();
  local.flops_after = model->FlopsPerSample();
  local.acc_after = nn::Trainer::Evaluate(model, *ctx.test);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status Finetune(nn::Model* model, const CompressionContext& ctx, int epochs) {
  if (epochs <= 0) return Status::OK();
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = ctx.batch_size;
  tc.lr = ctx.lr;
  tc.seed = ctx.seed + 17;
  nn::Trainer trainer(tc);
  return trainer.Fit(model, *ctx.train);
}

}  // namespace compress
}  // namespace automc
