#include "compress/scheme_parser.h"

#include <cctype>

namespace automc {
namespace compress {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

// Splits on a delimiter string, trimming each piece.
std::vector<std::string> Split(const std::string& s,
                               const std::string& delim) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t next = s.find(delim, pos);
    if (next == std::string::npos) {
      out.push_back(Trim(s.substr(pos)));
      break;
    }
    out.push_back(Trim(s.substr(pos, next - pos)));
    pos = next + delim.size();
  }
  return out;
}

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<StrategySpec> ParseStrategy(const std::string& text) {
  std::string s = Trim(text);
  size_t open = s.find('(');
  if (open == std::string::npos || s.back() != ')') {
    return Status::InvalidArgument("strategy must look like Method(...): " + s);
  }
  StrategySpec spec;
  spec.method = Trim(s.substr(0, open));
  if (!IsIdentifier(spec.method)) {
    return Status::InvalidArgument("bad method name: '" + spec.method + "'");
  }
  std::string body = s.substr(open + 1, s.size() - open - 2);
  if (Trim(body).empty()) return spec;  // no hyperparameters
  for (const std::string& item : Split(body, ",")) {
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected HP=value, got '" + item + "'");
    }
    std::string key = Trim(item.substr(0, eq));
    std::string value = Trim(item.substr(eq + 1));
    if (!IsIdentifier(key) || !IsIdentifier(value)) {
      return Status::InvalidArgument("bad hyperparameter token: '" + item +
                                     "'");
    }
    if (spec.hp.count(key) != 0) {
      return Status::InvalidArgument("duplicate hyperparameter " + key);
    }
    spec.hp[key] = value;
  }
  return spec;
}

Result<std::vector<StrategySpec>> ParseScheme(const std::string& text) {
  std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("empty scheme");
  std::vector<StrategySpec> out;
  for (const std::string& part : Split(s, "->")) {
    AUTOMC_ASSIGN_OR_RETURN(StrategySpec spec, ParseStrategy(part));
    out.push_back(std::move(spec));
  }
  return out;
}

std::string SchemeToString(const std::vector<StrategySpec>& scheme) {
  std::string out;
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (i) out += " -> ";
    out += scheme[i].ToString();
  }
  return out;
}

}  // namespace compress
}  // namespace automc
