#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/logging.h"
#include "compress/methods.h"
#include "compress/surgery.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

namespace {

// Base filter score selected by HP8.
double BaseScore(const std::string& criterion, const PrunableUnit& unit,
                 int64_t filter) {
  if (criterion == "l1_weight") return FilterL1(unit, filter);
  if (criterion == "l2_weight") return FilterL2(unit, filter);
  // "l2_bn_param": the BN gamma scaled by the filter's l2 norm.
  return FilterBnGamma(unit, filter) * FilterL2(unit, filter);
}

// One individual: per-unit affine transform (scale, shift) of base scores.
struct Individual {
  std::vector<double> scale;
  std::vector<double> shift;
  double fitness = -1.0;
};

}  // namespace

Status LegrCompressor::Compress(nn::Model* model,
                                const CompressionContext& ctx,
                                CompressionStats* stats) {
  if (config_.criterion != "l1_weight" && config_.criterion != "l2_weight" &&
      config_.criterion != "l2_bn_param") {
    return Status::InvalidArgument("LeGR unknown criterion " +
                                   config_.criterion);
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        size_t num_units = CollectPrunableUnits(model).size();
        if (num_units == 0) {
          return Status::FailedPrecondition("no prunable units");
        }

        Rng rng(ctx.seed + 202);
        // Fitness-evaluation split: a slice of train acts as validation so
        // the EA does not overfit the test set.
        Rng split_rng = rng.Fork();
        auto [val, fit_train] = ctx.train->Split(0.3, &split_rng);

        GlobalPruneOptions opts;
        opts.target_param_fraction = config_.decrease_ratio;
        opts.max_prune_ratio_per_layer = config_.max_prune_ratio;

        // Evaluate one individual: clone, prune with its transformed scores,
        // measure validation accuracy.
        auto evaluate = [&](const Individual& ind) -> Result<double> {
          std::unique_ptr<nn::Model> probe = model->Clone();
          std::vector<PrunableUnit> units = CollectPrunableUnits(probe.get());
          AUTOMC_CHECK_EQ(units.size(), ind.scale.size());
          // Map conv pointer -> unit index for the importance closure.
          std::map<const nn::Conv2d*, size_t> index;
          for (size_t u = 0; u < units.size(); ++u) index[units[u].conv] = u;
          ImportanceFn importance = [&](const PrunableUnit& unit,
                                        int64_t filter) {
            size_t u = index.at(unit.conv);
            return ind.scale[u] * BaseScore(config_.criterion, unit, filter) +
                   ind.shift[u];
          };
          Status st = GlobalStructuredPrune(probe.get(), opts, importance);
          if (!st.ok()) return st;
          return nn::Trainer::Evaluate(probe.get(), val);
        };

        // Initialize population around the identity transform.
        const int kPopulation = 6;
        int generations =
            std::max(2, ctx.EpochsFromFraction(config_.evolution_frac));
        std::vector<Individual> population;
        for (int p = 0; p < kPopulation; ++p) {
          Individual ind;
          ind.scale.assign(num_units, 1.0);
          ind.shift.assign(num_units, 0.0);
          if (p > 0) {
            for (size_t u = 0; u < num_units; ++u) {
              ind.scale[u] = std::exp(rng.Normal(0.0, 0.4));
              ind.shift[u] = rng.Normal(0.0, 0.1);
            }
          }
          AUTOMC_ASSIGN_OR_RETURN(ind.fitness, evaluate(ind));
          population.push_back(std::move(ind));
        }

        auto best_of = [](const std::vector<Individual>& pop) {
          size_t best = 0;
          for (size_t i = 1; i < pop.size(); ++i) {
            if (pop[i].fitness > pop[best].fitness) best = i;
          }
          return best;
        };

        // Regularized-evolution style loop: mutate the best, replace the
        // worst.
        for (int g = 0; g < generations; ++g) {
          Individual child = population[best_of(population)];
          for (size_t u = 0; u < num_units; ++u) {
            if (rng.Bernoulli(0.3)) {
              child.scale[u] *= std::exp(rng.Normal(0.0, 0.3));
              child.shift[u] += rng.Normal(0.0, 0.05);
            }
          }
          AUTOMC_ASSIGN_OR_RETURN(child.fitness, evaluate(child));
          size_t worst = 0;
          for (size_t i = 1; i < population.size(); ++i) {
            if (population[i].fitness < population[worst].fitness) worst = i;
          }
          if (child.fitness > population[worst].fitness) {
            population[worst] = std::move(child);
          }
        }

        // Prune the real model with the best learned ranking.
        const Individual& best = population[best_of(population)];
        std::vector<PrunableUnit> units = CollectPrunableUnits(model);
        std::map<const nn::Conv2d*, size_t> index;
        for (size_t u = 0; u < units.size(); ++u) index[units[u].conv] = u;
        ImportanceFn importance = [&](const PrunableUnit& unit,
                                      int64_t filter) {
          size_t u = index.at(unit.conv);
          return best.scale[u] * BaseScore(config_.criterion, unit, filter) +
                 best.shift[u];
        };
        AUTOMC_RETURN_IF_ERROR(GlobalStructuredPrune(model, opts, importance));

        return Finetune(model, ctx,
                        ctx.EpochsFromFraction(config_.finetune_frac));
      },
      stats);
}

}  // namespace compress
}  // namespace automc
