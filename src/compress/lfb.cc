#include <memory>

#include "compress/lowrank_apply.h"
#include "compress/methods.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

using tensor::Tensor;

Status LfbCompressor::Compress(nn::Model* model, const CompressionContext& ctx,
                               CompressionStats* stats) {
  if (config_.aux_loss != "NLL" && config_.aux_loss != "CE" &&
      config_.aux_loss != "MSE") {
    return Status::InvalidArgument("LFB unknown aux loss " + config_.aux_loss);
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        std::unique_ptr<nn::Model> teacher = model->Clone();

        // TE9: express filters over a truncated shared basis (SVD split of
        // each spatial conv), sized to meet HP2 globally.
        AUTOMC_RETURN_IF_ERROR(ApplyLowRankGlobal(
            model, config_.decrease_ratio, DecompKind::kSvd));

        // HP1/HP15/HP16: fine-tune with CE plus the configured auxiliary
        // term — label-based (NLL/CE variants) or teacher-logit MSE.
        nn::Model* teacher_ptr = teacher.get();
        float factor = static_cast<float>(config_.aux_factor);
        std::string kind = config_.aux_loss;
        nn::LossFn loss = [teacher_ptr, factor, kind](
                              const Tensor& logits,
                              const std::vector<int>& labels,
                              const Tensor& images) {
          nn::LossResult main = nn::CrossEntropy(logits, labels);
          nn::LossResult aux;
          if (kind == "NLL") {
            aux = nn::NegativeLikelihood(logits, labels);
          } else if (kind == "CE") {
            // CE auxiliary = soft-target CE against the teacher (T = 1 KD).
            Tensor teacher_logits =
                teacher_ptr->Forward(images, /*training=*/false);
            aux = nn::DistillationKl(logits, teacher_logits, 1.0f);
          } else {
            Tensor teacher_logits =
                teacher_ptr->Forward(images, /*training=*/false);
            aux = nn::Mse(logits, teacher_logits);
          }
          nn::LossResult out;
          out.loss = main.loss + factor * aux.loss;
          out.grad = main.grad;
          out.grad.AxpyInPlace(factor, aux.grad);
          return out;
        };
        nn::TrainConfig tc;
        tc.epochs = ctx.EpochsFromFraction(config_.finetune_frac);
        tc.batch_size = ctx.batch_size;
        tc.lr = ctx.lr;
        tc.seed = ctx.seed + 606;
        nn::Trainer trainer(tc);
        return trainer.Fit(model, *ctx.train, loss);
      },
      stats);
}

}  // namespace compress
}  // namespace automc
