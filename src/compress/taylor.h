#ifndef AUTOMC_COMPRESS_TAYLOR_H_
#define AUTOMC_COMPRESS_TAYLOR_H_

#include "compress/surgery.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace automc {
namespace compress {

// First-order Taylor-expansion filter importance (Molchanov et al. 2017):
// the loss change from removing a filter is approximated by
// |sum_w grad(w) * w| over the filter's weights. Data-driven, unlike the
// weight-norm criteria of Table 1 — provided as an extension to the pruning
// stack.

// Scores every prunable filter from `batches` cross-entropy
// forward/backward passes on `data`. The snapshot is keyed by conv pointer
// and filter index, so it is only valid until the next structural surgery.
Result<ImportanceFn> MakeTaylorImportance(nn::Model* model,
                                          const data::Dataset& data,
                                          int batches = 2, int batch_size = 32,
                                          uint64_t seed = 1);

// Iterative Taylor pruning: alternately re-scores filters on fresh
// gradients and removes the globally least important one until the model's
// parameter count drops by opts.target_param_fraction (gradients are
// re-estimated every `rescore_every` removals). Self-consistent under
// re-indexing, unlike using the one-shot snapshot with
// GlobalStructuredPrune.
Status TaylorStructuredPrune(nn::Model* model, const data::Dataset& data,
                             const GlobalPruneOptions& opts,
                             int rescore_every = 4, int batches = 1,
                             int batch_size = 32, uint64_t seed = 1);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_TAYLOR_H_
