#include <algorithm>

#include "compress/methods.h"
#include "compress/surgery.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

Status NsCompressor::Compress(nn::Model* model, const CompressionContext& ctx,
                              CompressionStats* stats) {
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        // TE4 step 1: sparsity training — L1 on BatchNorm scaling factors
        // pushes unimportant channels' gammas toward zero.
        nn::TrainConfig sparsity;
        sparsity.epochs =
            std::max(1, ctx.pretrain_epochs / 4);  // short sparsity phase
        sparsity.batch_size = ctx.batch_size;
        sparsity.lr = ctx.lr;
        sparsity.bn_gamma_l1 = 0.01f;
        sparsity.seed = ctx.seed + 303;
        nn::Trainer trainer(sparsity);
        AUTOMC_RETURN_IF_ERROR(trainer.Fit(model, *ctx.train));

        // TE4 step 2: global channel pruning by gamma magnitude.
        GlobalPruneOptions opts;
        opts.target_param_fraction = config_.decrease_ratio;
        opts.max_prune_ratio_per_layer = config_.max_prune_ratio;
        AUTOMC_RETURN_IF_ERROR(
            GlobalStructuredPrune(model, opts, FilterBnGamma));

        // TE3: fine-tune.
        return Finetune(model, ctx,
                        ctx.EpochsFromFraction(config_.finetune_frac));
      },
      stats);
}

}  // namespace compress
}  // namespace automc
