#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/stats.h"
#include "compress/lowrank_apply.h"
#include "compress/methods.h"
#include "compress/surgery.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

using tensor::Tensor;

namespace {

// Higher-order statistic of one filter's weights (HP12).
double FilterStat(const std::string& criterion, const PrunableUnit& unit,
                  int64_t filter) {
  const nn::Conv2d* conv = unit.conv;
  int64_t fsize = conv->in_channels() * conv->kernel() * conv->kernel();
  const float* w = conv->weight().value.data() + filter * fsize;
  size_t n = static_cast<size_t>(fsize);
  if (criterion == "l1norm") return L1Norm(w, n);
  if (criterion == "k34") {
    // Combined 3rd + 4th standardized moments: far-from-Gaussian filters
    // carry structure worth keeping.
    return std::fabs(Skewness(w, n)) + std::fabs(Kurtosis(w, n));
  }
  // "skew_kur": euclidean combination.
  double s = Skewness(w, n), k = Kurtosis(w, n);
  return std::sqrt(s * s + k * k);
}

}  // namespace

Status HosCompressor::Compress(nn::Model* model, const CompressionContext& ctx,
                               CompressionStats* stats) {
  if (config_.stat_criterion != "l1norm" && config_.stat_criterion != "k34" &&
      config_.stat_criterion != "skew_kur") {
    return Status::InvalidArgument("HOS unknown stat criterion " +
                                   config_.stat_criterion);
  }
  if (config_.global_criterion != "P1" && config_.global_criterion != "P2" &&
      config_.global_criterion != "P3") {
    return Status::InvalidArgument("HOS unknown global criterion " +
                                   config_.global_criterion);
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        std::unique_ptr<nn::Model> teacher = model->Clone();
        int64_t params0 = model->ParamCount();

        // TE6: filter pruning scored by higher-order statistics, normalized
        // across layers per HP11. Half of the reduction budget goes to
        // pruning, half to the HOOI decomposition below.
        double prune_target = config_.decrease_ratio * 0.5;
        {
          // Per-unit normalizers for P2 (mean) / P3 (max).
          std::map<const nn::Conv2d*, double> norm;
          for (const PrunableUnit& unit : CollectPrunableUnits(model)) {
            double mean = 0.0, mx = 0.0;
            int64_t n = unit.conv->out_channels();
            for (int64_t f = 0; f < n; ++f) {
              double s = FilterStat(config_.stat_criterion, unit, f);
              mean += s;
              mx = std::max(mx, s);
            }
            mean /= std::max<int64_t>(1, n);
            if (config_.global_criterion == "P2") {
              norm[unit.conv] = (mean > 1e-12) ? mean : 1.0;
            } else if (config_.global_criterion == "P3") {
              norm[unit.conv] = (mx > 1e-12) ? mx : 1.0;
            } else {
              norm[unit.conv] = 1.0;
            }
          }
          GlobalPruneOptions opts;
          opts.target_param_fraction = prune_target;
          ImportanceFn importance = [this, &norm](const PrunableUnit& unit,
                                                  int64_t filter) {
            return FilterStat(config_.stat_criterion, unit, filter) /
                   norm.at(unit.conv);
          };
          AUTOMC_RETURN_IF_ERROR(GlobalStructuredPrune(model, opts, importance));
        }

        // TE7: HOOI Tucker-2 decomposition for the remaining budget,
        // measured against the original parameter count.
        double achieved =
            1.0 - static_cast<double>(model->ParamCount()) / params0;
        double remaining = config_.decrease_ratio - achieved;
        if (remaining > 0.01) {
          // Convert "fraction of params0" into "fraction of current params".
          double frac_now = remaining * static_cast<double>(params0) /
                            static_cast<double>(model->ParamCount());
          frac_now = std::min(frac_now, 0.95);
          AUTOMC_RETURN_IF_ERROR(
              ApplyLowRankGlobal(model, frac_now, DecompKind::kHooi));
        }

        // HP13/HP14: optimization epochs with an auxiliary logit
        // reconstruction MSE against the pre-compression teacher.
        nn::Model* teacher_ptr = teacher.get();
        float mse_factor = static_cast<float>(config_.mse_factor);
        nn::LossFn loss = [teacher_ptr, mse_factor](
                              const Tensor& logits,
                              const std::vector<int>& labels,
                              const Tensor& images) {
          Tensor teacher_logits =
              teacher_ptr->Forward(images, /*training=*/false);
          nn::LossResult ce = nn::CrossEntropy(logits, labels);
          nn::LossResult mse = nn::Mse(logits, teacher_logits);
          nn::LossResult out;
          out.loss = ce.loss + mse_factor * mse.loss;
          out.grad = ce.grad;
          out.grad.AxpyInPlace(mse_factor, mse.grad);
          return out;
        };
        nn::TrainConfig tc;
        tc.epochs = ctx.EpochsFromFraction(config_.optim_frac);
        tc.batch_size = ctx.batch_size;
        tc.lr = ctx.lr;
        tc.seed = ctx.seed + 505;
        nn::Trainer trainer(tc);
        AUTOMC_RETURN_IF_ERROR(trainer.Fit(model, *ctx.train, loss));

        // TE3: plain fine-tune.
        return Finetune(model, ctx,
                        ctx.EpochsFromFraction(config_.finetune_frac));
      },
      stats);
}

}  // namespace compress
}  // namespace automc
