#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "compress/methods.h"
#include "compress/surgery.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

namespace {

// Zeroes the `fraction` lowest-l2 filters of every prunable unit — conv
// weights AND the downstream BatchNorm affine parameters, so a soft-zeroed
// channel contributes exactly nothing and the eventual hard prune is
// function-preserving. The parameters stay in the network and keep
// receiving gradients, so a wrongly-zeroed filter can recover (the "soft"
// part of soft filter pruning).
void SoftZeroFilters(nn::Model* model, double fraction) {
  for (const PrunableUnit& unit : CollectPrunableUnits(model)) {
    int64_t n = unit.conv->out_channels();
    int64_t zero_n = static_cast<int64_t>(std::floor(fraction * n));
    zero_n = std::min(zero_n, n - 2);
    if (zero_n <= 0) continue;
    std::vector<std::pair<double, int64_t>> scored;
    for (int64_t f = 0; f < n; ++f) scored.push_back({FilterL2(unit, f), f});
    std::sort(scored.begin(), scored.end());
    int64_t fsize = unit.conv->in_channels() * unit.conv->kernel() *
                    unit.conv->kernel();
    // In-place surgery on this model's weights: MutableData materializes a
    // private copy, so cached snapshots sharing the buffer stay intact.
    float* wd = unit.conv->weight().value.MutableData();
    for (int64_t i = 0; i < zero_n; ++i) {
      int64_t f = scored[static_cast<size_t>(i)].second;
      float* w = wd + f * fsize;
      std::fill(w, w + fsize, 0.0f);
      if (unit.conv->has_bias()) unit.conv->bias().value[f] = 0.0f;
      if (unit.bn != nullptr) {
        unit.bn->gamma().value[f] = 0.0f;
        unit.bn->beta().value[f] = 0.0f;
      }
    }
  }
}

// Finds the per-layer filter fraction whose uniform hard prune removes
// `target` of the model's parameters, by binary search on throwaway clones.
double SolveFilterFraction(nn::Model* model, double target) {
  int64_t params0 = model->ParamCount();
  double lo = 0.0, hi = 0.95;
  for (int it = 0; it < 12; ++it) {
    double mid = 0.5 * (lo + hi);
    std::unique_ptr<nn::Model> probe = model->Clone();
    Status st = UniformStructuredPrune(probe.get(), mid, FilterL2);
    if (!st.ok()) break;
    double achieved =
        1.0 - static_cast<double>(probe->ParamCount()) / params0;
    if (achieved < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

Status SfpCompressor::Compress(nn::Model* model, const CompressionContext& ctx,
                               CompressionStats* stats) {
  if (config_.update_frequency <= 0) {
    return Status::InvalidArgument("SFP update_frequency must be positive");
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        if (CollectPrunableUnits(model).empty()) {
          return Status::FailedPrecondition("no prunable units");
        }
        double fraction = SolveFilterFraction(model, config_.decrease_ratio);

        // TE5: train with periodic soft zeroing of the weakest filters.
        nn::TrainConfig tc;
        tc.epochs = ctx.EpochsFromFraction(config_.backprop_frac);
        tc.batch_size = ctx.batch_size;
        tc.lr = ctx.lr;
        tc.seed = ctx.seed + 404;
        nn::Trainer trainer(tc);
        int freq = config_.update_frequency;
        SoftZeroFilters(model, fraction);
        AUTOMC_RETURN_IF_ERROR(trainer.Fit(
            model, *ctx.train, nullptr,
            [fraction, freq](int epoch, nn::Model* m) {
              if ((epoch + 1) % freq == 0) SoftZeroFilters(m, fraction);
            }));

        // Final selection becomes a hard structural prune.
        return UniformStructuredPrune(model, fraction, FilterL2);
      },
      stats);
}

}  // namespace compress
}  // namespace automc
