#include <cmath>
#include <memory>

#include "compress/methods.h"
#include "nn/trainer.h"
#include "nn/visit.h"

namespace automc {
namespace compress {

// See methods.h: QuantCompressor implements the paper's fourth method
// category (quantization) as a search-space extension. Uniform symmetric
// per-tensor fake quantization of every weight to `bits`, followed by
// quantization-aware fine-tuning where weights are re-quantized after each
// epoch (straight-through-style: full-precision gradients, quantized
// values).
namespace {

void QuantizeTensor(tensor::Tensor* t, int bits) {
  if (t->numel() == 0) return;
  float max_abs = 0.0f;
  for (int64_t i = 0; i < t->numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs((*t)[i]));
  }
  if (max_abs == 0.0f) return;
  float levels = static_cast<float>((1 << (bits - 1)) - 1);
  float scale = max_abs / levels;
  for (int64_t i = 0; i < t->numel(); ++i) {
    (*t)[i] = scale * std::round((*t)[i] / scale);
  }
}

void QuantizeModelWeights(nn::Model* model, int bits) {
  for (nn::Param* p : model->Params()) QuantizeTensor(&p->value, bits);
}

}  // namespace

Status QuantCompressor::Compress(nn::Model* model,
                                 const CompressionContext& ctx,
                                 CompressionStats* stats) {
  if (config_.bits < 2 || config_.bits > 16) {
    return Status::InvalidArgument("QT bits must be in [2,16]");
  }
  if (config_.bits >= model->weight_bits()) {
    return Status::FailedPrecondition(
        "model already quantized to fewer or equal bits");
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        QuantizeModelWeights(model, config_.bits);
        model->set_weight_bits(config_.bits);
        // Quantization-aware fine-tuning: train in full precision, snap the
        // weights back to the grid after every epoch.
        nn::TrainConfig tc;
        tc.epochs = ctx.EpochsFromFraction(config_.finetune_frac);
        tc.batch_size = ctx.batch_size;
        tc.lr = ctx.lr;
        tc.seed = ctx.seed + 707;
        nn::Trainer trainer(tc);
        int bits = config_.bits;
        return trainer.Fit(model, *ctx.train, nullptr,
                           [bits](int, nn::Model* m) {
                             QuantizeModelWeights(m, bits);
                           });
      },
      stats);
}

}  // namespace compress
}  // namespace automc
