#ifndef AUTOMC_COMPRESS_LOWRANK_APPLY_H_
#define AUTOMC_COMPRESS_LOWRANK_APPLY_H_

#include "common/status.h"
#include "nn/model.h"

namespace automc {
namespace compress {

enum class DecompKind {
  kSvd,   // filter-basis split (LFB)
  kHooi,  // Tucker-2 via HOOI (HOS)
};

// Replaces convolutions across the model with low-rank composites, choosing
// per-layer ranks via a single global rank-scale found by binary search so
// the model's parameter count drops by `target_param_fraction`. Sites where
// no rank saves parameters (e.g. 1x1 convs) are left untouched. Stops at the
// closest achievable reduction when the target is out of reach.
Status ApplyLowRankGlobal(nn::Model* model, double target_param_fraction,
                          DecompKind kind);

}  // namespace compress
}  // namespace automc

#endif  // AUTOMC_COMPRESS_LOWRANK_APPLY_H_
