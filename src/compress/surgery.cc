#include "compress/surgery.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/stats.h"
#include "nn/lowrank.h"
#include "nn/visit.h"

namespace automc {
namespace compress {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Layer;
using nn::Linear;
using nn::LMAActivation;
using nn::MaxPool2d;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Sequential;

namespace {

// The conv whose OUTPUT filters represent a layer's output channels: the
// layer itself for a plain Conv2d, the final 1x1 mixing stage for a
// LowRankConv composite (so decomposed layers stay prunable).
Conv2d* ProducerConv(Layer* layer) {
  if (auto* conv = dynamic_cast<Conv2d*>(layer)) return conv;
  if (auto* lr = dynamic_cast<nn::LowRankConv*>(layer)) {
    return lr->stage(lr->num_stages() - 1);
  }
  return nullptr;
}

// The conv whose INPUT channels consume a producer's output: the layer
// itself, or the first stage of a LowRankConv composite.
Conv2d* ConsumerConv(Layer* layer) {
  if (auto* conv = dynamic_cast<Conv2d*>(layer)) return conv;
  if (auto* lr = dynamic_cast<nn::LowRankConv*>(layer)) return lr->stage(0);
  return nullptr;
}

}  // namespace

std::vector<PrunableUnit> CollectPrunableUnits(nn::Model* model) {
  std::vector<PrunableUnit> units;

  // Residual-block internals.
  nn::VisitLayers(model->net(), [&units](Layer* l) {
    auto* block = dynamic_cast<ResidualBlock*>(l);
    if (block == nullptr) return;
    Conv2d* c1 = ProducerConv(block->conv1());
    Conv2d* c2_in = ConsumerConv(block->conv2());
    if (c1 != nullptr && c2_in != nullptr) {
      units.push_back(PrunableUnit{c1, block->bn1(), c2_in, nullptr, 1});
    }
    if (block->kind() == ResidualBlock::Kind::kBottleneck) {
      Conv2d* c2 = ProducerConv(block->conv2());
      Conv2d* c3_in = ConsumerConv(block->conv3());
      if (c2 != nullptr && c3_in != nullptr) {
        units.push_back(PrunableUnit{c2, block->bn2(), c3_in, nullptr, 1});
      }
    }
  });

  // Top-level sequential chains (VGG-style stacks).
  Sequential* root = model->net();
  Conv2d* pending = nullptr;
  BatchNorm2d* pending_bn = nullptr;
  bool saw_gap = false;
  for (int64_t i = 0; i < root->NumChildren(); ++i) {
    Layer* child = root->Child(i);
    if (dynamic_cast<Conv2d*>(child) != nullptr ||
        dynamic_cast<nn::LowRankConv*>(child) != nullptr) {
      if (pending != nullptr) {
        units.push_back(
            PrunableUnit{pending, pending_bn, ConsumerConv(child), nullptr, 1});
      }
      pending = ProducerConv(child);
      pending_bn = nullptr;
      saw_gap = false;
      continue;
    }
    if (auto* bn = dynamic_cast<BatchNorm2d*>(child)) {
      if (pending != nullptr) pending_bn = bn;
      continue;
    }
    if (dynamic_cast<GlobalAvgPool*>(child) != nullptr) {
      saw_gap = true;
      continue;
    }
    if (dynamic_cast<ReLU*>(child) != nullptr ||
        dynamic_cast<LMAActivation*>(child) != nullptr ||
        dynamic_cast<MaxPool2d*>(child) != nullptr ||
        dynamic_cast<Flatten*>(child) != nullptr) {
      continue;  // channel-preserving pass-throughs
    }
    if (auto* lin = dynamic_cast<Linear*>(child)) {
      // Only prune into the classifier when a GlobalAvgPool collapsed the
      // spatial dims (so one input feature per channel).
      if (pending != nullptr && saw_gap) {
        units.push_back(PrunableUnit{pending, pending_bn, nullptr, lin, 1});
      }
      pending = nullptr;
      continue;
    }
    // Residual blocks, low-rank composites etc. terminate the chain: their
    // input-channel count is not adjustable from here.
    pending = nullptr;
    pending_bn = nullptr;
  }
  return units;
}

Status PruneUnitFilters(const PrunableUnit& unit,
                        const std::vector<int64_t>& keep) {
  if (unit.conv == nullptr) return Status::InvalidArgument("unit without conv");
  if (keep.empty()) return Status::InvalidArgument("keep list empty");
  if (unit.next_conv == nullptr && unit.next_linear == nullptr) {
    return Status::InvalidArgument("unit without consumer");
  }
  for (int64_t f : keep) {
    if (f < 0 || f >= unit.conv->out_channels()) {
      return Status::OutOfRange("filter index out of range");
    }
  }
  unit.conv->KeepOutputFilters(keep);
  if (unit.bn != nullptr) unit.bn->KeepChannels(keep);
  if (unit.next_conv != nullptr) {
    unit.next_conv->KeepInputChannels(keep);
  } else {
    unit.next_linear->KeepInputFeatures(keep, unit.linear_group);
  }
  return Status::OK();
}

std::vector<ConvSite> CollectConvSites(nn::Model* model) {
  std::vector<ConvSite> sites;
  Sequential* root = model->net();
  for (int64_t i = 0; i < root->NumChildren(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(root->Child(i))) {
      ConvSite s;
      s.parent = root;
      s.child_index = i;
      s.conv = conv;
      sites.push_back(s);
      continue;
    }
    if (auto* block = dynamic_cast<ResidualBlock*>(root->Child(i))) {
      auto add_slot = [&sites, block](Layer* l, int slot) {
        auto* conv = dynamic_cast<Conv2d*>(l);
        if (conv == nullptr) return;
        ConvSite s;
        s.block = block;
        s.slot = slot;
        s.conv = conv;
        sites.push_back(s);
      };
      add_slot(block->conv1(), 1);
      add_slot(block->conv2(), 2);
      add_slot(block->conv3(), 3);
    }
  }
  return sites;
}

void ReplaceConvAtSite(const ConvSite& site,
                       std::unique_ptr<nn::Layer> replacement) {
  if (site.parent != nullptr) {
    site.parent->ReplaceChild(site.child_index, std::move(replacement));
    return;
  }
  AUTOMC_CHECK(site.block != nullptr);
  switch (site.slot) {
    case 1:
      site.block->set_conv1(std::move(replacement));
      break;
    case 2:
      site.block->set_conv2(std::move(replacement));
      break;
    case 3:
      site.block->set_conv3(std::move(replacement));
      break;
    default:
      AUTOMC_CHECK(false) << "bad conv slot " << site.slot;
  }
}

Status GlobalStructuredPrune(nn::Model* model, const GlobalPruneOptions& opts,
                             const ImportanceFn& importance) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (opts.target_param_fraction <= 0.0 || opts.target_param_fraction >= 1.0) {
    return Status::InvalidArgument("target_param_fraction must be in (0,1)");
  }
  std::vector<PrunableUnit> units = CollectPrunableUnits(model);
  if (units.empty()) {
    return Status::FailedPrecondition("model has no prunable units");
  }

  int64_t params_start = model->ParamCount();
  int64_t params_target = static_cast<int64_t>(
      std::llround(static_cast<double>(params_start) *
                   (1.0 - opts.target_param_fraction)));

  // Per-unit floor derived from the layer cap (HP6) and the absolute floor.
  std::vector<int64_t> floor(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    int64_t orig = units[u].conv->out_channels();
    int64_t cap_floor = static_cast<int64_t>(
        std::ceil(static_cast<double>(orig) *
                  (1.0 - opts.max_prune_ratio_per_layer)));
    floor[u] = std::max<int64_t>(opts.min_filters, cap_floor);
  }

  while (model->ParamCount() > params_target) {
    // Find the globally least important removable filter.
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_unit = 0;
    int64_t best_filter = -1;
    for (size_t u = 0; u < units.size(); ++u) {
      if (units[u].conv->out_channels() <= floor[u]) continue;
      for (int64_t f = 0; f < units[u].conv->out_channels(); ++f) {
        double s = importance(units[u], f);
        if (s < best_score) {
          best_score = s;
          best_unit = u;
          best_filter = f;
        }
      }
    }
    if (best_filter < 0) {
      // Expected when a strategy runs on an already-compressed model: the
      // remaining capacity is below the requested reduction.
      AUTOMC_LOG(Debug) << "global prune stopped early: caps reached at "
                          << model->ParamCount() << " params (target "
                          << params_target << ")";
      break;
    }
    std::vector<int64_t> keep;
    for (int64_t f = 0; f < units[best_unit].conv->out_channels(); ++f) {
      if (f != best_filter) keep.push_back(f);
    }
    AUTOMC_RETURN_IF_ERROR(PruneUnitFilters(units[best_unit], keep));
  }
  return Status::OK();
}

Status UniformStructuredPrune(nn::Model* model, double filter_fraction,
                              const ImportanceFn& importance,
                              int64_t min_filters) {
  if (filter_fraction < 0.0 || filter_fraction >= 1.0) {
    return Status::InvalidArgument("filter_fraction must be in [0,1)");
  }
  if (filter_fraction == 0.0) return Status::OK();
  std::vector<PrunableUnit> units = CollectPrunableUnits(model);
  for (const PrunableUnit& unit : units) {
    int64_t n = unit.conv->out_channels();
    int64_t keep_n = std::max(
        min_filters,
        n - static_cast<int64_t>(std::floor(filter_fraction * n)));
    if (keep_n >= n) continue;
    // Rank filters by importance, keep the strongest keep_n in index order.
    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(static_cast<size_t>(n));
    for (int64_t f = 0; f < n; ++f) scored.push_back({importance(unit, f), f});
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<int64_t> keep;
    for (int64_t i = 0; i < keep_n; ++i) keep.push_back(scored[static_cast<size_t>(i)].second);
    std::sort(keep.begin(), keep.end());
    AUTOMC_RETURN_IF_ERROR(PruneUnitFilters(unit, keep));
  }
  return Status::OK();
}

void ReplaceAllActivations(nn::Model* model, const nn::Layer& prototype) {
  Sequential* root = model->net();
  for (int64_t i = 0; i < root->NumChildren(); ++i) {
    if (dynamic_cast<ReLU*>(root->Child(i)) != nullptr ||
        dynamic_cast<LMAActivation*>(root->Child(i)) != nullptr) {
      root->ReplaceChild(i, prototype.Clone());
    }
  }
  nn::VisitLayers(root, [&prototype](Layer* l) {
    if (auto* block = dynamic_cast<ResidualBlock*>(l)) {
      block->ReplaceActivations(prototype);
    }
  });
}

double FilterL1(const PrunableUnit& unit, int64_t filter) {
  const Conv2d* conv = unit.conv;
  int64_t fsize = conv->in_channels() * conv->kernel() * conv->kernel();
  const float* w = conv->weight().value.data() + filter * fsize;
  return L1Norm(w, static_cast<size_t>(fsize));
}

double FilterL2(const PrunableUnit& unit, int64_t filter) {
  const Conv2d* conv = unit.conv;
  int64_t fsize = conv->in_channels() * conv->kernel() * conv->kernel();
  const float* w = conv->weight().value.data() + filter * fsize;
  return L2Norm(w, static_cast<size_t>(fsize));
}

double FilterBnGamma(const PrunableUnit& unit, int64_t filter) {
  if (unit.bn == nullptr) return FilterL2(unit, filter);
  return std::fabs(unit.bn->gamma().value[filter]);
}

}  // namespace compress
}  // namespace automc
