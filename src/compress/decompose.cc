#include "compress/decompose.h"

#include <algorithm>

#include "common/matrix.h"

namespace automc {
namespace compress {

using nn::Conv2d;
using nn::LowRankConv;
using tensor::Tensor;

namespace {

// Builds a Conv2d with explicitly provided weights (and optional bias).
std::unique_ptr<Conv2d> MakeConvWithWeights(int64_t in_c, int64_t out_c,
                                            int64_t kernel, int64_t stride,
                                            int64_t pad, const Tensor& weight,
                                            const Tensor* bias) {
  auto conv = std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad,
                                       bias != nullptr, nullptr);
  AUTOMC_CHECK_EQ(conv->weight().value.numel(), weight.numel());
  conv->weight().value = weight.Reshaped({out_c, in_c, kernel, kernel});
  if (bias != nullptr) {
    AUTOMC_CHECK_EQ(conv->bias().value.numel(), bias->numel());
    conv->bias().value = *bias;
  }
  return conv;
}

// Copies conv weight into a row-major Matrix of shape [rows, cols].
Matrix WeightAsMatrix(const Conv2d& conv) {
  int64_t f = conv.out_channels();
  int64_t ckk = conv.in_channels() * conv.kernel() * conv.kernel();
  Matrix m(f, ckk);
  const float* w = conv.weight().value.data();
  for (int64_t i = 0; i < f * ckk; ++i) m.data()[i] = w[i];
  return m;
}

}  // namespace

int64_t SvdParamsAtRank(const Conv2d& conv, int64_t rank) {
  int64_t ckk = conv.in_channels() * conv.kernel() * conv.kernel();
  int64_t params = rank * ckk + conv.out_channels() * rank;
  if (conv.has_bias()) params += conv.out_channels();
  return params;
}

int64_t SvdBreakEvenRank(const Conv2d& conv) {
  int64_t ckk = conv.in_channels() * conv.kernel() * conv.kernel();
  int64_t orig = conv.out_channels() * ckk;
  // Largest r with r*ckk + F*r < orig.
  int64_t r = (orig - 1) / (ckk + conv.out_channels());
  return std::max<int64_t>(0, r);
}

std::unique_ptr<LowRankConv> SvdDecomposeConv(const Conv2d& conv,
                                              int64_t rank) {
  int64_t f = conv.out_channels();
  int64_t c = conv.in_channels();
  int64_t k = conv.kernel();
  int64_t ckk = c * k * k;
  rank = std::max<int64_t>(1, std::min(rank, std::min(f, ckk)));

  SvdResult svd = TruncatedSvd(WeightAsMatrix(conv), rank);

  // Stage 1: rank basis filters (S V^T rows), original stride/pad.
  Tensor w1({rank, c, k, k});
  for (int64_t r = 0; r < rank; ++r) {
    double s = svd.s[static_cast<size_t>(r)];
    for (int64_t j = 0; j < ckk; ++j) {
      w1[r * ckk + j] = static_cast<float>(s * svd.v.at(j, r));
    }
  }
  // Stage 2: 1x1 mixing conv with U.
  Tensor w2({f, rank, 1, 1});
  for (int64_t i = 0; i < f; ++i) {
    for (int64_t r = 0; r < rank; ++r) {
      w2[i * rank + r] = static_cast<float>(svd.u.at(i, r));
    }
  }

  std::vector<std::unique_ptr<Conv2d>> stages;
  stages.push_back(MakeConvWithWeights(c, rank, k, conv.stride(), conv.pad(),
                                       w1, nullptr));
  const Tensor* bias = conv.has_bias() ? &conv.bias().value : nullptr;
  stages.push_back(MakeConvWithWeights(rank, f, 1, 1, 0, w2, bias));
  return std::make_unique<LowRankConv>(std::move(stages));
}

std::pair<int64_t, int64_t> ClampTuckerRanks(const Conv2d& conv,
                                             int64_t rank_out,
                                             int64_t rank_in) {
  int64_t f = conv.out_channels();
  int64_t c = conv.in_channels();
  int64_t k = conv.kernel();
  rank_out = std::max<int64_t>(1, std::min(rank_out, f));
  rank_in = std::max<int64_t>(1, std::min(rank_in, c));
  // The mode SVDs can only supply min(F, r_in*k^2) / min(C, r_out*k^2)
  // directions; clamp so the factor matrices always have full column count.
  rank_out = std::min(rank_out, std::max<int64_t>(1, rank_in * k * k));
  rank_in = std::min(rank_in, std::max<int64_t>(1, rank_out * k * k));
  rank_out = std::min(rank_out, c * k * k);
  rank_in = std::min(rank_in, f * k * k);
  return {rank_out, rank_in};
}

int64_t TuckerParamsAtRanks(const Conv2d& conv, int64_t rank_out,
                            int64_t rank_in) {
  int64_t k = conv.kernel();
  int64_t params = conv.in_channels() * rank_in + rank_out * rank_in * k * k +
                   conv.out_channels() * rank_out;
  if (conv.has_bias()) params += conv.out_channels();
  return params;
}

namespace {

// Mode-1 unfolding of W[F,C,k,k]: [F, C*k*k] (already the storage order).
Matrix Unfold1(const Tensor& w) {
  int64_t f = w.size(0), rest = w.numel() / w.size(0);
  Matrix m(f, rest);
  for (int64_t i = 0; i < w.numel(); ++i) m.data()[i] = w[i];
  return m;
}

// Mode-2 unfolding of W[F,C,k,k]: [C, F*k*k].
Matrix Unfold2(const Tensor& w) {
  int64_t f = w.size(0), c = w.size(1), kk = w.size(2) * w.size(3);
  Matrix m(c, f * kk);
  for (int64_t fi = 0; fi < f; ++fi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t p = 0; p < kk; ++p) {
        m.at(ci, fi * kk + p) = w[(fi * c + ci) * kk + p];
      }
    }
  }
  return m;
}

// W x1 U^T: contract the F mode with U[F, r] -> [r, C, k, k].
Tensor ModeProduct1(const Tensor& w, const Matrix& u) {
  int64_t f = w.size(0), c = w.size(1), kh = w.size(2), kw = w.size(3);
  int64_t r = u.cols();
  Tensor out({r, c, kh, kw});
  int64_t inner = c * kh * kw;
  for (int64_t ri = 0; ri < r; ++ri) {
    for (int64_t fi = 0; fi < f; ++fi) {
      double coef = u.at(fi, ri);
      if (coef == 0.0) continue;
      for (int64_t p = 0; p < inner; ++p) {
        out[ri * inner + p] += static_cast<float>(coef * w[fi * inner + p]);
      }
    }
  }
  return out;
}

// W x2 V^T: contract the C mode with V[C, r] -> [F, r, k, k].
Tensor ModeProduct2(const Tensor& w, const Matrix& v) {
  int64_t f = w.size(0), c = w.size(1), kh = w.size(2), kw = w.size(3);
  int64_t r = v.cols();
  int64_t kk = kh * kw;
  Tensor out({f, r, kh, kw});
  for (int64_t fi = 0; fi < f; ++fi) {
    for (int64_t ri = 0; ri < r; ++ri) {
      for (int64_t ci = 0; ci < c; ++ci) {
        double coef = v.at(ci, ri);
        if (coef == 0.0) continue;
        for (int64_t p = 0; p < kk; ++p) {
          out[(fi * r + ri) * kk + p] +=
              static_cast<float>(coef * w[(fi * c + ci) * kk + p]);
        }
      }
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<LowRankConv> HooiDecomposeConv(const Conv2d& conv,
                                               int64_t rank_out,
                                               int64_t rank_in, int iters) {
  int64_t f = conv.out_channels();
  int64_t c = conv.in_channels();
  int64_t k = conv.kernel();
  std::tie(rank_out, rank_in) = ClampTuckerRanks(conv, rank_out, rank_in);

  const Tensor& w = conv.weight().value;

  // HOSVD init.
  Matrix u = TruncatedSvd(Unfold1(w), rank_out).u;  // [F, r_out]
  Matrix v = TruncatedSvd(Unfold2(w), rank_in).u;   // [C, r_in]

  // HOOI alternating refinement.
  for (int it = 0; it < iters; ++it) {
    Tensor y = ModeProduct2(w, v);                   // [F, r_in, k, k]
    u = TruncatedSvd(Unfold1(y), rank_out).u;        // refresh U
    Tensor z = ModeProduct1(w, u);                   // [r_out, C, k, k]
    v = TruncatedSvd(Unfold2(z), rank_in).u;         // refresh V
  }

  // Core G = W x1 U^T x2 V^T -> [r_out, r_in, k, k].
  Tensor core = ModeProduct2(ModeProduct1(w, u), v);

  // Stage 1: 1x1 input projection with V^T -> weight [r_in, C, 1, 1].
  Tensor w_in({rank_in, c, 1, 1});
  for (int64_t ri = 0; ri < rank_in; ++ri) {
    for (int64_t ci = 0; ci < c; ++ci) {
      w_in[ri * c + ci] = static_cast<float>(v.at(ci, ri));
    }
  }
  // Stage 3: 1x1 output projection with U -> weight [F, r_out, 1, 1].
  Tensor w_out({f, rank_out, 1, 1});
  for (int64_t fi = 0; fi < f; ++fi) {
    for (int64_t ri = 0; ri < rank_out; ++ri) {
      w_out[fi * rank_out + ri] = static_cast<float>(u.at(fi, ri));
    }
  }

  std::vector<std::unique_ptr<Conv2d>> stages;
  stages.push_back(MakeConvWithWeights(c, rank_in, 1, 1, 0, w_in, nullptr));
  stages.push_back(MakeConvWithWeights(rank_in, rank_out, k, conv.stride(),
                                       conv.pad(), core, nullptr));
  const Tensor* bias = conv.has_bias() ? &conv.bias().value : nullptr;
  stages.push_back(MakeConvWithWeights(rank_out, f, 1, 1, 0, w_out, bias));
  return std::make_unique<LowRankConv>(std::move(stages));
}

}  // namespace compress
}  // namespace automc
