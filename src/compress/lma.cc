#include "compress/methods.h"
#include "compress/surgery.h"
#include "nn/trainer.h"

namespace automc {
namespace compress {

using tensor::Tensor;

Status LmaCompressor::Compress(nn::Model* model, const CompressionContext& ctx,
                               CompressionStats* stats) {
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    return Status::InvalidArgument("LMA alpha must be in [0,1]");
  }
  if (config_.temperature <= 0.0) {
    return Status::InvalidArgument("LMA temperature must be positive");
  }
  return MeasureAround(
      model, ctx,
      [&]() -> Status {
        // The uncompressed model acts as the distillation teacher.
        std::unique_ptr<nn::Model> teacher = model->Clone();

        // Build the student in place: shrink structurally to the decrease
        // ratio, then swap in multi-segment activations.
        GlobalPruneOptions opts;
        opts.target_param_fraction = config_.decrease_ratio;
        AUTOMC_RETURN_IF_ERROR(
            GlobalStructuredPrune(model, opts, FilterL2));
        nn::LMAActivation prototype(config_.segments);
        ReplaceAllActivations(model, prototype);

        // Distill: alpha * CE + (1 - alpha) * T^2 KL(teacher || student).
        nn::Model* teacher_ptr = teacher.get();
        float temp = static_cast<float>(config_.temperature);
        float alpha = static_cast<float>(config_.alpha);
        nn::LossFn loss = [teacher_ptr, temp, alpha](
                              const Tensor& logits,
                              const std::vector<int>& labels,
                              const Tensor& images) {
          Tensor teacher_logits =
              teacher_ptr->Forward(images, /*training=*/false);
          nn::LossResult ce = nn::CrossEntropy(logits, labels);
          nn::LossResult kd =
              nn::DistillationKl(logits, teacher_logits, temp);
          nn::LossResult out;
          out.loss = alpha * ce.loss + (1.0f - alpha) * kd.loss;
          out.grad = ce.grad;
          out.grad.Scale(alpha);
          out.grad.AxpyInPlace(1.0f - alpha, kd.grad);
          return out;
        };

        nn::TrainConfig tc;
        tc.epochs = ctx.EpochsFromFraction(config_.finetune_frac);
        tc.batch_size = ctx.batch_size;
        tc.lr = ctx.lr;
        tc.seed = ctx.seed + 101;
        nn::Trainer trainer(tc);
        return trainer.Fit(model, *ctx.train, loss);
      },
      stats);
}

}  // namespace compress
}  // namespace automc
