#ifndef AUTOMC_ARTIFACT_CHUNK_STORE_H_
#define AUTOMC_ARTIFACT_CHUNK_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sha256.h"

namespace automc {
namespace artifact {

// Content-addressed chunk storage: fixed-size chunks keyed by their SHA-256
// digest, persisted in CRC-framed append-only pack files with a versioned
// mmap hash index (the experience-index publish contract: flock-serialized
// writers, lock-free mmap readers, atomic tmp+fsync+rename index replace).
//
// On-disk layout under Options::dir —
//   packs/pack-<n>.bin   append-only chunk frames:
//                          u32 len | u32 crc32(payload) | payload
//                        where payload = 32-byte digest || chunk bytes;
//   chunks.idx           the published index (format below);
//   index.lock           flock'd by publishers and the GC;
//   quarantine.log       hex digests of chunks that failed verification.
//
// chunks.idx ("AMAI", little-endian):
//   u32 magic | u32 version | u64 generation
//   u32 pack_count | pack_count * (u32 pack_id, u64 covered_bytes)
//   u64 entry_count | entry_count * (digest[32], u32 pack_id, u32 size,
//                                    u64 offset)
//   u64 bucket_count | bucket_count * u32 entry-index (0xFFFFFFFF = empty)
//   u32 crc32(everything before)
// Buckets are an open-addressed table over the digest's first 8 bytes
// (power-of-two size, <= 50% load, linear probing); `covered_bytes` lets the
// next publish replay only the pack suffix an older index had not seen, so
// a publish torn between "chunks appended" and "index renamed" self-heals.
//
// A corrupt or missing index never fails Open: the store degrades to an
// in-memory map rebuilt by replaying every pack frame (metric
// artifact.index_rebuilds), exactly like the experience tier. A corrupt
// *chunk* is a different animal — GetChunk verifies the frame CRC, the
// embedded digest, and the recomputed SHA-256 of the bytes, and returns a
// typed kDataLoss (never the bytes) on any mismatch, quarantining the
// digest (metric artifact.quarantined + quarantine.log).
class ChunkStore {
 public:
  struct Options {
    std::string dir;
    // Chunk size in bytes. 0 reads $AUTOMC_ARTIFACT_CHUNK_SIZE (default
    // 256 KiB); clamped to [4 KiB, 8 MiB] so a chunk always fits a wire
    // frame with generous headroom under the 64 MiB cap.
    size_t chunk_size = 0;
    // Start a new pack file once the current one exceeds this. 0 reads
    // $AUTOMC_ARTIFACT_PACK_MAX (default 64 MiB, min 1 MiB).
    size_t pack_rollover = 0;
  };

  // What one PutChunks call did — the dedup measurement surface.
  struct PutResult {
    std::vector<Sha256Digest> digests;  // one per input chunk, in order
    uint64_t new_chunks = 0;
    uint64_t new_bytes = 0;  // chunk payload bytes actually appended
    uint64_t dup_chunks = 0;
    uint64_t dup_bytes = 0;  // payload bytes dedup avoided appending
  };

  static Result<std::unique_ptr<ChunkStore>> Open(Options options);
  ~ChunkStore();

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // Splits `blob` into chunk_size() pieces and appends the ones not already
  // stored, then atomically republishes the index. Serialized against other
  // publishers (any process) via flock; metrics artifact.chunks_stored /
  // artifact.bytes_stored / artifact.dedup_chunks / artifact.dedup_bytes.
  Result<PutResult> PutBlob(std::string_view blob);

  // Reads and verifies one chunk. kNotFound when the digest is unknown,
  // kDataLoss when the stored bytes fail any integrity check.
  Result<std::string> GetChunk(const Sha256Digest& digest);

  bool Contains(const Sha256Digest& digest);

  // Rewrites the packs keeping only `live` chunks and publishes an index
  // over the survivors; old packs are deleted after the new index is in
  // place. Returns the payload bytes reclaimed. Every surviving chunk is
  // re-verified on the way through; a corrupt *live* chunk aborts the GC
  // with kDataLoss and leaves the store untouched (a corrupt dead chunk is
  // simply dropped). Metric artifact.gc_reclaimed_bytes.
  Result<uint64_t> CollectGarbage(const std::set<Sha256Digest>& live);

  // Re-reads the published index if another process advanced it. Cheap
  // (one stat) when nothing changed; GetChunk calls it on a miss, so
  // cross-process publishes become visible without reopening the store.
  void Refresh();

  size_t chunk_size() const { return chunk_size_; }
  // Chunks visible in the current index/fallback view (tests).
  size_t KnownChunks();

 private:
  struct Loc {
    uint32_t pack_id = 0;
    uint32_t size = 0;    // chunk payload bytes
    uint64_t offset = 0;  // frame start within the pack file
  };

  ChunkStore() = default;

  std::string PackPath(uint32_t pack_id) const;
  // (Re)maps chunks.idx and validates it; on failure falls back to a full
  // pack replay into fallback_. Caller holds mu_.
  void LoadIndexLocked();
  void UnmapLocked();
  // Probes the mapped bucket table (or fallback_). Caller holds mu_.
  bool FindLocked(const Sha256Digest& digest, Loc* loc) const;
  // Stat-based change detection + remap. Caller holds mu_.
  void RefreshLocked();
  Result<std::string> ReadVerifiedLocked(const Sha256Digest& digest,
                                         const Loc& loc);
  void QuarantineLocked(const Sha256Digest& digest, const std::string& why);
  // Publisher-side view: parses the current index (or replays packs) into
  // `out`, then sweeps every pack's bytes past the covered offsets so a
  // torn previous publish self-heals. Caller holds mu_ and the flock.
  void CollectEntriesLocked(std::map<Sha256Digest, Loc>* out,
                            std::map<uint32_t, uint64_t>* covered);
  // Serializes + atomically replaces chunks.idx, then remaps it.
  Status PublishIndexLocked(const std::map<Sha256Digest, Loc>& entries,
                            const std::map<uint32_t, uint64_t>& covered);
  // Pack ids present on disk, ascending. Caller holds mu_.
  std::vector<uint32_t> ListPacksLocked() const;

  std::string dir_;
  size_t chunk_size_ = 0;
  size_t pack_rollover_ = 0;

  std::mutex mu_;  // guards everything below (one Registry is shared by
                   // job threads publishing and the event loop serving)
  // mmap view of the published index; readers probe it without any lock
  // against other processes (the CRC tail + atomic rename make a torn view
  // impossible — they see the old file or the new one).
  char* map_base_ = nullptr;
  size_t map_len_ = 0;
  uint64_t entry_count_ = 0;
  size_t entries_off_ = 0;
  uint64_t bucket_count_ = 0;
  size_t buckets_off_ = 0;
  uint64_t generation_ = 0;
  // Identity of the mapped file (stat), for cheap change detection.
  uint64_t map_ino_ = 0;
  uint64_t map_size_ = 0;
  int64_t map_mtime_ns_ = 0;
  bool have_index_ = false;
  // Replay fallback when the index is missing/corrupt.
  std::map<Sha256Digest, Loc> fallback_;
  std::set<Sha256Digest> quarantined_;
};

}  // namespace artifact
}  // namespace automc

#endif  // AUTOMC_ARTIFACT_CHUNK_STORE_H_
