#ifndef AUTOMC_ARTIFACT_MANIFEST_H_
#define AUTOMC_ARTIFACT_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "artifact/chunk_store.h"
#include "common/result.h"
#include "common/sha256.h"

namespace automc {
namespace artifact {

// Where a published model came from — enough to reproduce it (the scheme
// string feeds core::ParseScheme) and to rank it without fetching bytes.
struct Provenance {
  uint64_t job_id = 0;
  std::string scheme;   // compression scheme, e.g. "2,7,1"
  std::string summary;  // free-form origin note ("server job", "cli export")
  double acc = 0.0;
  int64_t params = 0;
  int64_t flops = 0;
};

// One named artifact: an ordered chunk list plus provenance. The manifest
// is the unit of naming and GC liveness; the chunks it references live in
// the shared ChunkStore and may be shared with other manifests (dedup).
struct Manifest {
  std::string name;
  uint64_t total_size = 0;
  Sha256Digest blob_digest{};  // SHA-256 of the whole reassembled blob
  std::vector<Sha256Digest> chunks;
  Provenance prov;
};

// Encoded manifest blob (no framing); used by the .mf file codec and by
// tests that want to round-trip.
std::string EncodeManifest(const Manifest& m);
Result<Manifest> DecodeManifest(std::string_view bytes);

// Artifact names are path components and wire strings: [A-Za-z0-9._-]+,
// not starting with a dot, at most 128 bytes.
bool ValidArtifactName(std::string_view name);

// Content-addressed model registry: ChunkStore for the bytes, one
// CRC-guarded `manifests/<name>.mf` file per published model. Publish
// order is chunks-first, manifest-last, so a crash in between leaves only
// orphaned chunks (reclaimed by the next CollectGarbage), never a manifest
// pointing at missing data. Safe to share across processes: manifests are
// atomic-renamed files, chunk publishes are flock-serialized, and List()
// always re-reads the directory.
class Registry {
 public:
  struct Options {
    std::string dir;        // registry root; chunks + manifests live under it
    size_t chunk_size = 0;  // 0 → ChunkStore default / env knob
  };

  static Result<std::unique_ptr<Registry>> Open(Options options);

  // Chunks `blob`, stores the missing pieces, then atomically writes the
  // manifest. Overwrites an existing manifest of the same name.
  Result<Manifest> Publish(const std::string& name, std::string_view blob,
                           const Provenance& prov);

  Result<Manifest> GetManifest(const std::string& name);

  // Reassembles and verifies the whole blob (every chunk's integrity plus
  // the manifest's total size and blob digest). kDataLoss on any mismatch.
  Result<std::string> FetchBlob(const std::string& name);

  // All manifests currently on disk, sorted by name. Unreadable or corrupt
  // manifest files are skipped with a warning (their chunks stay live only
  // if another manifest references them).
  std::vector<Manifest> List();

  // Deletes the manifest only; chunk bytes persist until CollectGarbage.
  Status Remove(const std::string& name);

  // Drops every chunk not referenced by any remaining manifest.
  // Returns payload bytes reclaimed.
  Result<uint64_t> CollectGarbage();

  ChunkStore* chunks() { return store_.get(); }
  const std::string& dir() const { return dir_; }

 private:
  Registry() = default;

  std::string ManifestPath(const std::string& name) const;

  std::string dir_;
  std::unique_ptr<ChunkStore> store_;
};

}  // namespace artifact
}  // namespace automc

#endif  // AUTOMC_ARTIFACT_MANIFEST_H_
