#include "artifact/manifest.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/logging.h"

namespace automc {
namespace artifact {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kManifestMagic = 0x4D414D41;  // "AMAM"
constexpr size_t kMaxNameLen = 128;
constexpr size_t kMaxManifestBytes = 64u << 20;

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
    if (out.size() > kMaxManifestBytes) {
      std::fclose(f);
      return Status::DataLoss("manifest " + path + " is implausibly large");
    }
  }
  std::fclose(f);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot write " + tmp);
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
  if (ok) ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place");
  }
  return Status::OK();
}

}  // namespace

bool ValidArtifactName(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLen || name[0] == '.') {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string EncodeManifest(const Manifest& m) {
  ByteWriter w;
  w.Str(m.name);
  w.U64(m.total_size);
  w.Raw(m.blob_digest.data(), m.blob_digest.size());
  w.U32(static_cast<uint32_t>(m.chunks.size()));
  for (const Sha256Digest& d : m.chunks) w.Raw(d.data(), d.size());
  w.U64(m.prov.job_id);
  w.Str(m.prov.scheme);
  w.Str(m.prov.summary);
  w.F64(m.prov.acc);
  w.I64(m.prov.params);
  w.I64(m.prov.flops);
  return w.Take();
}

Result<Manifest> DecodeManifest(std::string_view bytes) {
  ByteReader r(bytes);
  Manifest m;
  uint32_t chunk_count = 0;
  if (!r.Str(&m.name) || !r.U64(&m.total_size) ||
      !r.Raw(m.blob_digest.data(), m.blob_digest.size()) ||
      !r.U32(&chunk_count)) {
    return Status::DataLoss("truncated manifest");
  }
  if (r.remaining() < chunk_count * 32ull) {
    return Status::DataLoss("manifest chunk list truncated");
  }
  m.chunks.resize(chunk_count);
  for (uint32_t i = 0; i < chunk_count; ++i) {
    if (!r.Raw(m.chunks[i].data(), m.chunks[i].size())) {
      return Status::DataLoss("manifest chunk list truncated");
    }
  }
  if (!r.U64(&m.prov.job_id) || !r.Str(&m.prov.scheme) ||
      !r.Str(&m.prov.summary) || !r.F64(&m.prov.acc) ||
      !r.I64(&m.prov.params) || !r.I64(&m.prov.flops) || !r.Done()) {
    return Status::DataLoss("truncated manifest provenance");
  }
  if (!ValidArtifactName(m.name)) {
    return Status::DataLoss("manifest carries an invalid name");
  }
  return m;
}

Result<std::unique_ptr<Registry>> Registry::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("Registry needs a directory");
  }
  std::unique_ptr<Registry> reg(new Registry());
  reg->dir_ = options.dir;
  std::error_code ec;
  fs::create_directories(reg->dir_ + "/manifests", ec);
  if (ec) {
    return Status::Internal("cannot create " + reg->dir_ +
                            "/manifests: " + ec.message());
  }
  ChunkStore::Options copts;
  copts.dir = reg->dir_;
  copts.chunk_size = options.chunk_size;
  auto store = ChunkStore::Open(copts);
  AUTOMC_RETURN_IF_ERROR(store.status());
  reg->store_ = std::move(*store);
  return reg;
}

std::string Registry::ManifestPath(const std::string& name) const {
  return dir_ + "/manifests/" + name + ".mf";
}

Result<Manifest> Registry::Publish(const std::string& name,
                                   std::string_view blob,
                                   const Provenance& prov) {
  if (!ValidArtifactName(name)) {
    return Status::InvalidArgument("invalid artifact name '" + name + "'");
  }
  auto put = store_->PutBlob(blob);
  AUTOMC_RETURN_IF_ERROR(put.status());
  Manifest m;
  m.name = name;
  m.total_size = blob.size();
  m.blob_digest = Sha256::Hash(blob);
  m.chunks = std::move(put->digests);
  m.prov = prov;
  const std::string body = EncodeManifest(m);
  ByteWriter w;
  w.U32(kManifestMagic);
  w.U32(Crc32(body));
  w.Raw(body.data(), body.size());
  AUTOMC_RETURN_IF_ERROR(WriteFileAtomic(ManifestPath(name), w.str()));
  return m;
}

Result<Manifest> Registry::GetManifest(const std::string& name) {
  if (!ValidArtifactName(name)) {
    return Status::InvalidArgument("invalid artifact name '" + name + "'");
  }
  auto bytes = ReadWholeFile(ManifestPath(name));
  if (!bytes.ok()) return Status::NotFound("no artifact '" + name + "'");
  ByteReader r(*bytes);
  uint32_t magic = 0, crc = 0;
  if (!r.U32(&magic) || !r.U32(&crc) || magic != kManifestMagic) {
    return Status::DataLoss("manifest for '" + name + "' is not AMAM");
  }
  const std::string_view body =
      std::string_view(*bytes).substr(2 * sizeof(uint32_t));
  if (Crc32(body) != crc) {
    return Status::DataLoss("manifest for '" + name + "' failed CRC");
  }
  auto m = DecodeManifest(body);
  AUTOMC_RETURN_IF_ERROR(m.status());
  if (m->name != name) {
    return Status::DataLoss("manifest for '" + name +
                            "' names a different artifact");
  }
  return m;
}

Result<std::string> Registry::FetchBlob(const std::string& name) {
  auto m = GetManifest(name);
  AUTOMC_RETURN_IF_ERROR(m.status());
  std::string blob;
  blob.reserve(m->total_size);
  for (const Sha256Digest& d : m->chunks) {
    auto chunk = store_->GetChunk(d);
    AUTOMC_RETURN_IF_ERROR(chunk.status());
    blob.append(*chunk);
  }
  if (blob.size() != m->total_size) {
    return Status::DataLoss("artifact '" + name +
                            "' reassembled to the wrong size");
  }
  if (Sha256::Hash(blob) != m->blob_digest) {
    return Status::DataLoss("artifact '" + name +
                            "' reassembled to the wrong digest");
  }
  return blob;
}

std::vector<Manifest> Registry::List() {
  std::vector<Manifest> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/manifests", ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.size() < 4 || fname.substr(fname.size() - 3) != ".mf") continue;
    const std::string name = fname.substr(0, fname.size() - 3);
    auto m = GetManifest(name);
    if (!m.ok()) {
      AUTOMC_LOG(Warning) << "skipping unreadable manifest " << fname << ": "
                          << m.status().ToString();
      continue;
    }
    out.push_back(std::move(*m));
  }
  std::sort(out.begin(), out.end(),
            [](const Manifest& a, const Manifest& b) { return a.name < b.name; });
  return out;
}

Status Registry::Remove(const std::string& name) {
  if (!ValidArtifactName(name)) {
    return Status::InvalidArgument("invalid artifact name '" + name + "'");
  }
  if (std::remove(ManifestPath(name).c_str()) != 0) {
    return Status::NotFound("no artifact '" + name + "'");
  }
  return Status::OK();
}

Result<uint64_t> Registry::CollectGarbage() {
  std::set<Sha256Digest> live;
  for (const Manifest& m : List()) {
    live.insert(m.chunks.begin(), m.chunks.end());
  }
  return store_->CollectGarbage(live);
}

}  // namespace artifact
}  // namespace automc
