#include "artifact/chunk_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace automc {
namespace artifact {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kIndexMagic = 0x49414D41;  // "AMAI" read little-endian
constexpr uint32_t kIndexVersion = 1;
constexpr uint32_t kEmptyBucket = 0xFFFFFFFFu;
constexpr size_t kEntrySize = 32 + 4 + 4 + 8;  // digest, pack, size, offset
constexpr size_t kFrameHeader = 8;             // u32 len | u32 crc

constexpr size_t kMinChunk = 4u << 10;
constexpr size_t kMaxChunk = 8u << 20;
constexpr size_t kDefaultChunk = 256u << 10;
constexpr size_t kMinRollover = 1u << 20;
constexpr size_t kDefaultRollover = 64u << 20;

size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return fallback;
  return static_cast<size_t>(v);
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t BucketKey(const Sha256Digest& digest) {
  uint64_t key;
  std::memcpy(&key, digest.data(), sizeof(key));
  return key;
}

// tmp + fsync + rename (the checkpointer/index crash discipline).
Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot write " + tmp + ": " +
                            std::strerror(errno));
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
  if (ok) ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

// flock-based publisher serialization; readers never take it.
class PublishLock {
 public:
  explicit PublishLock(const std::string& dir) {
    fd_ = ::open((dir + "/index.lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                 0644);
    if (fd_ >= 0) {
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
    }
  }
  ~PublishLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// One pack frame: u32 len | u32 crc32(payload) | digest[32] || data.
std::string EncodeChunkFrame(const Sha256Digest& digest,
                             std::string_view data) {
  ByteWriter payload;
  payload.Raw(digest.data(), digest.size());
  payload.Raw(data.data(), data.size());
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.str().size()));
  w.U32(Crc32(payload.str()));
  w.Raw(payload.str().data(), payload.str().size());
  return w.Take();
}

}  // namespace

Result<std::unique_ptr<ChunkStore>> ChunkStore::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("ChunkStore needs a directory");
  }
  std::unique_ptr<ChunkStore> store(new ChunkStore());
  store->dir_ = options.dir;
  size_t chunk = options.chunk_size != 0
                     ? options.chunk_size
                     : SizeFromEnv("AUTOMC_ARTIFACT_CHUNK_SIZE", kDefaultChunk);
  store->chunk_size_ = std::clamp(chunk, kMinChunk, kMaxChunk);
  size_t roll = options.pack_rollover != 0
                    ? options.pack_rollover
                    : SizeFromEnv("AUTOMC_ARTIFACT_PACK_MAX", kDefaultRollover);
  store->pack_rollover_ = std::max(roll, kMinRollover);
  std::error_code ec;
  fs::create_directories(store->dir_ + "/packs", ec);
  if (ec) {
    return Status::Internal("cannot create " + store->dir_ +
                            "/packs: " + ec.message());
  }
  std::unique_lock<std::mutex> lock(store->mu_);
  store->LoadIndexLocked();
  lock.unlock();
  return store;
}

ChunkStore::~ChunkStore() {
  std::unique_lock<std::mutex> lock(mu_);
  UnmapLocked();
}

std::string ChunkStore::PackPath(uint32_t pack_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "pack-%06u.bin", pack_id);
  return dir_ + "/packs/" + name;
}

std::vector<uint32_t> ChunkStore::ListPacksLocked() const {
  std::vector<uint32_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/packs", ec)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(name.c_str(), "pack-%06u.bin", &id) == 1 && id > 0) {
      ids.push_back(static_cast<uint32_t>(id));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ChunkStore::UnmapLocked() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
  }
  have_index_ = false;
  entry_count_ = 0;
  bucket_count_ = 0;
}

void ChunkStore::LoadIndexLocked() {
  UnmapLocked();
  fallback_.clear();
  const std::string path = dir_ + "/chunks.idx";
  bool index_existed = false;
  do {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) break;
    index_existed = true;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 36) {
      ::close(fd);
      break;
    }
    const size_t len = static_cast<size_t>(st.st_size);
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) break;
    const char* p = static_cast<const char*>(base);
    // CRC tail guards the whole image: a reader sees the old file or the
    // new one, never a torn mix (rename is atomic), and bit rot is caught.
    if (Crc32(p, len - 4) != LoadU32(p + len - 4) ||
        LoadU32(p) != kIndexMagic || LoadU32(p + 4) != kIndexVersion) {
      ::munmap(base, len);
      break;
    }
    size_t off = 8;
    const uint64_t generation = LoadU64(p + off);
    off += 8;
    const uint32_t pack_count = LoadU32(p + off);
    off += 4;
    if (off + pack_count * 12ull > len - 4) {
      ::munmap(base, len);
      break;
    }
    off += pack_count * 12ull;  // pack table is publisher-only; skip
    if (off + 8 > len - 4) {
      ::munmap(base, len);
      break;
    }
    const uint64_t entry_count = LoadU64(p + off);
    off += 8;
    const size_t entries_off = off;
    if (off + entry_count * kEntrySize > len - 4) {
      ::munmap(base, len);
      break;
    }
    off += entry_count * kEntrySize;
    if (off + 8 > len - 4) {
      ::munmap(base, len);
      break;
    }
    const uint64_t bucket_count = LoadU64(p + off);
    off += 8;
    const size_t buckets_off = off;
    if (bucket_count == 0 || (bucket_count & (bucket_count - 1)) != 0 ||
        off + bucket_count * 4 != len - 4) {
      ::munmap(base, len);
      break;
    }
    map_base_ = static_cast<char*>(base);
    map_len_ = len;
    generation_ = generation;
    entry_count_ = entry_count;
    entries_off_ = entries_off;
    bucket_count_ = bucket_count;
    buckets_off_ = buckets_off;
    map_ino_ = static_cast<uint64_t>(st.st_ino);
    map_size_ = len;
    map_mtime_ns_ =
        st.st_mtim.tv_sec * 1000000000ll + st.st_mtim.tv_nsec;
    have_index_ = true;
    return;
  } while (false);

  // Missing or corrupt index: degrade to a full pack replay. Strictly a
  // read-side fallback — the next publish rewrites a good index.
  std::map<uint32_t, uint64_t> covered;  // discarded; replay starts at 0
  CollectEntriesLocked(&fallback_, &covered);
  if (index_existed || !fallback_.empty()) {
    AUTOMC_METRIC_COUNT("artifact.index_rebuilds");
    AUTOMC_LOG(Warning) << "artifact index " << path
                        << " unusable; replaying packs (" << fallback_.size()
                        << " chunks)";
  }
}

void ChunkStore::RefreshLocked() {
  const std::string path = dir_ + "/chunks.idx";
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (have_index_) LoadIndexLocked();
    return;
  }
  const int64_t mtime_ns =
      st.st_mtim.tv_sec * 1000000000ll + st.st_mtim.tv_nsec;
  if (!have_index_ || static_cast<uint64_t>(st.st_ino) != map_ino_ ||
      static_cast<uint64_t>(st.st_size) != map_size_ ||
      mtime_ns != map_mtime_ns_) {
    LoadIndexLocked();
  }
}

void ChunkStore::Refresh() {
  std::unique_lock<std::mutex> lock(mu_);
  RefreshLocked();
}

bool ChunkStore::FindLocked(const Sha256Digest& digest, Loc* loc) const {
  if (!have_index_) {
    auto it = fallback_.find(digest);
    if (it == fallback_.end()) return false;
    *loc = it->second;
    return true;
  }
  const uint64_t mask = bucket_count_ - 1;
  uint64_t slot = BucketKey(digest) & mask;
  for (uint64_t probes = 0; probes < bucket_count_; ++probes) {
    const uint32_t idx = LoadU32(map_base_ + buckets_off_ + 4 * slot);
    if (idx == kEmptyBucket) return false;
    if (idx < entry_count_) {
      const char* e = map_base_ + entries_off_ + idx * kEntrySize;
      if (std::memcmp(e, digest.data(), 32) == 0) {
        loc->pack_id = LoadU32(e + 32);
        loc->size = LoadU32(e + 36);
        loc->offset = LoadU64(e + 40);
        return true;
      }
    }
    slot = (slot + 1) & mask;
  }
  return false;
}

size_t ChunkStore::KnownChunks() {
  std::unique_lock<std::mutex> lock(mu_);
  RefreshLocked();
  return have_index_ ? static_cast<size_t>(entry_count_) : fallback_.size();
}

bool ChunkStore::Contains(const Sha256Digest& digest) {
  std::unique_lock<std::mutex> lock(mu_);
  Loc loc;
  if (FindLocked(digest, &loc)) return true;
  RefreshLocked();
  return FindLocked(digest, &loc);
}

void ChunkStore::QuarantineLocked(const Sha256Digest& digest,
                                  const std::string& why) {
  if (!quarantined_.insert(digest).second) return;
  AUTOMC_METRIC_COUNT("artifact.quarantined");
  AUTOMC_LOG(Warning) << "artifact chunk " << HexDigest(digest)
                      << " quarantined: " << why;
  // Best-effort durable breadcrumb for the operator runbook.
  int fd = ::open((dir_ + "/quarantine.log").c_str(),
                  O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd >= 0) {
    const std::string line = HexDigest(digest) + " " + why + "\n";
    [[maybe_unused]] ssize_t ignored = ::write(fd, line.data(), line.size());
    ::close(fd);
  }
}

Result<std::string> ChunkStore::ReadVerifiedLocked(const Sha256Digest& digest,
                                                   const Loc& loc) {
  const std::string path = PackPath(loc.pack_id);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    QuarantineLocked(digest, "pack file missing: " + path);
    return Status::DataLoss("chunk " + HexDigest(digest) +
                            ": pack file missing");
  }
  const size_t frame_len = kFrameHeader + 32 + loc.size;
  std::string frame(frame_len, '\0');
  ssize_t got = ::pread(fd, frame.data(), frame_len,
                        static_cast<off_t>(loc.offset));
  ::close(fd);
  if (got != static_cast<ssize_t>(frame_len)) {
    QuarantineLocked(digest, "truncated frame in " + path);
    return Status::DataLoss("chunk " + HexDigest(digest) +
                            ": truncated pack frame");
  }
  const uint32_t len = LoadU32(frame.data());
  const uint32_t crc = LoadU32(frame.data() + 4);
  std::string_view payload(frame.data() + kFrameHeader, 32 + loc.size);
  if (len != 32 + loc.size || Crc32(payload) != crc) {
    QuarantineLocked(digest, "frame CRC mismatch in " + path);
    return Status::DataLoss("chunk " + HexDigest(digest) +
                            ": pack frame failed CRC");
  }
  if (std::memcmp(payload.data(), digest.data(), 32) != 0) {
    QuarantineLocked(digest, "stored digest mismatch in " + path);
    return Status::DataLoss("chunk " + HexDigest(digest) +
                            ": stored under a different digest");
  }
  std::string_view data = payload.substr(32);
  if (Sha256::Hash(data) != digest) {
    QuarantineLocked(digest, "content digest mismatch in " + path);
    return Status::DataLoss("chunk " + HexDigest(digest) +
                            ": content does not match its digest");
  }
  return std::string(data);
}

Result<std::string> ChunkStore::GetChunk(const Sha256Digest& digest) {
  std::unique_lock<std::mutex> lock(mu_);
  if (quarantined_.count(digest) != 0) {
    return Status::DataLoss("chunk " + HexDigest(digest) + " is quarantined");
  }
  Loc loc;
  if (!FindLocked(digest, &loc)) {
    // Another process may have published since we mapped the index.
    RefreshLocked();
    if (!FindLocked(digest, &loc)) {
      return Status::NotFound("no chunk " + HexDigest(digest));
    }
  }
  return ReadVerifiedLocked(digest, loc);
}

void ChunkStore::CollectEntriesLocked(std::map<Sha256Digest, Loc>* out,
                                      std::map<uint32_t, uint64_t>* covered) {
  out->clear();
  covered->clear();
  if (have_index_) {
    const char* p = map_base_;
    size_t off = 16;
    const uint32_t pack_count = LoadU32(p + off);
    off += 4;
    for (uint32_t i = 0; i < pack_count; ++i) {
      const uint32_t id = LoadU32(p + off);
      const uint64_t cov = LoadU64(p + off + 4);
      (*covered)[id] = cov;
      off += 12;
    }
    off += 8;  // entry_count, already parsed
    for (uint64_t i = 0; i < entry_count_; ++i) {
      const char* e = map_base_ + entries_off_ + i * kEntrySize;
      Sha256Digest digest;
      std::memcpy(digest.data(), e, 32);
      Loc loc;
      loc.pack_id = LoadU32(e + 32);
      loc.size = LoadU32(e + 36);
      loc.offset = LoadU64(e + 40);
      (*out)[digest] = loc;
    }
  }
  // Self-healing sweep: frames appended after the covered offset (a publish
  // torn between append and index rename) are picked up here; a torn tail
  // frame just stops the replay for that pack.
  std::vector<uint32_t> packs = ListPacksLocked();
  std::map<uint32_t, uint64_t> on_disk;
  for (uint32_t id : packs) {
    uint64_t pos = 0;
    if (auto it = covered->find(id); it != covered->end()) pos = it->second;
    int fd = ::open(PackPath(id).c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) continue;
    for (;;) {
      char header[kFrameHeader];
      ssize_t got = ::pread(fd, header, sizeof(header),
                            static_cast<off_t>(pos));
      if (got != static_cast<ssize_t>(sizeof(header))) break;
      const uint32_t len = LoadU32(header);
      const uint32_t crc = LoadU32(header + 4);
      if (len < 33 || len > 32 + kMaxChunk) break;
      std::string payload(len, '\0');
      got = ::pread(fd, payload.data(), len,
                    static_cast<off_t>(pos + kFrameHeader));
      if (got != static_cast<ssize_t>(len) || Crc32(payload) != crc) break;
      Sha256Digest digest;
      std::memcpy(digest.data(), payload.data(), 32);
      Loc loc;
      loc.pack_id = id;
      loc.size = len - 32;
      loc.offset = pos;
      out->emplace(digest, loc);  // first sighting wins
      pos += kFrameHeader + len;
    }
    ::close(fd);
    on_disk[id] = pos;
  }
  // The authoritative covered map only names packs that exist on disk.
  *covered = std::move(on_disk);
}

Status ChunkStore::PublishIndexLocked(
    const std::map<Sha256Digest, Loc>& entries,
    const std::map<uint32_t, uint64_t>& covered) {
  ByteWriter w;
  w.U32(kIndexMagic);
  w.U32(kIndexVersion);
  w.U64(generation_ + 1);
  w.U32(static_cast<uint32_t>(covered.size()));
  for (const auto& [id, cov] : covered) {
    w.U32(id);
    w.U64(cov);
  }
  w.U64(static_cast<uint64_t>(entries.size()));
  for (const auto& [digest, loc] : entries) {
    w.Raw(digest.data(), digest.size());
    w.U32(loc.pack_id);
    w.U32(loc.size);
    w.U64(loc.offset);
  }
  uint64_t buckets = 8;
  while (buckets < entries.size() * 2) buckets <<= 1;
  std::vector<uint32_t> table(buckets, kEmptyBucket);
  uint32_t idx = 0;
  for (const auto& [digest, loc] : entries) {
    (void)loc;
    uint64_t slot = BucketKey(digest) & (buckets - 1);
    while (table[slot] != kEmptyBucket) slot = (slot + 1) & (buckets - 1);
    table[slot] = idx++;
  }
  w.U64(buckets);
  for (uint32_t b : table) w.U32(b);
  w.U32(Crc32(w.str()));
  AUTOMC_RETURN_IF_ERROR(WriteFileAtomic(dir_ + "/chunks.idx", w.str()));
  AUTOMC_METRIC_COUNT("artifact.index_publishes");
  LoadIndexLocked();
  if (!have_index_) {
    return Status::Internal("freshly published artifact index failed to map");
  }
  return Status::OK();
}

Result<ChunkStore::PutResult> ChunkStore::PutBlob(std::string_view blob) {
  std::unique_lock<std::mutex> lock(mu_);
  PublishLock publish(dir_);
  if (!publish.held()) {
    return Status::Internal("cannot lock artifact index for publish");
  }
  RefreshLocked();
  std::map<Sha256Digest, Loc> entries;
  std::map<uint32_t, uint64_t> covered;
  CollectEntriesLocked(&entries, &covered);

  std::vector<uint32_t> packs = ListPacksLocked();
  uint32_t pack_id = packs.empty() ? 1 : packs.back();
  int fd = -1;
  uint64_t pack_size = 0;
  auto open_pack = [&]() -> Status {
    fd = ::open(PackPath(pack_id).c_str(),
                O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal("cannot open " + PackPath(pack_id) + ": " +
                              std::strerror(errno));
    }
    struct stat st{};
    pack_size = ::fstat(fd, &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
    return Status::OK();
  };
  AUTOMC_RETURN_IF_ERROR(open_pack());
  if (pack_size > pack_rollover_) {
    ::close(fd);
    ++pack_id;
    AUTOMC_RETURN_IF_ERROR(open_pack());
  }

  PutResult res;
  bool wrote = false;
  for (size_t pos = 0; pos < blob.size(); pos += chunk_size_) {
    const std::string_view piece = blob.substr(pos, chunk_size_);
    const Sha256Digest digest = Sha256::Hash(piece);
    res.digests.push_back(digest);
    if (entries.find(digest) != entries.end()) {
      ++res.dup_chunks;
      res.dup_bytes += piece.size();
      continue;
    }
    if (pack_size > pack_rollover_) {
      ::fsync(fd);
      ::close(fd);
      ++pack_id;
      AUTOMC_RETURN_IF_ERROR(open_pack());
    }
    const std::string frame = EncodeChunkFrame(digest, piece);
    size_t done = 0;
    while (done < frame.size()) {
      ssize_t n = ::write(fd, frame.data() + done, frame.size() - done);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return Status::Internal("short write on " + PackPath(pack_id));
      }
      done += static_cast<size_t>(n);
    }
    Loc loc;
    loc.pack_id = pack_id;
    loc.size = static_cast<uint32_t>(piece.size());
    loc.offset = pack_size;
    entries[digest] = loc;
    pack_size += frame.size();
    covered[pack_id] = pack_size;
    ++res.new_chunks;
    res.new_bytes += piece.size();
    wrote = true;
  }
  if (wrote) ::fsync(fd);
  ::close(fd);

  AUTOMC_METRIC_COUNT("artifact.chunks_stored",
                      static_cast<int64_t>(res.new_chunks));
  AUTOMC_METRIC_COUNT("artifact.bytes_stored",
                      static_cast<int64_t>(res.new_bytes));
  AUTOMC_METRIC_COUNT("artifact.dedup_chunks",
                      static_cast<int64_t>(res.dup_chunks));
  AUTOMC_METRIC_COUNT("artifact.dedup_bytes",
                      static_cast<int64_t>(res.dup_bytes));
  AUTOMC_RETURN_IF_ERROR(PublishIndexLocked(entries, covered));
  return res;
}

Result<uint64_t> ChunkStore::CollectGarbage(
    const std::set<Sha256Digest>& live) {
  std::unique_lock<std::mutex> lock(mu_);
  PublishLock publish(dir_);
  if (!publish.held()) {
    return Status::Internal("cannot lock artifact index for GC");
  }
  RefreshLocked();
  std::map<Sha256Digest, Loc> entries;
  std::map<uint32_t, uint64_t> covered;
  CollectEntriesLocked(&entries, &covered);

  const std::vector<uint32_t> old_packs = ListPacksLocked();
  uint32_t pack_id = (old_packs.empty() ? 0 : old_packs.back()) + 1;
  std::vector<uint32_t> new_packs;
  std::map<Sha256Digest, Loc> kept;
  std::map<uint32_t, uint64_t> new_covered;
  uint64_t reclaimed = 0;

  int fd = -1;
  uint64_t pack_size = 0;
  auto abort_gc = [&](Status why) -> Status {
    if (fd >= 0) ::close(fd);
    for (uint32_t id : new_packs) ::unlink(PackPath(id).c_str());
    return why;
  };
  auto open_new_pack = [&]() -> Status {
    fd = ::open(PackPath(pack_id).c_str(),
                O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal("cannot create " + PackPath(pack_id) + ": " +
                              std::strerror(errno));
    }
    new_packs.push_back(pack_id);
    pack_size = 0;
    return Status::OK();
  };
  if (Status st = open_new_pack(); !st.ok()) return abort_gc(st);

  for (const auto& [digest, loc] : entries) {
    if (live.find(digest) == live.end()) {
      reclaimed += loc.size;
      continue;
    }
    // Copy-through re-verifies every survivor; a corrupt live chunk must
    // abort (the data is unrecoverable and deleting the old pack would
    // destroy the evidence), while a corrupt dead chunk was reclaimable
    // anyway.
    Result<std::string> data = ReadVerifiedLocked(digest, loc);
    if (!data.ok()) {
      return abort_gc(Status::DataLoss("GC aborted: live " +
                                       data.status().message()));
    }
    if (pack_size > pack_rollover_) {
      ::fsync(fd);
      ::close(fd);
      fd = -1;
      ++pack_id;
      if (Status st = open_new_pack(); !st.ok()) return abort_gc(st);
    }
    const std::string frame = EncodeChunkFrame(digest, *data);
    size_t done = 0;
    while (done < frame.size()) {
      ssize_t n = ::write(fd, frame.data() + done, frame.size() - done);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return abort_gc(Status::Internal("short write during GC"));
      }
      done += static_cast<size_t>(n);
    }
    Loc nloc;
    nloc.pack_id = pack_id;
    nloc.size = loc.size;
    nloc.offset = pack_size;
    kept[digest] = nloc;
    pack_size += frame.size();
    new_covered[pack_id] = pack_size;
  }
  ::fsync(fd);
  ::close(fd);
  fd = -1;
  if (new_covered.find(new_packs.back()) == new_covered.end()) {
    new_covered[new_packs.back()] = 0;  // empty tail pack is still covered
  }

  if (Status st = PublishIndexLocked(kept, new_covered); !st.ok()) {
    return abort_gc(st);
  }
  // The new index no longer references the old packs; readers mapping the
  // *old* index can still serve from them until they refresh, which is why
  // deletion comes last (an in-flight GetChunk re-probes after a miss).
  for (uint32_t id : old_packs) ::unlink(PackPath(id).c_str());
  AUTOMC_METRIC_COUNT("artifact.gc_runs");
  AUTOMC_METRIC_COUNT("artifact.gc_reclaimed_bytes",
                      static_cast<int64_t>(reclaimed));
  return reclaimed;
}

}  // namespace artifact
}  // namespace automc
