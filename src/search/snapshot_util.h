#ifndef AUTOMC_SEARCH_SNAPSHOT_UTIL_H_
#define AUTOMC_SEARCH_SNAPSHOT_UTIL_H_

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "nn/layer.h"
#include "search/evaluator.h"
#include "tensor/tensor.h"

namespace automc {
namespace search {

// Bit-exact (de)serialization building blocks shared by the searchers'
// Snapshot()/Restore() implementations. Readers return false on any underrun
// or shape mismatch so a damaged checkpoint surfaces as a clean error.

inline void WritePoint(ByteWriter* w, const EvalPoint& p) {
  w->F64(p.acc);
  w->I64(p.params);
  w->I64(p.flops);
  w->F64(p.ar);
  w->F64(p.pr);
  w->F64(p.fr);
}

inline bool ReadPoint(ByteReader* r, EvalPoint* p) {
  return r->F64(&p->acc) && r->I64(&p->params) && r->I64(&p->flops) &&
         r->F64(&p->ar) && r->F64(&p->pr) && r->F64(&p->fr);
}

// 1-D tensors only (strategy embeddings, task features): numel + raw floats.
inline void WriteTensor(ByteWriter* w, const tensor::Tensor& t) {
  w->Floats(t.data(), static_cast<size_t>(t.numel()));
}

inline bool ReadTensor(ByteReader* r, tensor::Tensor* t) {
  std::vector<float> data;
  if (!r->Floats(&data)) return false;
  tensor::Tensor out({static_cast<int64_t>(data.size())});
  if (!data.empty()) {
    std::memcpy(out.MutableData(), data.data(), data.size() * sizeof(float));
  }
  *t = std::move(out);
  return true;
}

// Parameter *values* in the given order; shapes are fixed by construction,
// so restore validates element counts and copies in place.
inline void WriteParamValues(ByteWriter* w,
                             const std::vector<nn::Param*>& params) {
  w->U32(static_cast<uint32_t>(params.size()));
  for (const nn::Param* p : params) {
    w->Floats(p->value.data(), static_cast<size_t>(p->value.numel()));
  }
}

inline bool ReadParamValues(ByteReader* r,
                            const std::vector<nn::Param*>& params) {
  uint32_t count = 0;
  if (!r->U32(&count) || count != params.size()) return false;
  for (nn::Param* p : params) {
    std::vector<float> data;
    if (!r->Floats(&data)) return false;
    if (static_cast<int64_t>(data.size()) != p->value.numel()) return false;
    if (!data.empty()) {
      std::memcpy(p->value.MutableData(), data.data(),
                  data.size() * sizeof(float));
    }
  }
  return true;
}

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_SNAPSHOT_UTIL_H_
