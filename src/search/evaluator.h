#ifndef AUTOMC_SEARCH_EVALUATOR_H_
#define AUTOMC_SEARCH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "compress/compressor.h"
#include "nn/model.h"
#include "search/search_space.h"
#include "store/experience_store.h"

namespace automc {
namespace search {

// Measurements of one scheme node, relative to the uncompressed base model.
struct EvalPoint {
  double acc = 0.0;
  int64_t params = 0;
  int64_t flops = 0;
  double ar = 0.0;  // accuracy increase rate vs base
  double pr = 0.0;  // parameter reduction rate vs base
  double fr = 0.0;  // FLOPs reduction rate vs base
};

// Result of SchemeEvaluator::EvaluateBatch: parallel arrays over the
// *evaluated* prefix of the submitted batch (the charged-budget truncation
// can make them shorter than the input).
struct BatchEval {
  std::vector<EvalPoint> points;
  // Point of each scheme's immediate prefix (what Evaluate's `parent_out`
  // would have produced).
  std::vector<EvalPoint> parents;
  // charged_executions() right after scheme i committed — what a serial
  // Evaluate loop would have observed between iterations i and i+1.
  std::vector<int64_t> charged_after;
};

// Evaluates compression schemes (strategy index sequences) against one task.
//
// The scheme space is a tree, and the evaluator memoizes two things at every
// node it has visited:
//   * the compressed model snapshot (expensive, LRU-evicted, `cache_`) —
//     evaluating "seq -> s" right after "seq" costs one strategy execution;
//   * the measured EvalPoint (tiny, never evicted, `points_`) — re-evaluating
//     any scheme this run already measured is free, even after its model
//     snapshot was evicted.
// The point index also defines the budget unit: `charged_executions()` counts
// *novel* points this run produced, whether measured by running a compressor
// or served from an attached ExperienceStore. Searchers spend budget on
// charged executions, so a warm-started rerun replays the exact same control
// flow (and terminates) while `strategy_executions()` — real compressor runs
// — stays at zero.
class SchemeEvaluator {
 public:
  struct Options {
    // Cached model snapshots beyond the root (LRU-evicted).
    int max_cached_models = 128;
  };

  // `base_model` must be pretrained; it is cloned, never mutated. `ctx`
  // carries the (possibly subsampled) training data used by strategies.
  SchemeEvaluator(const SearchSpace* space, nn::Model* base_model,
                  const compress::CompressionContext& ctx, Options options);

  // Evaluates the scheme, reusing the deepest cached prefix. When
  // `parent_out` is non-null it receives the point of the scheme's immediate
  // prefix (used to derive AR_step / PR_step for F_mo training).
  Result<EvalPoint> Evaluate(const std::vector<int>& scheme,
                             EvalPoint* parent_out = nullptr);

  // Evaluates a round of candidate schemes, fanning independent subtrees out
  // across the global thread pool, with results bit-identical to the serial
  // loop
  //     for (s : schemes) if (charged_executions() < charged_limit) Evaluate(s);
  // at any AUTOMC_THREADS value. Three phases:
  //   1. plan (serial): predict each scheme's novel points, truncate the
  //      batch at `charged_limit` (< 0 disables), and group schemes by their
  //      deepest shared *unmaterialized* prefix — schemes that would execute
  //      overlapping tree nodes land in one serial chain so every strategy
  //      executes at most once;
  //   2. speculate (parallel): each chain clones its model snapshot (an
  //      O(1) copy-on-write alias — bytes are copied only for the layers a
  //      strategy actually rewrites) and executes its strategies; per-node
  //      deterministic seeding makes every node's model and point a pure
  //      function of the scheme prefix, so speculative results are exact
  //      regardless of commit order;
  //   3. commit (serial, ascending submission order): replay the serial
  //      Evaluate algorithm, consuming speculative nodes instead of running
  //      compressors. All shared-state mutation (LRU ticks and evictions,
  //      point charging, store appends, counters) happens here, which is what
  //      makes cache contents, eviction order, charged-execution accounting,
  //      and store bytes independent of the thread count. A mispredicted
  //      node (e.g. evicted mid-commit) falls back to inline execution; a
  //      worker error is re-hit serially so it surfaces at the same scheme
  //      index a serial loop would have reported.
  // On error, earlier schemes have already committed (exactly like a serial
  // loop that failed partway); the batch's results are not returned.
  Result<BatchEval> EvaluateBatch(const std::vector<std::vector<int>>& schemes,
                                  int64_t charged_limit = -1);

  // Connects a persistent evaluation cache. Binds the store to this
  // evaluator's (search space, base model) fingerprint — records written
  // under a different space or model can never be served here — and appends
  // the base-model record so depth-1 store records have a parent. After
  // attachment, Evaluate consults the store before executing strategies and
  // appends every fresh measurement.
  Status AttachStore(store::ExperienceStore* experience_store);
  store::ExperienceStore* experience_store() const { return store_; }

  // Content fingerprints used to key store records. Space covers every
  // strategy's rendered spec; model covers the architecture spec, weight
  // precision, and the raw bytes of every pretrained parameter.
  static uint64_t SpaceFingerprint(const SearchSpace& space);
  static uint64_t ModelFingerprint(nn::Model* model);

  // Checkpoint support: the point index + charged-execution count, i.e.
  // everything a resumed process needs to replay the remaining search with
  // identical control flow. Restore validates that the snapshot's base point
  // matches this evaluator's (catching checkpoint-vs-model mismatches).
  void SnapshotState(ByteWriter* w) const;
  Status RestoreState(std::string_view blob);

  const EvalPoint& base_point() const { return base_point_; }
  // Novel points this run produced — the search budget unit. Store-served
  // points charge on first sight per run, real executions likewise.
  int64_t charged_executions() const { return charged_executions_; }
  // Real compressor runs (zero for a fully warm-started rerun).
  int64_t strategy_executions() const { return strategy_executions_; }
  int64_t cache_hits() const { return cache_hits_; }
  // Points served from the attached store instead of being measured.
  int64_t store_hits() const { return store_hits_; }

  // Order-sensitive digest of the model cache (keys, points, LRU clock per
  // entry). Two evaluators with equal digests would evict identically from
  // here on; the batch-equivalence tests compare it against a serial run.
  uint64_t CacheDigest() const;

 private:
  struct CacheEntry {
    std::unique_ptr<nn::Model> model;
    EvalPoint point;
    int64_t last_used = 0;
  };

  // One speculatively executed tree node, produced by a worker chain and
  // consumed (at most once) by the serial commit phase.
  struct SpecNode {
    std::unique_ptr<nn::Model> model;
    EvalPoint point;
    // True when the worker measured the point itself (vs reusing a known
    // point or a store record, which the commit re-derives with the serial
    // code path so counters stay exact).
    bool measured = false;
  };
  using SpecMap = std::map<std::string, SpecNode, std::less<>>;

  // Cache keys are fixed-width binary: 4 little-endian bytes per strategy
  // index. A prefix of the scheme is therefore a byte prefix of the full
  // key, so Evaluate builds the key once and probes every prefix length
  // with an allocation-free string_view (the map comparator is transparent).
  static std::string Key(const std::vector<int>& scheme);
  static std::string_view KeyPrefix(const std::string& key, size_t length) {
    return std::string_view(key).substr(0, 4 * length);
  }
  EvalPoint MeasureModel(nn::Model* model) const;
  // Phase-2 worker body of EvaluateBatch: executes one chain's schemes in
  // submission order against private model clones, emitting (key, SpecNode)
  // pairs. Reads shared state (cache_, points_, the store index via Peek)
  // but never mutates it — the commit phase owns all mutation.
  void SpeculateChain(const std::vector<const std::vector<int>*>& members,
                      std::vector<std::pair<std::string, SpecNode>>* out) const;
  // The serial evaluation algorithm. With `spec` non-null, path-B steps
  // whose node has a speculative model adopt it instead of running the
  // compressor; every observable side effect is unchanged either way.
  Result<EvalPoint> EvaluateInternal(const std::vector<int>& scheme,
                                     EvalPoint* parent_out, SpecMap* spec);
  void Insert(std::string_view key, std::unique_ptr<nn::Model> model,
              const EvalPoint& point);
  void MaybeEvict();
  // Registers `point` under `key`, charging budget iff it is new this run.
  void RecordPoint(std::string_view key, const EvalPoint& point);
  // Durably persists the point for `scheme` when a store is attached.
  Status PersistPoint(const std::vector<int>& scheme, const EvalPoint& point);

  const SearchSpace* space_;
  nn::Model* base_model_;
  compress::CompressionContext ctx_;
  Options options_;
  EvalPoint base_point_;
  std::map<std::string, CacheEntry, std::less<>> cache_;
  // Every point measured or store-served this run, keyed like cache_ but
  // never evicted (points are ~48 bytes; model snapshots own megabytes of
  // parameters, though cached clones of a live model cost O(1) until one
  // side diverges — tensors are copy-on-write).
  // Keys form prefix-closed chains: a point's parent prefix is always
  // present. models in cache_ are a subset of points_ keys.
  std::map<std::string, EvalPoint, std::less<>> points_;
  store::ExperienceStore* store_ = nullptr;
  int64_t charged_executions_ = 0;
  int64_t strategy_executions_ = 0;
  int64_t cache_hits_ = 0;
  int64_t store_hits_ = 0;
  int64_t clock_ = 0;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_EVALUATOR_H_
