#ifndef AUTOMC_SEARCH_EVALUATOR_H_
#define AUTOMC_SEARCH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "compress/compressor.h"
#include "nn/model.h"
#include "search/search_space.h"

namespace automc {
namespace search {

// Measurements of one scheme node, relative to the uncompressed base model.
struct EvalPoint {
  double acc = 0.0;
  int64_t params = 0;
  int64_t flops = 0;
  double ar = 0.0;  // accuracy increase rate vs base
  double pr = 0.0;  // parameter reduction rate vs base
  double fr = 0.0;  // FLOPs reduction rate vs base
};

// Evaluates compression schemes (strategy index sequences) against one task.
//
// The scheme space is a tree, and the evaluator memoizes the compressed
// model at every node it has visited: evaluating "seq -> s" after "seq"
// costs exactly one strategy execution. This prefix cache is the mechanical
// counterpart of AutoMC's progressive search and is what makes Algorithm 2
// cheap per round.
class SchemeEvaluator {
 public:
  struct Options {
    // Cached model snapshots beyond the root (LRU-evicted).
    int max_cached_models = 128;
  };

  // `base_model` must be pretrained; it is cloned, never mutated. `ctx`
  // carries the (possibly subsampled) training data used by strategies.
  SchemeEvaluator(const SearchSpace* space, nn::Model* base_model,
                  const compress::CompressionContext& ctx, Options options);

  // Evaluates the scheme, reusing the deepest cached prefix. When
  // `parent_out` is non-null it receives the point of the scheme's immediate
  // prefix (used to derive AR_step / PR_step for F_mo training).
  Result<EvalPoint> Evaluate(const std::vector<int>& scheme,
                             EvalPoint* parent_out = nullptr);

  const EvalPoint& base_point() const { return base_point_; }
  // Number of real compressor executions so far (the search budget unit).
  int64_t strategy_executions() const { return strategy_executions_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  struct CacheEntry {
    std::unique_ptr<nn::Model> model;
    EvalPoint point;
    int64_t last_used = 0;
  };

  // Cache keys are fixed-width binary: 4 little-endian bytes per strategy
  // index. A prefix of the scheme is therefore a byte prefix of the full
  // key, so Evaluate builds the key once and probes every prefix length
  // with an allocation-free string_view (the map comparator is transparent).
  static std::string Key(const std::vector<int>& scheme);
  static std::string_view KeyPrefix(const std::string& key, size_t length) {
    return std::string_view(key).substr(0, 4 * length);
  }
  EvalPoint MeasureModel(nn::Model* model);
  void Insert(std::string_view key, std::unique_ptr<nn::Model> model,
              const EvalPoint& point);
  void MaybeEvict();

  const SearchSpace* space_;
  nn::Model* base_model_;
  compress::CompressionContext ctx_;
  Options options_;
  EvalPoint base_point_;
  std::map<std::string, CacheEntry, std::less<>> cache_;
  int64_t strategy_executions_ = 0;
  int64_t cache_hits_ = 0;
  int64_t clock_ = 0;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_EVALUATOR_H_
