#ifndef AUTOMC_SEARCH_FMO_H_
#define AUTOMC_SEARCH_FMO_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/seqnet.h"
#include "tensor/tensor.h"

namespace automc {
namespace search {

// One observed step transition used to train F_mo (Equation 5):
// appending strategy `candidate` to the scheme whose strategies have
// embeddings `sequence` changed accuracy by ar_step and parameters by
// pr_step on the task with features `task`.
struct FmoExample {
  std::vector<tensor::Tensor> sequence;  // embeddings of the prefix scheme
  tensor::Tensor candidate;              // embedding of the appended strategy
  tensor::Tensor task;                   // task feature vector
  float ar_step = 0.0f;
  float pr_step = 0.0f;
};

// The multi-objective step evaluator F_mo of Figure 3: a GRU encodes the
// prefix strategy sequence; its final state is concatenated with the
// candidate strategy embedding and the task features and regressed to
// (AR_step, PR_step) by an MLP. Trained online on evaluated transitions.
class Fmo {
 public:
  Fmo(int64_t embedding_dim, int64_t task_dim, uint64_t seed,
      float lr = 0.001f);

  // Predicted (ar_step, pr_step) for appending `candidate` after `sequence`.
  // Const and cache-free, so the searchers score candidate batches in
  // parallel with concurrent Predict calls.
  std::pair<double, double> Predict(
      const std::vector<tensor::Tensor>& sequence,
      const tensor::Tensor& candidate, const tensor::Tensor& task) const;

  // One Adam step on the mean squared error over the batch; returns the
  // batch loss. Only F_mo's weights are updated (Equation 5 optimizes omega;
  // strategy embeddings stay fixed here).
  double TrainBatch(const std::vector<FmoExample>& batch);

  // Checkpoint support: weights + Adam moments, bit-exact. Restore requires
  // an Fmo constructed with the same dimensions.
  void Snapshot(ByteWriter* w);
  bool Restore(ByteReader* r);

 private:
  struct ForwardCache {
    std::vector<nn::GruCell::Cache> gru;
    nn::VecMlp::Cache mlp;
    tensor::Tensor input;
  };
  tensor::Tensor Forward(const std::vector<tensor::Tensor>& sequence,
                         const tensor::Tensor& candidate,
                         const tensor::Tensor& task,
                         ForwardCache* cache) const;
  std::vector<nn::Param*> Params();

  int64_t embedding_dim_;
  int64_t task_dim_;
  int64_t hidden_dim_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::VecMlp> head_;
  nn::Adam optimizer_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_FMO_H_
