#ifndef AUTOMC_SEARCH_RL_H_
#define AUTOMC_SEARCH_RL_H_

#include <memory>

#include "search/searcher.h"

namespace automc {
namespace search {

// RL baseline: a recurrent (GRU) controller emits a compression scheme one
// strategy at a time (with a STOP action) and is trained with REINFORCE on
// whole-scheme rewards. This is the non-progressive contrast to AutoMC: it
// only learns from complete scheme evaluations.
class RlSearcher : public Searcher {
 public:
  struct Options {
    int64_t action_embedding_dim = 16;
    int64_t hidden_dim = 32;
    float lr = 0.005f;
    // Reward: accuracy minus a penalty when the target reduction is missed.
    double infeasibility_penalty = 1.0;
  };

  RlSearcher();
  explicit RlSearcher(Options options);
  ~RlSearcher() override;

  std::string Name() const override { return "RL"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;
  Status Snapshot(std::string* blob) override;
  Status Restore(std::string_view blob) override;

 private:
  Options options_;
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_RL_H_
