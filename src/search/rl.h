#ifndef AUTOMC_SEARCH_RL_H_
#define AUTOMC_SEARCH_RL_H_

#include "search/searcher.h"

namespace automc {
namespace search {

// RL baseline: a recurrent (GRU) controller emits a compression scheme one
// strategy at a time (with a STOP action) and is trained with REINFORCE on
// whole-scheme rewards. This is the non-progressive contrast to AutoMC: it
// only learns from complete scheme evaluations.
class RlSearcher : public Searcher {
 public:
  struct Options {
    int64_t action_embedding_dim = 16;
    int64_t hidden_dim = 32;
    float lr = 0.005f;
    // Reward: accuracy minus a penalty when the target reduction is missed.
    double infeasibility_penalty = 1.0;
  };

  RlSearcher() : options_(Options{}) {}
  explicit RlSearcher(Options options) : options_(options) {}

  std::string Name() const override { return "RL"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;

 private:
  Options options_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_RL_H_
