#include "search/grid_search.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "search/search_space.h"

namespace automc {
namespace search {

Result<GridSearchResult> GridSearchMethod(
    const std::string& method, nn::Model* base,
    const compress::CompressionContext& ctx,
    const GridSearchOptions& options) {
  if (base == nullptr) return Status::InvalidArgument("base model is null");
  AUTOMC_SCOPED_TIMER("search.grid.method_ms");
  SearchSpace grid = SearchSpace::SingleMethod(method);
  if (grid.size() == 0) {
    return Status::NotFound("unknown or empty method grid: " + method);
  }

  // Choose which configurations to try (dedup after the HP2 override, since
  // forcing HP2 collapses grid points that differed only in HP2).
  std::vector<size_t> order(grid.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(&order);

  char pr_buf[32];
  if (options.target_pr > 0.0) {
    std::snprintf(pr_buf, sizeof(pr_buf), "%.4f", options.target_pr);
  }

  std::vector<compress::StrategySpec> configs;
  int limit = options.max_configs > 0 ? options.max_configs
                                      : static_cast<int>(grid.size());
  for (size_t idx : order) {
    compress::StrategySpec spec = grid.strategy(idx);
    if (options.target_pr > 0.0 && spec.hp.count("HP2") != 0) {
      spec.hp["HP2"] = pr_buf;
    }
    bool duplicate = false;
    for (const auto& seen : configs) {
      if (seen.hp == spec.hp) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    configs.push_back(std::move(spec));
    if (static_cast<int>(configs.size()) >= limit) break;
  }

  GridSearchResult result;
  bool have_best = false;
  for (size_t i = 0; i < configs.size(); ++i) {
    AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<compress::Compressor> compressor,
                            compress::CreateCompressor(configs[i]));
    std::unique_ptr<nn::Model> probe = base->Clone();
    compress::CompressionContext run_ctx = ctx;
    run_ctx.seed = options.seed * 997 + i;
    compress::CompressionStats stats;
    Status st = compressor->Compress(probe.get(), run_ctx, &stats);
    ++result.configs_tried;
    AUTOMC_METRIC_COUNT("search.grid.configs_tried");
    if (!st.ok()) {
      ++result.configs_failed;
      AUTOMC_LOG(Debug) << "grid config failed: " << configs[i].ToString()
                        << " -> " << st.ToString();
      continue;
    }
    EvalPoint point;
    point.acc = stats.acc_after;
    point.params = stats.params_after;
    point.flops = stats.flops_after;
    point.ar = stats.AccIncrease();
    point.pr = stats.ParamReduction();
    point.fr = stats.FlopReduction();
    if (!have_best || point.acc > result.point.acc) {
      result.best_spec = configs[i];
      result.point = point;
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::Internal("no grid configuration succeeded for " + method);
  }
  return result;
}

}  // namespace search
}  // namespace automc
