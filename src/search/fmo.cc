#include "search/fmo.h"

namespace automc {
namespace search {

using tensor::Tensor;

Fmo::Fmo(int64_t embedding_dim, int64_t task_dim, uint64_t seed, float lr)
    : embedding_dim_(embedding_dim),
      task_dim_(task_dim),
      hidden_dim_(32),
      optimizer_(lr) {
  Rng rng(seed);
  gru_ = std::make_unique<nn::GruCell>(embedding_dim, hidden_dim_, &rng);
  head_ = std::make_unique<nn::VecMlp>(
      std::vector<int64_t>{hidden_dim_ + embedding_dim_ + task_dim_, 64, 32, 2},
      &rng);
}

std::vector<nn::Param*> Fmo::Params() {
  std::vector<nn::Param*> params = gru_->Params();
  for (nn::Param* p : head_->Params()) params.push_back(p);
  return params;
}

Tensor Fmo::Forward(const std::vector<Tensor>& sequence,
                    const Tensor& candidate, const Tensor& task,
                    ForwardCache* cache) const {
  AUTOMC_CHECK_EQ(candidate.numel(), embedding_dim_);
  AUTOMC_CHECK_EQ(task.numel(), task_dim_);
  Tensor h = gru_->InitialState();
  if (cache != nullptr) cache->gru.resize(sequence.size());
  for (size_t t = 0; t < sequence.size(); ++t) {
    AUTOMC_CHECK_EQ(sequence[t].numel(), embedding_dim_);
    h = gru_->Step(sequence[t], h,
                   cache != nullptr ? &cache->gru[t] : nullptr);
  }
  Tensor input({hidden_dim_ + embedding_dim_ + task_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) input[i] = h[i];
  for (int64_t i = 0; i < embedding_dim_; ++i) {
    input[hidden_dim_ + i] = candidate[i];
  }
  for (int64_t i = 0; i < task_dim_; ++i) {
    input[hidden_dim_ + embedding_dim_ + i] = task[i];
  }
  if (cache != nullptr) cache->input = input;
  return head_->Forward(input, cache != nullptr ? &cache->mlp : nullptr);
}

std::pair<double, double> Fmo::Predict(const std::vector<Tensor>& sequence,
                                       const Tensor& candidate,
                                       const Tensor& task) const {
  Tensor out = Forward(sequence, candidate, task, nullptr);
  return {out[0], out[1]};
}

double Fmo::TrainBatch(const std::vector<FmoExample>& batch) {
  if (batch.empty()) return 0.0;
  for (nn::Param* p : Params()) p->ZeroGrad();

  double total = 0.0;
  for (const FmoExample& ex : batch) {
    ForwardCache cache;
    Tensor pred = Forward(ex.sequence, ex.candidate, ex.task, &cache);
    Tensor dy({2});
    float e_ar = pred[0] - ex.ar_step;
    float e_pr = pred[1] - ex.pr_step;
    total += 0.5 * (e_ar * e_ar + e_pr * e_pr);
    dy[0] = e_ar / static_cast<float>(batch.size());
    dy[1] = e_pr / static_cast<float>(batch.size());

    Tensor dinput = head_->Backward(cache.mlp, dy);
    // Split: gradient into the GRU's final hidden state (candidate and task
    // gradients are discarded — embeddings are not trained through F_mo).
    Tensor dh({hidden_dim_});
    for (int64_t i = 0; i < hidden_dim_; ++i) dh[i] = dinput[i];
    for (size_t t = ex.sequence.size(); t-- > 0;) {
      dh = gru_->BackwardStep(cache.gru[t], dh).second;
    }
  }
  optimizer_.Step(Params());
  return total / static_cast<double>(batch.size());
}

void Fmo::Snapshot(ByteWriter* w) {
  std::vector<nn::Param*> params = Params();
  w->U32(static_cast<uint32_t>(params.size()));
  for (const nn::Param* p : params) {
    w->Floats(p->value.data(), static_cast<size_t>(p->value.numel()));
  }
  optimizer_.SaveState(params, w);
}

bool Fmo::Restore(ByteReader* r) {
  std::vector<nn::Param*> params = Params();
  uint32_t count = 0;
  if (!r->U32(&count) || count != params.size()) return false;
  for (nn::Param* p : params) {
    std::vector<float> data;
    if (!r->Floats(&data)) return false;
    if (static_cast<int64_t>(data.size()) != p->value.numel()) return false;
    std::copy(data.begin(), data.end(), p->value.MutableData());
  }
  return optimizer_.LoadState(params, r);
}

}  // namespace search
}  // namespace automc
