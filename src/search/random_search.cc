#include "search/random_search.h"

#include "common/metrics.h"

namespace automc {
namespace search {

Result<SearchOutcome> RandomSearcher::Search(SchemeEvaluator* evaluator,
                                             const SearchSpace& space,
                                             const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  Rng rng(config.seed);
  Archive archive(config.gamma);

  while (evaluator->strategy_executions() < config.max_strategy_executions) {
    int64_t length = 1 + rng.UniformInt(config.max_length);
    std::vector<int> scheme;
    scheme.reserve(static_cast<size_t>(length));
    for (int64_t i = 0; i < length; ++i) {
      scheme.push_back(
          static_cast<int>(rng.UniformInt(static_cast<int64_t>(space.size()))));
    }
    AUTOMC_ASSIGN_OR_RETURN(EvalPoint point, evaluator->Evaluate(scheme));
    archive.Record(scheme, point,
                   static_cast<int>(evaluator->strategy_executions()));
    AUTOMC_METRIC_COUNT("search.random.rounds");
    AUTOMC_METRIC_COUNT("search.random.candidates_expanded");
    AUTOMC_METRIC_OBSERVE("search.random.pareto_front_size",
                          static_cast<double>(archive.ParetoFrontSize()));
  }
  return archive.Finalize(static_cast<int>(evaluator->strategy_executions()));
}

}  // namespace search
}  // namespace automc
