#include "search/random_search.h"

#include "common/metrics.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

struct RandomSearcher::State {
  Rng rng;
  Archive archive;

  State(const SearchConfig& config)
      : rng(config.seed), archive(config.gamma) {}
};

RandomSearcher::RandomSearcher() = default;
RandomSearcher::~RandomSearcher() = default;

Status RandomSearcher::Snapshot(std::string* blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  ByteWriter w;
  w.Str(state_->rng.SaveState());
  state_->archive.Snapshot(&w);
  *blob = w.Take();
  return Status::OK();
}

Status RandomSearcher::Restore(std::string_view blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  ByteReader r(blob);
  std::string rng_state;
  if (!r.Str(&rng_state) || !state_->rng.LoadState(rng_state) ||
      !state_->archive.Restore(&r)) {
    return Status::InvalidArgument("corrupted Random searcher snapshot");
  }
  return Status::OK();
}

Result<SearchOutcome> RandomSearcher::Search(SchemeEvaluator* evaluator,
                                             const SearchSpace& space,
                                             const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  state_ = std::make_unique<State>(config);
  AUTOMC_RETURN_IF_ERROR(
      MaybeRestoreSearch(this, evaluator, config).status());
  State& s = *state_;

  while (evaluator->charged_executions() < config.max_strategy_executions) {
    AUTOMC_RETURN_IF_ERROR(CheckStop(this, evaluator, config));
    // Serial phase: all RNG draws for the round happen before the fan-out,
    // so the sampled stream is independent of the thread count. Draws never
    // depend on results, so any eval_batch yields the same evaluated
    // sequence as the old one-at-a-time loop (the batch truncates at the
    // budget exactly where the per-candidate check did).
    std::vector<std::vector<int>> round;
    round.reserve(static_cast<size_t>(config.eval_batch));
    for (int b = 0; b < config.eval_batch; ++b) {
      int64_t length = 1 + s.rng.UniformInt(config.max_length);
      std::vector<int> scheme;
      scheme.reserve(static_cast<size_t>(length));
      for (int64_t i = 0; i < length; ++i) {
        scheme.push_back(static_cast<int>(
            s.rng.UniformInt(static_cast<int64_t>(space.size()))));
      }
      round.push_back(std::move(scheme));
    }
    AUTOMC_ASSIGN_OR_RETURN(
        BatchEval batch,
        evaluator->EvaluateBatch(round, config.max_strategy_executions));
    for (size_t i = 0; i < batch.points.size(); ++i) {
      s.archive.Record(round[i], batch.points[i],
                       static_cast<int>(batch.charged_after[i]));
      AUTOMC_METRIC_COUNT("search.random.candidates_expanded");
    }
    AUTOMC_METRIC_COUNT("search.random.rounds");
    AUTOMC_METRIC_OBSERVE("search.random.pareto_front_size",
                          static_cast<double>(s.archive.ParetoFrontSize()));
    AUTOMC_RETURN_IF_ERROR(CheckpointRound(this, evaluator, config));
  }
  return s.archive.Finalize(static_cast<int>(evaluator->charged_executions()));
}

}  // namespace search
}  // namespace automc
