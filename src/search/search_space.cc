#include "search/search_space.h"

#include <map>

#include "common/check.h"
#include "common/logging.h"

namespace automc {
namespace search {

namespace {

using Grid = std::map<std::string, std::vector<std::string>>;

// Hyperparameter grids transcribed from Table 1. Epoch-style settings (HP1,
// HP7, HP9, HP13) are fractions of the original model's pretraining epochs
// ("*n" in the table); HP2 is the per-strategy parameter decrease ratio.
const std::vector<std::string> kHp1 = {"0.1", "0.2", "0.3", "0.4", "0.5"};
const std::vector<std::string> kHp2 = {"0.04", "0.12", "0.2", "0.36", "0.4"};

// Cartesian product of the grid, appended to *out.
void Expand(const std::string& method, const Grid& grid,
            std::vector<compress::StrategySpec>* out) {
  std::vector<compress::StrategySpec> partial = {{method, {}}};
  for (const auto& [hp, values] : grid) {
    std::vector<compress::StrategySpec> next;
    next.reserve(partial.size() * values.size());
    for (const auto& spec : partial) {
      for (const auto& v : values) {
        compress::StrategySpec s = spec;
        s.hp[hp] = v;
        next.push_back(std::move(s));
      }
    }
    partial = std::move(next);
  }
  for (auto& s : partial) out->push_back(std::move(s));
}

void AppendMethod(const std::string& method,
                  std::vector<compress::StrategySpec>* out) {
  if (method == "LMA") {
    Expand("LMA",
           Grid{{"HP1", kHp1},
                {"HP2", kHp2},
                {"HP3", {"2", "3", "5"}},
                {"HP4", {"1", "3", "6", "10"}},
                {"HP5", {"0.05", "0.3", "0.5", "0.99"}}},
           out);
  } else if (method == "LeGR") {
    Expand("LeGR",
           Grid{{"HP1", kHp1},
                {"HP2", kHp2},
                {"HP6", {"0.7", "0.9"}},
                {"HP7", {"0.4", "0.5", "0.6", "0.7"}},
                {"HP8", {"l1_weight", "l2_weight", "l2_bn_param"}}},
           out);
  } else if (method == "NS") {
    Expand("NS",
           Grid{{"HP1", kHp1}, {"HP2", kHp2}, {"HP6", {"0.7", "0.9"}}},
           out);
  } else if (method == "SFP") {
    Expand("SFP",
           Grid{{"HP2", kHp2},
                {"HP9", {"0.1", "0.2", "0.3", "0.4", "0.5"}},
                {"HP10", {"1", "3", "5"}}},
           out);
  } else if (method == "HOS") {
    Expand("HOS",
           Grid{{"HP1", kHp1},
                {"HP2", kHp2},
                {"HP11", {"P1", "P2", "P3"}},
                {"HP12", {"l1norm", "k34", "skew_kur"}},
                {"HP13", {"0.3", "0.4", "0.5"}},
                {"HP14", {"1", "3", "5"}}},
           out);
  } else if (method == "QT") {
    Expand("QT", Grid{{"HP1", kHp1}, {"HP17", {"4", "6", "8"}}}, out);
  } else if (method == "LFB") {
    Expand("LFB",
           Grid{{"HP1", kHp1},
                {"HP2", kHp2},
                {"HP15", {"0.5", "1", "1.5", "3", "5"}},
                {"HP16", {"NLL", "CE", "MSE"}}},
           out);
  } else {
    // Unknown methods contribute nothing; callers observe an empty grid and
    // report NotFound (e.g. GridSearchMethod).
    AUTOMC_LOG(Warning) << "unknown compression method: " << method;
  }
}

}  // namespace

SearchSpace SearchSpace::FullTable1() {
  SearchSpace space;
  for (const char* m : {"LMA", "LeGR", "NS", "SFP", "HOS", "LFB"}) {
    AppendMethod(m, &space.strategies_);
  }
  return space;
}

SearchSpace SearchSpace::Table1WithExtensions() {
  SearchSpace space = FullTable1();
  AppendMethod("QT", &space.strategies_);
  return space;
}

SearchSpace SearchSpace::SingleMethod(const std::string& method) {
  SearchSpace space;
  AppendMethod(method, &space.strategies_);
  return space;
}

std::string SearchSpace::SchemeToString(const std::vector<int>& scheme) const {
  if (scheme.empty()) return "(empty)";
  std::string out;
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (i) out += " -> ";
    AUTOMC_CHECK(scheme[i] >= 0 &&
                 static_cast<size_t>(scheme[i]) < strategies_.size());
    out += strategies_[static_cast<size_t>(scheme[i])].ToString();
  }
  return out;
}

}  // namespace search
}  // namespace automc
