#include "search/searcher.h"

#include <algorithm>

#include "search/pareto.h"

namespace automc {
namespace search {

void Archive::Record(const std::vector<int>& scheme, const EvalPoint& point,
                     int executions_so_far) {
  schemes_.push_back(scheme);
  points_.push_back(point);
  best_any_acc_ = std::max(best_any_acc_, point.acc);
  if (point.pr >= gamma_) {
    best_feasible_acc_ = std::max(best_feasible_acc_, point.acc);
  }
  HistoryPoint h;
  h.executions = executions_so_far;
  h.best_acc = best_feasible_acc_;
  h.best_acc_any = best_any_acc_;
  history_.push_back(h);
}

size_t Archive::ParetoFrontSize() const {
  return Finalize(0).pareto_schemes.size();
}

SearchOutcome Archive::Finalize(int executions) const {
  SearchOutcome out;
  out.history = history_;
  out.executions = executions;

  // Pareto set over feasible schemes: maximize accuracy, minimize params.
  std::vector<size_t> feasible;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].pr >= gamma_) feasible.push_back(i);
  }
  if (feasible.empty()) {
    // No scheme met gamma; fall back to the full set so callers still get
    // the best available trade-offs.
    for (size_t i = 0; i < points_.size(); ++i) feasible.push_back(i);
  }
  std::vector<std::pair<double, double>> objectives;
  objectives.reserve(feasible.size());
  for (size_t i : feasible) {
    objectives.push_back(
        {points_[i].acc, -static_cast<double>(points_[i].params)});
  }
  for (size_t fi : ParetoFrontIndices(objectives)) {
    size_t i = feasible[fi];
    // Skip duplicates (same scheme evaluated twice).
    bool dup = false;
    for (const auto& s : out.pareto_schemes) {
      if (s == schemes_[i]) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    out.pareto_schemes.push_back(schemes_[i]);
    out.pareto_points.push_back(points_[i]);
  }
  return out;
}

}  // namespace search
}  // namespace automc
