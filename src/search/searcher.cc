#include "search/searcher.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/metrics.h"
#include "search/pareto.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

int DefaultEvalBatch() {
  static const int value = [] {
    const char* env = std::getenv("AUTOMC_EVAL_BATCH");
    if (env != nullptr && *env != '\0') {
      int v = std::atoi(env);
      if (v >= 1) return v;
    }
    return 4;
  }();
  return value;
}

void Archive::Record(const std::vector<int>& scheme, const EvalPoint& point,
                     int executions_so_far) {
  schemes_.push_back(scheme);
  points_.push_back(point);
  best_any_acc_ = std::max(best_any_acc_, point.acc);
  if (point.pr >= gamma_) {
    best_feasible_acc_ = std::max(best_feasible_acc_, point.acc);
  }
  HistoryPoint h;
  h.executions = executions_so_far;
  h.best_acc = best_feasible_acc_;
  h.best_acc_any = best_any_acc_;
  history_.push_back(h);
}

size_t Archive::ParetoFrontSize() const {
  return Finalize(0).pareto_schemes.size();
}

SearchOutcome Archive::Finalize(int executions) const {
  SearchOutcome out;
  out.history = history_;
  out.executions = executions;

  // Pareto set over feasible schemes: maximize accuracy, minimize params.
  std::vector<size_t> feasible;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].pr >= gamma_) feasible.push_back(i);
  }
  if (feasible.empty()) {
    // No scheme met gamma; fall back to the full set so callers still get
    // the best available trade-offs.
    for (size_t i = 0; i < points_.size(); ++i) feasible.push_back(i);
  }
  std::vector<std::pair<double, double>> objectives;
  objectives.reserve(feasible.size());
  for (size_t i : feasible) {
    objectives.push_back(
        {points_[i].acc, -static_cast<double>(points_[i].params)});
  }
  for (size_t fi : ParetoFrontIndices(objectives)) {
    size_t i = feasible[fi];
    // Skip duplicates (same scheme evaluated twice).
    bool dup = false;
    for (const auto& s : out.pareto_schemes) {
      if (s == schemes_[i]) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    out.pareto_schemes.push_back(schemes_[i]);
    out.pareto_points.push_back(points_[i]);
  }
  return out;
}

void Archive::Snapshot(ByteWriter* w) const {
  w->U64(schemes_.size());
  for (size_t i = 0; i < schemes_.size(); ++i) {
    w->Ints(schemes_[i]);
    WritePoint(w, points_[i]);
  }
  w->U64(history_.size());
  for (const HistoryPoint& h : history_) {
    w->I32(h.executions);
    w->F64(h.best_acc);
    w->F64(h.best_acc_any);
  }
  w->F64(best_feasible_acc_);
  w->F64(best_any_acc_);
}

bool Archive::Restore(ByteReader* r) {
  uint64_t n = 0;
  if (!r->U64(&n)) return false;
  std::vector<std::vector<int>> schemes(n);
  std::vector<EvalPoint> points(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!r->Ints(&schemes[i]) || !ReadPoint(r, &points[i])) return false;
  }
  uint64_t hn = 0;
  if (!r->U64(&hn)) return false;
  std::vector<HistoryPoint> history(hn);
  for (uint64_t i = 0; i < hn; ++i) {
    if (!r->I32(&history[i].executions) || !r->F64(&history[i].best_acc) ||
        !r->F64(&history[i].best_acc_any)) {
      return false;
    }
  }
  double feasible = 0.0, any = 0.0;
  if (!r->F64(&feasible) || !r->F64(&any)) return false;
  schemes_ = std::move(schemes);
  points_ = std::move(points);
  history_ = std::move(history);
  best_feasible_acc_ = feasible;
  best_any_acc_ = any;
  return true;
}

namespace {

// Identity blob stored alongside every checkpoint: a resume must use the
// same searcher and an identical budget/length/gamma/seed, or the replayed
// control flow would not match the crashed run's.
std::string ConfigBlob(const Searcher& searcher, const SearchConfig& config) {
  ByteWriter w;
  w.Str(searcher.Name());
  w.I32(config.max_strategy_executions);
  w.I32(config.max_length);
  w.F64(config.gamma);
  w.U64(config.seed);
  // The round size shapes the evolutionary/RL candidate streams, so a
  // resume under a different eval_batch would silently diverge.
  w.I32(config.eval_batch);
  return w.Take();
}

}  // namespace

Result<bool> MaybeRestoreSearch(Searcher* searcher, SchemeEvaluator* evaluator,
                                const SearchConfig& config) {
  store::SearchCheckpointer* cp = config.checkpointer;
  if (cp == nullptr || !cp->has_pending()) return false;
  AUTOMC_ASSIGN_OR_RETURN(std::string cfg, cp->TakePending("config"));
  if (cfg != ConfigBlob(*searcher, config)) {
    return Status::FailedPrecondition(
        "checkpoint was written by a different searcher or search config; "
        "resume with the original settings");
  }
  AUTOMC_ASSIGN_OR_RETURN(std::string eval_blob, cp->TakePending("evaluator"));
  AUTOMC_RETURN_IF_ERROR(evaluator->RestoreState(eval_blob));
  AUTOMC_ASSIGN_OR_RETURN(std::string blob, cp->TakePending("searcher"));
  AUTOMC_RETURN_IF_ERROR(searcher->Restore(blob));
  AUTOMC_METRIC_COUNT("checkpoint.restores");
  return true;
}

namespace {

Status WriteCheckpoint(Searcher* searcher, SchemeEvaluator* evaluator,
                       const SearchConfig& config) {
  std::map<std::string, std::string> sections;
  sections["config"] = ConfigBlob(*searcher, config);
  ByteWriter ew;
  evaluator->SnapshotState(&ew);
  sections["evaluator"] = ew.Take();
  std::string sblob;
  AUTOMC_RETURN_IF_ERROR(searcher->Snapshot(&sblob));
  sections["searcher"] = std::move(sblob);
  return config.checkpointer->Write(std::move(sections));
}

}  // namespace

Status CheckpointRound(Searcher* searcher, SchemeEvaluator* evaluator,
                       const SearchConfig& config) {
  store::SearchCheckpointer* cp = config.checkpointer;
  if (cp == nullptr || !cp->ShouldCheckpoint()) return Status::OK();
  return WriteCheckpoint(searcher, evaluator, config);
}

Status CheckStop(Searcher* searcher, SchemeEvaluator* evaluator,
                 const SearchConfig& config) {
  if (config.stop == nullptr || !config.stop->stop_requested()) {
    return Status::OK();
  }
  // Persist the state as of the end of the previous round: nothing has
  // mutated since, so a resume replays the remaining rounds exactly as an
  // uninterrupted run would have executed them.
  if (config.checkpointer != nullptr) {
    AUTOMC_RETURN_IF_ERROR(WriteCheckpoint(searcher, evaluator, config));
  }
  AUTOMC_METRIC_COUNT("search.stops");
  return Status::Cancelled(searcher->Name() + " search stopped");
}

}  // namespace search
}  // namespace automc
