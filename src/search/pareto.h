#ifndef AUTOMC_SEARCH_PARETO_H_
#define AUTOMC_SEARCH_PARETO_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace automc {
namespace search {

// Bi-objective Pareto utilities. Points are (a, b) pairs where BOTH
// coordinates are to be maximized; callers negate minimization objectives
// (e.g. pass -params).

// True when x weakly dominates y and is strictly better in one coordinate.
bool Dominates(const std::pair<double, double>& x,
               const std::pair<double, double>& y);

// Indices of the non-dominated points, in increasing index order.
// Ties/duplicates: a point equal to another is kept (neither dominates).
std::vector<size_t> ParetoFrontIndices(
    const std::vector<std::pair<double, double>>& points);

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_PARETO_H_
