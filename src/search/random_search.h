#ifndef AUTOMC_SEARCH_RANDOM_SEARCH_H_
#define AUTOMC_SEARCH_RANDOM_SEARCH_H_

#include <memory>

#include "search/searcher.h"

namespace automc {
namespace search {

// The standard AutoML baseline: sample scheme lengths and strategies
// uniformly at random until the execution budget is exhausted.
class RandomSearcher : public Searcher {
 public:
  RandomSearcher();
  ~RandomSearcher() override;

  std::string Name() const override { return "Random"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;
  Status Snapshot(std::string* blob) override;
  Status Restore(std::string_view blob) override;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_RANDOM_SEARCH_H_
