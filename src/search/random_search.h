#ifndef AUTOMC_SEARCH_RANDOM_SEARCH_H_
#define AUTOMC_SEARCH_RANDOM_SEARCH_H_

#include "search/searcher.h"

namespace automc {
namespace search {

// The standard AutoML baseline: sample scheme lengths and strategies
// uniformly at random until the execution budget is exhausted.
class RandomSearcher : public Searcher {
 public:
  std::string Name() const override { return "Random"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_RANDOM_SEARCH_H_
