#include "search/progressive.h"

#include <algorithm>
#include <unordered_set>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "search/pareto.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

using tensor::Tensor;

namespace {

// One node of the explored scheme tree H_scheme.
struct Node {
  std::vector<int> scheme;
  EvalPoint point;
  std::unordered_set<int> explored_children;
};

void WriteExample(ByteWriter* w, const FmoExample& ex) {
  w->U32(static_cast<uint32_t>(ex.sequence.size()));
  for (const Tensor& t : ex.sequence) WriteTensor(w, t);
  WriteTensor(w, ex.candidate);
  WriteTensor(w, ex.task);
  w->F32(ex.ar_step);
  w->F32(ex.pr_step);
}

bool ReadExample(ByteReader* r, FmoExample* ex) {
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  ex->sequence.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadTensor(r, &ex->sequence[i])) return false;
  }
  return ReadTensor(r, &ex->candidate) && ReadTensor(r, &ex->task) &&
         r->F32(&ex->ar_step) && r->F32(&ex->pr_step);
}

}  // namespace

struct ProgressiveSearcher::State {
  Rng rng;
  Archive archive;
  Fmo fmo;
  std::vector<FmoExample> replay;
  std::vector<Node> nodes;

  State(const SearchConfig& config, int64_t embed_dim, int64_t task_dim)
      : rng(config.seed + 9000),
        archive(config.gamma),
        fmo(embed_dim, task_dim, config.seed + 77) {}
};

ProgressiveSearcher::ProgressiveSearcher(std::vector<Tensor> embeddings,
                                         Tensor task_features)
    : ProgressiveSearcher(std::move(embeddings), std::move(task_features),
                          Options{}) {}

ProgressiveSearcher::ProgressiveSearcher(std::vector<Tensor> embeddings,
                                         Tensor task_features, Options options)
    : embeddings_(std::move(embeddings)),
      task_features_(std::move(task_features)),
      options_(options) {}

ProgressiveSearcher::~ProgressiveSearcher() = default;

Status ProgressiveSearcher::Snapshot(std::string* blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  State& s = *state_;
  ByteWriter w;
  w.Str(s.rng.SaveState());
  s.archive.Snapshot(&w);
  s.fmo.Snapshot(&w);
  w.U32(static_cast<uint32_t>(s.nodes.size()));
  for (const Node& node : s.nodes) {
    w.Ints(node.scheme);
    WritePoint(&w, node.point);
    // Sorted for a canonical blob (set semantics are order-free).
    std::vector<int> children(node.explored_children.begin(),
                              node.explored_children.end());
    std::sort(children.begin(), children.end());
    w.Ints(children);
  }
  w.U32(static_cast<uint32_t>(s.replay.size()));
  for (const FmoExample& ex : s.replay) WriteExample(&w, ex);
  *blob = w.Take();
  return Status::OK();
}

Status ProgressiveSearcher::Restore(std::string_view blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  State& s = *state_;
  ByteReader r(blob);
  std::string rng_state;
  uint32_t node_count = 0;
  if (!r.Str(&rng_state) || !s.rng.LoadState(rng_state) ||
      !s.archive.Restore(&r) || !s.fmo.Restore(&r) || !r.U32(&node_count)) {
    return Status::InvalidArgument("corrupted AutoMC searcher snapshot");
  }
  std::vector<Node> nodes(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    std::vector<int> children;
    if (!r.Ints(&nodes[i].scheme) || !ReadPoint(&r, &nodes[i].point) ||
        !r.Ints(&children)) {
      return Status::InvalidArgument("corrupted AutoMC searcher snapshot");
    }
    nodes[i].explored_children.insert(children.begin(), children.end());
  }
  uint32_t replay_count = 0;
  if (!r.U32(&replay_count)) {
    return Status::InvalidArgument("corrupted AutoMC searcher snapshot");
  }
  std::vector<FmoExample> replay(replay_count);
  for (uint32_t i = 0; i < replay_count; ++i) {
    if (!ReadExample(&r, &replay[i])) {
      return Status::InvalidArgument("corrupted AutoMC searcher snapshot");
    }
  }
  s.nodes = std::move(nodes);
  s.replay = std::move(replay);
  return Status::OK();
}

Result<SearchOutcome> ProgressiveSearcher::Search(SchemeEvaluator* evaluator,
                                                  const SearchSpace& space,
                                                  const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  if (embeddings_.size() != space.size()) {
    return Status::InvalidArgument(
        "embedding count does not match search space size");
  }
  state_ = std::make_unique<State>(config, embeddings_[0].numel(),
                                   task_features_.numel());
  AUTOMC_ASSIGN_OR_RETURN(bool restored,
                          MaybeRestoreSearch(this, evaluator, config));
  State& s = *state_;

  if (!restored) {
    // Warm-start F_mo on measured experience before the first round. A
    // resumed run skips this: the restored weights already contain it.
    if (!warm_start_.empty()) {
      for (int epoch = 0; epoch < 20; ++epoch) {
        std::vector<FmoExample> batch;
        for (int i = 0; i < 16; ++i) {
          batch.push_back(warm_start_[static_cast<size_t>(
              s.rng.UniformInt(static_cast<int64_t>(warm_start_.size())))]);
        }
        s.fmo.TrainBatch(batch);
      }
      s.replay = warm_start_;
      if (static_cast<int>(s.replay.size()) > options_.max_replay) {
        s.replay.resize(static_cast<size_t>(options_.max_replay));
      }
    }
    // Line 1: H_scheme starts from the START node (the uncompressed model).
    s.nodes.push_back(Node{{}, evaluator->base_point(), {}});
  }

  auto scheme_embeddings = [&](const std::vector<int>& scheme) {
    std::vector<Tensor> seq;
    seq.reserve(scheme.size());
    for (int st : scheme) seq.push_back(embeddings_[static_cast<size_t>(st)]);
    return seq;
  };

  while (evaluator->charged_executions() < config.max_strategy_executions) {
    AUTOMC_RETURN_IF_ERROR(CheckStop(this, evaluator, config));
    // Line 3: sample H_sub — all current Pareto-optimal nodes first, then
    // random extras (the paper samples "Pareto-Optimal and evaluated
    // schemes").
    std::vector<size_t> extendable;
    for (size_t i = 0; i < s.nodes.size(); ++i) {
      if (static_cast<int>(s.nodes[i].scheme.size()) < config.max_length) {
        extendable.push_back(i);
      }
    }
    if (extendable.empty()) break;
    std::vector<std::pair<double, double>> objs;
    objs.reserve(extendable.size());
    for (size_t i : extendable) {
      objs.push_back({s.nodes[i].point.acc,
                      -static_cast<double>(s.nodes[i].point.params)});
    }
    std::vector<size_t> h_sub;
    for (size_t fi : ParetoFrontIndices(objs)) h_sub.push_back(extendable[fi]);
    AUTOMC_METRIC_COUNT("search.progressive.rounds");
    AUTOMC_METRIC_OBSERVE("search.progressive.pareto_front_size",
                          static_cast<double>(h_sub.size()));
    s.rng.Shuffle(&h_sub);
    if (static_cast<int>(h_sub.size()) > options_.sample_schemes) {
      h_sub.resize(static_cast<size_t>(options_.sample_schemes));
    }
    while (static_cast<int>(h_sub.size()) < options_.sample_schemes &&
           h_sub.size() < extendable.size()) {
      size_t pick = extendable[static_cast<size_t>(
          s.rng.UniformInt(static_cast<int64_t>(extendable.size())))];
      if (std::find(h_sub.begin(), h_sub.end(), pick) == h_sub.end()) {
        h_sub.push_back(pick);
      }
    }

    // Line 4: S_step — unexplored one-step extensions (subsampled).
    // Two phases so candidate scoring can fan out: the rng draws stay in a
    // serial pass (preserving the exact random sequence regardless of the
    // thread count), then the F_mo forward passes — pure, const, and by far
    // the dominant cost of a round — run in parallel over the candidate set.
    struct Candidate {
      size_t node;
      int strategy;
      double pred_acc;   // ACC_{seq,s}
      double pred_par;   // PAR_{seq,s}
    };
    std::vector<Candidate> candidates;
    std::vector<const std::vector<Tensor>*> cand_seq;
    std::vector<std::vector<Tensor>> seqs;
    seqs.reserve(h_sub.size());
    for (size_t ni : h_sub) {
      Node& node = s.nodes[ni];
      seqs.push_back(scheme_embeddings(node.scheme));
      const std::vector<Tensor>& seq = seqs.back();
      for (int c = 0; c < options_.candidates_per_scheme; ++c) {
        int cand_strategy = static_cast<int>(
            s.rng.UniformInt(static_cast<int64_t>(space.size())));
        if (node.explored_children.count(cand_strategy)) continue;
        Candidate cand;
        cand.node = ni;
        cand.strategy = cand_strategy;
        cand.pred_acc = 0.0;
        cand.pred_par = 0.0;
        candidates.push_back(cand);
        cand_seq.push_back(&seq);
      }
    }
    if (candidates.empty()) break;
    // Line 5 scoring (Equation 4), parallel over candidates; each writes
    // only its own slot.
    automc::ParallelFor(
        static_cast<int64_t>(candidates.size()), 1,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            Candidate& cand = candidates[static_cast<size_t>(i)];
            const Node& node = s.nodes[cand.node];
            auto [ar_step, pr_step] = s.fmo.Predict(
                *cand_seq[static_cast<size_t>(i)],
                embeddings_[static_cast<size_t>(cand.strategy)],
                task_features_);
            cand.pred_acc = node.point.acc * (1.0 + ar_step);
            cand.pred_par =
                static_cast<double>(node.point.params) * (1.0 - pr_step);
          }
        });
    AUTOMC_METRIC_COUNT("search.progressive.candidates_expanded",
                        static_cast<int64_t>(candidates.size()));

    // Line 5: ParetoO = argmax [ACC, PAR] (maximize ACC, minimize PAR).
    std::vector<std::pair<double, double>> cand_objs;
    cand_objs.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      cand_objs.push_back({c.pred_acc, -c.pred_par});
    }
    std::vector<size_t> pareto = ParetoFrontIndices(cand_objs);
    s.rng.Shuffle(&pareto);
    if (static_cast<int>(pareto.size()) > options_.max_evals_per_round) {
      pareto.resize(static_cast<size_t>(options_.max_evals_per_round));
    }

    // Line 6: evaluate the selected extensions as one batch (prefix-cached,
    // so each costs one strategy execution; siblings of distinct parents fan
    // out across the pool). The charged-budget truncation inside
    // EvaluateBatch reproduces the old per-candidate check, so the round is
    // trajectory-identical to the serial loop.
    std::vector<std::vector<int>> round;
    round.reserve(pareto.size());
    for (size_t pi : pareto) {
      const Candidate& cand = candidates[pi];
      std::vector<int> child_scheme = s.nodes[cand.node].scheme;
      child_scheme.push_back(cand.strategy);
      round.push_back(std::move(child_scheme));
    }
    AUTOMC_ASSIGN_OR_RETURN(
        BatchEval evald,
        evaluator->EvaluateBatch(round, config.max_strategy_executions));

    std::vector<FmoExample> batch;
    for (size_t i = 0; i < evald.points.size(); ++i) {
      const Candidate& cand = candidates[pareto[i]];
      Node& parent = s.nodes[cand.node];
      const EvalPoint& point = evald.points[i];
      const EvalPoint& parent_point = evald.parents[i];
      parent.explored_children.insert(cand.strategy);
      s.archive.Record(round[i], point,
                       static_cast<int>(evald.charged_after[i]));

      // Measured step effects for Equation 5.
      FmoExample ex;
      ex.sequence = scheme_embeddings(parent.scheme);
      ex.candidate = embeddings_[static_cast<size_t>(cand.strategy)];
      ex.task = task_features_;
      ex.ar_step = parent_point.acc > 0
                       ? static_cast<float>(point.acc / parent_point.acc - 1.0)
                       : 0.0f;
      ex.pr_step = parent_point.params > 0
                       ? static_cast<float>(
                             1.0 - static_cast<double>(point.params) /
                                       parent_point.params)
                       : 0.0f;
      batch.push_back(ex);

      // Line 8: the new scheme joins H_scheme.
      s.nodes.push_back(Node{std::move(round[i]), point, {}});
    }
    if (batch.empty()) continue;

    // Line 7: optimize F_mo on fresh transitions plus replay.
    for (const FmoExample& ex : batch) {
      if (static_cast<int>(s.replay.size()) < options_.max_replay) {
        s.replay.push_back(ex);
      } else {
        s.replay[static_cast<size_t>(
            s.rng.UniformInt(static_cast<int64_t>(s.replay.size())))] = ex;
      }
    }
    std::vector<FmoExample> train_batch = batch;
    for (int extra = 0; extra < 8 && !s.replay.empty(); ++extra) {
      train_batch.push_back(s.replay[static_cast<size_t>(
          s.rng.UniformInt(static_cast<int64_t>(s.replay.size())))]);
    }
    s.fmo.TrainBatch(train_batch);
    AUTOMC_RETURN_IF_ERROR(CheckpointRound(this, evaluator, config));
  }

  return s.archive.Finalize(static_cast<int>(evaluator->charged_executions()));
}

}  // namespace search
}  // namespace automc
