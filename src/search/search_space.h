#ifndef AUTOMC_SEARCH_SEARCH_SPACE_H_
#define AUTOMC_SEARCH_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "compress/compressor.h"

namespace automc {
namespace search {

// The space of compression strategies: every method of Table 1 crossed with
// its hyperparameter grid. A compression *scheme* is a sequence of indices
// into strategies(); the scheme space is the tree of Figure 1.
class SearchSpace {
 public:
  // All six methods with the full Table 1 grids.
  static SearchSpace FullTable1();
  // Table 1 plus the QT quantization extension (the paper's future-work
  // "enrich our search space" direction).
  static SearchSpace Table1WithExtensions();
  // Only the given method's strategies (the AutoMC-MultipleSource ablation
  // uses SingleMethod("LeGR")).
  static SearchSpace SingleMethod(const std::string& method);

  const std::vector<compress::StrategySpec>& strategies() const {
    return strategies_;
  }
  size_t size() const { return strategies_.size(); }
  const compress::StrategySpec& strategy(size_t i) const {
    return strategies_[i];
  }

  // Human-readable form of a scheme ("LeGR(...) -> NS(...)").
  std::string SchemeToString(const std::vector<int>& scheme) const;

 private:
  std::vector<compress::StrategySpec> strategies_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_SEARCH_SPACE_H_
