#include "search/report.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/bytes.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

namespace {

// CSV-escapes a field by doubling quotes and wrapping in quotes.
std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status WriteHistoryCsv(const SearchOutcome& outcome, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  *out << "executions,best_acc_feasible,best_acc_any\n";
  for (const HistoryPoint& h : outcome.history) {
    *out << h.executions << "," << h.best_acc << "," << h.best_acc_any
         << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status WriteHistoryCsvFile(const SearchOutcome& outcome,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return WriteHistoryCsv(outcome, &out);
}

Status WriteParetoCsv(const SearchOutcome& outcome, const SearchSpace& space,
                      std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (outcome.pareto_schemes.size() != outcome.pareto_points.size()) {
    return Status::InvalidArgument("outcome arrays out of sync");
  }
  *out << "acc,params,flops,pr,fr,scheme\n";
  for (size_t i = 0; i < outcome.pareto_points.size(); ++i) {
    const EvalPoint& p = outcome.pareto_points[i];
    *out << p.acc << "," << p.params << "," << p.flops << "," << p.pr << ","
         << p.fr << "," << Quote(space.SchemeToString(outcome.pareto_schemes[i]))
         << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status WriteParetoCsvFile(const SearchOutcome& outcome,
                          const SearchSpace& space, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return WriteParetoCsv(outcome, space, &out);
}

Status SaveOutcome(const SearchOutcome& outcome, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (outcome.pareto_schemes.size() != outcome.pareto_points.size()) {
    return Status::InvalidArgument("outcome arrays out of sync");
  }
  *out << "AUTOMC_OUTCOME 1\n";
  *out << "executions " << outcome.executions << "\n";
  *out << "history " << outcome.history.size() << "\n";
  out->precision(17);
  for (const HistoryPoint& h : outcome.history) {
    *out << h.executions << " " << h.best_acc << " " << h.best_acc_any
         << "\n";
  }
  *out << "pareto " << outcome.pareto_schemes.size() << "\n";
  for (size_t i = 0; i < outcome.pareto_schemes.size(); ++i) {
    const EvalPoint& p = outcome.pareto_points[i];
    *out << p.acc << " " << p.params << " " << p.flops << " " << p.pr << " "
         << p.fr << " " << outcome.pareto_schemes[i].size();
    for (int s : outcome.pareto_schemes[i]) *out << " " << s;
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<SearchOutcome> LoadOutcome(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != "AUTOMC_OUTCOME" ||
      version != 1) {
    return Status::InvalidArgument("bad outcome header");
  }
  SearchOutcome out;
  std::string key;
  size_t count = 0;
  if (!(*in >> key >> out.executions) || key != "executions") {
    return Status::InvalidArgument("missing executions");
  }
  if (!(*in >> key >> count) || key != "history" || count > 1000000) {
    return Status::InvalidArgument("bad history count");
  }
  out.history.resize(count);
  for (HistoryPoint& h : out.history) {
    if (!(*in >> h.executions >> h.best_acc >> h.best_acc_any)) {
      return Status::InvalidArgument("truncated history");
    }
  }
  if (!(*in >> key >> count) || key != "pareto" || count > 1000000) {
    return Status::InvalidArgument("bad pareto count");
  }
  out.pareto_points.resize(count);
  out.pareto_schemes.resize(count);
  for (size_t i = 0; i < count; ++i) {
    EvalPoint& p = out.pareto_points[i];
    size_t len = 0;
    if (!(*in >> p.acc >> p.params >> p.flops >> p.pr >> p.fr >> len) ||
        len > 10000) {
      return Status::InvalidArgument("truncated pareto entry");
    }
    out.pareto_schemes[i].resize(len);
    for (size_t j = 0; j < len; ++j) {
      if (!(*in >> out.pareto_schemes[i][j])) {
        return Status::InvalidArgument("truncated scheme");
      }
    }
  }
  return out;
}

Status SaveOutcomeFile(const SearchOutcome& outcome, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return SaveOutcome(outcome, &out);
}

Result<SearchOutcome> LoadOutcomeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return LoadOutcome(&in);
}

std::string SaveOutcomeBytes(const SearchOutcome& outcome) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(outcome.pareto_schemes.size()));
  for (size_t i = 0; i < outcome.pareto_schemes.size(); ++i) {
    w.Ints(outcome.pareto_schemes[i]);
    WritePoint(&w, outcome.pareto_points[i]);
  }
  w.U32(static_cast<uint32_t>(outcome.history.size()));
  for (const HistoryPoint& h : outcome.history) {
    w.I32(h.executions);
    w.F64(h.best_acc);
    w.F64(h.best_acc_any);
  }
  w.I32(outcome.executions);
  return w.Take();
}

Result<SearchOutcome> LoadOutcomeBytes(std::string_view bytes) {
  ByteReader r(bytes);
  SearchOutcome out;
  uint32_t pareto = 0;
  if (!r.U32(&pareto)) {
    return Status::InvalidArgument("truncated outcome bytes");
  }
  out.pareto_schemes.resize(pareto);
  out.pareto_points.resize(pareto);
  for (uint32_t i = 0; i < pareto; ++i) {
    if (!r.Ints(&out.pareto_schemes[i]) ||
        !ReadPoint(&r, &out.pareto_points[i])) {
      return Status::InvalidArgument("truncated outcome pareto entry");
    }
  }
  uint32_t hist = 0;
  if (!r.U32(&hist)) return Status::InvalidArgument("truncated outcome bytes");
  out.history.resize(hist);
  for (uint32_t i = 0; i < hist; ++i) {
    HistoryPoint& h = out.history[i];
    if (!r.I32(&h.executions) || !r.F64(&h.best_acc) ||
        !r.F64(&h.best_acc_any)) {
      return Status::InvalidArgument("truncated outcome history entry");
    }
  }
  if (!r.I32(&out.executions) || !r.Done()) {
    return Status::InvalidArgument("malformed outcome bytes");
  }
  return out;
}

}  // namespace search
}  // namespace automc
