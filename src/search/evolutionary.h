#ifndef AUTOMC_SEARCH_EVOLUTIONARY_H_
#define AUTOMC_SEARCH_EVOLUTIONARY_H_

#include <memory>

#include "search/searcher.h"

namespace automc {
namespace search {

// Multi-objective evolutionary search over schemes: a steady-state EA with
// Pareto-domination-based selection, one-point crossover on strategy
// sequences and add/drop/replace mutation. This is the "Evolution" baseline
// of Section 4.3.
class EvolutionarySearcher : public Searcher {
 public:
  struct Options {
    int population = 8;
    double crossover_prob = 0.5;
    double mutate_prob = 0.9;
  };

  EvolutionarySearcher();
  explicit EvolutionarySearcher(Options options);
  ~EvolutionarySearcher() override;

  std::string Name() const override { return "Evolution"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;
  Status Snapshot(std::string* blob) override;
  Status Restore(std::string_view blob) override;

 private:
  Options options_;
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_EVOLUTIONARY_H_
