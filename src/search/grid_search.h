#ifndef AUTOMC_SEARCH_GRID_SEARCH_H_
#define AUTOMC_SEARCH_GRID_SEARCH_H_

#include <string>

#include "common/result.h"
#include "compress/compressor.h"
#include "nn/model.h"
#include "search/evaluator.h"

namespace automc {
namespace search {

// The paper's protocol for the manual baselines: fix a method's parameter
// decrease ratio (HP2) to the externally requested target and grid-search
// its remaining hyperparameters, keeping the best test accuracy.

struct GridSearchOptions {
  // Candidate configurations tried; <= 0 means the full method grid.
  int max_configs = 8;
  // When > 0, overrides the method grid's HP2 with this value.
  double target_pr = 0.0;
  uint64_t seed = 1;
};

struct GridSearchResult {
  compress::StrategySpec best_spec;
  EvalPoint point;     // measurement of the best configuration
  int configs_tried = 0;
  int configs_failed = 0;  // configurations the model couldn't support
};

// Runs `method`'s grid against clones of `base` (never mutated). Sampled
// without replacement when max_configs is smaller than the grid.
Result<GridSearchResult> GridSearchMethod(
    const std::string& method, nn::Model* base,
    const compress::CompressionContext& ctx, const GridSearchOptions& options);

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_GRID_SEARCH_H_
