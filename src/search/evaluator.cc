#include "search/evaluator.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "nn/trainer.h"

namespace automc {
namespace search {

namespace {

EvalPoint PointFromRecord(const store::EvalRecord& rec) {
  EvalPoint p;
  p.acc = rec.acc;
  p.params = rec.params;
  p.flops = rec.flops;
  p.ar = rec.ar;
  p.pr = rec.pr;
  p.fr = rec.fr;
  return p;
}

bool SamePoint(const EvalPoint& a, const EvalPoint& b) {
  return a.acc == b.acc && a.params == b.params && a.flops == b.flops &&
         a.ar == b.ar && a.pr == b.pr && a.fr == b.fr;
}

}  // namespace

SchemeEvaluator::SchemeEvaluator(const SearchSpace* space,
                                 nn::Model* base_model,
                                 const compress::CompressionContext& ctx,
                                 Options options)
    : space_(space), base_model_(base_model), ctx_(ctx), options_(options) {
  AUTOMC_CHECK(space_ != nullptr);
  AUTOMC_CHECK(base_model_ != nullptr);
  base_point_ = MeasureModel(base_model_);
  CacheEntry root;
  root.model = base_model_->Clone();
  root.point = base_point_;
  cache_.emplace("", std::move(root));
  // The root point is given, not searched for: it never charges budget.
  points_.emplace("", base_point_);
}

std::string SchemeEvaluator::Key(const std::vector<int>& scheme) {
  std::string key;
  key.resize(4 * scheme.size());
  for (size_t i = 0; i < scheme.size(); ++i) {
    uint32_t v = static_cast<uint32_t>(scheme[i]);
    key[4 * i + 0] = static_cast<char>(v & 0xff);
    key[4 * i + 1] = static_cast<char>((v >> 8) & 0xff);
    key[4 * i + 2] = static_cast<char>((v >> 16) & 0xff);
    key[4 * i + 3] = static_cast<char>((v >> 24) & 0xff);
  }
  return key;
}

uint64_t SchemeEvaluator::SpaceFingerprint(const SearchSpace& space) {
  uint64_t count = space.size();
  uint64_t h = store::Fnv1a(&count, sizeof(count));
  for (size_t i = 0; i < space.size(); ++i) {
    const std::string s = space.strategy(i).ToString();
    h = store::Fnv1a(s.data(), s.size(), h);
  }
  return h;
}

uint64_t SchemeEvaluator::ModelFingerprint(nn::Model* model) {
  const nn::ModelSpec& spec = model->spec();
  ByteWriter w;
  w.Str(spec.family);
  w.I32(spec.depth);
  w.I32(spec.num_classes);
  w.I32(spec.base_width);
  w.I32(spec.in_channels);
  w.I32(spec.image_size);
  w.I32(model->weight_bits());
  uint64_t h = store::Fnv1a(w.str().data(), w.str().size());
  for (nn::Param* p : model->Params()) {
    h = store::Fnv1a(p->value.data(),
                     static_cast<size_t>(p->value.numel()) * sizeof(float), h);
  }
  return h;
}

Status SchemeEvaluator::AttachStore(store::ExperienceStore* experience_store) {
  AUTOMC_CHECK(experience_store != nullptr);
  store::Fingerprint fp;
  fp.space = SpaceFingerprint(*space_);
  fp.model = ModelFingerprint(base_model_);
  experience_store->Bind(fp);
  store_ = experience_store;
  // Persist the base point so every depth-1 record has a parent in the log
  // (ExportSteps derives AR/PR steps relative to the parent record).
  return PersistPoint({}, base_point_);
}

EvalPoint SchemeEvaluator::MeasureModel(nn::Model* model) const {
  EvalPoint p;
  p.acc = nn::Trainer::Evaluate(model, *ctx_.test);
  p.params = model->EffectiveParamCount();
  p.flops = model->FlopsPerSample();
  if (base_point_.params > 0) {
    p.ar = base_point_.acc > 0 ? p.acc / base_point_.acc - 1.0 : 0.0;
    p.pr = 1.0 - static_cast<double>(p.params) / base_point_.params;
    p.fr = 1.0 - static_cast<double>(p.flops) / base_point_.flops;
  }
  return p;
}

void SchemeEvaluator::MaybeEvict() {
  while (static_cast<int>(cache_.size()) > options_.max_cached_models + 1) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first.empty()) continue;  // never evict the root
      if (victim == cache_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) break;
    cache_.erase(victim);
    AUTOMC_METRIC_COUNT("evaluator.cache_evictions");
  }
}

void SchemeEvaluator::Insert(std::string_view key,
                             std::unique_ptr<nn::Model> model,
                             const EvalPoint& point) {
  CacheEntry entry;
  entry.model = std::move(model);
  entry.point = point;
  entry.last_used = ++clock_;
  cache_.insert_or_assign(std::string(key), std::move(entry));
  MaybeEvict();
}

void SchemeEvaluator::RecordPoint(std::string_view key,
                                  const EvalPoint& point) {
  auto [it, inserted] = points_.emplace(std::string(key), point);
  (void)it;
  if (inserted) {
    ++charged_executions_;
    AUTOMC_METRIC_COUNT("evaluator.charged_executions");
  }
}

Status SchemeEvaluator::PersistPoint(const std::vector<int>& scheme,
                                     const EvalPoint& point) {
  if (store_ == nullptr) return Status::OK();
  store::EvalRecord rec;
  rec.scheme = scheme;
  rec.acc = point.acc;
  rec.params = point.params;
  rec.flops = point.flops;
  rec.ar = point.ar;
  rec.pr = point.pr;
  rec.fr = point.fr;
  return store_->Append(rec);
}

Result<EvalPoint> SchemeEvaluator::Evaluate(const std::vector<int>& scheme,
                                            EvalPoint* parent_out) {
  return EvaluateInternal(scheme, parent_out, nullptr);
}

Result<EvalPoint> SchemeEvaluator::EvaluateInternal(
    const std::vector<int>& scheme, EvalPoint* parent_out, SpecMap* spec) {
  AUTOMC_SCOPED_TIMER("evaluator.eval_ms");
  AUTOMC_METRIC_COUNT("evaluator.evaluations");
  for (int idx : scheme) {
    if (idx < 0 || static_cast<size_t>(idx) >= space_->size()) {
      return Status::OutOfRange("strategy index out of range: " +
                                std::to_string(idx));
    }
  }

  // Deepest known point. The full key is built once; each prefix probe is an
  // allocation-free string_view lookup (points_ keys are prefix-closed, but
  // scanning deepest-first keeps this robust even if they were not).
  const size_t n = scheme.size();
  const std::string full_key = Key(scheme);
  size_t p_start = 0;
  for (size_t len = n; len > 0; --len) {
    if (points_.find(KeyPrefix(full_key, len)) != points_.end()) {
      p_start = len;
      break;
    }
  }

  if (p_start == n) {
    // The whole scheme was measured (or store-served) earlier this run.
    ++cache_hits_;
    AUTOMC_METRIC_COUNT("evaluator.cache_hits", static_cast<int64_t>(n));
    if (auto it = cache_.find(full_key); it != cache_.end()) {
      it->second.last_used = ++clock_;  // keep hot models resident
    }
    if (parent_out != nullptr) {
      *parent_out = n == 0 ? base_point_
                           : points_.find(KeyPrefix(full_key, n - 1))->second;
    }
    return points_.find(full_key)->second;
  }

  // Path A: the full scheme is persisted. Prefix-closedness of the log means
  // every intermediate point is too, so the entire evaluation is served from
  // the store with zero strategy executions. Each novel point still charges
  // budget so a warm rerun replays the original control flow and terminates.
  if (store_ != nullptr && store_->Contains(scheme)) {
    EvalPoint point = points_.find(KeyPrefix(full_key, p_start))->second;
    EvalPoint parent = point;
    std::vector<int> prefix(scheme.begin(),
                            scheme.begin() + static_cast<long>(p_start));
    bool served = true;
    for (size_t len = p_start + 1; len <= n; ++len) {
      prefix.push_back(scheme[len - 1]);
      const store::EvalRecord* rec = store_->Lookup(prefix);
      if (rec == nullptr) {
        // Foreign log without prefix-closedness; execute what's left instead.
        served = false;
        break;
      }
      parent = point;
      point = PointFromRecord(*rec);
      RecordPoint(KeyPrefix(full_key, len), point);
      ++store_hits_;
    }
    if (served) {
      if (parent_out != nullptr) *parent_out = parent;
      return point;
    }
    // Points recorded above stay valid; recompute the resume depth.
    for (size_t len = n; len > 0; --len) {
      if (points_.find(KeyPrefix(full_key, len)) != points_.end()) {
        p_start = len;
        break;
      }
    }
  }

  // Path B: execute from the deepest model-bearing prefix. Model snapshots
  // are a subset of known points, so m_start <= p_start; steps at or below
  // p_start re-run the compressor (snapshot was evicted) but reuse the known
  // point without re-measuring or re-charging.
  size_t m_start = 0;
  for (size_t len = n; len > 0; --len) {
    if (cache_.find(KeyPrefix(full_key, len)) != cache_.end()) {
      m_start = len;
      break;
    }
  }
  auto base_it = cache_.find(KeyPrefix(full_key, m_start));
  AUTOMC_CHECK(base_it != cache_.end());
  base_it->second.last_used = ++clock_;
  // The cache-hit metric counts strategy executions the prefix cache
  // avoided (a fully cached scheme avoids all of them); misses count the
  // executions that still have to run.
  AUTOMC_METRIC_COUNT("evaluator.cache_hits", static_cast<int64_t>(m_start));
  AUTOMC_METRIC_COUNT("evaluator.cache_misses",
                      static_cast<int64_t>(n - m_start));

  std::unique_ptr<nn::Model> model = base_it->second.model->Clone();
  EvalPoint point = base_it->second.point;
  EvalPoint parent = point;
  std::vector<int> prefix(scheme.begin(),
                          scheme.begin() + static_cast<long>(m_start));
  for (size_t i = m_start; i < n; ++i) {
    const size_t len = i + 1;
    SpecNode* snode = nullptr;
    if (spec != nullptr) {
      auto sit = spec->find(KeyPrefix(full_key, len));
      if (sit != spec->end() && sit->second.model != nullptr) {
        snode = &sit->second;
      }
    }
    if (snode != nullptr) {
      // A worker already ran this strategy speculatively. Node models are
      // pure functions of the scheme prefix (per-node seeding below), so
      // adopting the snapshot is bit-identical to re-running the compressor.
      model = std::move(snode->model);
    } else {
      const compress::StrategySpec& sspec = space_->strategy(
          static_cast<size_t>(scheme[static_cast<size_t>(i)]));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<compress::Compressor> compressor,
                              compress::CreateCompressor(sspec));
      compress::CompressionContext ctx = ctx_;
      // Per-node deterministic seed: same scheme prefix -> same result.
      ctx.seed = ctx_.seed * 1315423911u +
                 static_cast<uint64_t>(scheme[static_cast<size_t>(i)]) * 2654435761u +
                 static_cast<uint64_t>(i);
      Status st = compressor->Compress(model.get(), ctx, nullptr);
      if (st.code() == StatusCode::kFailedPrecondition) {
        // The strategy is inapplicable to this model state (e.g. pruning
        // after every conv was decomposed and re-decomposition hit its
        // floor). The scheme is still well-defined: the step is a no-op,
        // which the search naturally deprioritizes because it brings no
        // improvement.
        AUTOMC_LOG(Debug) << "strategy " << sspec.ToString()
                          << " inapplicable: " << st.ToString();
      } else if (!st.ok()) {
        return st;
      }
    }
    ++strategy_executions_;
    AUTOMC_METRIC_COUNT("search.strategy_executions");

    prefix.push_back(scheme[i]);
    parent = point;
    auto pit = points_.find(KeyPrefix(full_key, len));
    if (pit != points_.end()) {
      // Known point whose model snapshot was evicted: the determinism
      // contract guarantees re-measuring would reproduce it bit-for-bit.
      point = pit->second;
    } else {
      const store::EvalRecord* rec =
          store_ != nullptr ? store_->Lookup(prefix) : nullptr;
      if (rec != nullptr) {
        point = PointFromRecord(*rec);
        ++store_hits_;
      } else if (snode != nullptr && snode->measured) {
        point = snode->point;
        AUTOMC_RETURN_IF_ERROR(PersistPoint(prefix, point));
      } else {
        point = MeasureModel(model.get());
        AUTOMC_RETURN_IF_ERROR(PersistPoint(prefix, point));
      }
      RecordPoint(KeyPrefix(full_key, len), point);
    }
    Insert(KeyPrefix(full_key, len), model->Clone(), point);
  }
  if (parent_out != nullptr) *parent_out = parent;
  return point;
}

void SchemeEvaluator::SpeculateChain(
    const std::vector<const std::vector<int>*>& members,
    std::vector<std::pair<std::string, SpecNode>>* out) const {
  std::map<std::string, size_t, std::less<>> done;  // node key -> index in out
  std::set<std::string, std::less<>> failed;
  for (const std::vector<int>* mp : members) {
    const std::vector<int>& scheme = *mp;
    const size_t n = scheme.size();
    const std::string key = Key(scheme);

    // Deepest available model: a node this chain already produced, else the
    // deepest cached snapshot (frozen for the whole speculative phase).
    size_t start = 0;
    const nn::Model* base = nullptr;
    for (size_t len = n; len > 0 && base == nullptr; --len) {
      const std::string_view pk = KeyPrefix(key, len);
      if (auto dit = done.find(pk); dit != done.end()) {
        start = len;
        base = (*out)[dit->second].second.model.get();
      } else if (auto cit = cache_.find(pk); cit != cache_.end()) {
        start = len;
        base = cit->second.model.get();
      }
    }
    if (base == nullptr) base = cache_.find(std::string_view())->second.model.get();

    std::unique_ptr<nn::Model> model;
    std::vector<int> prefix(scheme.begin(),
                            scheme.begin() + static_cast<long>(start));
    for (size_t len = start + 1; len <= n; ++len) {
      const std::string_view pk = KeyPrefix(key, len);
      if (failed.find(pk) != failed.end()) break;
      if (model == nullptr) model = base->Clone();
      const int strategy = scheme[len - 1];
      Status st;
      auto compressor =
          compress::CreateCompressor(space_->strategy(static_cast<size_t>(strategy)));
      if (compressor.ok()) {
        compress::CompressionContext ctx = ctx_;
        // Same per-node seed as the serial path: the node's model is a pure
        // function of the scheme prefix, so the commit can adopt it.
        ctx.seed = ctx_.seed * 1315423911u +
                   static_cast<uint64_t>(strategy) * 2654435761u +
                   static_cast<uint64_t>(len - 1);
        st = (*compressor)->Compress(model.get(), ctx, nullptr);
      } else {
        st = compressor.status();
      }
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
        // Record nothing for this node: the commit phase re-executes it
        // serially and surfaces the error at the right scheme index.
        failed.emplace(pk);
        break;
      }
      prefix.push_back(strategy);

      SpecNode node;
      if (auto pit = points_.find(pk); pit != points_.end()) {
        node.point = pit->second;
      } else {
        const store::EvalRecord* rec =
            store_ != nullptr ? store_->Peek(prefix) : nullptr;
        if (rec != nullptr) {
          node.point = PointFromRecord(*rec);
        } else {
          node.point = MeasureModel(model.get());
          node.measured = true;
        }
      }
      node.model = model->Clone();
      out->emplace_back(std::string(pk), std::move(node));
      done.emplace(out->back().first, out->size() - 1);
    }
  }
}

Result<BatchEval> SchemeEvaluator::EvaluateBatch(
    const std::vector<std::vector<int>>& schemes, int64_t charged_limit) {
  AUTOMC_SCOPED_TIMER("eval.batch_ms");
  AUTOMC_METRIC_OBSERVE("eval.batch_size", static_cast<double>(schemes.size()));

  // ---- Phase 1: plan (serial). ----
  // Predict each scheme's charged cost — the prefixes neither in points_ nor
  // claimed by an earlier batch member; commit-time charging records exactly
  // that set — to truncate at charged_limit precisely where the serial
  // loop's per-iteration check would. Schemes that will run compressors are
  // grouped into chains by their entry node (first node past the deepest
  // cached prefix): two schemes share an executed node iff they share the
  // entry node, so chains partition the speculative work and disjoint
  // subtrees fan out in parallel.
  struct Chain {
    std::vector<const std::vector<int>*> members;  // ascending submission order
  };
  std::vector<Chain> chains;
  std::map<std::string, size_t, std::less<>> chain_of_entry;
  std::set<std::string, std::less<>> pending;
  size_t accepted = schemes.size();
  int64_t predicted_charged = charged_executions_;
  for (size_t s = 0; s < schemes.size(); ++s) {
    const std::vector<int>& scheme = schemes[s];
    if (charged_limit >= 0 && predicted_charged >= charged_limit) {
      accepted = s;
      break;
    }
    bool valid = true;
    for (int idx : scheme) {
      if (idx < 0 || static_cast<size_t>(idx) >= space_->size()) valid = false;
    }
    if (!valid) {
      // The commit loop stops with the serial loop's error at index s;
      // speculating past it would be wasted work.
      accepted = s + 1;
      break;
    }
    const std::string key = Key(scheme);
    int64_t novel = 0;
    for (size_t len = 1; len <= scheme.size(); ++len) {
      const std::string_view pk = KeyPrefix(key, len);
      if (points_.find(pk) != points_.end()) continue;
      if (pending.find(pk) != pending.end()) continue;
      ++novel;
      pending.emplace(pk);
    }
    predicted_charged += novel;
    // No speculation needed: fully-known schemes replay from points_, and
    // store-resident ones replay through the store-serving path, both
    // without running a compressor.
    if (novel == 0) continue;
    if (store_ != nullptr && store_->Contains(scheme)) continue;
    size_t entry_len = 0;
    for (size_t len = scheme.size(); len > 0; --len) {
      if (cache_.find(KeyPrefix(key, len)) != cache_.end()) {
        entry_len = len;
        break;
      }
    }
    const std::string entry(KeyPrefix(key, entry_len + 1));
    auto [it, inserted] = chain_of_entry.emplace(entry, chains.size());
    if (inserted) chains.emplace_back();
    chains[it->second].members.push_back(&scheme);
  }

  // ---- Phase 2: speculate (parallel over chains). ----
  SpecMap spec;
  if (!chains.empty()) {
    AUTOMC_METRIC_OBSERVE("eval.parallel_subtrees",
                          static_cast<double>(chains.size()));
    std::vector<std::vector<std::pair<std::string, SpecNode>>> produced(
        chains.size());
    automc::ParallelFor(
        static_cast<int64_t>(chains.size()), 1,
        [&](int64_t b, int64_t e) {
          for (int64_t c = b; c < e; ++c) {
            SpeculateChain(chains[static_cast<size_t>(c)].members,
                           &produced[static_cast<size_t>(c)]);
          }
        });
    for (auto& nodes : produced) {
      for (auto& [key, node] : nodes) {
        spec.emplace(std::move(key), std::move(node));
      }
    }
  }

  // ---- Phase 3: commit (serial, ascending submission order). ----
  BatchEval out;
  out.points.reserve(accepted);
  for (size_t s = 0; s < accepted; ++s) {
    EvalPoint parent;
    AUTOMC_ASSIGN_OR_RETURN(EvalPoint point,
                            EvaluateInternal(schemes[s], &parent, &spec));
    out.points.push_back(point);
    out.parents.push_back(parent);
    out.charged_after.push_back(charged_executions_);
  }
  return out;
}

uint64_t SchemeEvaluator::CacheDigest() const {
  auto mix = [](uint64_t h, const void* data, size_t bytes) {
    return store::Fnv1a(data, bytes, h);
  };
  uint64_t h = store::Fnv1a(&clock_, sizeof(clock_));
  for (const auto& [key, entry] : cache_) {
    h = mix(h, key.data(), key.size());
    h = mix(h, &entry.last_used, sizeof(entry.last_used));
    h = mix(h, &entry.point.acc, sizeof(entry.point.acc));
    h = mix(h, &entry.point.params, sizeof(entry.point.params));
    h = mix(h, &entry.point.flops, sizeof(entry.point.flops));
    h = mix(h, &entry.point.ar, sizeof(entry.point.ar));
    h = mix(h, &entry.point.pr, sizeof(entry.point.pr));
    h = mix(h, &entry.point.fr, sizeof(entry.point.fr));
  }
  return h;
}

void SchemeEvaluator::SnapshotState(ByteWriter* w) const {
  w->U64(points_.size());
  for (const auto& [key, p] : points_) {
    w->Str(key);
    w->F64(p.acc);
    w->I64(p.params);
    w->I64(p.flops);
    w->F64(p.ar);
    w->F64(p.pr);
    w->F64(p.fr);
  }
  w->I64(charged_executions_);
}

Status SchemeEvaluator::RestoreState(std::string_view blob) {
  ByteReader r(blob);
  uint64_t count = 0;
  if (!r.U64(&count)) {
    return Status::InvalidArgument("truncated evaluator snapshot");
  }
  std::map<std::string, EvalPoint, std::less<>> points;
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    EvalPoint p;
    if (!r.Str(&key) || !r.F64(&p.acc) || !r.I64(&p.params) ||
        !r.I64(&p.flops) || !r.F64(&p.ar) || !r.F64(&p.pr) || !r.F64(&p.fr)) {
      return Status::InvalidArgument("truncated evaluator snapshot");
    }
    points[std::move(key)] = p;
  }
  int64_t charged = 0;
  if (!r.I64(&charged)) {
    return Status::InvalidArgument("truncated evaluator snapshot");
  }
  auto root = points.find(std::string());
  if (root == points.end()) {
    return Status::InvalidArgument("evaluator snapshot lacks the base point");
  }
  if (!SamePoint(root->second, base_point_)) {
    return Status::FailedPrecondition(
        "checkpoint base point does not match this base model; the "
        "checkpoint belongs to a different task or seed");
  }
  points_ = std::move(points);
  charged_executions_ = charged;
  return Status::OK();
}

}  // namespace search
}  // namespace automc
