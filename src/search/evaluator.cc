#include "search/evaluator.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/trainer.h"

namespace automc {
namespace search {

SchemeEvaluator::SchemeEvaluator(const SearchSpace* space,
                                 nn::Model* base_model,
                                 const compress::CompressionContext& ctx,
                                 Options options)
    : space_(space), base_model_(base_model), ctx_(ctx), options_(options) {
  AUTOMC_CHECK(space_ != nullptr);
  AUTOMC_CHECK(base_model_ != nullptr);
  base_point_ = MeasureModel(base_model_);
  CacheEntry root;
  root.model = base_model_->Clone();
  root.point = base_point_;
  cache_.emplace("", std::move(root));
}

std::string SchemeEvaluator::Key(const std::vector<int>& scheme) {
  std::string key;
  key.resize(4 * scheme.size());
  for (size_t i = 0; i < scheme.size(); ++i) {
    uint32_t v = static_cast<uint32_t>(scheme[i]);
    key[4 * i + 0] = static_cast<char>(v & 0xff);
    key[4 * i + 1] = static_cast<char>((v >> 8) & 0xff);
    key[4 * i + 2] = static_cast<char>((v >> 16) & 0xff);
    key[4 * i + 3] = static_cast<char>((v >> 24) & 0xff);
  }
  return key;
}

EvalPoint SchemeEvaluator::MeasureModel(nn::Model* model) {
  EvalPoint p;
  p.acc = nn::Trainer::Evaluate(model, *ctx_.test);
  p.params = model->EffectiveParamCount();
  p.flops = model->FlopsPerSample();
  if (base_point_.params > 0) {
    p.ar = base_point_.acc > 0 ? p.acc / base_point_.acc - 1.0 : 0.0;
    p.pr = 1.0 - static_cast<double>(p.params) / base_point_.params;
    p.fr = 1.0 - static_cast<double>(p.flops) / base_point_.flops;
  }
  return p;
}

void SchemeEvaluator::MaybeEvict() {
  while (static_cast<int>(cache_.size()) > options_.max_cached_models + 1) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first.empty()) continue;  // never evict the root
      if (victim == cache_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) break;
    cache_.erase(victim);
    AUTOMC_METRIC_COUNT("evaluator.cache_evictions");
  }
}

void SchemeEvaluator::Insert(std::string_view key,
                             std::unique_ptr<nn::Model> model,
                             const EvalPoint& point) {
  CacheEntry entry;
  entry.model = std::move(model);
  entry.point = point;
  entry.last_used = ++clock_;
  cache_.insert_or_assign(std::string(key), std::move(entry));
  MaybeEvict();
}

Result<EvalPoint> SchemeEvaluator::Evaluate(const std::vector<int>& scheme,
                                            EvalPoint* parent_out) {
  AUTOMC_SCOPED_TIMER("evaluator.eval_ms");
  AUTOMC_METRIC_COUNT("evaluator.evaluations");
  for (int idx : scheme) {
    if (idx < 0 || static_cast<size_t>(idx) >= space_->size()) {
      return Status::OutOfRange("strategy index out of range: " +
                                std::to_string(idx));
    }
  }

  // Deepest cached prefix. The full key is built once; each prefix probe is
  // an allocation-free string_view lookup.
  const std::string full_key = Key(scheme);
  size_t start = 0;
  for (size_t len = scheme.size(); len > 0; --len) {
    auto it = cache_.find(KeyPrefix(full_key, len));
    if (it != cache_.end()) {
      start = len;
      break;
    }
  }
  auto base_it = cache_.find(KeyPrefix(full_key, start));
  AUTOMC_CHECK(base_it != cache_.end());
  base_it->second.last_used = ++clock_;
  // The cache-hit metric counts strategy executions the prefix cache
  // avoided (a fully cached scheme avoids all of them); misses count the
  // executions that still have to run.
  AUTOMC_METRIC_COUNT("evaluator.cache_hits", static_cast<int64_t>(start));
  AUTOMC_METRIC_COUNT("evaluator.cache_misses",
                      static_cast<int64_t>(scheme.size() - start));
  if (start == scheme.size()) {
    ++cache_hits_;
    if (parent_out != nullptr) {
      if (scheme.empty()) {
        *parent_out = base_point_;
      } else {
        auto pit = cache_.find(KeyPrefix(full_key, scheme.size() - 1));
        *parent_out =
            pit != cache_.end() ? pit->second.point : base_point_;
      }
    }
    return base_it->second.point;
  }

  std::unique_ptr<nn::Model> model = base_it->second.model->Clone();
  EvalPoint point = base_it->second.point;
  EvalPoint parent = point;
  for (size_t i = start; i < scheme.size(); ++i) {
    const compress::StrategySpec& spec =
        space_->strategy(static_cast<size_t>(scheme[static_cast<size_t>(i)]));
    AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<compress::Compressor> compressor,
                            compress::CreateCompressor(spec));
    compress::CompressionContext ctx = ctx_;
    // Per-node deterministic seed: same scheme prefix -> same result.
    ctx.seed = ctx_.seed * 1315423911u +
               static_cast<uint64_t>(scheme[static_cast<size_t>(i)]) * 2654435761u +
               static_cast<uint64_t>(i);
    Status st = compressor->Compress(model.get(), ctx, nullptr);
    if (st.code() == StatusCode::kFailedPrecondition) {
      // The strategy is inapplicable to this model state (e.g. pruning after
      // every conv was decomposed and re-decomposition hit its floor). The
      // scheme is still well-defined: the step is a no-op, which the search
      // naturally deprioritizes because it brings no improvement.
      AUTOMC_LOG(Debug) << "strategy " << spec.ToString()
                        << " inapplicable: " << st.ToString();
    } else if (!st.ok()) {
      return st;
    }
    ++strategy_executions_;
    AUTOMC_METRIC_COUNT("search.strategy_executions");
    parent = point;
    point = MeasureModel(model.get());
    Insert(KeyPrefix(full_key, i + 1), model->Clone(), point);
  }
  if (parent_out != nullptr) *parent_out = parent;
  return point;
}

}  // namespace search
}  // namespace automc
