#include "search/pareto.h"

#include <algorithm>
#include <cstdint>

#include "common/thread_pool.h"

namespace automc {
namespace search {

bool Dominates(const std::pair<double, double>& x,
               const std::pair<double, double>& y) {
  return x.first >= y.first && x.second >= y.second &&
         (x.first > y.first || x.second > y.second);
}

std::vector<size_t> ParetoFrontIndices(
    const std::vector<std::pair<double, double>>& points) {
  // The O(n^2) domination test parallelizes over the outer index: each
  // point's dominated flag is computed independently (reads only), and the
  // surviving indices are collected serially in increasing order, so the
  // result is identical for any thread count. Every searcher calls this each
  // round on its full candidate/archive set.
  std::vector<uint8_t> dominated(points.size(), 0);
  int64_t n = static_cast<int64_t>(points.size());
  // ~64 comparisons-squared worth of work per chunk.
  int64_t grain = n > 0 ? std::max<int64_t>(1, 4096 / n) : 1;
  automc::ParallelFor(n, grain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (j != i && Dominates(points[static_cast<size_t>(j)],
                                points[static_cast<size_t>(i)])) {
          dominated[static_cast<size_t>(i)] = 1;
          break;
        }
      }
    }
  });
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    if (!dominated[i]) front.push_back(i);
  }
  return front;
}

}  // namespace search
}  // namespace automc
