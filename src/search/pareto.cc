#include "search/pareto.h"

namespace automc {
namespace search {

bool Dominates(const std::pair<double, double>& x,
               const std::pair<double, double>& y) {
  return x.first >= y.first && x.second >= y.second &&
         (x.first > y.first || x.second > y.second);
}

std::vector<size_t> ParetoFrontIndices(
    const std::vector<std::pair<double, double>>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && Dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace search
}  // namespace automc
