#include "search/rl.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "nn/optimizer.h"
#include "nn/seqnet.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

using tensor::Tensor;

struct RlSearcher::State {
  Rng rng;
  Archive archive;
  nn::GruCell gru;
  nn::VecMlp head;
  nn::Param embeddings;
  nn::Adam optimizer;
  double baseline = 0.0;
  bool baseline_init = false;

  State(const Options& options, const SearchConfig& config,
        int64_t num_actions)
      : rng(config.seed + 5000),
        archive(config.gamma),
        gru(options.action_embedding_dim, options.hidden_dim, &rng),
        head({options.hidden_dim, num_actions + 1}, &rng),
        embeddings(Tensor::Randn({num_actions + 1,
                                  options.action_embedding_dim},
                                 &rng, 0.1f)),
        optimizer(options.lr) {}

  // Stable ordering shared by Step(), Snapshot() and Restore().
  std::vector<nn::Param*> AllParams() {
    std::vector<nn::Param*> params = gru.Params();
    for (nn::Param* p : head.Params()) params.push_back(p);
    params.push_back(&embeddings);
    return params;
  }
};

RlSearcher::RlSearcher() : options_(Options{}) {}
RlSearcher::RlSearcher(Options options) : options_(options) {}
RlSearcher::~RlSearcher() = default;

Status RlSearcher::Snapshot(std::string* blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  State& s = *state_;
  ByteWriter w;
  w.Str(s.rng.SaveState());
  s.archive.Snapshot(&w);
  std::vector<nn::Param*> params = s.AllParams();
  WriteParamValues(&w, params);
  s.optimizer.SaveState(params, &w);
  w.F64(s.baseline);
  w.U32(s.baseline_init ? 1 : 0);
  *blob = w.Take();
  return Status::OK();
}

Status RlSearcher::Restore(std::string_view blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  State& s = *state_;
  ByteReader r(blob);
  std::string rng_state;
  std::vector<nn::Param*> params = s.AllParams();
  uint32_t baseline_init = 0;
  if (!r.Str(&rng_state) || !s.rng.LoadState(rng_state) ||
      !s.archive.Restore(&r) || !ReadParamValues(&r, params) ||
      !s.optimizer.LoadState(params, &r) || !r.F64(&s.baseline) ||
      !r.U32(&baseline_init)) {
    return Status::InvalidArgument("corrupted RL searcher snapshot");
  }
  s.baseline_init = baseline_init != 0;
  return Status::OK();
}

Result<SearchOutcome> RlSearcher::Search(SchemeEvaluator* evaluator,
                                         const SearchSpace& space,
                                         const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  const int64_t num_actions = static_cast<int64_t>(space.size());
  const int64_t stop_action = num_actions;  // last logit = STOP
  const int64_t start_token = num_actions;  // embedding row for <start>

  state_ = std::make_unique<State>(options_, config, num_actions);
  AUTOMC_RETURN_IF_ERROR(MaybeRestoreSearch(this, evaluator, config).status());
  State& s = *state_;

  auto embedding_of = [&](int64_t row) {
    Tensor e({options_.action_embedding_dim});
    const float* src =
        s.embeddings.value.data() + row * options_.action_embedding_dim;
    std::copy(src, src + options_.action_embedding_dim, e.MutableData());
    return e;
  };

  struct Step {
    nn::GruCell::Cache gru_cache;
    nn::VecMlp::Cache head_cache;
    std::vector<float> probs;  // softmax over actions (after masking)
    int64_t action = 0;
    int64_t input_row = 0;  // embedding row fed at this step
  };
  struct Episode {
    std::vector<Step> steps;
    std::vector<int> scheme;
  };

  // Samples one episode (scheme) from the current controller weights.
  auto rollout = [&]() {
    Episode ep;
    Tensor h = s.gru.InitialState();
    int64_t input_row = start_token;
    for (int t = 0; t < config.max_length; ++t) {
      Step step;
      step.input_row = input_row;
      Tensor x = embedding_of(input_row);
      h = s.gru.Step(x, h, &step.gru_cache);
      Tensor logits = s.head.Forward(h, &step.head_cache);
      // Mask STOP on the first step: empty schemes are useless.
      bool mask_stop = (t == 0);
      float mx = -1e30f;
      for (int64_t a = 0; a <= num_actions; ++a) {
        if (mask_stop && a == stop_action) continue;
        mx = std::max(mx, logits[a]);
      }
      double z = 0.0;
      step.probs.assign(static_cast<size_t>(num_actions + 1), 0.0f);
      for (int64_t a = 0; a <= num_actions; ++a) {
        if (mask_stop && a == stop_action) continue;
        double p = std::exp(static_cast<double>(logits[a]) - mx);
        step.probs[static_cast<size_t>(a)] = static_cast<float>(p);
        z += p;
      }
      for (auto& p : step.probs) p = static_cast<float>(p / z);
      // Sample.
      double u = s.rng.Uniform();
      int64_t action = mask_stop ? 0 : stop_action;
      double acc = 0.0;
      for (int64_t a = 0; a <= num_actions; ++a) {
        acc += step.probs[static_cast<size_t>(a)];
        if (u <= acc) {
          action = a;
          break;
        }
      }
      step.action = action;
      ep.steps.push_back(std::move(step));
      if (action == stop_action) break;
      ep.scheme.push_back(static_cast<int>(action));
      input_row = action;
    }
    return ep;
  };

  // REINFORCE update for one evaluated episode:
  // minimize -advantage * sum_t log pi(a_t).
  auto reinforce = [&](const Episode& ep, const EvalPoint& point) {
    double reward =
        point.acc - options_.infeasibility_penalty *
                        std::max(0.0, config.gamma - point.pr);
    if (!s.baseline_init) {
      s.baseline = reward;
      s.baseline_init = true;
    }
    double advantage = reward - s.baseline;
    s.baseline = 0.9 * s.baseline + 0.1 * reward;

    for (nn::Param* p : s.AllParams()) p->ZeroGrad();
    Tensor dh_next({options_.hidden_dim});  // gradient flowing from t+1
    for (size_t t = ep.steps.size(); t-- > 0;) {
      const Step& step = ep.steps[t];
      Tensor dlogits({num_actions + 1});
      for (int64_t a = 0; a <= num_actions; ++a) {
        dlogits[a] = static_cast<float>(advantage) *
                     step.probs[static_cast<size_t>(a)];
      }
      dlogits[step.action] -= static_cast<float>(advantage);
      Tensor dh = s.head.Backward(step.head_cache, dlogits);
      dh.AddInPlace(dh_next);
      auto [dx, dh_prev] = s.gru.BackwardStep(step.gru_cache, dh);
      // Accumulate into the input embedding row.
      float* grow = s.embeddings.grad.MutableData() +
                    step.input_row * options_.action_embedding_dim;
      for (int64_t i = 0; i < options_.action_embedding_dim; ++i) {
        grow[i] += dx[i];
      }
      dh_next = std::move(dh_prev);
    }
    s.optimizer.Step(s.AllParams());
  };

  while (evaluator->charged_executions() < config.max_strategy_executions) {
    AUTOMC_RETURN_IF_ERROR(CheckStop(this, evaluator, config));
    // Serial phase: sample eval_batch episodes from the policy as frozen at
    // the top of the round (the forward caches sampled here stay valid for
    // the gradient step because the weights only move after the batch).
    // Episodes that emitted an empty scheme are dropped, as before.
    std::vector<Episode> episodes;
    std::vector<std::vector<int>> round;
    for (int b = 0; b < config.eval_batch; ++b) {
      Episode ep = rollout();
      if (ep.scheme.empty()) continue;
      round.push_back(ep.scheme);
      episodes.push_back(std::move(ep));
    }
    if (round.empty()) continue;

    AUTOMC_ASSIGN_OR_RETURN(
        BatchEval batch,
        evaluator->EvaluateBatch(round, config.max_strategy_executions));
    for (size_t i = 0; i < batch.points.size(); ++i) {
      s.archive.Record(episodes[i].scheme, batch.points[i],
                       static_cast<int>(batch.charged_after[i]));
      AUTOMC_METRIC_COUNT("search.rl.candidates_expanded");
      reinforce(episodes[i], batch.points[i]);
    }
    AUTOMC_METRIC_COUNT("search.rl.rounds");
    AUTOMC_METRIC_OBSERVE("search.rl.pareto_front_size",
                          static_cast<double>(s.archive.ParetoFrontSize()));
    AUTOMC_RETURN_IF_ERROR(CheckpointRound(this, evaluator, config));
  }
  return s.archive.Finalize(static_cast<int>(evaluator->charged_executions()));
}

}  // namespace search
}  // namespace automc
