#include "search/evolutionary.h"

#include <algorithm>

#include "common/metrics.h"
#include "search/pareto.h"
#include "search/snapshot_util.h"

namespace automc {
namespace search {

namespace {

struct Individual {
  std::vector<int> scheme;
  EvalPoint point;
};

// Feasibility-aware bi-objective comparison: feasible (pr >= gamma) beats
// infeasible; between two feasible, Pareto domination on (acc, -params);
// between two infeasible, smaller constraint violation wins.
int Compare(const Individual& a, const Individual& b, double gamma) {
  bool fa = a.point.pr >= gamma, fb = b.point.pr >= gamma;
  if (fa != fb) return fa ? 1 : -1;
  if (!fa) {
    double va = gamma - a.point.pr, vb = gamma - b.point.pr;
    if (va < vb) return 1;
    if (va > vb) return -1;
    return 0;
  }
  std::pair<double, double> pa{a.point.acc, -static_cast<double>(a.point.params)};
  std::pair<double, double> pb{b.point.acc, -static_cast<double>(b.point.params)};
  if (Dominates(pa, pb)) return 1;
  if (Dominates(pb, pa)) return -1;
  return 0;
}

}  // namespace

struct EvolutionarySearcher::State {
  Rng rng;
  Archive archive;
  std::vector<Individual> population;
  bool initialized = false;  // population build completed

  explicit State(const SearchConfig& config)
      : rng(config.seed + 1000), archive(config.gamma) {}
};

EvolutionarySearcher::EvolutionarySearcher() : options_(Options{}) {}
EvolutionarySearcher::EvolutionarySearcher(Options options)
    : options_(options) {}
EvolutionarySearcher::~EvolutionarySearcher() = default;

Status EvolutionarySearcher::Snapshot(std::string* blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  ByteWriter w;
  w.Str(state_->rng.SaveState());
  state_->archive.Snapshot(&w);
  w.U32(static_cast<uint32_t>(state_->population.size()));
  for (const Individual& ind : state_->population) {
    w.Ints(ind.scheme);
    WritePoint(&w, ind.point);
  }
  *blob = w.Take();
  return Status::OK();
}

Status EvolutionarySearcher::Restore(std::string_view blob) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("no search in flight");
  }
  ByteReader r(blob);
  std::string rng_state;
  uint32_t count = 0;
  if (!r.Str(&rng_state) || !state_->rng.LoadState(rng_state) ||
      !state_->archive.Restore(&r) || !r.U32(&count)) {
    return Status::InvalidArgument("corrupted Evolution searcher snapshot");
  }
  std::vector<Individual> population(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.Ints(&population[i].scheme) || !ReadPoint(&r, &population[i].point)) {
      return Status::InvalidArgument("corrupted Evolution searcher snapshot");
    }
  }
  state_->population = std::move(population);
  state_->initialized = true;
  return Status::OK();
}

Result<SearchOutcome> EvolutionarySearcher::Search(SchemeEvaluator* evaluator,
                                                   const SearchSpace& space,
                                                   const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  state_ = std::make_unique<State>(config);
  AUTOMC_RETURN_IF_ERROR(MaybeRestoreSearch(this, evaluator, config).status());
  State& s = *state_;
  auto budget_left = [&]() {
    return evaluator->charged_executions() < config.max_strategy_executions;
  };
  auto random_strategy = [&]() {
    return static_cast<int>(
        s.rng.UniformInt(static_cast<int64_t>(space.size())));
  };

  // Initial population of short random schemes (skipped after a resume: the
  // restored population is the crashed run's). Drawn serially, evaluated as
  // one batch; the budget truncation drops the same tail individuals the
  // old per-individual check would have.
  if (!s.initialized) {
    std::vector<std::vector<int>> init;
    init.reserve(static_cast<size_t>(options_.population));
    for (int p = 0; p < options_.population; ++p) {
      std::vector<int> scheme;
      int64_t len = 1 + s.rng.UniformInt(std::min(3, config.max_length));
      for (int64_t i = 0; i < len; ++i) scheme.push_back(random_strategy());
      init.push_back(std::move(scheme));
    }
    AUTOMC_ASSIGN_OR_RETURN(
        BatchEval batch,
        evaluator->EvaluateBatch(init, config.max_strategy_executions));
    for (size_t i = 0; i < batch.points.size(); ++i) {
      Individual ind;
      ind.scheme = std::move(init[i]);
      ind.point = batch.points[i];
      s.archive.Record(ind.scheme, ind.point,
                       static_cast<int>(batch.charged_after[i]));
      s.population.push_back(std::move(ind));
    }
    s.initialized = true;
  }
  if (s.population.empty()) {
    return s.archive.Finalize(
        static_cast<int>(evaluator->charged_executions()));
  }

  auto tournament = [&]() -> const Individual& {
    const Individual& a =
        s.population[static_cast<size_t>(s.rng.UniformInt(s.population.size()))];
    const Individual& b =
        s.population[static_cast<size_t>(s.rng.UniformInt(s.population.size()))];
    return Compare(a, b, config.gamma) >= 0 ? a : b;
  };

  // One offspring via crossover + mutation against the current population.
  auto breed = [&]() {
    std::vector<int> child = tournament().scheme;
    if (s.rng.Bernoulli(options_.crossover_prob)) {
      const std::vector<int>& other = tournament().scheme;
      size_t cut_a = static_cast<size_t>(s.rng.UniformInt(
          static_cast<int64_t>(child.size()) + 1));
      size_t cut_b = static_cast<size_t>(s.rng.UniformInt(
          static_cast<int64_t>(other.size()) + 1));
      std::vector<int> merged(child.begin(),
                              child.begin() + static_cast<int64_t>(cut_a));
      merged.insert(merged.end(), other.begin() + static_cast<int64_t>(cut_b),
                    other.end());
      if (!merged.empty()) child = std::move(merged);
    }
    if (s.rng.Bernoulli(options_.mutate_prob) || child.empty()) {
      int64_t op = s.rng.UniformInt(3);
      if (op == 0 && static_cast<int>(child.size()) < config.max_length) {
        child.push_back(random_strategy());
      } else if (op == 1 && child.size() > 1) {
        child.erase(child.begin() +
                    s.rng.UniformInt(static_cast<int64_t>(child.size())));
      } else if (!child.empty()) {
        child[static_cast<size_t>(
            s.rng.UniformInt(static_cast<int64_t>(child.size())))] =
            random_strategy();
      } else {
        child.push_back(random_strategy());
      }
    }
    if (static_cast<int>(child.size()) > config.max_length) {
      child.resize(static_cast<size_t>(config.max_length));
    }
    return child;
  };

  while (budget_left()) {
    AUTOMC_RETURN_IF_ERROR(CheckStop(this, evaluator, config));
    // Generational round: breed eval_batch offspring from the population as
    // it stands at the top of the round (replacement happens only after the
    // whole batch evaluated), submit them as one batch, then fold survivors
    // back in ascending submission order.
    std::vector<std::vector<int>> round;
    round.reserve(static_cast<size_t>(config.eval_batch));
    for (int b = 0; b < config.eval_batch; ++b) round.push_back(breed());
    AUTOMC_ASSIGN_OR_RETURN(
        BatchEval batch,
        evaluator->EvaluateBatch(round, config.max_strategy_executions));
    for (size_t i = 0; i < batch.points.size(); ++i) {
      Individual offspring;
      offspring.scheme = std::move(round[i]);
      offspring.point = batch.points[i];
      s.archive.Record(offspring.scheme, offspring.point,
                       static_cast<int>(batch.charged_after[i]));
      AUTOMC_METRIC_COUNT("search.evolutionary.candidates_expanded");

      // Replacement of the worst member, in submission order.
      size_t worst = 0;
      for (size_t j = 1; j < s.population.size(); ++j) {
        if (Compare(s.population[j], s.population[worst], config.gamma) < 0) {
          worst = j;
        }
      }
      if (Compare(offspring, s.population[worst], config.gamma) > 0) {
        s.population[worst] = std::move(offspring);
      }
    }
    AUTOMC_METRIC_COUNT("search.evolutionary.rounds");
    AUTOMC_METRIC_OBSERVE("search.evolutionary.pareto_front_size",
                          static_cast<double>(s.archive.ParetoFrontSize()));
    AUTOMC_RETURN_IF_ERROR(CheckpointRound(this, evaluator, config));
  }
  return s.archive.Finalize(static_cast<int>(evaluator->charged_executions()));
}

}  // namespace search
}  // namespace automc
