#include "search/evolutionary.h"

#include <algorithm>

#include "common/metrics.h"
#include "search/pareto.h"

namespace automc {
namespace search {

namespace {

struct Individual {
  std::vector<int> scheme;
  EvalPoint point;
};

// Feasibility-aware bi-objective comparison: feasible (pr >= gamma) beats
// infeasible; between two feasible, Pareto domination on (acc, -params);
// between two infeasible, smaller constraint violation wins.
int Compare(const Individual& a, const Individual& b, double gamma) {
  bool fa = a.point.pr >= gamma, fb = b.point.pr >= gamma;
  if (fa != fb) return fa ? 1 : -1;
  if (!fa) {
    double va = gamma - a.point.pr, vb = gamma - b.point.pr;
    if (va < vb) return 1;
    if (va > vb) return -1;
    return 0;
  }
  std::pair<double, double> pa{a.point.acc, -static_cast<double>(a.point.params)};
  std::pair<double, double> pb{b.point.acc, -static_cast<double>(b.point.params)};
  if (Dominates(pa, pb)) return 1;
  if (Dominates(pb, pa)) return -1;
  return 0;
}

}  // namespace

Result<SearchOutcome> EvolutionarySearcher::Search(SchemeEvaluator* evaluator,
                                                   const SearchSpace& space,
                                                   const SearchConfig& config) {
  if (space.size() == 0) return Status::InvalidArgument("empty search space");
  Rng rng(config.seed + 1000);
  Archive archive(config.gamma);
  auto budget_left = [&]() {
    return evaluator->strategy_executions() < config.max_strategy_executions;
  };
  auto random_strategy = [&]() {
    return static_cast<int>(rng.UniformInt(static_cast<int64_t>(space.size())));
  };

  // Initial population of short random schemes.
  std::vector<Individual> population;
  for (int p = 0; p < options_.population && budget_left(); ++p) {
    Individual ind;
    int64_t len = 1 + rng.UniformInt(std::min(3, config.max_length));
    for (int64_t i = 0; i < len; ++i) ind.scheme.push_back(random_strategy());
    AUTOMC_ASSIGN_OR_RETURN(ind.point, evaluator->Evaluate(ind.scheme));
    archive.Record(ind.scheme, ind.point,
                   static_cast<int>(evaluator->strategy_executions()));
    population.push_back(std::move(ind));
  }
  if (population.empty()) {
    return archive.Finalize(static_cast<int>(evaluator->strategy_executions()));
  }

  auto tournament = [&]() -> const Individual& {
    const Individual& a =
        population[static_cast<size_t>(rng.UniformInt(population.size()))];
    const Individual& b =
        population[static_cast<size_t>(rng.UniformInt(population.size()))];
    return Compare(a, b, config.gamma) >= 0 ? a : b;
  };

  while (budget_left()) {
    // Offspring via crossover + mutation.
    std::vector<int> child = tournament().scheme;
    if (rng.Bernoulli(options_.crossover_prob)) {
      const std::vector<int>& other = tournament().scheme;
      size_t cut_a = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(child.size()) + 1));
      size_t cut_b = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(other.size()) + 1));
      std::vector<int> merged(child.begin(),
                              child.begin() + static_cast<int64_t>(cut_a));
      merged.insert(merged.end(), other.begin() + static_cast<int64_t>(cut_b),
                    other.end());
      if (!merged.empty()) child = std::move(merged);
    }
    if (rng.Bernoulli(options_.mutate_prob) || child.empty()) {
      int64_t op = rng.UniformInt(3);
      if (op == 0 && static_cast<int>(child.size()) < config.max_length) {
        child.push_back(random_strategy());
      } else if (op == 1 && child.size() > 1) {
        child.erase(child.begin() +
                    rng.UniformInt(static_cast<int64_t>(child.size())));
      } else if (!child.empty()) {
        child[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(child.size())))] =
            random_strategy();
      } else {
        child.push_back(random_strategy());
      }
    }
    if (static_cast<int>(child.size()) > config.max_length) {
      child.resize(static_cast<size_t>(config.max_length));
    }

    Individual offspring;
    offspring.scheme = std::move(child);
    AUTOMC_ASSIGN_OR_RETURN(offspring.point,
                            evaluator->Evaluate(offspring.scheme));
    archive.Record(offspring.scheme, offspring.point,
                   static_cast<int>(evaluator->strategy_executions()));
    AUTOMC_METRIC_COUNT("search.evolutionary.rounds");
    AUTOMC_METRIC_COUNT("search.evolutionary.candidates_expanded");
    AUTOMC_METRIC_OBSERVE("search.evolutionary.pareto_front_size",
                          static_cast<double>(archive.ParetoFrontSize()));

    // Steady-state replacement of the worst member.
    size_t worst = 0;
    for (size_t i = 1; i < population.size(); ++i) {
      if (Compare(population[i], population[worst], config.gamma) < 0) {
        worst = i;
      }
    }
    if (Compare(offspring, population[worst], config.gamma) > 0) {
      population[worst] = std::move(offspring);
    }
  }
  return archive.Finalize(static_cast<int>(evaluator->strategy_executions()));
}

}  // namespace search
}  // namespace automc
