#ifndef AUTOMC_SEARCH_SEARCHER_H_
#define AUTOMC_SEARCH_SEARCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "search/evaluator.h"
#include "search/search_space.h"

namespace automc {
namespace search {

// Budget and constraints shared by all search strategies. The budget unit
// is real strategy executions (compressor runs), the dominant cost.
struct SearchConfig {
  int max_strategy_executions = 50;
  int max_length = 5;    // L of Section 3.2
  double gamma = 0.3;    // target parameter reduction rate
  uint64_t seed = 1;
};

// Best-so-far curve sample (drives the Figure 4 reproduction).
struct HistoryPoint {
  int executions = 0;
  double best_acc = 0.0;          // best accuracy among schemes with pr >= gamma
  double best_acc_any = 0.0;      // best accuracy over all evaluated schemes
};

struct SearchOutcome {
  // Pareto-optimal (acc maximized, params minimized) evaluated schemes with
  // pr >= gamma; parallel arrays.
  std::vector<std::vector<int>> pareto_schemes;
  std::vector<EvalPoint> pareto_points;
  std::vector<HistoryPoint> history;
  int executions = 0;
};

// Accumulates evaluated schemes and derives Pareto set + history. Shared by
// every searcher implementation.
class Archive {
 public:
  explicit Archive(double gamma) : gamma_(gamma) {}

  void Record(const std::vector<int>& scheme, const EvalPoint& point,
              int executions_so_far);
  SearchOutcome Finalize(int executions) const;
  // Size of the current Pareto front over recorded schemes (feasible set
  // when non-empty, else all). O(n^2) in recorded schemes; intended for
  // per-round observability, not hot loops.
  size_t ParetoFrontSize() const;
  const std::vector<HistoryPoint>& history() const { return history_; }
  // Best accuracy among feasible (pr >= gamma) schemes so far; -1 if none.
  double best_feasible_acc() const { return best_feasible_acc_; }

 private:
  double gamma_;
  std::vector<std::vector<int>> schemes_;
  std::vector<EvalPoint> points_;
  std::vector<HistoryPoint> history_;
  double best_feasible_acc_ = -1.0;
  double best_any_acc_ = -1.0;
};

class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual std::string Name() const = 0;
  virtual Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                                       const SearchSpace& space,
                                       const SearchConfig& config) = 0;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_SEARCHER_H_
