#ifndef AUTOMC_SEARCH_SEARCHER_H_
#define AUTOMC_SEARCH_SEARCHER_H_

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "search/evaluator.h"
#include "search/search_space.h"
#include "store/checkpoint.h"

namespace automc {
namespace search {

// Budget and constraints shared by all search strategies. The budget unit
// is charged executions — novel evaluation points produced this run, whether
// measured by a real compressor run or served from a persistent store (see
// SchemeEvaluator::charged_executions). Without a store the two coincide.
// Default round size for batched candidate evaluation: $AUTOMC_EVAL_BATCH
// (clamped to >= 1) when set, else 4. Read once per process.
int DefaultEvalBatch();

// Cooperative cancellation flag. RequestStop() may be called from another
// thread or — because the flag is a lock-free atomic — from a signal
// handler; searchers poll it between evaluation rounds and exit with
// Cancelled after persisting a final checkpoint (when one is configured),
// so a stopped search resumes exactly where it left off.
class StopToken {
 public:
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
};

struct SearchConfig {
  int max_strategy_executions = 50;
  int max_length = 5;    // L of Section 3.2
  double gamma = 0.3;    // target parameter reduction rate
  uint64_t seed = 1;
  // Candidate schemes submitted per SchemeEvaluator::EvaluateBatch round.
  // Any value yields identical results for a fixed trajectory, but the
  // evolutionary and RL searchers *generate* their candidates per round
  // (frozen-population offspring, frozen-policy rollouts), so this knob is
  // part of the trajectory and of the checkpoint identity blob.
  int eval_batch = DefaultEvalBatch();
  // Non-owning. When set, Search() first restores any pending checkpoint
  // (continuing a killed run) and then persists its state every N-th round;
  // the determinism contract makes the resumed outcome bit-identical to an
  // uninterrupted run.
  store::SearchCheckpointer* checkpointer = nullptr;
  // Non-owning. When set, every searcher polls it at the top of each round
  // (see CheckStop); not part of the checkpoint identity blob.
  StopToken* stop = nullptr;
};

// Best-so-far curve sample (drives the Figure 4 reproduction).
struct HistoryPoint {
  int executions = 0;
  double best_acc = 0.0;          // best accuracy among schemes with pr >= gamma
  double best_acc_any = 0.0;      // best accuracy over all evaluated schemes
};

struct SearchOutcome {
  // Pareto-optimal (acc maximized, params minimized) evaluated schemes with
  // pr >= gamma; parallel arrays.
  std::vector<std::vector<int>> pareto_schemes;
  std::vector<EvalPoint> pareto_points;
  std::vector<HistoryPoint> history;
  int executions = 0;
};

// Accumulates evaluated schemes and derives Pareto set + history. Shared by
// every searcher implementation.
class Archive {
 public:
  explicit Archive(double gamma) : gamma_(gamma) {}

  void Record(const std::vector<int>& scheme, const EvalPoint& point,
              int executions_so_far);
  SearchOutcome Finalize(int executions) const;
  // Size of the current Pareto front over recorded schemes (feasible set
  // when non-empty, else all). O(n^2) in recorded schemes; intended for
  // per-round observability, not hot loops.
  size_t ParetoFrontSize() const;
  const std::vector<HistoryPoint>& history() const { return history_; }
  // Best accuracy among feasible (pr >= gamma) schemes so far; -1 if none.
  double best_feasible_acc() const { return best_feasible_acc_; }

  // Checkpoint support (everything but gamma, which comes from the config).
  void Snapshot(ByteWriter* w) const;
  bool Restore(ByteReader* r);

 private:
  double gamma_;
  std::vector<std::vector<int>> schemes_;
  std::vector<EvalPoint> points_;
  std::vector<HistoryPoint> history_;
  double best_feasible_acc_ = -1.0;
  double best_any_acc_ = -1.0;
};

class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual std::string Name() const = 0;
  virtual Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                                       const SearchSpace& space,
                                       const SearchConfig& config) = 0;

  // Checkpoint interface: serialize/restore the searcher's in-flight state
  // (RNG stream, archive, learned parameters, ...). Only meaningful while a
  // Search() is active; every concrete searcher in this repo implements it.
  virtual Status Snapshot(std::string* blob) {
    (void)blob;
    return Status::Unimplemented(Name() + " does not support checkpointing");
  }
  virtual Status Restore(std::string_view blob) {
    (void)blob;
    return Status::Unimplemented(Name() + " does not support checkpointing");
  }
};

// Consumes a pending checkpoint into `searcher` + `evaluator` if
// config.checkpointer holds one. Validates that the checkpoint was produced
// by the same searcher and an identical config (resuming under different
// settings would silently diverge). Returns true when state was restored.
Result<bool> MaybeRestoreSearch(Searcher* searcher, SchemeEvaluator* evaluator,
                                const SearchConfig& config);

// Round tick: atomically persists searcher + evaluator state when the
// checkpointer says this round is due. No-op without a checkpointer.
Status CheckpointRound(Searcher* searcher, SchemeEvaluator* evaluator,
                       const SearchConfig& config);

// Cancellation tick, polled by every searcher at the top of each round.
// When config.stop has been triggered this force-writes a checkpoint
// (bypassing the cadence, when a checkpointer is configured) and returns
// Cancelled; a later run resuming from that checkpoint finishes with the
// outcome an uninterrupted run would have produced. OK otherwise.
Status CheckStop(Searcher* searcher, SchemeEvaluator* evaluator,
                 const SearchConfig& config);

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_SEARCHER_H_
