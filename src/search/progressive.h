#ifndef AUTOMC_SEARCH_PROGRESSIVE_H_
#define AUTOMC_SEARCH_PROGRESSIVE_H_

#include <memory>
#include <vector>

#include "search/fmo.h"
#include "search/searcher.h"

namespace automc {
namespace search {

// AutoMC's progressive search strategy (Algorithm 2). The scheme tree is
// grown one strategy at a time: each round samples evaluated schemes,
// scores all unexplored one-step extensions with the learned multi-objective
// evaluator F_mo, evaluates only the predicted-Pareto-optimal extensions,
// and feeds the measured step effects back into F_mo.
class ProgressiveSearcher : public Searcher {
 public:
  struct Options {
    // |H_sub|: evaluated schemes sampled per round (line 3).
    int sample_schemes = 6;
    // Candidate next strategies sampled per sampled scheme (S_step is
    // subsampled for tractability; the full C is ~4k strategies).
    int candidates_per_scheme = 192;
    // Cap on evaluations per round (|ParetoO| can be large early on).
    int max_evals_per_round = 4;
    // F_mo replay buffer cap.
    int max_replay = 512;
  };

  // `embeddings[i]` is the learned embedding of strategy i (Algorithm 1);
  // `task_features` the 7-dim task descriptor.
  ProgressiveSearcher(std::vector<tensor::Tensor> embeddings,
                      tensor::Tensor task_features);
  ProgressiveSearcher(std::vector<tensor::Tensor> embeddings,
                      tensor::Tensor task_features, Options options);
  ~ProgressiveSearcher() override;

  // Pre-training data for F_mo: measured one-step effects (e.g. derived
  // from the Algorithm-1 experience records). Trained before the first
  // search round, so early Pareto selections are informed instead of
  // random.
  void set_warm_start(std::vector<FmoExample> examples) {
    warm_start_ = std::move(examples);
  }

  std::string Name() const override { return "AutoMC"; }
  Result<SearchOutcome> Search(SchemeEvaluator* evaluator,
                               const SearchSpace& space,
                               const SearchConfig& config) override;
  Status Snapshot(std::string* blob) override;
  Status Restore(std::string_view blob) override;

 private:
  std::vector<tensor::Tensor> embeddings_;
  tensor::Tensor task_features_;
  Options options_;
  std::vector<FmoExample> warm_start_;
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_PROGRESSIVE_H_
