#ifndef AUTOMC_SEARCH_REPORT_H_
#define AUTOMC_SEARCH_REPORT_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.h"
#include "search/search_space.h"
#include "search/searcher.h"

namespace automc {
namespace search {

// CSV exports of search results, so the Figure 4/5 series can be plotted
// with external tooling.

// history.csv: executions,best_acc_feasible,best_acc_any
Status WriteHistoryCsv(const SearchOutcome& outcome, std::ostream* out);
Status WriteHistoryCsvFile(const SearchOutcome& outcome,
                           const std::string& path);

// pareto.csv: acc,params,flops,pr,fr,scheme (scheme as quoted text)
Status WriteParetoCsv(const SearchOutcome& outcome, const SearchSpace& space,
                      std::ostream* out);
Status WriteParetoCsvFile(const SearchOutcome& outcome,
                          const SearchSpace& space, const std::string& path);

// Lossless text persistence of a SearchOutcome (schemes as strategy index
// sequences), so long searches can be checkpointed and their results
// re-deployed later (e.g. by the transfer study) without re-searching.
Status SaveOutcome(const SearchOutcome& outcome, std::ostream* out);
Result<SearchOutcome> LoadOutcome(std::istream* in);
Status SaveOutcomeFile(const SearchOutcome& outcome, const std::string& path);
Result<SearchOutcome> LoadOutcomeFile(const std::string& path);

// Bit-exact binary form (little-endian, raw IEEE doubles) used by the
// server wire protocol (FetchOutcome payloads) and the job manager's
// durable outcome files. Two SearchOutcomes encode to identical bytes iff
// they are field-for-field bit-identical, which is what the serve-vs-direct
// identity tests compare.
std::string SaveOutcomeBytes(const SearchOutcome& outcome);
Result<SearchOutcome> LoadOutcomeBytes(std::string_view bytes);

}  // namespace search
}  // namespace automc

#endif  // AUTOMC_SEARCH_REPORT_H_
