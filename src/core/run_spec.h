#ifndef AUTOMC_CORE_RUN_SPEC_H_
#define AUTOMC_CORE_RUN_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/automc.h"
#include "search/searcher.h"
#include "store/checkpoint.h"
#include "store/experience_store.h"

namespace automc {
namespace core {

// A self-contained, wire-encodable description of one search run: the model
// family/size, the (synthetic) dataset, the search strategy, and the budget.
// This is the job unit of the automc_serve daemon and the search portion of
// the automc_cli flag surface; RunSearch(spec) reproduces exactly what
//   automc_cli --family F --depth D --dataset S --gamma G --budget B
//              --searcher K --eval-batch E --pretrain P --seed N
// computes, so an outcome fetched from the server can be diffed byte-for-
// byte against a direct in-process run.
struct RunSpec {
  std::string family = "resnet";   // resnet | vgg
  int32_t depth = 20;
  // c10 / c100: the CIFAR-like synthetic tasks the CLI defaults to.
  // tiny: a 3-class test-scale task (fast enough for unit tests and the
  // server throughput bench; same code path end to end).
  std::string dataset = "c10";
  double gamma = 0.3;
  int32_t budget = 12;             // max charged strategy executions
  int32_t eval_batch = 0;          // 0 => $AUTOMC_EVAL_BATCH default
  std::string searcher = "automc"; // automc | random | evolution | rl
  int32_t pretrain = 8;            // base-model training epochs
  uint64_t seed = 1;
};

// Structural validation (known searcher/dataset/family, sane ranges);
// returns InvalidArgument with a precise message otherwise.
Status ValidateRunSpec(const RunSpec& spec);

// One-line human-readable form, e.g. "automc vgg-13 c10 gamma=0.30
// budget=12 seed=7" (job listings, logs).
std::string RunSpecSummary(const RunSpec& spec);

// Versioned little-endian wire encoding. DecodeRunSpec returns false on any
// truncation or an unknown version, leaving *spec unspecified.
void EncodeRunSpec(const RunSpec& spec, ByteWriter* w);
bool DecodeRunSpec(ByteReader* r, RunSpec* spec);

// The CompressionTask a RunSpec denotes (synthetic data branches of the
// CLI: task seeds, split fractions, and model widths match it exactly).
CompressionTask MakeTask(const RunSpec& spec);

// Non-owning run-scoped hooks: persistence (store/checkpointer, see
// docs/persistence.md) and cooperative cancellation. A pending checkpoint
// must already be loaded by the caller; RunSearch resumes it transparently.
struct RunHooks {
  store::ExperienceStore* store = nullptr;
  store::SearchCheckpointer* checkpointer = nullptr;
  search::StopToken* stop = nullptr;
};

// Runs the spec end to end — pretrain the base model, then search with the
// requested strategy — against `task`. Deterministic: a fixed (spec, task)
// yields a bit-identical SearchOutcome at any AUTOMC_THREADS value, with or
// without a (fresh) store attached, interrupted-and-resumed or not.
Result<AutoMCResult> RunSearch(const RunSpec& spec,
                               const CompressionTask& task,
                               const RunHooks& hooks = {});

// Convenience overload: RunSearch(spec, MakeTask(spec), hooks).
Result<AutoMCResult> RunSearch(const RunSpec& spec,
                               const RunHooks& hooks = {});

// Comma-joined strategy indices ("2,7,1" — indices into
// SearchSpace::FullTable1), the scheme encoding stored in artifact
// provenance. ParseSchemeIndices rejects anything but digits and commas.
std::string SchemeIndicesToString(const std::vector<int>& scheme);
Result<std::vector<int>> ParseSchemeIndices(const std::string& text);

// The artifact the registry publishes for a finished job: the pareto point
// a user would deploy. Highest accuracy; ties broken by fewer parameters,
// then by lowest index (all deterministic). kNotFound on an empty front.
Result<size_t> PickWinningScheme(const search::SearchOutcome& outcome);

// Rebuilds the compressed model a finished search described, bit-identically
// to the model the evaluator measured for that scheme: same pretrain, same
// search subsample, same CompressionContext the RunSearch paths build, and
// the evaluator's per-node seed derivation. An inapplicable strategy
// (kFailedPrecondition) is the same no-op it was during search. This is the
// determinism contract extended to bytes: serialize(MaterializeScheme(...))
// equals the bytes the server publishes for that job.
Result<std::unique_ptr<nn::Model>> MaterializeScheme(
    const RunSpec& spec, const std::vector<int>& scheme);

}  // namespace core
}  // namespace automc

#endif  // AUTOMC_CORE_RUN_SPEC_H_
