#include "core/automc.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/logging.h"
#include "nn/trainer.h"
#include "search/rl.h"

namespace automc {
namespace core {

Result<std::unique_ptr<nn::Model>> PretrainModel(const CompressionTask& task) {
  Rng rng(task.seed);
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                          nn::BuildModel(task.model_spec, &rng));
  nn::TrainConfig tc;
  tc.epochs = task.base_train_epochs > 0 ? task.base_train_epochs
                                         : task.pretrain_epochs;
  tc.batch_size = task.batch_size;
  tc.lr = task.lr;
  tc.lr_decay = task.lr_decay;
  tc.seed = task.seed + 1;
  nn::Trainer trainer(tc);
  AUTOMC_RETURN_IF_ERROR(trainer.Fit(model.get(), task.data.train));
  return model;
}

Result<search::EvalPoint> ExecuteScheme(
    const search::SearchSpace& space, const std::vector<int>& scheme,
    nn::Model* model, const compress::CompressionContext& ctx) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  search::EvalPoint before;
  before.acc = nn::Trainer::Evaluate(model, *ctx.test);
  before.params = model->EffectiveParamCount();
  before.flops = model->FlopsPerSample();

  for (size_t i = 0; i < scheme.size(); ++i) {
    int idx = scheme[i];
    if (idx < 0 || static_cast<size_t>(idx) >= space.size()) {
      return Status::OutOfRange("strategy index out of range");
    }
    AUTOMC_ASSIGN_OR_RETURN(
        std::unique_ptr<compress::Compressor> compressor,
        compress::CreateCompressor(space.strategy(static_cast<size_t>(idx))));
    compress::CompressionContext step_ctx = ctx;
    step_ctx.seed = ctx.seed + 31 * i + static_cast<uint64_t>(idx);
    Status st = compressor->Compress(model, step_ctx, nullptr);
    if (st.code() == StatusCode::kFailedPrecondition) {
      // Inapplicable to the current model state (e.g. transferred scheme
      // prunes a structure this model no longer has): skip the step.
      AUTOMC_LOG(Warning) << "scheme step " << i << " inapplicable: "
                          << st.ToString();
    } else if (!st.ok()) {
      return st;
    }
  }

  search::EvalPoint after;
  after.acc = nn::Trainer::Evaluate(model, *ctx.test);
  after.params = model->EffectiveParamCount();
  after.flops = model->FlopsPerSample();
  after.ar = before.acc > 0 ? after.acc / before.acc - 1.0 : 0.0;
  after.pr = before.params > 0
                 ? 1.0 - static_cast<double>(after.params) / before.params
                 : 0.0;
  after.fr = before.flops > 0
                 ? 1.0 - static_cast<double>(after.flops) / before.flops
                 : 0.0;
  return after;
}

search::SearchSpace AutoMC::MakeSearchSpace() const {
  return options_.multi_source ? search::SearchSpace::FullTable1()
                               : search::SearchSpace::SingleMethod("LeGR");
}

Result<AutoMCResult> AutoMC::Run(const CompressionTask& task) {
  AutoMCResult result;
  search::SearchSpace space = MakeSearchSpace();
  AUTOMC_LOG(Info) << "AutoMC search space: " << space.size() << " strategies";

  // 1. Pretrain the base model on the full training split.
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> base,
                          PretrainModel(task));
  result.base_model = std::shared_ptr<nn::Model>(std::move(base));
  result.base_accuracy =
      nn::Trainer::Evaluate(result.base_model.get(), task.data.test);

  // 2. Learn strategy embeddings (Algorithm 1) from the knowledge graph and
  //    measured experience. Skipped entirely for the RL ablation, which has
  //    its own action embeddings.
  kg::EmbeddingLearnerConfig ecfg = options_.embedding;
  ecfg.use_kg = options_.use_kg;
  ecfg.use_exp = options_.use_exp;
  ecfg.seed = options_.seed + 2;

  std::vector<tensor::Tensor> embeddings;
  std::vector<kg::ExperienceRecord> experience;
  if (options_.use_progressive) {
    if (options_.use_exp) {
      kg::ExperienceGenConfig xcfg = options_.experience;
      xcfg.seed = options_.seed + 3;
      AUTOMC_ASSIGN_OR_RETURN(experience,
                              kg::GenerateExperience(space.strategies(), xcfg));
      AUTOMC_LOG(Info) << "generated " << experience.size()
                       << " experience records";
    }
    // Accumulated search experience from earlier runs: every record the
    // store held when it was opened becomes an extra NN_exp training pair.
    // The cutoff is pinned in the checkpoint (sticky section) so a resumed
    // run exports exactly the set its crashed original saw — records the
    // crashed run appended must not alter the embeddings it learned.
    if (options_.use_exp && options_.experience_store != nullptr) {
      uint64_t export_limit =
          static_cast<uint64_t>(options_.experience_store->loaded_size());
      if (options_.checkpointer != nullptr) {
        auto it = options_.checkpointer->pending().find("kg_export_limit");
        if (it != options_.checkpointer->pending().end()) {
          ByteReader r(it->second);
          uint64_t pinned = 0;
          if (!r.U64(&pinned)) {
            return Status::InvalidArgument(
                "corrupted kg_export_limit checkpoint section");
          }
          export_limit = pinned;
        }
        ByteWriter w;
        w.U64(export_limit);
        options_.checkpointer->SetStickySection("kg_export_limit", w.Take());
      }
      if (export_limit > 0) {
        std::vector<store::ExperienceStep> steps =
            options_.experience_store->ExportSteps(
                search::SchemeEvaluator::SpaceFingerprint(space),
                export_limit);
        for (const store::ExperienceStep& step : steps) {
          kg::ExperienceRecord rec;
          rec.strategy_index = static_cast<size_t>(step.strategy);
          rec.task_features = step.task_features;
          rec.ar = step.ar_step;
          rec.pr = step.pr_step;
          experience.push_back(std::move(rec));
        }
        AUTOMC_LOG(Info) << "imported " << steps.size()
                         << " experience steps from the store";
      }
    }
    kg::StrategyEmbeddingLearner learner(space.strategies(), ecfg);
    AUTOMC_RETURN_IF_ERROR(learner.Learn(experience));
    embeddings.reserve(space.size());
    for (size_t i = 0; i < space.size(); ++i) {
      embeddings.push_back(learner.Embedding(i));
    }
  }

  // 3. Search on a subsample of the training data (10% in the paper).
  Rng sub_rng(options_.seed + 4);
  data::Dataset search_train =
      task.search_data_fraction < 1.0
          ? task.data.train.Subsample(task.search_data_fraction, &sub_rng)
          : task.data.train;

  compress::CompressionContext ctx;
  ctx.train = &search_train;
  ctx.test = &task.data.test;
  // The search subsample is much smaller than the full split; scale the
  // epoch base so strategies' fine-tuning sees a comparable number of
  // gradient steps during search and at deployment.
  ctx.pretrain_epochs = static_cast<int>(std::max(
      1.0, 0.5 * task.pretrain_epochs /
               std::max(0.1, task.search_data_fraction)));
  ctx.batch_size = task.batch_size;
  ctx.lr = task.FinetuneLr();
  ctx.seed = options_.seed + 5;

  search::SchemeEvaluator evaluator(&space, result.base_model.get(), ctx,
                                    search::SchemeEvaluator::Options{});

  // 7-dim task descriptor of this run: fed to F_mo and attached to every
  // record this run appends to the store (future runs train NN_exp on them).
  std::vector<float> feats = data::TaskFeatureVector(
      search_train, result.base_model->ParamCount(),
      result.base_model->FlopsPerSample(), evaluator.base_point().acc);

  if (options_.experience_store != nullptr) {
    AUTOMC_RETURN_IF_ERROR(evaluator.AttachStore(options_.experience_store));
    options_.experience_store->set_task_features(feats);
  }

  std::unique_ptr<search::Searcher> searcher;
  if (options_.use_progressive) {
    tensor::Tensor task_features({data::kTaskFeatureDim});
    for (int i = 0; i < data::kTaskFeatureDim; ++i) {
      task_features[i] = feats[static_cast<size_t>(i)];
    }
    // Warm-start F_mo from the measured experience: each record is a
    // one-step transition (empty prefix -> strategy) with its observed
    // AR/PR, exactly F_mo's training signal.
    std::vector<search::FmoExample> warm_start;
    for (const kg::ExperienceRecord& rec : experience) {
      search::FmoExample ex;
      ex.candidate = embeddings[rec.strategy_index];
      ex.task = tensor::Tensor({data::kTaskFeatureDim});
      for (int i = 0; i < data::kTaskFeatureDim; ++i) {
        ex.task[i] = rec.task_features[static_cast<size_t>(i)];
      }
      ex.ar_step = rec.ar;
      ex.pr_step = rec.pr;
      warm_start.push_back(std::move(ex));
    }
    auto progressive = std::make_unique<search::ProgressiveSearcher>(
        std::move(embeddings), std::move(task_features), options_.progressive);
    progressive->set_warm_start(std::move(warm_start));
    searcher = std::move(progressive);
  } else {
    searcher = std::make_unique<search::RlSearcher>();
  }

  search::SearchConfig scfg = options_.search;
  scfg.seed = options_.seed + 6;
  scfg.checkpointer = options_.checkpointer;
  AUTOMC_ASSIGN_OR_RETURN(result.outcome,
                          searcher->Search(&evaluator, space, scfg));

  for (const auto& scheme : result.outcome.pareto_schemes) {
    result.pareto_descriptions.push_back(space.SchemeToString(scheme));
  }
  return result;
}

}  // namespace core
}  // namespace automc
