#include "core/run_spec.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "data/dataset.h"
#include "nn/trainer.h"
#include "search/evolutionary.h"
#include "search/random_search.h"
#include "search/rl.h"
#include "store/experience_store.h"

namespace automc {
namespace core {

namespace {

constexpr uint32_t kRunSpecVersion = 1;

bool OneOf(const std::string& v, std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (v == a) return true;
  }
  return false;
}

}  // namespace

Status ValidateRunSpec(const RunSpec& spec) {
  if (!OneOf(spec.family, {"resnet", "vgg"})) {
    return Status::InvalidArgument("unknown model family: " + spec.family);
  }
  if (!OneOf(spec.dataset, {"c10", "c100", "tiny"})) {
    return Status::InvalidArgument("unknown dataset: " + spec.dataset);
  }
  if (!OneOf(spec.searcher, {"automc", "random", "evolution", "rl"})) {
    return Status::InvalidArgument("unknown searcher: " + spec.searcher);
  }
  if (spec.depth < 1 || spec.depth > 200) {
    return Status::InvalidArgument("depth out of range: " +
                                   std::to_string(spec.depth));
  }
  if (spec.budget < 1) {
    return Status::InvalidArgument("budget must be >= 1");
  }
  if (spec.eval_batch < 0) {
    return Status::InvalidArgument("eval_batch must be >= 0");
  }
  if (spec.pretrain < 0) {
    return Status::InvalidArgument("pretrain must be >= 0");
  }
  if (spec.gamma < 0.0 || spec.gamma >= 1.0) {
    return Status::InvalidArgument("gamma must be in [0, 1)");
  }
  return Status::OK();
}

std::string RunSpecSummary(const RunSpec& spec) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s %s-%d %s gamma=%.2f budget=%d seed=%llu",
                spec.searcher.c_str(), spec.family.c_str(), spec.depth,
                spec.dataset.c_str(), spec.gamma, spec.budget,
                static_cast<unsigned long long>(spec.seed));
  return buf;
}

void EncodeRunSpec(const RunSpec& spec, ByteWriter* w) {
  w->U32(kRunSpecVersion);
  w->Str(spec.family);
  w->I32(spec.depth);
  w->Str(spec.dataset);
  w->F64(spec.gamma);
  w->I32(spec.budget);
  w->I32(spec.eval_batch);
  w->Str(spec.searcher);
  w->I32(spec.pretrain);
  w->U64(spec.seed);
}

bool DecodeRunSpec(ByteReader* r, RunSpec* spec) {
  uint32_t version = 0;
  if (!r->U32(&version) || version != kRunSpecVersion) return false;
  return r->Str(&spec->family) && r->I32(&spec->depth) &&
         r->Str(&spec->dataset) && r->F64(&spec->gamma) &&
         r->I32(&spec->budget) && r->I32(&spec->eval_batch) &&
         r->Str(&spec->searcher) && r->I32(&spec->pretrain) &&
         r->U64(&spec->seed);
}

CompressionTask MakeTask(const RunSpec& spec) {
  CompressionTask task;
  if (spec.dataset == "tiny") {
    data::SyntheticTaskConfig cfg;
    cfg.num_classes = 3;
    cfg.train_per_class = 12;
    cfg.test_per_class = 4;
    cfg.seed = spec.seed;
    task.data = data::MakeSyntheticTask(cfg);
  } else if (spec.dataset == "c100") {
    task.data = data::MakeCifar100Like(spec.seed);
  } else {
    task.data = data::MakeCifar10Like(spec.seed);
  }
  task.model_spec.family = spec.family;
  task.model_spec.depth = spec.depth;
  task.model_spec.base_width = 4;  // CLI synthetic-data width
  task.model_spec.num_classes = task.data.train.num_classes;
  task.pretrain_epochs = 4;
  task.base_train_epochs = spec.pretrain;
  task.search_data_fraction = 0.25;
  task.seed = spec.seed;
  return task;
}

Result<AutoMCResult> RunSearch(const RunSpec& spec,
                               const CompressionTask& task,
                               const RunHooks& hooks) {
  AUTOMC_RETURN_IF_ERROR(ValidateRunSpec(spec));

  if (spec.searcher == "automc") {
    AutoMCOptions opts;
    opts.search.max_strategy_executions = spec.budget;
    opts.search.gamma = spec.gamma;
    if (spec.eval_batch >= 1) opts.search.eval_batch = spec.eval_batch;
    opts.search.stop = hooks.stop;
    opts.embedding.train_epochs = 8;
    opts.experience.num_tasks = 1;
    opts.experience.strategies_per_task = 10;
    opts.seed = spec.seed;
    opts.experience_store = hooks.store;
    opts.checkpointer = hooks.checkpointer;
    AutoMC automc(opts);
    return automc.Run(task);
  }

  AutoMCResult result;
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> pretrained,
                          PretrainModel(task));
  result.base_model = std::shared_ptr<nn::Model>(std::move(pretrained));
  result.base_accuracy =
      nn::Trainer::Evaluate(result.base_model.get(), task.data.test);

  search::SearchSpace space = search::SearchSpace::FullTable1();
  Rng sub_rng(spec.seed + 4);
  data::Dataset search_train =
      task.data.train.Subsample(task.search_data_fraction, &sub_rng);
  compress::CompressionContext ctx;
  ctx.train = &search_train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = task.batch_size;
  ctx.lr = task.lr;
  ctx.seed = spec.seed + 5;
  search::SchemeEvaluator evaluator(&space, result.base_model.get(), ctx, {});
  if (hooks.store != nullptr) {
    AUTOMC_RETURN_IF_ERROR(evaluator.AttachStore(hooks.store));
    hooks.store->set_task_features(data::TaskFeatureVector(
        search_train, result.base_model->ParamCount(),
        result.base_model->FlopsPerSample(), evaluator.base_point().acc));
  }

  std::unique_ptr<search::Searcher> searcher;
  if (spec.searcher == "random") {
    searcher = std::make_unique<search::RandomSearcher>();
  } else if (spec.searcher == "evolution") {
    searcher = std::make_unique<search::EvolutionarySearcher>();
  } else {
    searcher = std::make_unique<search::RlSearcher>();
  }
  search::SearchConfig scfg;
  scfg.max_strategy_executions = spec.budget;
  scfg.gamma = spec.gamma;
  scfg.seed = spec.seed + 6;
  if (spec.eval_batch >= 1) scfg.eval_batch = spec.eval_batch;
  scfg.checkpointer = hooks.checkpointer;
  scfg.stop = hooks.stop;
  AUTOMC_ASSIGN_OR_RETURN(result.outcome,
                          searcher->Search(&evaluator, space, scfg));
  for (const auto& scheme : result.outcome.pareto_schemes) {
    result.pareto_descriptions.push_back(space.SchemeToString(scheme));
  }
  return result;
}

Result<AutoMCResult> RunSearch(const RunSpec& spec, const RunHooks& hooks) {
  return RunSearch(spec, MakeTask(spec), hooks);
}

std::string SchemeIndicesToString(const std::vector<int>& scheme) {
  std::string out;
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(scheme[i]);
  }
  return out;
}

Result<std::vector<int>> ParseSchemeIndices(const std::string& text) {
  std::vector<int> out;
  if (text.empty()) return out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma == pos) {
      return Status::InvalidArgument("empty scheme element in '" + text + "'");
    }
    int value = 0;
    for (size_t i = pos; i < comma; ++i) {
      const char c = text[i];
      if (c < '0' || c > '9' || value > 100000) {
        return Status::InvalidArgument("bad scheme index in '" + text + "'");
      }
      value = value * 10 + (c - '0');
    }
    out.push_back(value);
    pos = comma + 1;
  }
  return out;
}

Result<size_t> PickWinningScheme(const search::SearchOutcome& outcome) {
  if (outcome.pareto_points.empty() ||
      outcome.pareto_points.size() != outcome.pareto_schemes.size()) {
    return Status::NotFound("search produced no pareto points");
  }
  size_t best = 0;
  for (size_t i = 1; i < outcome.pareto_points.size(); ++i) {
    const search::EvalPoint& p = outcome.pareto_points[i];
    const search::EvalPoint& b = outcome.pareto_points[best];
    if (p.acc > b.acc || (p.acc == b.acc && p.params < b.params)) {
      best = i;
    }
  }
  return best;
}

Result<std::unique_ptr<nn::Model>> MaterializeScheme(
    const RunSpec& spec, const std::vector<int>& scheme) {
  AUTOMC_RETURN_IF_ERROR(ValidateRunSpec(spec));
  CompressionTask task = MakeTask(spec);
  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                          PretrainModel(task));
  search::SearchSpace space = search::SearchSpace::FullTable1();
  for (int s : scheme) {
    if (s < 0 || static_cast<size_t>(s) >= space.size()) {
      return Status::InvalidArgument("scheme index " + std::to_string(s) +
                                     " outside the strategy table");
    }
  }

  // Rebuild the exact CompressionContext the search used — the automc and
  // baseline paths differ (RunSearch above vs AutoMC::Run), and matching it
  // is what makes the materialized bytes equal the measured model.
  Rng sub_rng(spec.seed + 4);
  data::Dataset search_train =
      (spec.searcher == "automc" && task.search_data_fraction >= 1.0)
          ? task.data.train
          : task.data.train.Subsample(task.search_data_fraction, &sub_rng);
  compress::CompressionContext base_ctx;
  base_ctx.train = &search_train;
  base_ctx.test = &task.data.test;
  base_ctx.batch_size = task.batch_size;
  base_ctx.seed = spec.seed + 5;
  if (spec.searcher == "automc") {
    base_ctx.pretrain_epochs = static_cast<int>(std::max(
        1.0, 0.5 * task.pretrain_epochs /
                 std::max(0.1, task.search_data_fraction)));
    base_ctx.lr = task.FinetuneLr();
  } else {
    base_ctx.pretrain_epochs = task.pretrain_epochs;
    base_ctx.lr = task.lr;
  }

  for (size_t i = 0; i < scheme.size(); ++i) {
    const compress::StrategySpec& sspec =
        space.strategy(static_cast<size_t>(scheme[i]));
    AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<compress::Compressor> compressor,
                            compress::CreateCompressor(sspec));
    compress::CompressionContext ctx = base_ctx;
    // The evaluator's per-node seed: a pure function of the scheme prefix.
    ctx.seed = base_ctx.seed * 1315423911u +
               static_cast<uint64_t>(scheme[i]) * 2654435761u +
               static_cast<uint64_t>(i);
    Status st = compressor->Compress(model.get(), ctx, nullptr);
    if (st.code() == StatusCode::kFailedPrecondition) {
      AUTOMC_LOG(Debug) << "strategy " << sspec.ToString()
                        << " inapplicable during materialization (no-op)";
    } else if (!st.ok()) {
      return st;
    }
  }
  return model;
}

}  // namespace core
}  // namespace automc
