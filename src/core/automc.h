#ifndef AUTOMC_CORE_AUTOMC_H_
#define AUTOMC_CORE_AUTOMC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "kg/embedding.h"
#include "kg/experience.h"
#include "nn/model.h"
#include "search/progressive.h"
#include "search/searcher.h"
#include "store/checkpoint.h"
#include "store/experience_store.h"

namespace automc {
namespace core {

// One automatic-model-compression problem instance (Definition 1): a model
// family/size, a dataset, and the training regime that defines "epochs".
struct CompressionTask {
  nn::ModelSpec model_spec;
  data::TaskData data;
  // Epoch base for the "*n" hyperparameter fractions (HP1, HP7, HP9, HP13)
  // and compression-time training budgets.
  int pretrain_epochs = 4;
  // Epochs used to train the base model itself; 0 means pretrain_epochs.
  // The scaled substrate trains the base model to convergence while keeping
  // the per-strategy fine-tuning budgets small (see DESIGN.md).
  int base_train_epochs = 0;
  int batch_size = 32;
  float lr = 0.02f;
  // Per-epoch multiplicative lr decay during base-model pretraining.
  float lr_decay = 1.0f;
  // Learning rate for compression-time training (fine-tuning, distillation,
  // sparsity phases); 0 means lr/2 — fine-tuning a converged model at the
  // full pretraining rate destabilizes it.
  float finetune_lr = 0.0f;
  float FinetuneLr() const {
    return finetune_lr > 0.0f ? finetune_lr : 0.5f * lr;
  }
  // Fraction of the training data the AutoML search runs on (the paper
  // samples 10% of D to speed up scheme evaluation).
  double search_data_fraction = 0.1;
  uint64_t seed = 1;
};

// Pretrains the task's base model on its full training split.
Result<std::unique_ptr<nn::Model>> PretrainModel(const CompressionTask& task);

// Applies a scheme (indices into `space`) to `model` in place using the
// given context; returns the resulting measurement relative to the model's
// state at entry. Used directly by the transfer study and examples.
Result<search::EvalPoint> ExecuteScheme(const search::SearchSpace& space,
                                        const std::vector<int>& scheme,
                                        nn::Model* model,
                                        const compress::CompressionContext& ctx);

// Configuration of the full AutoMC pipeline. The four booleans reproduce the
// Section 4.5 ablations when toggled off.
struct AutoMCOptions {
  search::SearchConfig search;
  kg::EmbeddingLearnerConfig embedding;
  kg::ExperienceGenConfig experience;
  search::ProgressiveSearcher::Options progressive;

  bool use_kg = true;        // false => AutoMC-KG ablation
  bool use_exp = true;       // false => AutoMC-NN_exp ablation
  bool multi_source = true;  // false => AutoMC-MultipleSource (LeGR only)
  bool use_progressive = true;  // false => AutoMC-ProgressiveSearch (RL)
  uint64_t seed = 1;

  // Non-owning persistence hooks. When `experience_store` is set, the run
  // serves and records scheme evaluations through it (warm-starting repeat
  // runs) and exports the records it loaded as extra NN_exp training pairs.
  // When `checkpointer` is set, the search checkpoints periodically and a
  // pending checkpoint (loaded by the caller) is resumed transparently.
  store::ExperienceStore* experience_store = nullptr;
  store::SearchCheckpointer* checkpointer = nullptr;
};

struct AutoMCResult {
  search::SearchOutcome outcome;
  // Human-readable description of each Pareto scheme.
  std::vector<std::string> pareto_descriptions;
  // Pretrained base model (before compression) and its test accuracy.
  std::shared_ptr<nn::Model> base_model;
  double base_accuracy = 0.0;
};

// The AutoMC system: builds the Table 1 search space, learns strategy
// embeddings from the knowledge graph + measured experience (Algorithm 1),
// then runs the progressive search (Algorithm 2) on a subsample of the task
// data, returning the Pareto-optimal compression schemes.
class AutoMC {
 public:
  explicit AutoMC(AutoMCOptions options) : options_(std::move(options)) {}

  Result<AutoMCResult> Run(const CompressionTask& task);

  // The search space this instance searches over (depends on multi_source).
  search::SearchSpace MakeSearchSpace() const;

 private:
  AutoMCOptions options_;
};

}  // namespace core
}  // namespace automc

#endif  // AUTOMC_CORE_AUTOMC_H_
