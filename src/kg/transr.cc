#include "kg/transr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace automc {
namespace kg {

using tensor::Tensor;

TransR::TransR(int64_t num_entities, int64_t num_relations,
               TransRConfig config)
    : config_(config), num_entities_(num_entities),
      num_relations_(num_relations) {
  AUTOMC_CHECK_GT(num_entities, 0);
  AUTOMC_CHECK_GT(num_relations, 0);
  Rng rng(config.seed);
  float escale = 1.0f / std::sqrt(static_cast<float>(config.entity_dim));
  float rscale = 1.0f / std::sqrt(static_cast<float>(config.relation_dim));
  entities_ = Tensor::Randn({num_entities, config.entity_dim}, &rng, escale);
  relations_ =
      Tensor::Randn({num_relations, config.relation_dim}, &rng, rscale);
  // Projections start near identity-ish random maps.
  proj_ = Tensor::Randn(
      {num_relations, config.relation_dim * config.entity_dim}, &rng, escale);
  for (int64_t r = 0; r < num_relations; ++r) {
    for (int64_t i = 0; i < std::min(config.relation_dim, config.entity_dim);
         ++i) {
      proj_[r * config.relation_dim * config.entity_dim +
            i * config.entity_dim + i] += 1.0f;
    }
  }
}

namespace {

// u = W (projected difference + relation): computed per triplet.
void Project(const float* w, const float* e, int64_t k, int64_t d,
             float* out) {
  for (int64_t i = 0; i < k; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < d; ++j) s += static_cast<double>(w[i * d + j]) * e[j];
    out[i] = static_cast<float>(s);
  }
}

}  // namespace

double TransR::Score(const Triplet& t) const {
  int64_t d = config_.entity_dim, k = config_.relation_dim;
  const float* w = proj_.data() + t.relation * k * d;
  const float* eh = entities_.data() + t.head * d;
  const float* et = entities_.data() + t.tail * d;
  const float* er = relations_.data() + t.relation * k;
  std::vector<float> ph(static_cast<size_t>(k)), pt(static_cast<size_t>(k));
  Project(w, eh, k, d, ph.data());
  Project(w, et, k, d, pt.data());
  double s = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    double u = ph[static_cast<size_t>(i)] + er[i] - pt[static_cast<size_t>(i)];
    s += u * u;
  }
  return s;
}

void TransR::RenormalizeEntity(int64_t id) {
  int64_t d = config_.entity_dim;
  float* e = entities_.MutableData() + id * d;
  double n = 0.0;
  for (int64_t i = 0; i < d; ++i) n += static_cast<double>(e[i]) * e[i];
  n = std::sqrt(n);
  if (n > 1.0) {
    float inv = static_cast<float>(1.0 / n);
    for (int64_t i = 0; i < d; ++i) e[i] *= inv;
  }
}

void TransR::UpdatePair(const Triplet& pos, const Triplet& neg) {
  double d_pos = Score(pos);
  double d_neg = Score(neg);
  double loss = config_.margin + d_pos - d_neg;
  if (loss <= 0.0) return;  // hinge inactive

  int64_t d = config_.entity_dim, k = config_.relation_dim;
  float lr = config_.lr;

  // Gradient of score d(h,r,t) wrt its pieces:
  //   u = W e_h + e_r - W e_t  (in R^k)
  //   dd/de_h = 2 W^T u ; dd/de_t = -2 W^T u ; dd/de_r = 2u ;
  //   dd/dW = 2 u (e_h - e_t)^T.
  auto apply = [&](const Triplet& t, float sign) {
    float* w = proj_.MutableData() + t.relation * k * d;
    float* eh = entities_.MutableData() + t.head * d;
    float* et = entities_.MutableData() + t.tail * d;
    float* er = relations_.MutableData() + t.relation * k;
    std::vector<float> u(static_cast<size_t>(k));
    {
      std::vector<float> ph(static_cast<size_t>(k)), pt(static_cast<size_t>(k));
      Project(w, eh, k, d, ph.data());
      Project(w, et, k, d, pt.data());
      for (int64_t i = 0; i < k; ++i) {
        u[static_cast<size_t>(i)] =
            ph[static_cast<size_t>(i)] + er[i] - pt[static_cast<size_t>(i)];
      }
    }
    // W^T u
    std::vector<float> wtu(static_cast<size_t>(d), 0.0f);
    for (int64_t i = 0; i < k; ++i) {
      float ui = u[static_cast<size_t>(i)];
      for (int64_t j = 0; j < d; ++j) wtu[static_cast<size_t>(j)] += w[i * d + j] * ui;
    }
    float step = 2.0f * lr * sign;
    for (int64_t j = 0; j < d; ++j) {
      float diff = eh[j] - et[j];
      eh[j] -= step * wtu[static_cast<size_t>(j)];
      et[j] += step * wtu[static_cast<size_t>(j)];
      // dW rows: u_i * diff_j
      for (int64_t i = 0; i < k; ++i) {
        w[i * d + j] -= step * u[static_cast<size_t>(i)] * diff;
      }
    }
    for (int64_t i = 0; i < k; ++i) er[i] -= step * u[static_cast<size_t>(i)];
  };

  apply(pos, +1.0f);  // decrease positive energy
  apply(neg, -1.0f);  // increase negative energy
  RenormalizeEntity(pos.head);
  RenormalizeEntity(pos.tail);
  RenormalizeEntity(neg.head);
  RenormalizeEntity(neg.tail);
}

double TransR::TrainEpoch(const std::vector<Triplet>& triplets,
                          int64_t num_entities, Rng* rng) {
  AUTOMC_CHECK(!triplets.empty());
  std::vector<size_t> order(triplets.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  double total = 0.0;
  for (size_t idx : order) {
    const Triplet& pos = triplets[idx];
    Triplet neg = pos;
    // Corrupt head or tail with a uniform entity.
    if (rng->Bernoulli(0.5)) {
      neg.head = rng->UniformInt(num_entities);
    } else {
      neg.tail = rng->UniformInt(num_entities);
    }
    double loss =
        std::max(0.0, config_.margin + Score(pos) - Score(neg));
    total += loss;
    UpdatePair(pos, neg);
  }
  return total / static_cast<double>(triplets.size());
}

TransR::RankingMetrics TransR::EvaluateRanking(
    const std::vector<Triplet>& triplets, int64_t num_entities,
    int max_triplets) const {
  RankingMetrics m;
  int limit = std::min<int>(max_triplets, static_cast<int>(triplets.size()));
  for (int i = 0; i < limit; ++i) {
    const Triplet& t = triplets[static_cast<size_t>(i)];
    double true_score = Score(t);
    // Rank = 1 + number of corruptions scoring strictly better.
    int64_t rank = 1;
    for (int64_t e = 0; e < num_entities; ++e) {
      if (e == t.tail) continue;
      Triplet corrupted = t;
      corrupted.tail = e;
      if (Score(corrupted) < true_score) ++rank;
    }
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    ++m.evaluated;
  }
  if (m.evaluated > 0) {
    m.mrr /= m.evaluated;
    m.hits_at_1 /= m.evaluated;
    m.hits_at_10 /= m.evaluated;
  }
  return m;
}

Tensor TransR::EntityEmbedding(int64_t id) const {
  AUTOMC_CHECK(id >= 0 && id < num_entities_);
  int64_t d = config_.entity_dim;
  Tensor out({d});
  const float* e = entities_.data() + id * d;
  std::copy(e, e + d, out.MutableData());
  return out;
}

void TransR::SetEntityEmbedding(int64_t id, const Tensor& e) {
  AUTOMC_CHECK(id >= 0 && id < num_entities_);
  int64_t d = config_.entity_dim;
  AUTOMC_CHECK_EQ(e.numel(), d);
  std::copy(e.data(), e.data() + d, entities_.MutableData() + id * d);
}

}  // namespace kg
}  // namespace automc
