#ifndef AUTOMC_KG_KNOWLEDGE_GRAPH_H_
#define AUTOMC_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/compressor.h"

namespace automc {
namespace kg {

// Relation types of Section 3.3.1.
enum Relation : int64_t {
  kStrategyMethod = 0,   // R1: strategy -> its compression method
  kStrategySetting = 1,  // R2: strategy -> each of its hyperparameter settings
  kMethodHp = 2,         // R3: method -> its hyperparameters
  kMethodTechnique = 3,  // R4: method -> its compression techniques
  kHpSetting = 4,        // R5: hyperparameter -> its possible settings
};
inline constexpr int64_t kNumRelations = 5;

struct Triplet {
  int64_t head;
  int64_t relation;
  int64_t tail;
};

// The domain knowledge graph over compression strategies: five entity types
// (strategy, method, hyperparameter, setting, technique) connected by the
// five relations above. Built declaratively from the strategy grid, plus the
// method->technique table transcribed from the paper's Table 1.
class KnowledgeGraph {
 public:
  static KnowledgeGraph Build(
      const std::vector<compress::StrategySpec>& strategies);

  int64_t num_entities() const { return static_cast<int64_t>(names_.size()); }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  // Entity id of the i-th strategy in the grid passed to Build.
  int64_t StrategyEntity(size_t strategy_index) const {
    return strategy_entities_[strategy_index];
  }
  const std::string& EntityName(int64_t id) const {
    return names_[static_cast<size_t>(id)];
  }
  // Looks up an entity by its qualified name ("M:LeGR", "H:HP2",
  // "V:HP2=0.2", "T:TE3"); -1 if absent.
  int64_t FindEntity(const std::string& name) const;

 private:
  int64_t Intern(const std::string& name);

  std::vector<std::string> names_;
  std::unordered_map<std::string, int64_t> index_;
  std::vector<Triplet> triplets_;
  std::vector<int64_t> strategy_entities_;
};

// Technique labels (TE1..TE9 of Table 1) used by each method.
const std::vector<std::string>& TechniquesOfMethod(const std::string& method);

}  // namespace kg
}  // namespace automc

#endif  // AUTOMC_KG_KNOWLEDGE_GRAPH_H_
