#ifndef AUTOMC_KG_EXPERIENCE_H_
#define AUTOMC_KG_EXPERIENCE_H_

#include <vector>

#include "common/result.h"
#include "compress/compressor.h"
#include "data/dataset.h"

namespace automc {
namespace kg {

// One piece of experimental experience: how strategy `strategy_index`
// performed on a task with feature vector `task_features`
// (the tuple (C_i P_{i,j}, Task_k, AR, PR) of Section 3.3.1).
struct ExperienceRecord {
  size_t strategy_index = 0;
  std::vector<float> task_features;
  float ar = 0.0f;  // accuracy increase rate
  float pr = 0.0f;  // parameter reduction rate
};

// Configuration of the experience generator. The paper mines these records
// from published papers; lacking that corpus, we *measure* them by actually
// running sampled strategies on a battery of small synthetic tasks (see
// DESIGN.md substitutions).
struct ExperienceGenConfig {
  int num_tasks = 2;              // micro-tasks in the battery
  int strategies_per_task = 24;   // sampled strategies evaluated on each
  int pretrain_epochs = 2;
  int batch_size = 16;
  uint64_t seed = 5;
};

Result<std::vector<ExperienceRecord>> GenerateExperience(
    const std::vector<compress::StrategySpec>& strategies,
    const ExperienceGenConfig& config);

}  // namespace kg
}  // namespace automc

#endif  // AUTOMC_KG_EXPERIENCE_H_
