#include "kg/embedding.h"

#include <numeric>

#include "nn/optimizer.h"

namespace automc {
namespace kg {

using tensor::Tensor;

StrategyEmbeddingLearner::StrategyEmbeddingLearner(
    std::vector<compress::StrategySpec> strategies,
    EmbeddingLearnerConfig config)
    : strategies_(std::move(strategies)),
      config_(config),
      graph_(KnowledgeGraph::Build(strategies_)) {
  AUTOMC_CHECK(!strategies_.empty());
  transr_ = std::make_unique<TransR>(graph_.num_entities(), kNumRelations,
                                     config_.transr);
  Rng rng(config_.seed);
  nn_exp_ = std::make_unique<nn::VecMlp>(
      std::vector<int64_t>{config_.transr.entity_dim + data::kTaskFeatureDim,
                           64, 32, 2},
      &rng);
  embeddings_.resize(strategies_.size());
}

Status StrategyEmbeddingLearner::Learn(
    const std::vector<ExperienceRecord>& experience) {
  if (config_.use_exp && experience.empty()) {
    return Status::InvalidArgument(
        "use_exp requires non-empty experience records");
  }
  for (const ExperienceRecord& r : experience) {
    if (r.strategy_index >= strategies_.size()) {
      return Status::OutOfRange("experience references unknown strategy");
    }
    if (r.task_features.size() != static_cast<size_t>(data::kTaskFeatureDim)) {
      return Status::InvalidArgument("bad task feature dimension");
    }
  }

  Rng rng(config_.seed + 1);
  nn::Adam exp_opt(config_.exp_lr);
  int64_t d = config_.transr.entity_dim;

  for (int epoch = 0; epoch < config_.train_epochs; ++epoch) {
    // (Line 5) one TransR epoch over the knowledge graph.
    if (config_.use_kg) {
      transr_->TrainEpoch(graph_.triplets(), graph_.num_entities(), &rng);
    }
    // (Lines 6-9) refine strategy embeddings through NN_exp.
    if (config_.use_exp) {
      std::vector<size_t> order(experience.size());
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(&order);
      double total = 0.0;
      for (size_t idx : order) {
        const ExperienceRecord& rec = experience[idx];
        int64_t entity = graph_.StrategyEntity(rec.strategy_index);
        Tensor emb = transr_->EntityEmbedding(entity);

        Tensor input({d + data::kTaskFeatureDim});
        for (int64_t i = 0; i < d; ++i) input[i] = emb[i];
        for (int64_t i = 0; i < data::kTaskFeatureDim; ++i) {
          input[d + i] = rec.task_features[static_cast<size_t>(i)];
        }

        nn::VecMlp::Cache cache;
        Tensor pred = nn_exp_->Forward(input, &cache);
        // Equation 3: squared error between (AR, PR) and predictions.
        Tensor dy({2});
        float e_ar = pred[0] - rec.ar;
        float e_pr = pred[1] - rec.pr;
        total += 0.5 * (e_ar * e_ar + e_pr * e_pr);
        dy[0] = e_ar;
        dy[1] = e_pr;

        for (nn::Param* p : nn_exp_->Params()) p->ZeroGrad();
        Tensor dx = nn_exp_->Backward(cache, dy);
        exp_opt.Step(nn_exp_->Params());

        // Refine the embedding against the input gradient and write it back
        // into the entity table so TransR and NN_exp co-train.
        for (int64_t i = 0; i < d; ++i) {
          emb[i] -= config_.emb_lr * dx[i];
        }
        transr_->SetEntityEmbedding(entity, emb);
      }
      last_exp_loss_ = total / static_cast<double>(experience.size());
    }
  }

  // (Line 11) export final high-level embeddings.
  for (size_t i = 0; i < strategies_.size(); ++i) {
    embeddings_[i] = transr_->EntityEmbedding(graph_.StrategyEntity(i));
  }
  return Status::OK();
}

const Tensor& StrategyEmbeddingLearner::Embedding(
    size_t strategy_index) const {
  AUTOMC_CHECK_LT(strategy_index, embeddings_.size());
  AUTOMC_CHECK(!embeddings_[strategy_index].empty())
      << "Learn() must run before Embedding()";
  return embeddings_[strategy_index];
}

}  // namespace kg
}  // namespace automc
