#ifndef AUTOMC_KG_EMBEDDING_H_
#define AUTOMC_KG_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "kg/experience.h"
#include "kg/knowledge_graph.h"
#include "kg/transr.h"
#include "nn/seqnet.h"

namespace automc {
namespace kg {

struct EmbeddingLearnerConfig {
  int train_epochs = 25;      // TrainEpoch of Algorithm 1
  TransRConfig transr;        // embedding size 32 per the paper
  float exp_lr = 0.001f;      // Adam lr for NN_exp (paper: 0.001)
  float emb_lr = 0.01f;       // SGD lr for embedding refinement via NN_exp
  // Ablation switches (AutoMC-KG / AutoMC-NN_exp of Section 4.5).
  bool use_kg = true;
  bool use_exp = true;
  uint64_t seed = 23;
};

// Algorithm 1: learns a high-level embedding for every compression strategy
// by interleaving (a) TransR epochs over the knowledge graph and (b)
// regression of measured experience through NN_exp, whose input-gradient
// refines the strategy embeddings.
class StrategyEmbeddingLearner {
 public:
  StrategyEmbeddingLearner(std::vector<compress::StrategySpec> strategies,
                           EmbeddingLearnerConfig config);

  // Runs the joint loop. `experience` may be empty when use_exp is false.
  Status Learn(const std::vector<ExperienceRecord>& experience);

  // Final embedding of strategy i ([entity_dim]); valid after Learn.
  const tensor::Tensor& Embedding(size_t strategy_index) const;
  int64_t embedding_dim() const { return config_.transr.entity_dim; }
  size_t num_strategies() const { return strategies_.size(); }

  // Mean NN_exp regression loss of the last training epoch (diagnostics).
  double last_exp_loss() const { return last_exp_loss_; }

 private:
  std::vector<compress::StrategySpec> strategies_;
  EmbeddingLearnerConfig config_;
  KnowledgeGraph graph_;
  std::unique_ptr<TransR> transr_;
  std::unique_ptr<nn::VecMlp> nn_exp_;
  std::vector<tensor::Tensor> embeddings_;
  double last_exp_loss_ = 0.0;
};

}  // namespace kg
}  // namespace automc

#endif  // AUTOMC_KG_EMBEDDING_H_
