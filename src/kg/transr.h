#ifndef AUTOMC_KG_TRANSR_H_
#define AUTOMC_KG_TRANSR_H_

#include <vector>

#include "common/rng.h"
#include "kg/knowledge_graph.h"
#include "tensor/tensor.h"

namespace automc {
namespace kg {

struct TransRConfig {
  int64_t entity_dim = 32;    // d
  int64_t relation_dim = 32;  // k
  float margin = 1.0f;
  float lr = 0.01f;
  uint64_t seed = 11;
};

// TransR knowledge-graph embedding (Lin et al. 2015): entities live in R^d,
// each relation r has its own space R^k and projection matrix W_r in
// R^{k x d}; a valid triplet satisfies W_r e_h + e_r ~= W_r e_t. Trained
// with margin-based ranking against corrupted negatives, SGD updates, and
// unit-ball renormalization.
class TransR {
 public:
  TransR(int64_t num_entities, int64_t num_relations, TransRConfig config);

  // One pass over the triplets (shuffled) with one sampled negative per
  // positive. Returns the mean hinge loss.
  double TrainEpoch(const std::vector<Triplet>& triplets, int64_t num_entities,
                    Rng* rng);

  // Energy ||W_r e_h + e_r - W_r e_t||^2 of a triplet (lower = more
  // plausible).
  double Score(const Triplet& t) const;

  // Link-prediction quality of the embedding (standard KG-completion
  // protocol): for each evaluated triplet, rank the true tail against all
  // tail corruptions by score.
  struct RankingMetrics {
    double mrr = 0.0;      // mean reciprocal rank
    double hits_at_1 = 0.0;
    double hits_at_10 = 0.0;
    int evaluated = 0;
  };
  // Evaluates at most `max_triplets` (sampled deterministically from the
  // front of the list) against `num_entities` candidate tails.
  RankingMetrics EvaluateRanking(const std::vector<Triplet>& triplets,
                                 int64_t num_entities,
                                 int max_triplets = 200) const;

  // Copy of entity embedding [d].
  tensor::Tensor EntityEmbedding(int64_t id) const;
  // Overwrites entity embedding (used by the joint Algorithm-1 loop when
  // experience gradients refine strategy embeddings).
  void SetEntityEmbedding(int64_t id, const tensor::Tensor& e);

  const TransRConfig& config() const { return config_; }

 private:
  // Applies one SGD step for a (positive, negative) pair.
  void UpdatePair(const Triplet& pos, const Triplet& neg);
  void RenormalizeEntity(int64_t id);

  TransRConfig config_;
  int64_t num_entities_;
  int64_t num_relations_;
  tensor::Tensor entities_;   // [E, d]
  tensor::Tensor relations_;  // [R, k]
  tensor::Tensor proj_;       // [R, k, d] flattened as [R, k*d]
};

}  // namespace kg
}  // namespace automc

#endif  // AUTOMC_KG_TRANSR_H_
