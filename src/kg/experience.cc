#include "kg/experience.h"

#include <memory>

#include "common/logging.h"
#include "nn/trainer.h"

namespace automc {
namespace kg {

Result<std::vector<ExperienceRecord>> GenerateExperience(
    const std::vector<compress::StrategySpec>& strategies,
    const ExperienceGenConfig& config) {
  if (strategies.empty()) {
    return Status::InvalidArgument("no strategies to measure");
  }
  Rng rng(config.seed);
  std::vector<ExperienceRecord> records;

  for (int t = 0; t < config.num_tasks; ++t) {
    // Vary the task battery: class count, data amount, noise, model family.
    data::SyntheticTaskConfig dcfg;
    dcfg.name = "exp-task-" + std::to_string(t);
    dcfg.num_classes = 3 + 2 * t;
    dcfg.train_per_class = 16 + 8 * (t % 2);
    dcfg.test_per_class = 6;
    dcfg.noise = 0.25f + 0.1f * static_cast<float>(t % 3);
    dcfg.seed = config.seed * 131 + static_cast<uint64_t>(t);
    data::TaskData task = data::MakeSyntheticTask(dcfg);

    nn::ModelSpec spec;
    spec.family = (t % 2 == 0) ? "resnet" : "vgg";
    spec.depth = (t % 2 == 0) ? 20 : 13;
    spec.num_classes = dcfg.num_classes;
    spec.base_width = 4;
    spec.in_channels = dcfg.channels;
    spec.image_size = dcfg.image_size;
    Rng model_rng = rng.Fork();
    AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> base,
                            nn::BuildModel(spec, &model_rng));

    nn::TrainConfig tc;
    tc.epochs = config.pretrain_epochs;
    tc.batch_size = config.batch_size;
    tc.seed = config.seed + static_cast<uint64_t>(t);
    nn::Trainer trainer(tc);
    AUTOMC_RETURN_IF_ERROR(trainer.Fit(base.get(), task.train));

    double base_acc = nn::Trainer::Evaluate(base.get(), task.test);
    std::vector<float> task_features = data::TaskFeatureVector(
        task.train, base->ParamCount(), base->FlopsPerSample(), base_acc);

    compress::CompressionContext ctx;
    ctx.train = &task.train;
    ctx.test = &task.test;
    ctx.pretrain_epochs = config.pretrain_epochs;
    ctx.batch_size = config.batch_size;
    ctx.seed = config.seed * 17 + static_cast<uint64_t>(t);

    for (int s = 0; s < config.strategies_per_task; ++s) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(strategies.size())));
      auto compressor = compress::CreateCompressor(strategies[idx]);
      if (!compressor.ok()) return compressor.status();
      std::unique_ptr<nn::Model> probe = base->Clone();
      compress::CompressionStats stats;
      Status st = (*compressor)->Compress(probe.get(), ctx, &stats);
      if (!st.ok()) {
        // Record failures as zero-benefit experience rather than aborting
        // the whole battery.
        AUTOMC_LOG(Warning) << "experience run failed for "
                            << strategies[idx].ToString() << ": "
                            << st.ToString();
        continue;
      }
      ExperienceRecord rec;
      rec.strategy_index = idx;
      rec.task_features = task_features;
      rec.ar = static_cast<float>(stats.AccIncrease());
      rec.pr = static_cast<float>(stats.ParamReduction());
      records.push_back(std::move(rec));
    }
  }
  if (records.empty()) {
    return Status::Internal("experience generation produced no records");
  }
  return records;
}

}  // namespace kg
}  // namespace automc
