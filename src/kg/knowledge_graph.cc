#include "kg/knowledge_graph.h"

#include <set>
#include <tuple>

namespace automc {
namespace kg {

const std::vector<std::string>& TechniquesOfMethod(const std::string& method) {
  // Transcribed from Table 1: TE1 LMA distillation, TE2 EA filter pruning,
  // TE3 fine-tune, TE4 BN-scaling channel pruning, TE5 backprop filter
  // pruning, TE6 HOS filter pruning, TE7 HOOI low-rank kernel approximation,
  // TE9 filter-basis low-rank approximation.
  static const std::unordered_map<std::string, std::vector<std::string>> kMap =
      {
          {"LMA", {"TE1"}},
          {"LeGR", {"TE2", "TE3"}},
          {"NS", {"TE4", "TE3"}},
          {"SFP", {"TE5"}},
          {"HOS", {"TE6", "TE7", "TE3"}},
          {"LFB", {"TE9"}},
          // Extension method: TE10 = weight quantization.
          {"QT", {"TE10", "TE3"}},
      };
  static const std::vector<std::string> kEmpty;
  auto it = kMap.find(method);
  return it == kMap.end() ? kEmpty : it->second;
}

int64_t KnowledgeGraph::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int64_t id = static_cast<int64_t>(names_.size());
  names_.push_back(name);
  index_[name] = id;
  return id;
}

int64_t KnowledgeGraph::FindEntity(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

KnowledgeGraph KnowledgeGraph::Build(
    const std::vector<compress::StrategySpec>& strategies) {
  KnowledgeGraph g;
  // Dedup for the method/hp-level relations shared by many strategies.
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  auto add = [&g, &seen](int64_t h, int64_t r, int64_t t) {
    if (seen.insert({h, r, t}).second) g.triplets_.push_back({h, r, t});
  };

  g.strategy_entities_.reserve(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    const compress::StrategySpec& s = strategies[i];
    int64_t se = g.Intern("S:" + s.method + "#" + std::to_string(i));
    g.strategy_entities_.push_back(se);
    int64_t me = g.Intern("M:" + s.method);
    add(se, kStrategyMethod, me);
    for (const std::string& te : TechniquesOfMethod(s.method)) {
      add(me, kMethodTechnique, g.Intern("T:" + te));
    }
    for (const auto& [hp, value] : s.hp) {
      int64_t he = g.Intern("H:" + hp);
      int64_t ve = g.Intern("V:" + hp + "=" + value);
      add(se, kStrategySetting, ve);
      add(me, kMethodHp, he);
      add(he, kHpSetting, ve);
    }
  }
  return g;
}

}  // namespace kg
}  // namespace automc
