#ifndef AUTOMC_COMMON_TRACE_H_
#define AUTOMC_COMMON_TRACE_H_

#include <chrono>
#include <string>
#include <vector>

namespace automc {
namespace trace {

// One timed span. Spans nest: a ScopedTimer constructed while another is
// alive on the same thread becomes its child, so a search run yields a tree
// like  evaluator.eval_ms -> compress.NS.ms -> trainer.epoch_ms.
struct Span {
  std::string name;
  double ms = 0.0;
  std::vector<Span> children;
};

// Span collection is off by default (timers still feed histograms); enable
// with SetEnabled(true) or AUTOMC_TRACE=1 in the environment. Completed
// top-level spans accumulate in a bounded global list (oldest dropped).
bool Enabled();
void SetEnabled(bool on);

// Completed root spans recorded so far (copy).
std::vector<Span> Roots();
void ClearRoots();

// JSON array of the completed roots:
//   [{"name":"...","ms":1.25,"children":[...]}, ...]
std::string ToJson();
std::string SpanToJson(const Span& span);

// RAII wall-clock timer. On destruction it
//   1. observes the elapsed milliseconds in the histogram named `name`
//      (via metrics::Observe, subject to the metrics runtime switch), and
//   2. if tracing was enabled at construction, records a Span in the
//      current thread's trace tree.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool tracing_ = false;
};

}  // namespace trace
}  // namespace automc

#ifndef AUTOMC_DISABLE_METRICS
#define AUTOMC_TRACE_CONCAT_INNER(a, b) a##b
#define AUTOMC_TRACE_CONCAT(a, b) AUTOMC_TRACE_CONCAT_INNER(a, b)
// Times the enclosing scope into histogram `name` (and the trace tree).
#define AUTOMC_SCOPED_TIMER(name)          \
  ::automc::trace::ScopedTimer AUTOMC_TRACE_CONCAT(automc_scoped_timer_, \
                                                   __LINE__)(name)
#else
#define AUTOMC_SCOPED_TIMER(name) ((void)0)
#endif

#endif  // AUTOMC_COMMON_TRACE_H_
