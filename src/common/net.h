#ifndef AUTOMC_COMMON_NET_H_
#define AUTOMC_COMMON_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

struct epoll_event;

namespace automc {
namespace net {

// Socket address convention used by every AMCS endpoint (server listeners,
// the blocking Client, the CLI): a plain string is a unix-domain socket
// path; the prefix "tcp:" selects TCP — "tcp:HOST:PORT" (HOST may be a
// hostname or numeric address; PORT 0 asks the kernel for a free port on
// listen). The helpers below all return owning file descriptors
// (CLOEXEC), or a Status describing the errno-level failure.

constexpr std::string_view kTcpPrefix = "tcp:";

inline bool IsTcpAddress(std::string_view address) {
  return address.substr(0, kTcpPrefix.size()) == kTcpPrefix;
}

// Bound + listening unix-domain socket. Unlinks a stale socket file first
// (a path left by a killed server would otherwise fail with EADDRINUSE).
Result<int> ListenUnix(const std::string& path, int backlog);

// Bound + listening TCP socket for "tcp:HOST:PORT" (SO_REUSEADDR set).
Result<int> ListenTcp(const std::string& address, int backlog);

// Connected client socket for either address form. TCP connections get
// TCP_NODELAY (the protocol is small request/reply frames; Nagle would
// serialize the round-trips).
Result<int> ConnectAddress(const std::string& address);

// The actually bound address of a listening socket, in the same string
// convention ("tcp:IP:PORT" with a resolved port, or the unix path).
// Resolves "tcp:HOST:0" to the kernel-chosen port.
Result<std::string> LocalAddress(int fd);

Status SetNonBlocking(int fd, bool nonblocking);

// Thin RAII owner of an epoll instance. `tag` round-trips through
// epoll_event::data.u64 (callers usually store the fd).
class Epoll {
 public:
  static Result<Epoll> Create();
  Epoll() = default;
  Epoll(Epoll&& other) noexcept;
  Epoll& operator=(Epoll&& other) noexcept;
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;
  ~Epoll();

  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Mod(int fd, uint32_t events, uint64_t tag);
  Status Del(int fd);
  // Number of ready events written into `events`, 0 on timeout. EINTR is
  // retried internally.
  Result<int> Wait(struct epoll_event* events, int max_events,
                   int timeout_ms);

  int fd() const { return fd_; }

 private:
  explicit Epoll(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace net
}  // namespace automc

#endif  // AUTOMC_COMMON_NET_H_
