#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/trace.h"

namespace automc {
namespace metrics {

namespace {

bool EnvDisabled() {
  const char* v = std::getenv("AUTOMC_METRICS");
  if (v == nullptr) return false;
  return std::string(v) == "0" || std::string(v) == "false" ||
         std::string(v) == "off";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{!EnvDisabled()};
  return enabled;
}

// Escapes a metric name for use as a JSON string literal. Names are plain
// dotted identifiers in practice; this keeps the export valid regardless.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  std::string s = os.str();
  // JSON has no inf/nan literals; clamp to null-safe sentinels.
  if (s.find("inf") != std::string::npos) return v > 0 ? "1e308" : "-1e308";
  if (s.find("nan") != std::string::npos) return "0";
  return s;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }
void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultBounds();
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.5 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;  // 1e-3 ... 5e4
}

std::vector<double> Histogram::LatencyBounds() {
  static const double kLadder[] = {1.0, 1.25, 1.6, 2.0, 2.5,
                                   3.2, 4.0,  5.0, 6.3, 8.0};
  std::vector<double> bounds;
  for (double decade = 1e-2; decade < 1e5; decade *= 10.0) {
    for (double step : kLadder) bounds.push_back(step * decade);
  }
  return bounds;  // 1e-2 ... 8e4
}

double Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count_);
  int64_t below = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (rank <= static_cast<double>(below + counts_[i]) ||
        below + counts_[i] == count_) {
      // The open-ended edge buckets have no finite bound on one side; the
      // observed extremes are the tightest statement available there.
      double lo = i > 0 ? bounds_[i - 1] : min_;
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (lo > hi) return hi;
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(counts_[i]);
      return lo + std::min(std::max(frac, 0.0), 1.0) * (hi - lo);
    }
    below += counts_[i];
  }
  return max_;
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  ++counts_[b];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}
double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}
double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}
double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}
double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}
std::vector<int64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << JsonDouble(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h->count() << ", \"sum\": " << JsonDouble(h->sum())
       << ", \"min\": " << JsonDouble(h->min())
       << ", \"max\": " << JsonDouble(h->max())
       << ", \"mean\": " << JsonDouble(h->mean()) << ", \"buckets\": [";
    const std::vector<double>& bounds = h->bounds();
    std::vector<int64_t> counts = h->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ", ";
      os << "{\"le\": "
         << (i < bounds.size() ? JsonDouble(bounds[i]) : "\"inf\"")
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"trace\": " << trace::ToJson()
     << "\n}\n";
  return os.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

bool MetricsRegistry::DumpIfConfigured() const {
  const char* path = std::getenv("AUTOMC_METRICS_OUT");
  if (path == nullptr || *path == '\0') return false;
  bool ok = WriteJson(path);
  if (!ok) {
    AUTOMC_LOG(Warning) << "failed to write metrics to AUTOMC_METRICS_OUT="
                        << path;
  }
  return ok;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Recording helpers

void Count(const std::string& name, int64_t delta) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetCounter(name).Add(delta);
}

void SetGauge(const std::string& name, double value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetGauge(name).Set(value);
}

void Observe(const std::string& name, double value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetHistogram(name).Observe(value);
}

}  // namespace metrics
}  // namespace automc
