#ifndef AUTOMC_COMMON_RESULT_H_
#define AUTOMC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace automc {

// Holds either a value of type T or an error Status (never both).
// Modeled on arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    AUTOMC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AUTOMC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    AUTOMC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    AUTOMC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace automc

// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define AUTOMC_ASSIGN_OR_RETURN(lhs, expr)            \
  auto AUTOMC_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!AUTOMC_CONCAT_(_res_, __LINE__).ok())          \
    return AUTOMC_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(AUTOMC_CONCAT_(_res_, __LINE__)).value()

#define AUTOMC_CONCAT_IMPL_(a, b) a##b
#define AUTOMC_CONCAT_(a, b) AUTOMC_CONCAT_IMPL_(a, b)

#endif  // AUTOMC_COMMON_RESULT_H_
