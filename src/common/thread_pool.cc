#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/check.h"
#include "common/metrics.h"

namespace automc {

namespace {

thread_local bool tls_in_pool_task = false;

int DefaultThreads() {
  const char* env = std::getenv("AUTOMC_THREADS");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v >= 1) return v > 256 ? 256 : v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

// One ParallelFor invocation. Chunk indices are handed out by an atomic
// counter, so every chunk runs exactly once on whichever lane claims it.
struct ThreadPool::Batch {
  int64_t n = 0;
  int64_t grain = 1;
  int64_t chunks = 0;
  const ChunkFn* body = nullptr;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  std::exception_ptr error;
};

// Per-lane work deque. Lane i is owned by worker i; other lanes steal from
// the back when their own deque is empty.
struct ThreadPool::Lane {
  std::mutex mu;
  std::deque<std::shared_ptr<Batch>> q;
};

struct ThreadPool::Shared {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  int64_t pending = 0;  // queued lane entries not yet claimed
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads), shared_(new Shared) {
  AUTOMC_METRIC_GAUGE("pool.threads", static_cast<double>(threads_));
  int workers = threads_ - 1;
  lanes_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) lanes_.push_back(std::make_unique<Lane>());
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stop = true;
  }
  shared_->cv.notify_all();
  for (std::thread& t : workers_) t.join();
}

int64_t ThreadPool::NumChunks(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

bool ThreadPool::InWorker() { return tls_in_pool_task; }

void ThreadPool::RunBatch(Batch* batch) {
  bool prev = tls_in_pool_task;
  tls_in_pool_task = true;
  int64_t c;
  while ((c = batch->next.fetch_add(1, std::memory_order_relaxed)) <
         batch->chunks) {
    if (!batch->failed.load(std::memory_order_acquire)) {
      try {
        int64_t begin = c * batch->grain;
        int64_t end = begin + batch->grain;
        if (end > batch->n) end = batch->n;
        (*batch->body)(begin, end, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mu);
        if (batch->error == nullptr) batch->error = std::current_exception();
        batch->failed.store(true, std::memory_order_release);
      }
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->chunks) {
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->finished = true;
      batch->cv.notify_all();
    }
  }
  tls_in_pool_task = prev;
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::NextBatch(int worker_index,
                                                         bool* stolen) {
  int lanes = static_cast<int>(lanes_.size());
  // Own lane first (front = FIFO within a lane), then scan the others in a
  // fixed round-robin order and steal from the back.
  for (int off = 0; off < lanes; ++off) {
    int li = (worker_index + off) % lanes;
    Lane& lane = *lanes_[static_cast<size_t>(li)];
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.q.empty()) continue;
    std::shared_ptr<Batch> batch;
    if (off == 0) {
      batch = std::move(lane.q.front());
      lane.q.pop_front();
    } else {
      batch = std::move(lane.q.back());
      lane.q.pop_back();
      *stolen = true;
    }
    return batch;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(int worker_index) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      if (!shared_->stop && shared_->pending == 0) {
        auto idle_start = std::chrono::steady_clock::now();
        shared_->cv.wait(lock, [this] {
          return shared_->stop || shared_->pending > 0;
        });
        double idle_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - idle_start)
                .count();
        AUTOMC_METRIC_OBSERVE("pool.idle_ms", idle_ms);
      }
      if (shared_->pending == 0) {
        if (shared_->stop) return;
        continue;
      }
      --shared_->pending;
    }
    bool stolen = false;
    std::shared_ptr<Batch> batch = NextBatch(worker_index, &stolen);
    if (batch == nullptr) continue;  // raced with another claimant
    if (stolen) AUTOMC_METRIC_COUNT("pool.steal_count");
    RunBatch(batch.get());
  }
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain, const ChunkFn& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  int64_t chunks = NumChunks(n, grain);
  // Serial fallback: single-lane pool, a single chunk, or a nested call
  // from inside a pool task (nested loops serialize instead of deadlocking).
  if (threads_ == 1 || chunks == 1 || tls_in_pool_task) {
    for (int64_t c = 0; c < chunks; ++c) {
      int64_t begin = c * grain;
      int64_t end = begin + grain;
      if (end > n) end = n;
      body(begin, end, c);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->grain = grain;
  batch->chunks = chunks;
  batch->body = &body;
  AUTOMC_METRIC_COUNT("pool.tasks", chunks);

  // Enqueue one claim ticket per worker lane (never more lanes than
  // chunks); idle lanes steal the tickets of busy ones.
  int64_t tickets = static_cast<int64_t>(lanes_.size());
  if (tickets > chunks - 1) tickets = chunks - 1;
  if (tickets < 0) tickets = 0;
  for (int64_t i = 0; i < tickets; ++i) {
    Lane& lane = *lanes_[static_cast<size_t>(i % lanes_.size())];
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.q.push_back(batch);
  }
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->pending += tickets;
  }
  if (tickets == 1) {
    shared_->cv.notify_one();
  } else {
    shared_->cv.notify_all();
  }

  // The caller participates, then waits for stragglers.
  RunBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&batch] { return batch->finished; });
  }
  if (batch->error != nullptr) std::rethrow_exception(batch->error);
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain, const RangeFn& body) {
  ParallelFor(n, grain,
              [&body](int64_t begin, int64_t end, int64_t) { body(begin, end); });
}

namespace {
// Global pool storage. The pool itself is never destroyed at process exit
// (worker threads may outlive static destructors otherwise); ResetGlobal
// replaces it explicitly, joining the old workers first.
std::mutex g_pool_mu;
std::atomic<ThreadPool*> g_pool{nullptr};
}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    p = g_pool.load(std::memory_order_relaxed);
    if (p == nullptr) {
      p = new ThreadPool(DefaultThreads());
      g_pool.store(p, std::memory_order_release);
    }
  }
  return *p;
}

void ThreadPool::ResetGlobal(int threads) {
  ThreadPool* next = new ThreadPool(threads);
  ThreadPool* old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    old = g_pool.exchange(next, std::memory_order_acq_rel);
  }
  delete old;  // joins the old workers; callers ensure no loop is in flight
}

void ParallelFor(int64_t n, int64_t grain, const ThreadPool::ChunkFn& body) {
  ThreadPool::Global().ParallelFor(n, grain, body);
}

void ParallelFor(int64_t n, int64_t grain, const ThreadPool::RangeFn& body) {
  ThreadPool::Global().ParallelFor(n, grain, body);
}

}  // namespace automc
