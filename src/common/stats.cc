#include "common/stats.h"

#include <cmath>

namespace automc {

double Mean(const float* data, size_t n) {
  if (n == 0) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += data[i];
  return s / static_cast<double>(n);
}

double Variance(const float* data, size_t n) {
  if (n == 0) return 0.0;
  double m = Mean(data, n);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = data[i] - m;
    s += d * d;
  }
  return s / static_cast<double>(n);
}

double StdDev(const float* data, size_t n) { return std::sqrt(Variance(data, n)); }

namespace {
// kth standardized central moment; 0 when the distribution is degenerate.
double StandardizedMoment(const float* data, size_t n, int k) {
  if (n == 0) return 0.0;
  double m = Mean(data, n);
  double sd = StdDev(data, n);
  if (sd < 1e-12) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += std::pow((data[i] - m) / sd, k);
  }
  return s / static_cast<double>(n);
}
}  // namespace

double Skewness(const float* data, size_t n) {
  return StandardizedMoment(data, n, 3);
}

double Kurtosis(const float* data, size_t n) {
  return StandardizedMoment(data, n, 4) - 3.0;
}

double L1Norm(const float* data, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::fabs(data[i]);
  return s;
}

double L2Norm(const float* data, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(data[i]) * data[i];
  return std::sqrt(s);
}

}  // namespace automc
