#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace automc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// Splits "tcp:HOST:PORT" into host and port. The port is the suffix after
// the last ':', so numeric IPv4 hosts and hostnames both work.
Status SplitTcp(std::string_view address, std::string* host,
                std::string* port) {
  if (!IsTcpAddress(address)) {
    return Status::InvalidArgument("not a tcp address: '" +
                                   std::string(address) + "'");
  }
  std::string_view rest = address.substr(kTcpPrefix.size());
  const size_t colon = rest.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == rest.size()) {
    return Status::InvalidArgument("tcp address must be tcp:HOST:PORT, got '" +
                                   std::string(address) + "'");
  }
  host->assign(rest.substr(0, colon));
  port->assign(rest.substr(colon + 1));
  return Status::OK();
}

// Resolves and either binds (listen) or connects the first usable result.
Result<int> TcpSocket(const std::string& address, bool listen_side,
                      int backlog) {
  std::string host, port;
  AUTOMC_RETURN_IF_ERROR(SplitTcp(address, &host, &port));
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_side) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  if (int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
      rc != 0) {
    return Status::InvalidArgument("cannot resolve '" + address +
                                   "': " + gai_strerror(rc));
  }
  Status last = Status::Internal("no usable address for " + address);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (listen_side) {
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, backlog) == 0) {
        ::freeaddrinfo(res);
        return fd;
      }
      last = Errno("bind/listen " + address);
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        ::freeaddrinfo(res);
        return fd;
      }
      last = Errno("connect " + address);
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace

Result<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    Status st = Errno("bind/listen " + path);
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ListenTcp(const std::string& address, int backlog) {
  return TcpSocket(address, /*listen_side=*/true, backlog);
}

Result<int> ConnectAddress(const std::string& address) {
  if (IsTcpAddress(address)) {
    return TcpSocket(address, /*listen_side=*/false, 0);
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (address.empty() || address.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + address + "'");
  }
  std::memcpy(addr.sun_path, address.c_str(), address.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect " + address);
    ::close(fd);
    return st;
  }
  return fd;
}

Result<std::string> LocalAddress(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return Errno("getsockname");
  }
  if (ss.ss_family == AF_UNIX) {
    const auto* un = reinterpret_cast<sockaddr_un*>(&ss);
    return std::string(un->sun_path);
  }
  if (ss.ss_family == AF_INET) {
    const auto* in = reinterpret_cast<sockaddr_in*>(&ss);
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &in->sin_addr, host, sizeof(host));
    return std::string(kTcpPrefix) + host + ":" +
           std::to_string(ntohs(in->sin_port));
  }
  return Status::Internal("unsupported socket family " +
                          std::to_string(ss.ss_family));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<Epoll> Epoll::Create() {
  int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Errno("epoll_create1");
  return Epoll(fd);
}

Epoll::Epoll(Epoll&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Epoll& Epoll::operator=(Epoll&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

Status EpollCtl(int epfd, int op, int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd, op, fd, &ev) != 0) return Errno("epoll_ctl");
  return Status::OK();
}

}  // namespace

Status Epoll::Add(int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(fd_, EPOLL_CTL_ADD, fd, events, tag);
}

Status Epoll::Mod(int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(fd_, EPOLL_CTL_MOD, fd, events, tag);
}

Status Epoll::Del(int fd) {
  if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Result<int> Epoll::Wait(struct epoll_event* events, int max_events,
                        int timeout_ms) {
  for (;;) {
    int n = ::epoll_wait(fd_, events, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return Errno("epoll_wait");
  }
}

}  // namespace net
}  // namespace automc
