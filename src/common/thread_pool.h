#ifndef AUTOMC_COMMON_THREAD_POOL_H_
#define AUTOMC_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace automc {

// Fixed-size work-stealing thread pool shared by every hot path in the
// system (GEMM/conv kernels, per-sample training loops, candidate scoring
// in the searchers).
//
// Determinism contract
// --------------------
// ParallelFor splits [0, n) into chunks whose boundaries depend only on
// (n, grain) — never on the thread count or on scheduling. Which thread
// executes a chunk is nondeterministic, so callers must either
//   * write to disjoint data per chunk (element-wise kernels, per-sample
//     convolution, per-row GEMM), or
//   * reduce into per-chunk slots and combine them in ascending chunk
//     order after the loop (gradient reductions).
// Under that discipline results are bit-identical for any AUTOMC_THREADS
// value, which is what the determinism test suite asserts.
//
// Sizing: the global pool reads AUTOMC_THREADS once (>=1; default:
// std::thread::hardware_concurrency). At size 1 every ParallelFor runs
// inline on the caller with zero synchronization. Nested ParallelFor calls
// issued from inside a pool worker also run inline (serial) so kernels can
// be composed freely without deadlock.
class ThreadPool {
 public:
  // Creates a pool that executes work on `threads` lanes (the caller lane
  // plus threads-1 workers). threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Chunk body: [begin, end) plus the deterministic chunk index.
  using ChunkFn = std::function<void(int64_t begin, int64_t end, int64_t chunk)>;
  using RangeFn = std::function<void(int64_t begin, int64_t end)>;

  // Runs `body` over [0, n) in chunks of at most `grain` elements
  // (grain < 1 is treated as 1). Blocks until every chunk finished; the
  // calling thread participates. The first exception thrown by any chunk
  // is rethrown here after all in-flight chunks drain.
  void ParallelFor(int64_t n, int64_t grain, const ChunkFn& body);
  void ParallelFor(int64_t n, int64_t grain, const RangeFn& body);

  // Number of chunks ParallelFor(n, grain, ...) will produce; use it to
  // size per-chunk reduction buffers.
  static int64_t NumChunks(int64_t n, int64_t grain);

  // True while the calling thread is executing a pool task (used to run
  // nested parallel loops inline).
  static bool InWorker();

  // Process-wide pool, sized from AUTOMC_THREADS on first use.
  static ThreadPool& Global();

  // Rebuilds the global pool with `threads` lanes. Test-only: callers must
  // guarantee no ParallelFor is in flight.
  static void ResetGlobal(int threads);

 private:
  struct Batch;  // one ParallelFor's shared state

  void WorkerLoop(int worker_index);
  // Pops a batch for `worker_index`, stealing from other lanes when its own
  // deque is empty. Returns nullptr when the pool is shutting down.
  std::shared_ptr<Batch> NextBatch(int worker_index, bool* stolen);
  void RunBatch(Batch* batch);

  int threads_;
  std::vector<std::thread> workers_;

  struct Lane;
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Guards submission/wakeup across lanes.
  struct Shared;
  std::unique_ptr<Shared> shared_;
};

// Convenience wrappers over ThreadPool::Global().
void ParallelFor(int64_t n, int64_t grain, const ThreadPool::ChunkFn& body);
void ParallelFor(int64_t n, int64_t grain, const ThreadPool::RangeFn& body);

}  // namespace automc

#endif  // AUTOMC_COMMON_THREAD_POOL_H_
