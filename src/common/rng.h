#ifndef AUTOMC_COMMON_RNG_H_
#define AUTOMC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace automc {

// Seeded random source used by every stochastic component. All randomness in
// the library flows through explicitly constructed Rng instances so that runs
// are reproducible end to end.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n) {
    AUTOMC_CHECK_GT(n, 0);
    return std::uniform_int_distribution<int64_t>(0, n - 1)(engine_);
  }
  // Standard normal sample scaled by `stddev` around `mean`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i)));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Deterministically derives an independent child stream. Useful for giving
  // each submodule its own RNG from one top-level seed.
  Rng Fork() {
    uint64_t child_seed = engine_();
    return Rng(child_seed ^ 0x9e3779b97f4a7c15ULL);
  }

  std::mt19937_64& engine() { return engine_; }

  // Engine-state persistence for checkpoint/resume. mt19937_64 streams its
  // full 312-word state as decimal integers, so SaveState/LoadState round-trip
  // the sequence exactly: a restored Rng continues bit-identically.
  std::string SaveState() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }
  bool LoadState(const std::string& state) {
    std::istringstream is(state);
    is >> engine_;
    return !is.fail();
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace automc

#endif  // AUTOMC_COMMON_RNG_H_
