#ifndef AUTOMC_COMMON_METRICS_H_
#define AUTOMC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace automc {
namespace metrics {

// Process-wide observability registry. Everything that defines the search
// budget reports here: strategy executions, prefix-cache behaviour, training
// epochs, per-method compression cost. Exported as JSON (ToJson) so bench
// runs can record trajectories; the path comes from AUTOMC_METRICS_OUT.
//
// Naming convention: "<subsystem>.<noun>" for counters and gauges,
// "<subsystem>.<noun>_ms" for wall-time histograms (milliseconds).
//
// Two disable levels:
//   * runtime  — SetEnabled(false) or AUTOMC_METRICS=0 in the environment;
//                recording helpers become cheap early-out no-ops.
//   * compile  — building with -DAUTOMC_DISABLE_METRICS turns the
//                AUTOMC_METRIC_* macros (and scoped timers) into nothing.

// Runtime kill switch. Initialized once from AUTOMC_METRICS ("0"/"false"
// disable); defaults to enabled.
bool Enabled();
void SetEnabled(bool on);

// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-value-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper edges; one implicit
// overflow bucket collects everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;
  // Bucket-interpolated quantile estimate for q in [0, 1]: locates the
  // bucket holding the q-th ranked observation and interpolates linearly
  // inside it (the edge buckets use the observed min/max instead of the
  // open bounds). Always within [min(), max()]; 0 when empty. Resolution
  // is the bucket width, so pick bounds to match the quantity measured —
  // the load-replay harness uses LatencyBounds().
  double Percentile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> bucket_counts() const;  // bounds().size() + 1 entries

  // Decade ladder (1 / 2.5 / 5) from 1e-3 to 6e4 — covers both millisecond
  // timings and loss-scale observations.
  static std::vector<double> DefaultBounds();
  // Finer ladder (10 edges per decade, 1e-2 to 1e5) for percentile-gated
  // latency histograms, where DefaultBounds' 3-per-decade resolution would
  // smear a p99 across half a decade.
  static std::vector<double> LatencyBounds();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Lookup-or-create by name. Returned references live until Reset().
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is honoured only on first creation; empty means DefaultBounds().
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  // Snapshot of all metrics (plus any completed trace roots) as one JSON
  // object: {"counters":{...},"gauges":{...},"histograms":{...},"trace":[..]}.
  std::string ToJson() const;

  // Writes ToJson() to `path`; false on I/O failure.
  bool WriteJson(const std::string& path) const;

  // Writes ToJson() to $AUTOMC_METRICS_OUT when that is set and non-empty.
  // Returns true only if a file was actually written.
  bool DumpIfConfigured() const;

  // Drops every registered metric (test isolation). Invalidates references
  // previously returned by the getters.
  void Reset();

  // Incremented by every Reset(). Hot paths (tensor COW accounting) cache
  // Counter pointers keyed by this value so they can skip the mutex-guarded
  // name lookup per event yet never dereference a reset-invalidated pointer.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  MetricsRegistry() = default;

  std::atomic<uint64_t> generation_{0};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Recording helpers: early-out when runtime-disabled, so instrumented code
// never pays more than one branch + an atomic load.
void Count(const std::string& name, int64_t delta = 1);
void SetGauge(const std::string& name, double value);
void Observe(const std::string& name, double value);

}  // namespace metrics
}  // namespace automc

#ifndef AUTOMC_DISABLE_METRICS
#define AUTOMC_METRIC_COUNT(name, ...) \
  ::automc::metrics::Count(name, ##__VA_ARGS__)
#define AUTOMC_METRIC_GAUGE(name, value) \
  ::automc::metrics::SetGauge(name, value)
#define AUTOMC_METRIC_OBSERVE(name, value) \
  ::automc::metrics::Observe(name, value)
#else
#define AUTOMC_METRIC_COUNT(name, ...) ((void)0)
#define AUTOMC_METRIC_GAUGE(name, value) ((void)0)
#define AUTOMC_METRIC_OBSERVE(name, value) ((void)0)
#endif

#endif  // AUTOMC_COMMON_METRICS_H_
