#ifndef AUTOMC_COMMON_STATS_H_
#define AUTOMC_COMMON_STATS_H_

#include <cstddef>

namespace automc {

// Descriptive statistics over a float span. Used by the HOS compression
// method, whose filter-importance criteria are built from higher-order
// moments (skewness / kurtosis) of weight distributions.

double Mean(const float* data, size_t n);
double Variance(const float* data, size_t n);        // population variance
double StdDev(const float* data, size_t n);
double Skewness(const float* data, size_t n);        // 3rd standardized moment
double Kurtosis(const float* data, size_t n);        // 4th standardized moment (excess)
double L1Norm(const float* data, size_t n);
double L2Norm(const float* data, size_t n);

}  // namespace automc

#endif  // AUTOMC_COMMON_STATS_H_
