#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace automc {

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AUTOMC_CHECK_EQ(cols_, other.rows());
  Matrix out(rows_, other.cols());
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = 0; k < cols_; ++k) {
      double a = at(i, k);
      if (a == 0.0) continue;
      for (int64_t j = 0; j < other.cols(); ++j) {
        out.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

SvdResult TruncatedSvd(const Matrix& a, int64_t rank) {
  // One-sided Jacobi on the (possibly transposed) matrix so columns are the
  // short dimension: orthogonalize columns of W = A (m x n, n <= m); then
  // singular values are column norms, V from rotations, U = W / s.
  bool transposed = a.cols() > a.rows();
  Matrix w = transposed ? a.Transposed() : a;
  int64_t m = w.rows();
  int64_t n = w.cols();
  rank = std::max<int64_t>(1, std::min(rank, n));

  // V accumulates the right rotations (n x n, starts as identity).
  Matrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  const int kMaxSweeps = 60;
  const double kTol = 1e-12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          double wp = w.at(i, p), wq = w.at(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        off = std::max(off, std::fabs(gamma) / std::sqrt(alpha * beta + 1e-300));
        if (std::fabs(gamma) < kTol * std::sqrt(alpha * beta + 1e-300)) continue;
        double zeta = (beta - alpha) / (2.0 * gamma);
        double t = ((zeta >= 0.0) ? 1.0 : -1.0) /
                   (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          double wp = w.at(i, p), wq = w.at(i, q);
          w.at(i, p) = c * wp - s * wq;
          w.at(i, q) = s * wp + c * wq;
        }
        for (int64_t i = 0; i < n; ++i) {
          double vp = v.at(i, p), vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < 1e-10) break;
  }

  // Column norms are singular values; sort descending.
  std::vector<double> sigma(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += w.at(i, j) * w.at(i, j);
    sigma[static_cast<size_t>(j)] = std::sqrt(s);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return sigma[static_cast<size_t>(x)] > sigma[static_cast<size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<size_t>(rank));
  Matrix u_full(m, rank);   // left vectors of w
  Matrix v_full(n, rank);   // right vectors of w
  for (int64_t j = 0; j < rank; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    double s = sigma[static_cast<size_t>(src)];
    out.s[static_cast<size_t>(j)] = s;
    double inv = (s > 1e-300) ? 1.0 / s : 0.0;
    for (int64_t i = 0; i < m; ++i) u_full.at(i, j) = w.at(i, src) * inv;
    for (int64_t i = 0; i < n; ++i) v_full.at(i, j) = v.at(i, src);
  }

  if (transposed) {
    // a = (w)^T = V S U^T, so swap roles.
    out.u = std::move(v_full);
    out.v = std::move(u_full);
  } else {
    out.u = std::move(u_full);
    out.v = std::move(v_full);
  }
  return out;
}

}  // namespace automc
