#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace automc {

namespace {
// Tile edge for the blocked transpose: a 64x64 double tile is 32 KB for
// source + destination together, so both stay cache-resident while the
// column-major writes land.
constexpr int64_t kTransposeTile = 64;
}  // namespace

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  const double* src = data_.data();
  double* dst = t.data();
  int64_t rows = rows_, cols = cols_;
  int64_t row_tiles = (rows + kTransposeTile - 1) / kTransposeTile;
  automc::ParallelFor(row_tiles, 1, [=](int64_t t0, int64_t t1) {
    for (int64_t bt = t0; bt < t1; ++bt) {
      int64_t r0 = bt * kTransposeTile;
      int64_t r1 = std::min(rows, r0 + kTransposeTile);
      for (int64_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
        int64_t c1 = std::min(cols, c0 + kTransposeTile);
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t c = c0; c < c1; ++c) {
            dst[c * rows + r] = src[r * cols + c];
          }
        }
      }
    }
  });
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AUTOMC_CHECK_EQ(cols_, other.rows());
  int64_t m = rows_, k = cols_, n = other.cols();
  Matrix out(m, n);
  // Transpose B once so every dot product streams two contiguous rows; the
  // k-accumulation order per output element matches the serial kernel.
  Matrix bt = other.Transposed();
  const double* pa = data_.data();
  const double* pb = bt.data();
  double* pc = out.data();
  int64_t grain = std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, k * n));
  automc::ParallelFor(m, grain, [=](int64_t r0, int64_t r1) {
    int64_t i = r0;
    // Quads of output rows share each B^T row read.
    for (; i + 4 <= r1; i += 4) {
      const double* a0 = pa + i * k;
      const double* a1 = a0 + k;
      const double* a2 = a1 + k;
      const double* a3 = a2 + k;
      for (int64_t j = 0; j < n; ++j) {
        const double* brow = pb + j * k;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          double bv = brow[kk];
          s0 += a0[kk] * bv;
          s1 += a1[kk] * bv;
          s2 += a2[kk] * bv;
          s3 += a3[kk] * bv;
        }
        pc[i * n + j] = s0;
        pc[(i + 1) * n + j] = s1;
        pc[(i + 2) * n + j] = s2;
        pc[(i + 3) * n + j] = s3;
      }
    }
    for (; i < r1; ++i) {
      const double* arow = pa + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const double* brow = pb + j * k;
        double s = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
        pc[i * n + j] = s;
      }
    }
  });
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

SvdResult TruncatedSvd(const Matrix& a, int64_t rank) {
  // One-sided Jacobi on the (possibly transposed) matrix so columns are the
  // short dimension: orthogonalize columns of W = A (m x n, n <= m); then
  // singular values are column norms, V from rotations, U = W / s.
  bool transposed = a.cols() > a.rows();
  Matrix w = transposed ? a.Transposed() : a;
  int64_t m = w.rows();
  int64_t n = w.cols();
  rank = std::max<int64_t>(1, std::min(rank, n));

  // V accumulates the right rotations (n x n, starts as identity).
  Matrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  const int kMaxSweeps = 60;
  const double kTol = 1e-12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          double wp = w.at(i, p), wq = w.at(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        off = std::max(off, std::fabs(gamma) / std::sqrt(alpha * beta + 1e-300));
        if (std::fabs(gamma) < kTol * std::sqrt(alpha * beta + 1e-300)) continue;
        double zeta = (beta - alpha) / (2.0 * gamma);
        double t = ((zeta >= 0.0) ? 1.0 : -1.0) /
                   (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          double wp = w.at(i, p), wq = w.at(i, q);
          w.at(i, p) = c * wp - s * wq;
          w.at(i, q) = s * wp + c * wq;
        }
        for (int64_t i = 0; i < n; ++i) {
          double vp = v.at(i, p), vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < 1e-10) break;
  }

  // Column norms are singular values; sort descending.
  std::vector<double> sigma(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += w.at(i, j) * w.at(i, j);
    sigma[static_cast<size_t>(j)] = std::sqrt(s);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return sigma[static_cast<size_t>(x)] > sigma[static_cast<size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<size_t>(rank));
  Matrix u_full(m, rank);   // left vectors of w
  Matrix v_full(n, rank);   // right vectors of w
  for (int64_t j = 0; j < rank; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    double s = sigma[static_cast<size_t>(src)];
    out.s[static_cast<size_t>(j)] = s;
    double inv = (s > 1e-300) ? 1.0 / s : 0.0;
    for (int64_t i = 0; i < m; ++i) u_full.at(i, j) = w.at(i, src) * inv;
    for (int64_t i = 0; i < n; ++i) v_full.at(i, j) = v.at(i, src);
  }

  if (transposed) {
    // a = (w)^T = V S U^T, so swap roles.
    out.u = std::move(v_full);
    out.v = std::move(u_full);
  } else {
    out.u = std::move(u_full);
    out.v = std::move(v_full);
  }
  return out;
}

}  // namespace automc
