#ifndef AUTOMC_COMMON_CHECK_H_
#define AUTOMC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace automc {
namespace internal {

// Accumulates a failure message and aborts the process on destruction.
// Used only via the AUTOMC_CHECK* macros below for internal invariants;
// recoverable errors use Status instead.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the streamed CheckFailure expression into void so it can sit on the
// false branch of a ternary. operator& binds looser than operator<<.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace automc

// Aborts with a message when `cond` is false. Supports streaming:
//   AUTOMC_CHECK(x > 0) << "x=" << x;
#define AUTOMC_CHECK(cond)            \
  (cond) ? static_cast<void>(0)       \
         : ::automc::internal::Voidify() & \
               ::automc::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define AUTOMC_CHECK_EQ(a, b) AUTOMC_CHECK((a) == (b))
#define AUTOMC_CHECK_NE(a, b) AUTOMC_CHECK((a) != (b))
#define AUTOMC_CHECK_LT(a, b) AUTOMC_CHECK((a) < (b))
#define AUTOMC_CHECK_LE(a, b) AUTOMC_CHECK((a) <= (b))
#define AUTOMC_CHECK_GT(a, b) AUTOMC_CHECK((a) > (b))
#define AUTOMC_CHECK_GE(a, b) AUTOMC_CHECK((a) >= (b))

#endif  // AUTOMC_COMMON_CHECK_H_
