#ifndef AUTOMC_COMMON_SHA256_H_
#define AUTOMC_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace automc {

// FIPS 180-4 SHA-256, self-contained (no external crypto dependency). The
// artifact registry keys content-addressed chunks by this digest: a 256-bit
// strong hash makes accidental collisions between distinct chunks a
// non-concern at any realistic store size, unlike the CRC32 used for
// torn-write framing (which stays — the two catch different failures:
// CRC frames catch torn appends cheaply, the digest authenticates content).
using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t n);
  // Finalizes and returns the digest. The hasher must be Reset() before
  // further use.
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(std::string_view data);

 private:
  void Compress(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_ = 0;  // bytes hashed so far
  uint8_t buf_[64];
  size_t buflen_ = 0;
};

// Lowercase hex rendering ("e3b0c442..."), used for logging and the wire
// artifact listing.
std::string HexDigest(const Sha256Digest& digest);

}  // namespace automc

#endif  // AUTOMC_COMMON_SHA256_H_
