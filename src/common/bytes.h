#ifndef AUTOMC_COMMON_BYTES_H_
#define AUTOMC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace automc {

// Little-endian binary encoding helpers shared by the persistence layer
// (experience store records, search checkpoints). Fixed-width integers and
// raw IEEE float/double bytes, so round-trips are bit-exact — the property
// the determinism contract (DESIGN.md) turns into "resume equals rerun".

class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Floats(const float* data, size_t n) {
    U64(static_cast<uint64_t>(n));
    Raw(data, n * sizeof(float));
  }
  void Ints(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) I32(x);
  }
  void Raw(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Cursor-based reader over a byte blob. Every accessor returns false on
// underrun and leaves the output untouched, so callers can surface a clean
// error instead of reading garbage from a truncated or corrupted blob.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || remaining() < n) return false;
    s->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }
  bool Floats(std::vector<float>* v) {
    uint64_t n = 0;
    if (!U64(&n) || remaining() < n * sizeof(float)) return false;
    v->resize(static_cast<size_t>(n));
    return Raw(v->data(), static_cast<size_t>(n) * sizeof(float));
  }
  bool Ints(std::vector<int>* v) {
    uint32_t n = 0;
    if (!U32(&n) || remaining() < n * sizeof(int32_t)) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      int32_t x = 0;
      if (!I32(&x)) return false;
      (*v)[i] = x;
    }
    return true;
  }
  bool Raw(void* dst, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Guards every experience-store
// record and checkpoint payload against torn writes and bit rot.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace automc

#endif  // AUTOMC_COMMON_BYTES_H_
