#ifndef AUTOMC_COMMON_MATRIX_H_
#define AUTOMC_COMMON_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace automc {

// Small dense row-major double matrix. This is deliberately a minimal
// numerical kernel for the decomposition-based compression methods
// (truncated SVD for LFB filter bases, HOOI mode products for HOS); the
// training path uses tensor::Tensor instead.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {
    AUTOMC_CHECK_GE(rows, 0);
    AUTOMC_CHECK_GE(cols, 0);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& at(int64_t r, int64_t c) {
    AUTOMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double at(int64_t r, int64_t c) const {
    AUTOMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix Transposed() const;
  // this * other; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;
  // Frobenius norm.
  double FrobeniusNorm() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

// Truncated singular value decomposition A ~= U * diag(s) * V^T with the top
// `rank` singular triplets (rank is clamped to min(m, n)). Computed with
// one-sided Jacobi rotations, which is robust for the small matrices that
// arise from convolution-kernel unfoldings. Singular values are returned in
// non-increasing order.
struct SvdResult {
  Matrix u;                  // m x rank
  std::vector<double> s;     // rank
  Matrix v;                  // n x rank
};
SvdResult TruncatedSvd(const Matrix& a, int64_t rank);

}  // namespace automc

#endif  // AUTOMC_COMMON_MATRIX_H_
