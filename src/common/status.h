#ifndef AUTOMC_COMMON_STATUS_H_
#define AUTOMC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace automc {

// Error codes used across the library. Follows the RocksDB/Arrow idiom of
// returning a Status instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kCancelled,
  // Stored bytes failed an integrity check (CRC frame, content digest):
  // the data exists but cannot be trusted. Distinct from kNotFound so
  // clients can tell "never stored" from "stored but corrupted" — the
  // artifact registry must never serve a corrupt chunk silently.
  kDataLoss,
};

// A lightweight success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable representation, e.g. "InvalidArgument: bad shape".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace automc

// Propagates a non-OK status to the caller.
#define AUTOMC_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::automc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // AUTOMC_COMMON_STATUS_H_
