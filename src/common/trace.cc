#include "common/trace.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/metrics.h"

namespace automc {
namespace trace {

namespace {

// Completed root spans beyond this are dropped oldest-first so long bench
// runs cannot grow without bound.
constexpr size_t kMaxRoots = 256;

bool EnvEnabled() {
  const char* v = std::getenv("AUTOMC_TRACE");
  if (v == nullptr) return false;
  return std::string(v) == "1" || std::string(v) == "true" ||
         std::string(v) == "on";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnvEnabled()};
  return enabled;
}

std::mutex& RootsMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<Span>& RootsStorage() {
  static std::vector<Span>* roots = new std::vector<Span>();
  return *roots;
}

// Per-thread stack of spans currently open on this thread. Entries own
// their (already-completed) children; the span itself completes when its
// ScopedTimer is destroyed.
thread_local std::vector<Span> tl_open_spans;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }
void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

std::vector<Span> Roots() {
  std::lock_guard<std::mutex> lock(RootsMutex());
  return RootsStorage();
}

void ClearRoots() {
  std::lock_guard<std::mutex> lock(RootsMutex());
  RootsStorage().clear();
}

std::string SpanToJson(const Span& span) {
  std::ostringstream os;
  os.precision(6);
  os << "{\"name\": \"" << JsonEscape(span.name) << "\", \"ms\": " << span.ms;
  if (!span.children.empty()) {
    os << ", \"children\": [";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i) os << ", ";
      os << SpanToJson(span.children[i]);
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string ToJson() {
  std::vector<Span> roots = Roots();
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i) os << ", ";
    os << SpanToJson(roots[i]);
  }
  os << "]";
  return os.str();
}

ScopedTimer::ScopedTimer(std::string name)
    : name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      tracing_(Enabled()) {
  if (tracing_) {
    Span span;
    span.name = name_;
    tl_open_spans.push_back(std::move(span));
  }
}

double ScopedTimer::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  double ms = ElapsedMs();
  metrics::Observe(name_, ms);
  if (!tracing_ || tl_open_spans.empty()) return;
  Span span = std::move(tl_open_spans.back());
  tl_open_spans.pop_back();
  span.ms = ms;
  if (!tl_open_spans.empty()) {
    tl_open_spans.back().children.push_back(std::move(span));
    return;
  }
  std::lock_guard<std::mutex> lock(RootsMutex());
  std::vector<Span>& roots = RootsStorage();
  if (roots.size() >= kMaxRoots) roots.erase(roots.begin());
  roots.push_back(std::move(span));
}

}  // namespace trace
}  // namespace automc
