#ifndef AUTOMC_COMMON_LOGGING_H_
#define AUTOMC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace automc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace automc

#define AUTOMC_LOG(level)                                          \
  ::automc::internal::LogMessage(::automc::LogLevel::k##level,     \
                                 __FILE__, __LINE__)

#endif  // AUTOMC_COMMON_LOGGING_H_
