#ifndef AUTOMC_COMMON_ALIGNED_H_
#define AUTOMC_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>

namespace automc {

// Minimal stateless allocator that over-aligns every allocation to
// `Alignment` bytes. tensor::Tensor uses it (64-byte alignment, one cache
// line / one AVX-512 lane) so the SIMD GEMM kernels can issue aligned
// vector loads against buffer starts and packed panels, and so no tensor
// buffer ever straddles a cache line at element 0.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than the natural one");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace automc

#endif  // AUTOMC_COMMON_ALIGNED_H_
