#ifndef AUTOMC_STORE_EXPERIENCE_STORE_H_
#define AUTOMC_STORE_EXPERIENCE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace automc {
namespace store {

class ExperienceIndex;

// Identity of an evaluation context: which search space the strategy indices
// refer to and which pretrained base model they were applied to. Records are
// keyed by this pair, so changing either invalidates old results (they stay
// in the log but can never be served as hits for the new context).
struct Fingerprint {
  uint64_t space = 0;
  uint64_t model = 0;

  bool operator==(const Fingerprint& o) const {
    return space == o.space && model == o.model;
  }
};

// One persisted scheme evaluation. Mirrors search::EvalPoint field-for-field
// (the store sits below the search layer, so it carries the plain values).
struct EvalRecord {
  std::vector<int> scheme;
  double acc = 0.0;
  int64_t params = 0;
  int64_t flops = 0;
  double ar = 0.0;
  double pr = 0.0;
  double fr = 0.0;
  // 7-dim task descriptor of the run that measured this record (empty when
  // the producer had none). Lets ExportSteps rebuild NN_exp training pairs
  // for records measured on other tasks/models.
  std::vector<float> task_features;
};

// A measured one-step transition derived from the log: appending strategy
// `strategy` to some prefix changed accuracy by ar_step and parameters by
// pr_step on the task described by `task_features`. This is exactly the
// (C_i P_{i,j}, Task_k, AR, PR) tuple NN_exp trains on, so accumulated
// search experience warm-starts the knowledge stack of later runs.
struct ExperienceStep {
  int strategy = 0;
  std::vector<float> task_features;
  float ar_step = 0.0f;
  float pr_step = 0.0f;
};

// Crash-safe, append-only on-disk log of evaluation records with an
// in-memory index for O(1) lookup.
//
// File layout: 8-byte header ("AMXP" magic + u32 version), then records of
//   u32 payload_len | u32 crc32(payload) | payload
// Appends are flushed and fsync'd record-at-a-time, so the only loss mode a
// crash can produce is a torn *final* record. Open() detects that (short
// read or CRC mismatch), truncates the file back to the last valid record,
// and reports it via store.recovered / store.truncated_bytes.
class ExperienceStore {
 public:
  ~ExperienceStore();
  ExperienceStore(const ExperienceStore&) = delete;
  ExperienceStore& operator=(const ExperienceStore&) = delete;

  // Opens or creates the log at `path`, replaying every valid record into
  // the index. Fails on I/O errors or if `path` is not a store file.
  static Result<std::unique_ptr<ExperienceStore>> Open(const std::string& path);

  // The (space, model) context used by Lookup/Append until the next Bind.
  void Bind(const Fingerprint& fp) { bound_ = fp; }
  const Fingerprint& bound() const { return bound_; }
  // Task descriptor attached to every subsequent Append (may be empty).
  void set_task_features(std::vector<float> features) {
    task_features_ = std::move(features);
  }

  // Returns the record for `scheme` under the bound fingerprint, or nullptr.
  // Counts store.hits / store.misses.
  const EvalRecord* Lookup(const std::vector<int>& scheme);
  // Lookup without touching the hit/miss counters. Safe to call from worker
  // threads while no writer is active (speculative batch evaluation probes
  // the index concurrently; the accounted Lookup happens later, serially).
  const EvalRecord* Peek(const std::vector<int>& scheme) const;
  // True without touching the hit/miss counters (existence probes).
  bool Contains(const std::vector<int>& scheme) const;

  // Appends one record under the bound fingerprint (current task features
  // attached) and durably flushes it. Re-appending an existing key is a
  // no-op: by the determinism contract the value could not have changed.
  Status Append(const EvalRecord& record);

  // Attaches the fleet's shared read-mostly experience tier (not owned;
  // must outlive the store). Lookup/Peek/Contains consult it on a local
  // miss, so a scheme any worker ever evaluated is served without a real
  // strategy execution. Shared hits are cached locally for pointer
  // stability but deliberately kept out of the log, the insertion order
  // and loaded_size(): ExportSteps and the kg warm-start cutoff see
  // exactly what a direct, unshared run sees — the byte-identity
  // contract for served outcomes depends on it.
  void AttachShared(const ExperienceIndex* shared) { shared_ = shared; }

  // Every record in the log, in insertion order (loaded + appended) —
  // what the job publishes into its fleet segment after finishing.
  // Excludes shared-tier cache entries.
  const std::vector<std::pair<Fingerprint, const EvalRecord*>>& records()
      const {
    return order_;
  }

  // Derives NN_exp training pairs from the log: every record with a
  // non-empty scheme whose immediate prefix is also in the log (under the
  // same fingerprint) yields one step. `space_fp` filters to records whose
  // strategy indices are meaningful for the caller's search space; records
  // from *other* base models are included — cross-task experience is the
  // point. `limit_records` caps the scan to the first N log records (0 =
  // all); resumed runs pass the count their original run saw, so the export
  // replays identically.
  std::vector<ExperienceStep> ExportSteps(uint64_t space_fp,
                                          uint64_t limit_records = 0) const;

  // Counters (also mirrored as store.* metrics).
  int64_t appends() const { return appends_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t recovered() const { return recovered_; }
  int64_t truncated_bytes() const { return truncated_bytes_; }
  // Records currently indexed / records replayed from disk at Open() time.
  size_t size() const { return order_.size(); }
  size_t loaded_size() const { return static_cast<size_t>(recovered_); }

  const std::string& path() const { return path_; }

 private:
  ExperienceStore() = default;

  static std::string IndexKey(const Fingerprint& fp,
                              const std::vector<int>& scheme);
  Status ReplayLog();
  Status WriteRecord(const Fingerprint& fp, const EvalRecord& record);

  // Probes the shared tier on a local miss (nullptr when detached).
  // Returns the cache-resident record or nullptr.
  const EvalRecord* SharedProbe(const std::vector<int>& scheme) const;

  std::string path_;
  std::FILE* file_ = nullptr;  // append handle, owned
  Fingerprint bound_;
  std::vector<float> task_features_;

  // Fleet shared tier + local cache of its hits. The mutex makes Peek's
  // concurrent probes (speculative batch evaluation) safe while the cache
  // mutates; the primary index_ stays single-writer as before.
  const ExperienceIndex* shared_ = nullptr;
  mutable std::mutex shared_mu_;
  mutable std::map<std::string, EvalRecord, std::less<>> shared_cache_;

  // Index over the log, plus the fingerprint and insertion order of each
  // record (ExportSteps walks records in log order for replayable cutoffs).
  std::map<std::string, EvalRecord, std::less<>> index_;
  std::vector<std::pair<Fingerprint, const EvalRecord*>> order_;

  int64_t appends_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t recovered_ = 0;
  int64_t truncated_bytes_ = 0;
};

// FNV-1a over a byte span; the building block both fingerprint helpers and
// the store's index keys use.
uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = 14695981039346656037ull);

// On-disk constants and codec of the AMXP log format, shared between the
// store and the fleet's experience index (which reads raw segment files).
inline constexpr char kExperienceMagic[4] = {'A', 'M', 'X', 'P'};
inline constexpr uint32_t kExperienceVersion = 1;
inline constexpr size_t kExperienceHeaderSize = 8;
inline constexpr uint32_t kExperienceMaxPayload = 1u << 20;

std::string EncodeExperiencePayload(const Fingerprint& fp,
                                    const EvalRecord& rec);
bool DecodeExperiencePayload(std::string_view payload, Fingerprint* fp,
                             EvalRecord* rec);
// The store's index-key bytes for (fp, scheme) — what the shared index
// hashes, so both tiers agree on record identity.
std::string ExperienceKeyBytes(const Fingerprint& fp,
                               const std::vector<int>& scheme);

}  // namespace store
}  // namespace automc

#endif  // AUTOMC_STORE_EXPERIENCE_STORE_H_
