#ifndef AUTOMC_STORE_EXPERIENCE_INDEX_H_
#define AUTOMC_STORE_EXPERIENCE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "store/experience_store.h"

namespace automc {
namespace store {

// Shared read-mostly experience tier: a directory of append-only AMXP
// segment files (one appender each, "seg-<worker>.bin") plus one
// mmap-friendly hash index over all of them ("index.amxi"), so a fleet of
// workers shares every tenant's strategy evaluations without replaying
// each other's logs at open.
//
// Index file layout ("AMXI", v1, little-endian):
//
//   u32 magic | u32 version | u64 generation | u64 record_count
//   | u32 bucket_count (pow2) | u32 segment_count
//   | per segment: u32 name_len | name | u64 covered_bytes
//   | bucket_count * { u64 key_hash | u32 segment_id | u64 offset }
//   | u32 crc32(everything above)
//
// Buckets are open-addressed with linear probing at <= 50% load; an empty
// bucket has segment_id 0xFFFFFFFF. A bucket stores only the 64-bit FNV-1a
// of the record's index key — Find() resolves candidates by pread()ing the
// record frame at (segment_id, offset) and comparing the decoded
// fingerprint + scheme exactly, so hash-equal non-matching candidates are
// probed past, never mis-served.
//
// Concurrency contract: writers publish a whole new index file via
// tmp + fsync + rename under an exclusive flock on "index.lock"; readers
// mmap the published file and never take the lock, so readers never block
// the appender (and vice versa). `covered_bytes` makes the next publish
// incremental: only segment bytes past the last indexed offset are
// replayed.
class ExperienceIndex {
 public:
  static constexpr const char* kIndexFile = "index.amxi";
  static constexpr const char* kLockFile = "index.lock";
  static constexpr const char* kSegmentPrefix = "seg-";

  // Opens <dir>/index.amxi. A missing, torn, or corrupted index never
  // fails the open: the segments are the source of truth, so the reader
  // falls back to replaying them into an in-memory index (rebuilt() turns
  // true and store.index_rebuilds counts it). Fails only when `dir` is
  // unusable.
  static Result<std::unique_ptr<ExperienceIndex>> OpenOrRebuild(
      const std::string& dir);
  ~ExperienceIndex();

  ExperienceIndex(const ExperienceIndex&) = delete;
  ExperienceIndex& operator=(const ExperienceIndex&) = delete;

  // Exact lookup. Returns true and fills *out on a hit. Thread-safe: the
  // mapping is immutable and candidate resolution uses pread(2).
  Result<bool> Find(const Fingerprint& fp, const std::vector<int>& scheme,
                    EvalRecord* out) const;

  uint64_t generation() const { return generation_; }
  size_t size() const { return records_; }
  // True when the index file was unusable and lookups are served from the
  // in-memory replay of the segments.
  bool rebuilt() const { return rebuilt_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    uint32_t segment_id = 0;
    uint64_t offset = 0;
  };

  ExperienceIndex() = default;

  Status OpenSegments(const std::vector<std::string>& names);
  // Reads + decodes the record frame at (segment_id, offset); verifies the
  // frame CRC. Returns false on any mismatch (stale index vs truncated
  // segment) without failing the lookup.
  bool LoadRecord(uint32_t segment_id, uint64_t offset, Fingerprint* fp,
                  EvalRecord* rec) const;

  std::string dir_;
  std::vector<std::string> segment_names_;
  std::vector<int> segment_fds_;

  // mmap'd index file (empty when rebuilt_).
  void* map_ = nullptr;
  size_t map_size_ = 0;
  const unsigned char* buckets_ = nullptr;
  uint32_t bucket_count_ = 0;

  // Fallback: key bytes -> location, built by replaying the segments.
  std::map<std::string, Entry, std::less<>> fallback_;

  uint64_t generation_ = 0;
  size_t records_ = 0;
  bool rebuilt_ = false;
};

// Appends `records` to <dir>/<segment_name> (created with an AMXP header
// on first use; one appender per segment file) and publishes a fresh
// index over every "seg-*.bin" in `dir`, all under the exclusive flock.
// Records whose key already appears in the index are skipped — by the
// determinism contract a duplicate key carries an identical value, so
// first-writer-wins loses nothing. Pass an empty `records` (with any
// segment name) to just rebuild + publish the index.
Status PublishExperience(
    const std::string& dir, const std::string& segment_name,
    const std::vector<std::pair<Fingerprint, EvalRecord>>& records);

// Rebuild + atomically publish <dir>/index.amxi from the segments alone.
Status PublishIndex(const std::string& dir);

}  // namespace store
}  // namespace automc

#endif  // AUTOMC_STORE_EXPERIENCE_INDEX_H_
