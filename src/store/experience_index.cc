#include "store/experience_index.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace automc {
namespace store {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kIndexMagic = 0x49584D41;  // "AMXI" read little-endian
constexpr uint32_t kIndexVersion = 1;
constexpr uint32_t kEmptySegment = 0xFFFFFFFFu;
constexpr size_t kBucketBytes = 8 + 4 + 8;  // key_hash | segment_id | offset
constexpr size_t kMinBuckets = 64;

struct IndexImage {
  uint64_t generation = 0;
  uint64_t record_count = 0;
  uint32_t bucket_count = 0;
  // name -> bytes of that segment already covered by the buckets.
  std::vector<std::pair<std::string, uint64_t>> segments;
  size_t bucket_base = 0;  // byte offset of the bucket region
};

// Parses + CRC-validates a whole index image. False on any corruption —
// the caller falls back to replaying the segments.
bool ParseIndex(std::string_view data, IndexImage* out) {
  if (data.size() < 32 + 4) return false;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32(data.substr(0, data.size() - 4)) != stored_crc) return false;

  ByteReader r(data.substr(0, data.size() - 4));
  uint32_t magic = 0, version = 0, nseg = 0;
  if (!r.U32(&magic) || !r.U32(&version) || magic != kIndexMagic ||
      version != kIndexVersion) {
    return false;
  }
  if (!r.U64(&out->generation) || !r.U64(&out->record_count) ||
      !r.U32(&out->bucket_count) || !r.U32(&nseg)) {
    return false;
  }
  if (out->bucket_count < kMinBuckets ||
      (out->bucket_count & (out->bucket_count - 1)) != 0) {
    return false;
  }
  out->segments.clear();
  for (uint32_t i = 0; i < nseg; ++i) {
    std::string name;
    uint64_t covered = 0;
    if (!r.Str(&name) || !r.U64(&covered)) return false;
    out->segments.emplace_back(std::move(name), covered);
  }
  out->bucket_base = data.size() - 4 - r.remaining();
  return r.remaining() ==
         static_cast<size_t>(out->bucket_count) * kBucketBytes;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failure on " + path);
  return data;
}

// Replays one AMXP segment from `from` onward, invoking fn(key_bytes,
// offset-of-frame) per valid record. Returns the clean end offset (start
// of any torn tail). A missing file or foreign header yields `from`.
template <typename Fn>
uint64_t ReplaySegment(const std::string& path, uint64_t from, Fn&& fn) {
  Result<std::string> data = ReadWholeFile(path);
  if (!data.ok()) return from;
  if (data->size() < kExperienceHeaderSize ||
      std::memcmp(data->data(), kExperienceMagic, 4) != 0) {
    return from;
  }
  size_t pos = std::max<uint64_t>(from, kExperienceHeaderSize);
  while (pos + 8 <= data->size()) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data->data() + pos, sizeof(len));
    std::memcpy(&crc, data->data() + pos + 4, sizeof(crc));
    if (len > kExperienceMaxPayload || pos + 8 + len > data->size()) break;
    std::string_view payload(data->data() + pos + 8, len);
    if (Crc32(payload) != crc) break;
    Fingerprint fp;
    EvalRecord rec;
    if (!DecodeExperiencePayload(payload, &fp, &rec)) break;
    fn(ExperienceKeyBytes(fp, rec.scheme), static_cast<uint64_t>(pos));
    pos += 8 + len;
  }
  return pos;
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(ExperienceIndex::kSegmentPrefix, 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".bin") {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

struct BuildEntry {
  uint64_t key_hash = 0;
  uint32_t segment_id = 0;
  uint64_t offset = 0;
};

// Serializes the index image: header, segment table, open-addressed
// bucket array (linear probing, <= 50% load), trailing CRC.
std::string BuildIndexBytes(
    uint64_t generation,
    const std::vector<std::pair<std::string, uint64_t>>& segments,
    const std::vector<BuildEntry>& entries) {
  size_t buckets = kMinBuckets;
  while (buckets < entries.size() * 2) buckets *= 2;

  ByteWriter w;
  w.U32(kIndexMagic);
  w.U32(kIndexVersion);
  w.U64(generation);
  w.U64(static_cast<uint64_t>(entries.size()));
  w.U32(static_cast<uint32_t>(buckets));
  w.U32(static_cast<uint32_t>(segments.size()));
  for (const auto& [name, covered] : segments) {
    w.Str(name);
    w.U64(covered);
  }

  std::vector<BuildEntry> table(buckets);
  for (auto& slot : table) slot.segment_id = kEmptySegment;
  const uint64_t mask = buckets - 1;
  for (const BuildEntry& e : entries) {
    uint64_t i = e.key_hash & mask;
    while (table[i].segment_id != kEmptySegment) i = (i + 1) & mask;
    table[i] = e;
  }
  for (const BuildEntry& slot : table) {
    w.U64(slot.key_hash);
    w.U32(slot.segment_id);
    w.U64(slot.offset);
  }
  w.U32(Crc32(w.str()));
  return w.Take();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot write " + tmp + ": " +
                            std::strerror(errno));
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
  if (ok) ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

// RAII flock over <dir>/index.lock — writers serialize on this; readers
// never touch it.
class PublishLock {
 public:
  static Result<PublishLock> Acquire(const std::string& dir) {
    int fd = ::open((dir + "/" + ExperienceIndex::kLockFile).c_str(),
                    O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal("cannot open index lock in " + dir + ": " +
                              std::strerror(errno));
    }
    while (::flock(fd, LOCK_EX) != 0) {
      if (errno != EINTR) {
        Status st = Status::Internal(std::string("flock: ") +
                                     std::strerror(errno));
        ::close(fd);
        return st;
      }
    }
    return PublishLock(fd);
  }
  PublishLock(PublishLock&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  PublishLock(const PublishLock&) = delete;
  ~PublishLock() {
    if (fd_ >= 0) ::close(fd_);  // releases the flock
  }

 private:
  explicit PublishLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace

ExperienceIndex::~ExperienceIndex() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  for (int fd : segment_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Status ExperienceIndex::OpenSegments(const std::vector<std::string>& names) {
  segment_names_ = names;
  segment_fds_.assign(names.size(), -1);
  for (size_t i = 0; i < names.size(); ++i) {
    // A segment listed in the index but deleted since is tolerated:
    // lookups into it simply miss (fd stays -1).
    segment_fds_[i] =
        ::open((dir_ + "/" + names[i]).c_str(), O_RDONLY | O_CLOEXEC);
  }
  return Status::OK();
}

Result<std::unique_ptr<ExperienceIndex>> ExperienceIndex::OpenOrRebuild(
    const std::string& dir) {
  auto index = std::unique_ptr<ExperienceIndex>(new ExperienceIndex());
  index->dir_ = dir;

  const std::string index_path = dir + "/" + kIndexFile;
  int fd = ::open(index_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                         MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        IndexImage image;
        if (ParseIndex(std::string_view(static_cast<const char*>(map),
                                        static_cast<size_t>(st.st_size)),
                       &image)) {
          index->map_ = map;
          index->map_size_ = static_cast<size_t>(st.st_size);
          index->buckets_ =
              static_cast<const unsigned char*>(map) + image.bucket_base;
          index->bucket_count_ = image.bucket_count;
          index->generation_ = image.generation;
          index->records_ = static_cast<size_t>(image.record_count);
          std::vector<std::string> names;
          names.reserve(image.segments.size());
          for (const auto& [name, covered] : image.segments) {
            names.push_back(name);
          }
          ::close(fd);
          AUTOMC_RETURN_IF_ERROR(index->OpenSegments(names));
          return index;
        }
        ::munmap(map, static_cast<size_t>(st.st_size));
      }
    }
    ::close(fd);
  }

  // Missing/torn/corrupt index: the segments are the source of truth.
  // Serve from an in-memory replay; the next publish repairs the file.
  index->rebuilt_ = true;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("experience dir missing: " + dir);
  }
  std::vector<std::string> names = ListSegments(dir);
  AUTOMC_RETURN_IF_ERROR(index->OpenSegments(names));
  for (size_t i = 0; i < names.size(); ++i) {
    ReplaySegment(dir + "/" + names[i], 0,
                  [&](std::string key, uint64_t offset) {
                    index->fallback_.emplace(
                        std::move(key),
                        Entry{static_cast<uint32_t>(i), offset});
                  });
  }
  index->records_ = index->fallback_.size();
  AUTOMC_METRIC_COUNT("store.index_rebuilds");
  if (::access(index_path.c_str(), F_OK) == 0) {
    AUTOMC_LOG(Warning) << "experience index " << index_path
                        << " unreadable; rebuilt " << index->records_
                        << " records from " << names.size() << " segments";
  }
  return index;
}

bool ExperienceIndex::LoadRecord(uint32_t segment_id, uint64_t offset,
                                 Fingerprint* fp, EvalRecord* rec) const {
  if (segment_id >= segment_fds_.size()) return false;
  int fd = segment_fds_[segment_id];
  if (fd < 0) return false;
  uint32_t header[2];  // payload len | payload crc
  if (::pread(fd, header, sizeof(header), static_cast<off_t>(offset)) !=
      static_cast<ssize_t>(sizeof(header))) {
    return false;
  }
  if (header[0] > kExperienceMaxPayload) return false;
  std::string payload(header[0], '\0');
  if (::pread(fd, payload.data(), payload.size(),
              static_cast<off_t>(offset + sizeof(header))) !=
      static_cast<ssize_t>(payload.size())) {
    return false;
  }
  if (Crc32(payload) != header[1]) return false;
  return DecodeExperiencePayload(payload, fp, rec);
}

Result<bool> ExperienceIndex::Find(const Fingerprint& fp,
                                   const std::vector<int>& scheme,
                                   EvalRecord* out) const {
  const std::string key = ExperienceKeyBytes(fp, scheme);

  if (rebuilt_) {
    auto it = fallback_.find(key);
    if (it == fallback_.end()) return false;
    Fingerprint got_fp;
    if (!LoadRecord(it->second.segment_id, it->second.offset, &got_fp, out)) {
      return false;
    }
    return true;
  }

  if (bucket_count_ == 0) return false;
  const uint64_t hash = Fnv1a(key.data(), key.size());
  const uint64_t mask = bucket_count_ - 1;
  // Linear probe; stop at the first empty bucket (load factor <= 50%
  // guarantees one exists) or after a full cycle on a pathological image.
  for (uint64_t step = 0; step < bucket_count_; ++step) {
    const unsigned char* slot =
        buckets_ + ((hash + step) & mask) * kBucketBytes;
    uint64_t slot_hash = 0, offset = 0;
    uint32_t segment_id = 0;
    std::memcpy(&slot_hash, slot, 8);
    std::memcpy(&segment_id, slot + 8, 4);
    std::memcpy(&offset, slot + 12, 8);
    if (segment_id == kEmptySegment) return false;
    if (slot_hash != hash) continue;
    // Hash match is not identity: resolve the candidate and compare the
    // exact key, continuing the probe past impostors.
    Fingerprint got_fp;
    EvalRecord rec;
    if (!LoadRecord(segment_id, offset, &got_fp, &rec)) continue;
    if (got_fp == fp && rec.scheme == scheme) {
      *out = std::move(rec);
      return true;
    }
  }
  return false;
}

Status PublishExperience(
    const std::string& dir, const std::string& segment_name,
    const std::vector<std::pair<Fingerprint, EvalRecord>>& records) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  AUTOMC_ASSIGN_OR_RETURN(PublishLock lock, PublishLock::Acquire(dir));

  // Carry over the published entries (and their covered offsets) from the
  // current index when it is intact; otherwise rebuild from scratch.
  IndexImage image;
  std::vector<BuildEntry> entries;
  std::set<uint64_t> seen;
  std::vector<std::pair<std::string, uint64_t>> segments;  // name, covered
  uint64_t generation = 0;
  if (Result<std::string> data = ReadWholeFile(dir + "/" +
                                               ExperienceIndex::kIndexFile);
      data.ok() && ParseIndex(*data, &image)) {
    generation = image.generation;
    segments = image.segments;
    const unsigned char* buckets =
        reinterpret_cast<const unsigned char*>(data->data()) +
        image.bucket_base;
    for (uint32_t i = 0; i < image.bucket_count; ++i) {
      BuildEntry e;
      const unsigned char* slot = buckets + i * kBucketBytes;
      std::memcpy(&e.key_hash, slot, 8);
      std::memcpy(&e.segment_id, slot + 8, 4);
      std::memcpy(&e.offset, slot + 12, 8);
      if (e.segment_id == kEmptySegment) continue;
      entries.push_back(e);
      seen.insert(e.key_hash);
    }
  }

  auto segment_id_of = [&](const std::string& name) -> uint32_t {
    for (size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].first == name) return static_cast<uint32_t>(i);
    }
    segments.emplace_back(name, 0);
    return static_cast<uint32_t>(segments.size() - 1);
  };

  // Append the novel records to this publisher's own segment. One
  // appender per segment file is the invariant that lets readers pread
  // concurrently; the flock we hold also serializes same-segment writers.
  if (!records.empty()) {
    const std::string seg_path = dir + "/" + segment_name;
    const uint32_t seg_id = segment_id_of(segment_name);
    bool fresh = !fs::exists(seg_path, ec);
    std::FILE* f = std::fopen(seg_path.c_str(), "ab");
    if (f == nullptr) {
      return Status::Internal("cannot open segment " + seg_path + ": " +
                              std::strerror(errno));
    }
    if (fresh) {
      uint32_t version = kExperienceVersion;
      std::fwrite(kExperienceMagic, 1, 4, f);
      std::fwrite(&version, sizeof(version), 1, f);
    }
    long at = std::ftell(f);
    for (const auto& [fp, rec] : records) {
      const std::string key = ExperienceKeyBytes(fp, rec.scheme);
      const uint64_t hash = Fnv1a(key.data(), key.size());
      // First writer wins; by the determinism contract a duplicate key
      // carries the same value, so dropping it loses nothing. (A 64-bit
      // hash collision also drops here — that costs one warm hit, never
      // a wrong result, because Find compares exact keys.)
      if (!seen.insert(hash).second) continue;
      std::string payload = EncodeExperiencePayload(fp, rec);
      ByteWriter frame;
      frame.U32(static_cast<uint32_t>(payload.size()));
      frame.U32(Crc32(payload));
      frame.Raw(payload.data(), payload.size());
      if (std::fwrite(frame.str().data(), 1, frame.str().size(), f) !=
          frame.str().size()) {
        std::fclose(f);
        return Status::Internal("short append on " + seg_path);
      }
      entries.push_back(
          BuildEntry{hash, seg_id, static_cast<uint64_t>(at)});
      at += static_cast<long>(frame.str().size());
    }
    if (std::fflush(f) != 0) {
      std::fclose(f);
      return Status::Internal("flush failed on " + seg_path);
    }
    ::fsync(fileno(f));
    std::fclose(f);
  }

  // Index segment bytes past each covered offset — other workers may have
  // appended since the last publish (their flocked publishes updated the
  // index, but a crashed publisher can leave appended-but-unindexed
  // tails; this sweep is what makes the publish self-healing).
  for (const std::string& name : ListSegments(dir)) {
    segment_id_of(name);
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    auto& [name, covered] = segments[i];
    covered = ReplaySegment(
        dir + "/" + name, covered, [&](std::string key, uint64_t offset) {
          const uint64_t hash = Fnv1a(key.data(), key.size());
          if (!seen.insert(hash).second) return;
          entries.push_back(
              BuildEntry{hash, static_cast<uint32_t>(i), offset});
        });
  }

  std::string bytes = BuildIndexBytes(generation + 1, segments, entries);
  AUTOMC_RETURN_IF_ERROR(
      WriteFileAtomic(dir + "/" + ExperienceIndex::kIndexFile, bytes));
  AUTOMC_METRIC_COUNT("store.index_publishes");
  return Status::OK();
}

Status PublishIndex(const std::string& dir) {
  return PublishExperience(dir, "", {});
}

}  // namespace store
}  // namespace automc
