#include "store/checkpoint.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/bytes.h"
#include "common/metrics.h"

namespace automc {
namespace store {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'C', 'K'};
constexpr uint32_t kVersion = 1;

int EveryFromEnv() {
  const char* env = std::getenv("AUTOMC_CHECKPOINT_EVERY");
  if (env == nullptr || *env == '\0') return 1;
  int v = std::atoi(env);
  return v > 0 ? v : 1;
}

}  // namespace

SearchCheckpointer::SearchCheckpointer(Options options)
    : options_(std::move(options)) {
  every_ = options_.every_rounds > 0 ? options_.every_rounds : EveryFromEnv();
}

std::string SearchCheckpointer::checkpoint_path() const {
  return options_.dir + "/checkpoint.bin";
}

Status SearchCheckpointer::LoadPending() {
  std::ifstream in(checkpoint_path(), std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no checkpoint at " + checkpoint_path());
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < 12 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument(checkpoint_path() +
                                   " is not a checkpoint file");
  }
  uint32_t version = 0, crc = 0;
  std::memcpy(&version, data.data() + 4, sizeof(version));
  std::memcpy(&crc, data.data() + 8, sizeof(crc));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  std::string_view body(data.data() + 12, data.size() - 12);
  if (Crc32(body) != crc) {
    return Status::InvalidArgument("checkpoint failed CRC validation: " +
                                   checkpoint_path());
  }
  ByteReader r(body);
  uint32_t count = 0;
  if (!r.U32(&count)) return Status::InvalidArgument("truncated checkpoint");
  std::map<std::string, std::string> sections;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, blob;
    if (!r.Str(&name) || !r.Str(&blob)) {
      return Status::InvalidArgument("truncated checkpoint section");
    }
    sections[std::move(name)] = std::move(blob);
  }
  pending_ = std::move(sections);
  return Status::OK();
}

Result<std::string> SearchCheckpointer::TakePending(
    const std::string& section) {
  auto it = pending_.find(section);
  if (it == pending_.end()) {
    return Status::NotFound("checkpoint has no '" + section + "' section");
  }
  std::string blob = std::move(it->second);
  pending_.erase(it);
  return blob;
}

void SearchCheckpointer::SetStickySection(const std::string& name,
                                          std::string blob) {
  sticky_[name] = std::move(blob);
}

bool SearchCheckpointer::ShouldCheckpoint() {
  ++round_;
  return round_ % every_ == 0;
}

Status SearchCheckpointer::Write(std::map<std::string, std::string> sections) {
  if (options_.abort_after_writes > 0 &&
      writes_ >= options_.abort_after_writes) {
    return Status::Internal("checkpointer fault injection: simulated crash");
  }
  for (const auto& [name, blob] : sticky_) sections[name] = blob;

  ByteWriter body;
  body.U32(static_cast<uint32_t>(sections.size()));
  for (const auto& [name, blob] : sections) {
    body.Str(name);
    body.Str(blob);
  }

  ByteWriter file;
  file.Raw(kMagic, 4);
  file.U32(kVersion);
  file.U32(Crc32(body.str()));
  file.Raw(body.str().data(), body.str().size());

  const std::string tmp = checkpoint_path() + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::NotFound("cannot write checkpoint: " + tmp + ": " +
                              std::strerror(errno));
    }
    const std::string& bytes = file.str();
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
              std::fflush(f) == 0;
    if (ok) ::fsync(fileno(f));
    std::fclose(f);
    if (!ok) {
      std::remove(tmp.c_str());
      return Status::Internal("short write on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), checkpoint_path().c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " +
                            std::string(std::strerror(errno)));
  }
  ++writes_;
  AUTOMC_METRIC_COUNT("checkpoint.writes");
  return Status::OK();
}

}  // namespace store
}  // namespace automc
