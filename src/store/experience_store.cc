#include "store/experience_store.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "store/experience_index.h"

namespace automc {
namespace store {

std::string EncodeExperiencePayload(const Fingerprint& fp,
                                    const EvalRecord& rec) {
  ByteWriter w;
  w.U64(fp.space);
  w.U64(fp.model);
  w.Ints(rec.scheme);
  w.F64(rec.acc);
  w.I64(rec.params);
  w.I64(rec.flops);
  w.F64(rec.ar);
  w.F64(rec.pr);
  w.F64(rec.fr);
  w.Floats(rec.task_features.data(), rec.task_features.size());
  return w.Take();
}

bool DecodeExperiencePayload(std::string_view payload, Fingerprint* fp,
                             EvalRecord* rec) {
  ByteReader r(payload);
  return r.U64(&fp->space) && r.U64(&fp->model) && r.Ints(&rec->scheme) &&
         r.F64(&rec->acc) && r.I64(&rec->params) && r.I64(&rec->flops) &&
         r.F64(&rec->ar) && r.F64(&rec->pr) && r.F64(&rec->fr) &&
         r.Floats(&rec->task_features) && r.Done();
}

std::string ExperienceKeyBytes(const Fingerprint& fp,
                               const std::vector<int>& scheme) {
  ByteWriter w;
  w.U64(fp.space);
  w.U64(fp.model);
  for (int s : scheme) w.I32(s);
  return w.Take();
}

uint64_t Fnv1a(const void* data, size_t n, uint64_t seed) {
  uint64_t h = seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

ExperienceStore::~ExperienceStore() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string ExperienceStore::IndexKey(const Fingerprint& fp,
                                      const std::vector<int>& scheme) {
  return ExperienceKeyBytes(fp, scheme);
}

Result<std::unique_ptr<ExperienceStore>> ExperienceStore::Open(
    const std::string& path) {
  auto store = std::unique_ptr<ExperienceStore>(new ExperienceStore());
  store->path_ = path;
  AUTOMC_RETURN_IF_ERROR(store->ReplayLog());

  store->file_ = std::fopen(path.c_str(), "ab");
  if (store->file_ == nullptr) {
    return Status::NotFound("cannot open store for append: " + path + ": " +
                            std::strerror(errno));
  }
  AUTOMC_METRIC_COUNT("store.recovered", store->recovered_);
  AUTOMC_METRIC_COUNT("store.truncated_bytes", store->truncated_bytes_);
  return store;
}

Status ExperienceStore::ReplayLog() {
  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in.is_open()) {
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
      if (in.bad()) return Status::Internal("read failure on " + path_);
    }
  }

  size_t valid_end = 0;
  if (data.size() >= kExperienceHeaderSize) {
    uint32_t version = 0;
    std::memcpy(&version, data.data() + 4, sizeof(version));
    if (std::memcmp(data.data(), kExperienceMagic, 4) != 0 || version != kExperienceVersion) {
      // A foreign or future-format file: refuse rather than destroy it.
      return Status::InvalidArgument(path_ + " is not a v1 experience store");
    }
    valid_end = kExperienceHeaderSize;

    size_t pos = kExperienceHeaderSize;
    while (pos + 8 <= data.size()) {
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, data.data() + pos, sizeof(len));
      std::memcpy(&crc, data.data() + pos + 4, sizeof(crc));
      if (len > kExperienceMaxPayload || pos + 8 + len > data.size()) break;  // torn
      std::string_view payload(data.data() + pos + 8, len);
      if (Crc32(payload) != crc) break;  // torn or corrupted
      Fingerprint fp;
      EvalRecord rec;
      if (!DecodeExperiencePayload(payload, &fp, &rec)) break;
      auto [it, inserted] =
          index_.insert_or_assign(IndexKey(fp, rec.scheme), std::move(rec));
      if (inserted) order_.emplace_back(fp, &it->second);
      ++recovered_;
      pos += 8 + len;
      valid_end = pos;
    }
    truncated_bytes_ = static_cast<int64_t>(data.size() - valid_end);
  } else if (!data.empty()) {
    // Torn header (crash during creation): nothing recoverable.
    truncated_bytes_ = static_cast<int64_t>(data.size());
  }

  if (truncated_bytes_ > 0) {
    AUTOMC_LOG(Warning) << "experience store " << path_ << ": dropping "
                        << truncated_bytes_ << " torn trailing bytes ("
                        << recovered_ << " records recovered)";
  }

  // Rewrite the header when the file is new/torn-at-birth, else chop the
  // torn tail so the append handle continues from the last valid record.
  std::error_code ec;
  if (valid_end == 0) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::NotFound("cannot create " + path_);
    out.write(kExperienceMagic, 4);
    uint32_t version = kExperienceVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    if (!out.good()) return Status::Internal("cannot write header: " + path_);
  } else if (valid_end < data.size()) {
    std::filesystem::resize_file(path_, valid_end, ec);
    if (ec) return Status::Internal("cannot truncate " + path_);
  }
  return Status::OK();
}

const EvalRecord* ExperienceStore::SharedProbe(
    const std::vector<int>& scheme) const {
  if (shared_ == nullptr) return nullptr;
  std::string key = IndexKey(bound_, scheme);
  std::unique_lock<std::mutex> lock(shared_mu_);
  if (auto it = shared_cache_.find(key); it != shared_cache_.end()) {
    return &it->second;
  }
  EvalRecord rec;
  Result<bool> found = shared_->Find(bound_, scheme, &rec);
  if (!found.ok() || !*found) return nullptr;
  AUTOMC_METRIC_COUNT("store.shared_hits");
  auto [it, inserted] = shared_cache_.emplace(std::move(key), std::move(rec));
  return &it->second;
}

const EvalRecord* ExperienceStore::Lookup(const std::vector<int>& scheme) {
  auto it = index_.find(IndexKey(bound_, scheme));
  if (it != index_.end()) {
    ++hits_;
    AUTOMC_METRIC_COUNT("store.hits");
    return &it->second;
  }
  if (const EvalRecord* rec = SharedProbe(scheme); rec != nullptr) {
    ++hits_;
    AUTOMC_METRIC_COUNT("store.hits");
    return rec;
  }
  ++misses_;
  AUTOMC_METRIC_COUNT("store.misses");
  return nullptr;
}

const EvalRecord* ExperienceStore::Peek(const std::vector<int>& scheme) const {
  auto it = index_.find(IndexKey(bound_, scheme));
  if (it != index_.end()) return &it->second;
  return SharedProbe(scheme);
}

bool ExperienceStore::Contains(const std::vector<int>& scheme) const {
  if (index_.count(IndexKey(bound_, scheme)) > 0) return true;
  return SharedProbe(scheme) != nullptr;
}

Status ExperienceStore::Append(const EvalRecord& record) {
  std::string key = IndexKey(bound_, record.scheme);
  if (index_.count(key) > 0) return Status::OK();  // determinism: no change

  EvalRecord stored = record;
  stored.task_features = task_features_;
  AUTOMC_RETURN_IF_ERROR(WriteRecord(bound_, stored));

  auto [it, inserted] = index_.insert_or_assign(key, std::move(stored));
  if (inserted) order_.emplace_back(bound_, &it->second);
  ++appends_;
  AUTOMC_METRIC_COUNT("store.appends");
  return Status::OK();
}

Status ExperienceStore::WriteRecord(const Fingerprint& fp,
                                    const EvalRecord& record) {
  std::string payload = EncodeExperiencePayload(fp, record);
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload.data(), payload.size());
  const std::string& bytes = frame.str();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("append failed on " + path_);
  }
  // One fsync per append: appends are measured in strategy executions
  // (seconds each), so full durability costs nothing by comparison.
  ::fsync(fileno(file_));
  return Status::OK();
}

std::vector<ExperienceStep> ExperienceStore::ExportSteps(
    uint64_t space_fp, uint64_t limit_records) const {
  std::vector<ExperienceStep> steps;
  size_t n = order_.size();
  if (limit_records > 0 && limit_records < n) {
    n = static_cast<size_t>(limit_records);
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& [fp, rec] = order_[i];
    if (fp.space != space_fp || rec->scheme.empty()) continue;
    if (rec->task_features.empty()) continue;  // no task context recorded
    std::vector<int> parent_scheme(rec->scheme.begin(),
                                   rec->scheme.end() - 1);
    auto pit = index_.find(IndexKey(fp, parent_scheme));
    if (pit == index_.end()) continue;
    const EvalRecord& parent = pit->second;
    if (parent.acc <= 0.0 || parent.params <= 0) continue;
    ExperienceStep step;
    step.strategy = rec->scheme.back();
    step.task_features = rec->task_features;
    step.ar_step = static_cast<float>(rec->acc / parent.acc - 1.0);
    step.pr_step = static_cast<float>(
        1.0 - static_cast<double>(rec->params) / parent.params);
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace store
}  // namespace automc
