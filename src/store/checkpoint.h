#ifndef AUTOMC_STORE_CHECKPOINT_H_
#define AUTOMC_STORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace automc {
namespace store {

// Atomic, periodic persistence of search state.
//
// A checkpoint is a named-section blob (the search layer contributes
// "searcher" / "evaluator" / "config" sections; the core pipeline adds its
// own). Writes go to <dir>/checkpoint.bin.tmp, are fsync'd, then renamed
// over <dir>/checkpoint.bin — a crash leaves either the old checkpoint or
// the new one, never a torn file. The payload carries a CRC32 so a damaged
// file is rejected on load instead of resuming from garbage.
//
// Cadence: searchers call ShouldCheckpoint() once per round; every N-th
// round is persisted (N from Options.every_rounds, else the
// AUTOMC_CHECKPOINT_EVERY environment variable, else 1).
class SearchCheckpointer {
 public:
  struct Options {
    std::string dir;       // checkpoint lives at <dir>/checkpoint.bin
    int every_rounds = 0;  // 0 => $AUTOMC_CHECKPOINT_EVERY, default 1
    // Fault-injection hook for crash tests: after this many successful
    // writes, Write() fails with an Internal error, simulating a process
    // that died mid-search with a valid checkpoint on disk. 0 disables.
    int abort_after_writes = 0;
  };

  explicit SearchCheckpointer(Options options);

  // Loads <dir>/checkpoint.bin for a resume; NotFound when none exists.
  Status LoadPending();
  bool has_pending() const { return !pending_.empty(); }
  // Read access to the loaded sections (empty map when none).
  const std::map<std::string, std::string>& pending() const {
    return pending_;
  }
  // Consumes one section of the pending checkpoint; NotFound if absent.
  Result<std::string> TakePending(const std::string& section);

  // Sticky sections are merged into every Write (e.g. the core pipeline's
  // experience-export cutoff, which must survive into resumed runs).
  void SetStickySection(const std::string& name, std::string blob);

  // Round tick: true when this round's state should be persisted.
  bool ShouldCheckpoint();

  // Atomically replaces the checkpoint with `sections` + sticky sections.
  Status Write(std::map<std::string, std::string> sections);

  std::string checkpoint_path() const;
  int64_t writes() const { return writes_; }

 private:
  Options options_;
  int every_ = 1;
  int64_t round_ = 0;
  int64_t writes_ = 0;
  std::map<std::string, std::string> pending_;
  std::map<std::string, std::string> sticky_;
};

}  // namespace store
}  // namespace automc

#endif  // AUTOMC_STORE_CHECKPOINT_H_
