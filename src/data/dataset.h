#ifndef AUTOMC_DATA_DATASET_H_
#define AUTOMC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace automc {
namespace data {

// In-memory labeled image dataset (images [N,C,H,W], labels in
// [0, num_classes)). Small enough at the scaled substrate sizes to keep
// fully materialized.
struct Dataset {
  std::string name;
  tensor::Tensor images;    // [N, C, H, W]
  std::vector<int> labels;  // size N
  int num_classes = 0;

  int64_t Size() const { return images.empty() ? 0 : images.size(0); }
  int64_t Channels() const { return images.size(1); }
  int64_t Height() const { return images.size(2); }
  int64_t Width() const { return images.size(3); }

  // Gathers the given rows into a new batch tensor + label vector.
  tensor::Tensor GatherImages(const std::vector<int64_t>& indices) const;
  std::vector<int> GatherLabels(const std::vector<int64_t>& indices) const;

  // Random subsample without replacement (fraction in (0, 1]); mirrors the
  // paper's "sample 10% data from D to execute AutoML algorithms".
  Dataset Subsample(double fraction, Rng* rng) const;

  // Deterministic head/tail split: first `fraction` of a shuffled copy is
  // the first returned dataset.
  std::pair<Dataset, Dataset> Split(double fraction, Rng* rng) const;
};

// Configuration for the synthetic CIFAR-stand-in generator. Images are drawn
// as `prototypes_per_class` smooth class prototypes plus per-sample Gaussian
// noise and random shifts, producing a learnable but non-trivial task (see
// DESIGN.md, substitutions table).
struct SyntheticTaskConfig {
  std::string name = "synthetic";
  int num_classes = 10;
  int channels = 3;
  int image_size = 8;
  int train_per_class = 64;
  int test_per_class = 16;
  int prototypes_per_class = 2;
  float noise = 0.35f;
  uint64_t seed = 7;
};

// Train and test splits for one synthetic task.
struct TaskData {
  Dataset train;
  Dataset test;
};

TaskData MakeSyntheticTask(const SyntheticTaskConfig& config);

// Stand-ins for the paper's datasets at substrate scale.
TaskData MakeCifar10Like(uint64_t seed = 7);
TaskData MakeCifar100Like(uint64_t seed = 7);

// The 7-part compression-task feature vector of Section 3.3.1:
// (category number, image size, image channels, data amount,
//  model params, model FLOPs, model accuracy). Values are log/unit scaled
// so they are comparable across tasks.
std::vector<float> TaskFeatureVector(const Dataset& train, int64_t model_params,
                                     int64_t model_flops, double model_accuracy);

// Number of entries in TaskFeatureVector.
inline constexpr int kTaskFeatureDim = 7;

}  // namespace data
}  // namespace automc

#endif  // AUTOMC_DATA_DATASET_H_
