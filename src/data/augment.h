#ifndef AUTOMC_DATA_AUGMENT_H_
#define AUTOMC_DATA_AUGMENT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace automc {
namespace data {

// Standard CIFAR-style training augmentations, applied per batch. All
// operate on NCHW float tensors and are deterministic given the Rng.
struct AugmentConfig {
  bool horizontal_flip = true;   // p = 0.5 per image
  int pad_crop = 1;              // random shift within ±pad_crop pixels
  float noise_stddev = 0.0f;     // additive Gaussian pixel noise
};

// Returns an augmented copy of `images` ([N,C,H,W]).
tensor::Tensor Augment(const tensor::Tensor& images,
                       const AugmentConfig& config, Rng* rng);

// In-place variants (exposed for tests).
void FlipHorizontal(tensor::Tensor* images, int64_t image_index);
// Shifts one image by (di, dj) with zero padding at the borders.
void Shift(tensor::Tensor* images, int64_t image_index, int di, int dj);

}  // namespace data
}  // namespace automc

#endif  // AUTOMC_DATA_AUGMENT_H_
