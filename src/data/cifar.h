#ifndef AUTOMC_DATA_CIFAR_H_
#define AUTOMC_DATA_CIFAR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace automc {
namespace data {

// Loaders for the original CIFAR binary formats, so the library runs on the
// real datasets when they are available (the benches default to the
// synthetic stand-ins; see DESIGN.md).
//
// CIFAR-10 record: 1 label byte + 3072 pixel bytes (3 x 32 x 32, RGB planar).
// CIFAR-100 record: 1 coarse label byte + 1 fine label byte + 3072 pixels.
// Pixels are normalized to zero mean / unit-ish range ((v/255 - 0.5) * 2).

// Loads one or more CIFAR-10 batch files (e.g. data_batch_1.bin).
Result<Dataset> LoadCifar10(const std::vector<std::string>& batch_paths,
                            const std::string& name = "cifar10");

// Loads a CIFAR-100 file (train.bin / test.bin) using fine labels.
Result<Dataset> LoadCifar100(const std::string& path,
                             const std::string& name = "cifar100");

// Shared record geometry (exposed for tests).
inline constexpr int kCifarImageBytes = 3 * 32 * 32;
inline constexpr int kCifar10RecordBytes = 1 + kCifarImageBytes;
inline constexpr int kCifar100RecordBytes = 2 + kCifarImageBytes;

}  // namespace data
}  // namespace automc

#endif  // AUTOMC_DATA_CIFAR_H_
