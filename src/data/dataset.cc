#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace automc {
namespace data {

using tensor::Tensor;

Tensor Dataset::GatherImages(const std::vector<int64_t>& indices) const {
  int64_t c = Channels(), h = Height(), w = Width();
  int64_t stride = c * h * w;
  Tensor out({static_cast<int64_t>(indices.size()), c, h, w});
  float* dst_base = out.MutableData();
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t idx = indices[i];
    AUTOMC_CHECK(idx >= 0 && idx < Size());
    const float* src = images.data() + idx * stride;
    std::copy(src, src + stride, dst_base + static_cast<int64_t>(i) * stride);
  }
  return out;
}

std::vector<int> Dataset::GatherLabels(const std::vector<int64_t>& indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (int64_t idx : indices) out.push_back(labels[static_cast<size_t>(idx)]);
  return out;
}

Dataset Dataset::Subsample(double fraction, Rng* rng) const {
  AUTOMC_CHECK(fraction > 0.0 && fraction <= 1.0);
  std::vector<int64_t> idx(static_cast<size_t>(Size()));
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  int64_t keep = std::max<int64_t>(1, static_cast<int64_t>(
                                          std::llround(fraction * Size())));
  idx.resize(static_cast<size_t>(keep));
  std::sort(idx.begin(), idx.end());
  Dataset out;
  out.name = name + "-sub";
  out.images = GatherImages(idx);
  out.labels = GatherLabels(idx);
  out.num_classes = num_classes;
  return out;
}

std::pair<Dataset, Dataset> Dataset::Split(double fraction, Rng* rng) const {
  AUTOMC_CHECK(fraction > 0.0 && fraction < 1.0);
  std::vector<int64_t> idx(static_cast<size_t>(Size()));
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  int64_t head = std::max<int64_t>(1, static_cast<int64_t>(
                                          std::llround(fraction * Size())));
  head = std::min(head, Size() - 1);
  std::vector<int64_t> a(idx.begin(), idx.begin() + head);
  std::vector<int64_t> b(idx.begin() + head, idx.end());
  Dataset da, db;
  da.name = name + "-a";
  da.images = GatherImages(a);
  da.labels = GatherLabels(a);
  da.num_classes = num_classes;
  db.name = name + "-b";
  db.images = GatherImages(b);
  db.labels = GatherLabels(b);
  db.num_classes = num_classes;
  return {std::move(da), std::move(db)};
}

namespace {

// Smooth random prototype: low-frequency pattern so nearby pixels correlate,
// making convolutional structure genuinely useful.
Tensor MakePrototype(int channels, int size, Rng* rng) {
  Tensor proto({channels, size, size});
  for (int c = 0; c < channels; ++c) {
    // Sum of a few random 2-D cosine waves.
    const int kWaves = 3;
    for (int wv = 0; wv < kWaves; ++wv) {
      double fx = rng->Uniform(0.5, 2.0);
      double fy = rng->Uniform(0.5, 2.0);
      double phase = rng->Uniform(0.0, 6.28318);
      double amp = rng->Uniform(0.4, 1.0);
      for (int i = 0; i < size; ++i) {
        for (int j = 0; j < size; ++j) {
          double v = amp * std::cos(fx * i + fy * j + phase);
          proto[(c * size + i) * size + j] += static_cast<float>(v);
        }
      }
    }
  }
  return proto;
}

Dataset MakeSplit(const SyntheticTaskConfig& cfg,
                  const std::vector<Tensor>& prototypes, int per_class,
                  const std::string& suffix, Rng* rng) {
  int64_t n = static_cast<int64_t>(cfg.num_classes) * per_class;
  Dataset ds;
  ds.name = cfg.name + suffix;
  ds.num_classes = cfg.num_classes;
  ds.images = Tensor({n, cfg.channels, cfg.image_size, cfg.image_size});
  ds.labels.resize(static_cast<size_t>(n));
  int64_t stride =
      static_cast<int64_t>(cfg.channels) * cfg.image_size * cfg.image_size;
  int64_t row = 0;
  for (int cls = 0; cls < cfg.num_classes; ++cls) {
    for (int s = 0; s < per_class; ++s, ++row) {
      int proto_idx = cls * cfg.prototypes_per_class +
                      static_cast<int>(rng->UniformInt(cfg.prototypes_per_class));
      const Tensor& proto = prototypes[static_cast<size_t>(proto_idx)];
      // Random cyclic shift keeps the task translation-sensitive but easy.
      int di = static_cast<int>(rng->UniformInt(2));
      int dj = static_cast<int>(rng->UniformInt(2));
      float* dst = ds.images.MutableData() + row * stride;
      for (int c = 0; c < cfg.channels; ++c) {
        for (int i = 0; i < cfg.image_size; ++i) {
          for (int j = 0; j < cfg.image_size; ++j) {
            int si = (i + di) % cfg.image_size;
            int sj = (j + dj) % cfg.image_size;
            float v = proto[(c * cfg.image_size + si) * cfg.image_size + sj];
            v += static_cast<float>(rng->Normal(0.0, cfg.noise));
            dst[(c * cfg.image_size + i) * cfg.image_size + j] = v;
          }
        }
      }
      ds.labels[static_cast<size_t>(row)] = cls;
    }
  }
  return ds;
}

}  // namespace

TaskData MakeSyntheticTask(const SyntheticTaskConfig& config) {
  AUTOMC_CHECK_GT(config.num_classes, 1);
  AUTOMC_CHECK_GT(config.train_per_class, 0);
  AUTOMC_CHECK_GT(config.test_per_class, 0);
  Rng rng(config.seed);
  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<size_t>(config.num_classes) *
                     config.prototypes_per_class);
  for (int cls = 0; cls < config.num_classes; ++cls) {
    for (int p = 0; p < config.prototypes_per_class; ++p) {
      prototypes.push_back(
          MakePrototype(config.channels, config.image_size, &rng));
    }
  }
  TaskData out;
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  out.train = MakeSplit(config, prototypes, config.train_per_class, "-train",
                        &train_rng);
  out.test =
      MakeSplit(config, prototypes, config.test_per_class, "-test", &test_rng);
  return out;
}

TaskData MakeCifar10Like(uint64_t seed) {
  SyntheticTaskConfig cfg;
  cfg.name = "cifar10-like";
  cfg.num_classes = 10;
  cfg.train_per_class = 64;
  cfg.test_per_class = 20;
  cfg.noise = 0.35f;
  cfg.seed = seed;
  return MakeSyntheticTask(cfg);
}

TaskData MakeCifar100Like(uint64_t seed) {
  SyntheticTaskConfig cfg;
  // 20 classes stand in for CIFAR-100's 100 (more classes, more confusable):
  // higher intra-class variance and noise than the C10 stand-in.
  cfg.name = "cifar100-like";
  cfg.num_classes = 20;
  cfg.train_per_class = 48;
  cfg.test_per_class = 10;
  cfg.prototypes_per_class = 3;
  cfg.noise = 0.4f;
  cfg.seed = seed + 1;
  return MakeSyntheticTask(cfg);
}

std::vector<float> TaskFeatureVector(const Dataset& train, int64_t model_params,
                                     int64_t model_flops,
                                     double model_accuracy) {
  auto log1p = [](double v) { return static_cast<float>(std::log1p(v)); };
  return {
      log1p(train.num_classes),
      log1p(static_cast<double>(train.Height())),
      log1p(static_cast<double>(train.Channels())),
      log1p(static_cast<double>(train.Size())),
      log1p(static_cast<double>(model_params)),
      log1p(static_cast<double>(model_flops)),
      static_cast<float>(model_accuracy),
  };
}

}  // namespace data
}  // namespace automc
