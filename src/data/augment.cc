#include "data/augment.h"

#include <algorithm>

namespace automc {
namespace data {

using tensor::Tensor;

void FlipHorizontal(Tensor* images, int64_t image_index) {
  AUTOMC_CHECK_EQ(images->dim(), 4);
  int64_t c = images->size(1), h = images->size(2), w = images->size(3);
  float* base = images->MutableData() + image_index * c * h * w;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < h; ++i) {
      float* row = base + (ch * h + i) * w;
      for (int64_t j = 0; j < w / 2; ++j) {
        std::swap(row[j], row[w - 1 - j]);
      }
    }
  }
}

void Shift(Tensor* images, int64_t image_index, int di, int dj) {
  AUTOMC_CHECK_EQ(images->dim(), 4);
  int64_t c = images->size(1), h = images->size(2), w = images->size(3);
  float* base = images->MutableData() + image_index * c * h * w;
  std::vector<float> copy(base, base + c * h * w);
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        int64_t si = i - di, sj = j - dj;
        float v = 0.0f;
        if (si >= 0 && si < h && sj >= 0 && sj < w) {
          v = copy[static_cast<size_t>((ch * h + si) * w + sj)];
        }
        base[(ch * h + i) * w + j] = v;
      }
    }
  }
}

Tensor Augment(const Tensor& images, const AugmentConfig& config, Rng* rng) {
  AUTOMC_CHECK(rng != nullptr);
  AUTOMC_CHECK_EQ(images.dim(), 4);
  Tensor out = images;
  int64_t n = out.size(0);
  for (int64_t i = 0; i < n; ++i) {
    if (config.horizontal_flip && rng->Bernoulli(0.5)) {
      FlipHorizontal(&out, i);
    }
    if (config.pad_crop > 0) {
      int di = static_cast<int>(rng->UniformInt(2 * config.pad_crop + 1)) -
               config.pad_crop;
      int dj = static_cast<int>(rng->UniformInt(2 * config.pad_crop + 1)) -
               config.pad_crop;
      if (di != 0 || dj != 0) Shift(&out, i, di, dj);
    }
  }
  if (config.noise_stddev > 0.0f) {
    for (int64_t i = 0; i < out.numel(); ++i) {
      out[i] += static_cast<float>(rng->Normal(0.0, config.noise_stddev));
    }
  }
  return out;
}

}  // namespace data
}  // namespace automc
