#include "data/cifar.h"

#include <fstream>

namespace automc {
namespace data {

namespace {

float NormalizePixel(uint8_t v) {
  return (static_cast<float>(v) / 255.0f - 0.5f) * 2.0f;
}

// Reads a whole file into a byte buffer.
Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::Internal("read failure on " + path);
  }
  return bytes;
}

// Appends the records of one buffer to the dataset arrays.
Status AppendRecords(const std::vector<uint8_t>& bytes, int record_bytes,
                     int label_offset, std::vector<float>* pixels,
                     std::vector<int>* labels) {
  if (bytes.size() % static_cast<size_t>(record_bytes) != 0) {
    return Status::InvalidArgument("file size is not a multiple of " +
                                   std::to_string(record_bytes) + " bytes");
  }
  size_t records = bytes.size() / static_cast<size_t>(record_bytes);
  for (size_t r = 0; r < records; ++r) {
    const uint8_t* rec = bytes.data() + r * static_cast<size_t>(record_bytes);
    labels->push_back(rec[label_offset]);
    const uint8_t* img = rec + (record_bytes - kCifarImageBytes);
    for (int i = 0; i < kCifarImageBytes; ++i) {
      pixels->push_back(NormalizePixel(img[i]));
    }
  }
  return Status::OK();
}

Result<Dataset> BuildDataset(std::vector<float> pixels, std::vector<int> labels,
                             int num_classes, const std::string& name) {
  if (labels.empty()) return Status::InvalidArgument("no records loaded");
  for (int y : labels) {
    if (y < 0 || y >= num_classes) {
      return Status::InvalidArgument("label out of range: " +
                                     std::to_string(y));
    }
  }
  Dataset ds;
  ds.name = name;
  ds.num_classes = num_classes;
  ds.labels = std::move(labels);
  int64_t n = static_cast<int64_t>(ds.labels.size());
  ds.images = tensor::Tensor({n, 3, 32, 32});
  AUTOMC_CHECK_EQ(ds.images.numel(), static_cast<int64_t>(pixels.size()));
  std::copy(pixels.begin(), pixels.end(), ds.images.MutableData());
  return ds;
}

}  // namespace

Result<Dataset> LoadCifar10(const std::vector<std::string>& batch_paths,
                            const std::string& name) {
  if (batch_paths.empty()) {
    return Status::InvalidArgument("no batch files given");
  }
  std::vector<float> pixels;
  std::vector<int> labels;
  for (const std::string& path : batch_paths) {
    AUTOMC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
    AUTOMC_RETURN_IF_ERROR(AppendRecords(bytes, kCifar10RecordBytes,
                                         /*label_offset=*/0, &pixels,
                                         &labels));
  }
  return BuildDataset(std::move(pixels), std::move(labels), 10, name);
}

Result<Dataset> LoadCifar100(const std::string& path,
                             const std::string& name) {
  AUTOMC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  std::vector<float> pixels;
  std::vector<int> labels;
  // Fine label is the second byte of each record.
  AUTOMC_RETURN_IF_ERROR(AppendRecords(bytes, kCifar100RecordBytes,
                                       /*label_offset=*/1, &pixels, &labels));
  return BuildDataset(std::move(pixels), std::move(labels), 100, name);
}

}  // namespace data
}  // namespace automc
