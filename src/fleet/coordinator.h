#ifndef AUTOMC_FLEET_COORDINATOR_H_
#define AUTOMC_FLEET_COORDINATOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "artifact/manifest.h"
#include "common/result.h"
#include "fleet/event_loop.h"
#include "server/protocol.h"

namespace automc {
namespace fleet {

// Fleet coordinator: shards submitted jobs across N forked worker
// processes, each running `automc_serve --worker` with a private job dir
// (<workdir>/worker-<i>) and a private AMCS control channel (a
// socketpair). Plugged into the public Server as its RequestHandler, so
// clients speak to the fleet exactly as they would to a single-process
// daemon.
//
// Determinism of the sharding: the coordinator assigns every job a
// global id and routes it — and every later request about it — to worker
// (id - 1) % N. Ids come from one counter (recovered at startup as
// max(existing ids) + 1 across workers), so a restarted coordinator
// routes old jobs to the same worker that owns their durable state.
//
// Crash story: a monitor thread reaps dead workers and respawns them;
// the respawned worker's own JobManager recovery re-queues its
// non-terminal jobs in id order (deterministically), and resumed jobs
// finish with the outcome an uninterrupted run produces — the per-job
// determinism contract, now per worker. In-flight control calls retry
// against the respawned worker; submission uses kSubmitWithId, which is
// idempotent, so a retry after a crash-during-ack cannot double-run a
// job. `kill -KILL` of any worker (or the whole fleet) loses nothing
// that was acknowledged.
class Coordinator : public RequestHandler {
 public:
  struct Options {
    // Worker process count; 0 reads $AUTOMC_FLEET_WORKERS (invalid or
    // unset => 2). Clamped to [1, 64].
    int num_workers = 0;
    // Fleet root; worker i lives in <workdir>/worker-<i>.
    std::string workdir;
    // Shared experience tier directory; empty = <workdir>/experience.
    std::string shared_dir;
    // Shared model artifact registry; empty reads $AUTOMC_ARTIFACT_DIR,
    // else <workdir>/artifacts. Every worker's JobManager publishes into
    // it (flock-serialized), and the coordinator serves FetchModel /
    // ListArtifacts from it directly — no worker round-trip, so a
    // published model stays fetchable even while its worker is down.
    std::string artifact_dir;
    // Worker binary to exec; empty = /proc/self/exe (the running
    // automc_serve). Tests point this at the built binary.
    std::string worker_exe;
  };

  static Result<std::unique_ptr<Coordinator>> Start(Options options);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // RequestHandler: runs on the server's event-loop thread. Submissions
  // assign an id and do one bounded round-trip to the owning worker;
  // ListJobs fans out and merges.
  server::Frame Handle(const server::Frame& request) override;
  // kFetchModel streams straight from the shared registry (chunk reads
  // are lock-free mmap probes; no worker involved).
  std::unique_ptr<ReplyStream> HandleStream(
      uint64_t client, const server::Frame& request) override;

  // Closes every control channel (workers drain: running jobs checkpoint
  // and re-queue durably) and waits for them to exit; stragglers are
  // killed after a deadline. Idempotent.
  void Shutdown();

  int num_workers() const { return static_cast<int>(slots_.size()); }
  const std::string& shared_dir() const { return shared_dir_; }
  const std::string& artifact_dir() const { return artifact_dir_; }
  artifact::Registry* registry() { return registry_.get(); }
  // The live pid of a worker slot (1-based id), -1 if currently down.
  // Tests use this to SIGKILL a worker mid-job.
  pid_t worker_pid(int worker_id) const;

 private:
  struct Slot {
    // Serializes round-trips on the channel and fd swaps on respawn.
    mutable std::mutex mu;
    pid_t pid = -1;
    int fd = -1;
  };

  Coordinator() = default;

  // Forks + execs the worker for `slot` (its mu held by the caller).
  Status Spawn(size_t slot);
  // One request/reply round-trip to a worker, retrying across worker
  // respawns until `deadline_s` elapses. Only transport failures retry;
  // an error *reply* is returned as-is.
  Result<server::Frame> Call(size_t slot, server::MsgType type,
                             std::string_view payload);
  void MonitorLoop();
  size_t SlotOf(uint64_t job_id) const {
    return static_cast<size_t>((job_id - 1) % slots_.size());
  }

  Options options_;
  std::string shared_dir_;
  std::string artifact_dir_;
  std::unique_ptr<artifact::Registry> registry_;
  std::string worker_exe_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex id_mu_;
  uint64_t next_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::thread monitor_;
  std::once_flag shutdown_once_;
};

}  // namespace fleet
}  // namespace automc

#endif  // AUTOMC_FLEET_COORDINATOR_H_
