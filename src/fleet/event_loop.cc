#include "fleet/event_loop.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace automc {
namespace fleet {

using server::Frame;
using server::MsgType;

Result<std::unique_ptr<EventLoop>> EventLoop::Start(Options options) {
  if (options.handler == nullptr) {
    return Status::InvalidArgument("EventLoop needs a RequestHandler");
  }
  if (options.listen_fds.empty()) {
    return Status::InvalidArgument("EventLoop needs at least one listen fd");
  }
  std::unique_ptr<EventLoop> loop(new EventLoop());
  loop->options_ = std::move(options);
  AUTOMC_ASSIGN_OR_RETURN(loop->epoll_, net::Epoll::Create());
  loop->wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (loop->wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  AUTOMC_RETURN_IF_ERROR(loop->epoll_.Add(
      loop->wake_fd_, EPOLLIN, static_cast<uint64_t>(loop->wake_fd_)));
  for (int fd : loop->options_.listen_fds) {
    AUTOMC_RETURN_IF_ERROR(net::SetNonBlocking(fd, true));
    AUTOMC_RETURN_IF_ERROR(
        loop->epoll_.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)));
  }
  loop->loop_thread_ = std::thread([l = loop.get()] { l->Run(); });
  return loop;
}

EventLoop::~EventLoop() {
  Stop();
  // If Start failed before the loop thread ran, Run never closed these.
  for (int fd : options_.listen_fds) ::close(fd);
  options_.listen_fds.clear();
}

void EventLoop::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // Async-signal-safe: one write(2); a full counter still wakes the loop.
  [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  // A finite wait is only needed for the idle sweep.
  const int timeout_ms = options_.idle_timeout_s > 0 ? 1000 : -1;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    Result<int> n = epoll_.Wait(events, kMaxEvents, timeout_ms);
    if (!n.ok()) break;
    for (int i = 0; i < *n; ++i) {
      const int fd = static_cast<int>(events[i].data.u64);
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      bool is_listener = false;
      for (int lfd : options_.listen_fds) is_listener = is_listener || fd == lfd;
      if (is_listener) {
        AcceptAll(fd);
        continue;
      }
      auto it = conns_.find(fd);
      if (it != conns_.end()) HandleConn(it->second.get(), events[i].events);
    }
    SweepIdle();
  }

  // Drain: give pending replies a bounded chance to reach slow readers,
  // then close everything.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (auto& [fd, conn] : conns_) {
    while (conn->outpos < conn->outbuf.size() &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd = {conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      ssize_t w = ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                         conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
      if (w > 0) {
        conn->outpos += static_cast<size_t>(w);
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
    }
    ::close(conn->fd);
  }
  conns_.clear();
  for (int fd : options_.listen_fds) ::close(fd);
  options_.listen_fds.clear();
}

void EventLoop::AcceptAll(int listen_fd) {
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    AUTOMC_METRIC_COUNT("server.connections");
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->serial = next_conn_serial_++;
    conn->last_active = std::chrono::steady_clock::now();
    if (!epoll_.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)).ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void EventLoop::HandleConn(Conn* conn, uint32_t events) {
  conn->last_active = std::chrono::steady_clock::now();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    CloseConn(conn->fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!Flush(conn)) return;
  }
  if ((events & EPOLLIN) == 0 || conn->paused) return;

  bool eof = false;
  char chunk[64 << 10];
  while (!eof) {
    ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      if (!conn->closing) conn->decoder.Feed(chunk, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r < 0) {
      CloseConn(conn->fd);
      return;
    }
    eof = true;
  }

  if (!ServeDecoded(conn)) return;

  if (eof && !conn->closing) {
    // EOF inside a frame is a torn request, not a clean close. Either way
    // close once pending replies flush (the peer may still be reading).
    if (conn->decoder.mid_frame()) AUTOMC_METRIC_COUNT("server.bad_frames");
    conn->closing = true;
  }
  Flush(conn);
}

bool EventLoop::ServeDecoded(Conn* conn) {
  // Serve every complete frame that arrived — a peer may send its request
  // and half-close before reading the reply; the buffered frame must
  // still be answered.
  if (conn->closing) return true;
  Frame frame;
  Status error;
  for (;;) {
    // An in-flight model stream goes first: later requests stay parked in
    // the decoder until it completes, which keeps replies in request order.
    PumpStream(conn);
    if (Backlog(*conn) > kOutbufHighWatermark || conn->stream != nullptr) {
      // The peer is pipelining requests faster than it reads replies (or a
      // stream filled the write budget). Stop reading — and serving frames
      // already decoded — until Flush drains the backlog under the low
      // watermark; the kernel's receive window then pushes the stall back
      // to the sender.
      if (!conn->paused) {
        conn->paused = true;
        AUTOMC_METRIC_COUNT("server.backpressure_stalls");
      }
      break;
    }
    server::FrameDecoder::Event ev = conn->decoder.Next(&frame, &error);
    if (ev == server::FrameDecoder::Event::kNeedMore) break;
    if (ev == server::FrameDecoder::Event::kError) {
      // Typed error frame instead of a silent drop, then close once it
      // flushes. Framing is lost, so stop reading immediately.
      AUTOMC_METRIC_COUNT("server.bad_frames");
      QueueReply(conn, MsgType::kError, server::EncodeError(error));
      conn->closing = true;
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
    AUTOMC_METRIC_COUNT("server.requests");
    conn->stream = options_.handler->HandleStream(conn->serial, frame);
    if (conn->stream != nullptr) continue;  // pumped at the top of the loop
    Frame reply = options_.handler->Handle(conn->serial, frame);
    QueueReply(conn, static_cast<MsgType>(reply.type), reply.payload);
  }
  return true;
}

void EventLoop::PumpStream(Conn* conn) {
  Frame frame;
  while (conn->stream != nullptr &&
         Backlog(*conn) <= kOutbufHighWatermark) {
    if (!conn->stream->Next(&frame)) {
      conn->stream.reset();
      return;
    }
    QueueReply(conn, static_cast<MsgType>(frame.type), frame.payload);
  }
}

void EventLoop::QueueReply(Conn* conn, MsgType type, std::string_view payload) {
  const std::string encoded = server::EncodeFrame(type, payload);
  AccountBuffered(static_cast<ssize_t>(encoded.size()));
  conn->outbuf.append(encoded);
}

void EventLoop::AccountBuffered(ssize_t delta) {
  total_buffered_ =
      static_cast<size_t>(static_cast<ssize_t>(total_buffered_) + delta);
  if (total_buffered_ > peak_buffered_) {
    peak_buffered_ = total_buffered_;
    AUTOMC_METRIC_GAUGE("server.backpressure_peak_bytes",
                        static_cast<double>(peak_buffered_));
  }
  AUTOMC_METRIC_GAUGE("server.backpressure_bytes",
                      static_cast<double>(total_buffered_));
}

bool EventLoop::Flush(Conn* conn) {
  for (;;) {
    while (conn->outpos < conn->outbuf.size()) {
      ssize_t w = ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                         conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
      if (w > 0) {
        conn->outpos += static_cast<size_t>(w);
        AccountBuffered(-w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Slow writer: compact the sent prefix, buffer the rest, wait for
        // EPOLLOUT. A peer that never reads while paused still grows via
        // frames decoded before the stall; past the hard cap it is dropped.
        conn->outbuf.erase(0, conn->outpos);
        conn->outpos = 0;
        if (conn->outbuf.size() > kMaxOutputBuffer) {
          AUTOMC_METRIC_COUNT("server.backpressure_drops");
          CloseConn(conn->fd);
          return false;
        }
        if (conn->paused && conn->outbuf.size() <= kOutbufLowWatermark) {
          conn->paused = false;
          AUTOMC_METRIC_COUNT("server.backpressure_resumes");
          if (!ServeDecoded(conn)) return false;  // may re-pause
        }
        // A closing (or paused) connection only waits for the drain —
        // re-arming EPOLLIN would busy-wake until the buffer empties.
        epoll_.Mod(conn->fd,
                   ((conn->closing || conn->paused) ? 0u : EPOLLIN) | EPOLLOUT,
                   static_cast<uint64_t>(conn->fd));
        return true;
      }
      CloseConn(conn->fd);
      return false;
    }
    conn->outbuf.clear();
    conn->outpos = 0;
    if (conn->closing) {
      CloseConn(conn->fd);
      return false;
    }
    if (conn->paused) {
      conn->paused = false;
      AUTOMC_METRIC_COUNT("server.backpressure_resumes");
      if (!ServeDecoded(conn)) return false;
      // Frames parked during the stall just produced new replies; send
      // them now rather than waiting for the next epoll wakeup.
      if (conn->outpos < conn->outbuf.size() || conn->closing) continue;
    }
    epoll_.Mod(conn->fd, EPOLLIN, static_cast<uint64_t>(conn->fd));
    return true;
  }
}

void EventLoop::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  AccountBuffered(-static_cast<ssize_t>(Backlog(*it->second)));
  epoll_.Del(fd);
  ::close(fd);
  conns_.erase(it);
}

void EventLoop::SweepIdle() {
  if (options_.idle_timeout_s <= 0 || conns_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_s);
  std::vector<int> stale;
  for (const auto& [fd, conn] : conns_) {
    if (now - conn->last_active > limit) stale.push_back(fd);
  }
  for (int fd : stale) {
    AUTOMC_METRIC_COUNT("server.idle_reaped");
    CloseConn(fd);
  }
}

void EventLoop::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void EventLoop::Stop() {
  RequestStop();
  Wait();
}

}  // namespace fleet
}  // namespace automc
