#ifndef AUTOMC_FLEET_WORKER_H_
#define AUTOMC_FLEET_WORKER_H_

#include "server/job_manager.h"

namespace automc {
namespace fleet {

// Entry point of a fleet worker process (`automc_serve --worker
// --control-fd=N ...`). Opens (or recovers) a JobManager over the
// worker's private job dir and serves the coordinator's AMCS control
// channel on `control_fd` with a plain blocking frame loop — the same
// JobRequestHandler dispatch the public server uses, so a sharded job
// takes exactly the code path a direct one does.
//
// Lifecycle is owned by the coordinator: EOF on the control channel is
// the shutdown signal (drain: running jobs checkpoint and re-queue
// durably), after which the worker exits 0. SIGINT/SIGTERM are ignored —
// the terminal's ^C goes to the whole process group, and only the
// coordinator may decide what a signal means for the fleet. A worker
// that dies any other way (crash, kill -KILL) is respawned by the
// coordinator and recovers its jobs from disk.
//
// Returns the process exit code.
int WorkerMain(int control_fd, server::JobManager::Options jobs);

}  // namespace fleet
}  // namespace automc

#endif  // AUTOMC_FLEET_WORKER_H_
